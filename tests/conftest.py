"""Shared fixtures: keep process-global configuration test-local.

The CLI decision commands install their ``--passes`` level as the session
default (:func:`repro.xpath.passes.set_default_pipeline`); tests drive the
CLI in-process, so without a guard one test's ``--passes basic`` would
leak into every later test's dispatch, plan-cache and verdict-cache keys.
"""

import pytest

from repro.xpath import passes


@pytest.fixture(autouse=True)
def _restore_pipeline_level():
    previous = passes.default_pipeline()
    yield
    passes.set_default_pipeline(previous)
