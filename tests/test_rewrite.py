"""Tests for the rewriting lemmas: converse (§3.1) and the Figure 1
constructive inclusions."""

import random

import pytest

from repro.semantics import evaluate_nodes, evaluate_path
from repro.trees import random_tree
from repro.xpath import parse_node, parse_path
from repro.xpath.ast import Complement, ForLoop, Intersect, PathEquality, Union
from repro.xpath.measures import operators_used
from repro.xpath.rewrite import (
    complement_via_for,
    converse,
    eq_via_intersect,
    intersect_via_complement,
    intersect_via_eq,
    relativize_axes,
    substitute_label,
    union_via_complement,
)

from .helpers import random_path, relation_as_pairs


def inverse(pairs):
    return {(b, a) for (a, b) in pairs}


class TestConverse:
    @pytest.mark.parametrize("source", [
        "down", "up", "left", "right", "down*", "left*", ".",
        "down/right", "down union up*", "down[p]/left",
        "(down[p] union right)*", "down* intersect down/down",
        "down except down[p]",
    ])
    def test_converse_inverts_relation(self, source):
        rng = random.Random(21)
        path = parse_path(source)
        conv = converse(path)
        for _ in range(15):
            tree = random_tree(rng, 8, ["p", "q"])
            fwd = relation_as_pairs(evaluate_path(tree, path))
            bwd = relation_as_pairs(evaluate_path(tree, conv))
            assert bwd == inverse(fwd), source

    def test_converse_random(self):
        rng = random.Random(22)
        for _ in range(40):
            path = random_path(rng, 3, frozenset({"star", "cap"}))
            conv = converse(path)
            tree = random_tree(rng, 7, ["p", "q"])
            assert relation_as_pairs(evaluate_path(tree, conv)) == \
                inverse(relation_as_pairs(evaluate_path(tree, path)))

    def test_converse_involutive(self):
        rng = random.Random(23)
        for _ in range(30):
            path = random_path(rng, 3, frozenset({"star"}))
            tree = random_tree(rng, 6, ["p", "q"])
            assert evaluate_path(tree, converse(converse(path))) == \
                evaluate_path(tree, path)

    def test_for_loop_unsupported(self):
        with pytest.raises(ValueError):
            converse(parse_path("for $i in down return down[. is $i]"))


class TestFigure1Inclusions:
    """The constructive expressivity inclusions of Figure 1."""

    def test_eq_via_intersect(self):
        rng = random.Random(24)
        node = parse_node("eq(down*[p], down/down)")
        rewritten = eq_via_intersect(node)
        assert "eq" not in operators_used(rewritten)
        for _ in range(25):
            tree = random_tree(rng, 8, ["p", "q"])
            assert evaluate_nodes(tree, node) == evaluate_nodes(tree, rewritten)

    def test_intersect_via_eq_diagonal(self):
        # .[(α/β˘) ≈ .] is the test form of α ∩ β.
        rng = random.Random(25)
        path = parse_path("down*[p] intersect down/down")
        test_form = intersect_via_eq(path)
        assert "cap" not in operators_used(test_form)
        exists_direct = parse_node("<down*[p] intersect down/down>")
        for _ in range(25):
            tree = random_tree(rng, 8, ["p", "q"])
            diagonal = {
                source for source, targets
                in evaluate_path(tree, test_form).items() if targets
            }
            assert diagonal == evaluate_nodes(tree, exists_direct)

    def test_intersect_via_complement(self):
        rng = random.Random(26)
        path = Intersect(parse_path("down*"), parse_path("down/down"))
        rewritten = intersect_via_complement(path)
        assert "cap" not in operators_used(rewritten)
        for _ in range(25):
            tree = random_tree(rng, 8, ["p", "q"])
            assert evaluate_path(tree, path) == evaluate_path(tree, rewritten)

    def test_union_via_complement(self):
        rng = random.Random(27)
        path = Union(parse_path("down[p]"), parse_path("right*"))
        rewritten = union_via_complement(path)
        for _ in range(25):
            tree = random_tree(rng, 8, ["p", "q"])
            assert evaluate_path(tree, path) == evaluate_path(tree, rewritten)

    @pytest.mark.parametrize("downward", [True, False])
    def test_complement_via_for(self, downward):
        rng = random.Random(28)
        if downward:
            path = Complement(parse_path("down*"), parse_path("down*[p]"))
        else:
            path = Complement(parse_path("down/up"), parse_path(".[p]"))
        rewritten = complement_via_for(path, downward_only=downward)
        assert isinstance(rewritten, ForLoop)
        for _ in range(25):
            tree = random_tree(rng, 8, ["p", "q"])
            assert evaluate_path(tree, path) == evaluate_path(tree, rewritten)


class TestSubstitution:
    def test_substitute_label(self):
        expr = parse_node("p and <down[p]> and q")
        replaced = substitute_label(expr, "p", parse_node("q or r"))
        assert replaced == parse_node("(q or r) and <down[q or r]> and q")

    def test_substitute_inside_all_constructs(self):
        from repro.xpath.measures import labels_used
        expr = parse_path("for $i in down[p] return (down*[p] intersect .[p])")
        replaced = substitute_label(expr, "p", parse_node("not q"))
        assert labels_used(replaced) == {"q"}

    def test_relativize_axes(self):
        rng = random.Random(29)
        # Relativizing to ¬s on trees without s-labels is a no-op
        # semantically.
        expr = parse_path("down*/up[p] union right")
        guarded = relativize_axes(expr, parse_node("not s"))
        for _ in range(20):
            tree = random_tree(rng, 7, ["p", "q"])
            assert evaluate_path(tree, expr) == evaluate_path(tree, guarded)

    def test_relativize_blocks_guarded_nodes(self):
        from repro.trees import XMLTree
        tree = XMLTree.build(("a", ["s", "b"]))
        expr = parse_path("down")
        guarded = relativize_axes(expr, parse_node("not s"))
        assert relation_as_pairs(evaluate_path(tree, guarded)) == {(0, 2)}
