"""Tests for the perf-report reader and regression gate
(:mod:`repro.obs.report` and the ``repro report`` CLI command)."""

import json

import pytest

from repro.cli import main
from repro.obs import report as obs_report


def _bench(runs: dict) -> dict:
    return {"schema_version": 1, "runs": runs}


def _run(duration=0.2, counters=None, gauges=None, histograms=None) -> dict:
    return {
        "duration_s": duration,
        "counters": counters or {},
        "gauges": gauges or {},
        **({"histograms": histograms} if histograms else {}),
    }


BASELINE = _bench({
    "benchmarks/test_a.py::test_fast": _run(0.2, {"evals": 100}),
    "benchmarks/test_a.py::test_slow": _run(
        2.0, {"twoata.emptiness.rounds": 6},
        histograms={"twoata.emptiness.round_s": {
            "count": 6, "sum": 0.3, "min": 0.01, "max": 0.2, "mean": 0.05,
            "p50": 0.03, "p90": 0.15, "p99": 0.2, "buckets": [[0.2, 6]]}}),
    "benchmarks/test_a.py::test_tiny": _run(0.001, {"n": 1}),
})


class TestCompare:
    def test_identical_payloads_pass(self):
        comparison = obs_report.compare(BASELINE, BASELINE)
        assert comparison.ok
        assert not comparison.warnings

    def test_duration_regression_fails(self):
        current = json.loads(json.dumps(BASELINE))
        current["runs"]["benchmarks/test_a.py::test_slow"]["duration_s"] = 4.0
        comparison = obs_report.compare(current, BASELINE, fail_pct=50.0)
        assert not comparison.ok
        [regression] = comparison.regressions
        assert regression.kind == "duration"
        assert "test_slow" in regression.detail

    def test_growth_under_threshold_passes(self):
        current = json.loads(json.dumps(BASELINE))
        current["runs"]["benchmarks/test_a.py::test_slow"]["duration_s"] = 2.5
        assert obs_report.compare(current, BASELINE, fail_pct=50.0).ok

    def test_tiny_tests_never_trip_the_gate(self):
        # 0.001s -> 0.04s is a 40x blowup but below the noise floor.
        current = json.loads(json.dumps(BASELINE))
        current["runs"]["benchmarks/test_a.py::test_tiny"]["duration_s"] = 0.04
        assert obs_report.compare(current, BASELINE, fail_pct=50.0).ok

    def test_counter_drift_warns_but_passes(self):
        current = json.loads(json.dumps(BASELINE))
        current["runs"]["benchmarks/test_a.py::test_fast"]["counters"][
            "evals"] = 500
        comparison = obs_report.compare(current, BASELINE)
        assert comparison.ok
        assert any("evals" in warning for warning in comparison.warnings)

    def test_disappeared_counter_warns(self):
        current = json.loads(json.dumps(BASELINE))
        del current["runs"]["benchmarks/test_a.py::test_fast"]["counters"][
            "evals"]
        comparison = obs_report.compare(current, BASELINE)
        assert comparison.ok
        assert any("disappeared" in warning
                   for warning in comparison.warnings)

    def test_improvements_are_reported(self):
        current = json.loads(json.dumps(BASELINE))
        current["runs"]["benchmarks/test_a.py::test_slow"]["duration_s"] = 0.5
        comparison = obs_report.compare(current, BASELINE, fail_pct=50.0)
        assert comparison.ok
        assert comparison.improved

    def test_missing_and_new_tests_are_notes_not_failures(self):
        current = _bench({
            "benchmarks/test_a.py::test_fast": _run(0.2),
            "benchmarks/test_b.py::test_new": _run(0.3),
        })
        comparison = obs_report.compare(current, BASELINE)
        assert comparison.ok
        assert "benchmarks/test_b.py::test_new" in comparison.new_tests
        assert "benchmarks/test_a.py::test_slow" in comparison.missing_tests


class TestRequiredKeys:
    def test_histogram_names_count_as_instrumentation(self):
        assert obs_report.missing_keys(
            BASELINE, ["twoata.emptiness.round_s"]) == []

    def test_prefix_matching_over_counters(self):
        assert obs_report.missing_keys(BASELINE, ["twoata.emptiness."]) == []

    def test_unmatched_prefix_is_reported(self):
        assert obs_report.missing_keys(BASELINE, ["games.parity."]) \
            == ["games.parity."]


class TestLoad:
    def test_malformed_json_raises_value_error(self, tmp_path):
        path = tmp_path / "bench.json"
        path.write_text("{nope")
        with pytest.raises(ValueError, match="not valid JSON"):
            obs_report.load_bench(path)

    def test_wrong_shape_raises_value_error(self, tmp_path):
        path = tmp_path / "bench.json"
        path.write_text(json.dumps({"runs": [1, 2]}))
        with pytest.raises(ValueError, match="BENCH_obs.json"):
            obs_report.load_bench(path)

    def test_missing_file_raises_value_error(self, tmp_path):
        with pytest.raises(ValueError, match="cannot read"):
            obs_report.load_bench(tmp_path / "absent.json")


class TestCli:
    def _write(self, tmp_path, name, payload):
        path = tmp_path / name
        path.write_text(json.dumps(payload))
        return str(path)

    def test_table_on_stdout_exit_zero(self, capsys, tmp_path):
        path = self._write(tmp_path, "bench.json", BASELINE)
        assert main(["report", path]) == 0
        captured = capsys.readouterr()
        assert "test_slow" in captured.out
        assert "p99" in captured.out  # histogram summary in the table

    def test_compare_pass_exit_zero(self, capsys, tmp_path):
        path = self._write(tmp_path, "bench.json", BASELINE)
        base = self._write(tmp_path, "base.json", BASELINE)
        assert main(["report", path, "--compare", base]) == 0
        assert "PASS" in capsys.readouterr().err

    def test_compare_regression_exit_one(self, capsys, tmp_path):
        current = json.loads(json.dumps(BASELINE))
        current["runs"]["benchmarks/test_a.py::test_slow"]["duration_s"] = 9.0
        path = self._write(tmp_path, "bench.json", current)
        base = self._write(tmp_path, "base.json", BASELINE)
        code = main(["report", path, "--compare", base,
                     "--fail-on-regression", "50"])
        assert code == 1
        captured = capsys.readouterr()
        assert "FAIL duration" in captured.err
        # Diagnostics stay off the answer stream.
        assert "FAIL" not in captured.out

    def test_missing_instrumentation_exit_one(self, capsys, tmp_path):
        path = self._write(tmp_path, "bench.json", BASELINE)
        base = self._write(tmp_path, "base.json", BASELINE)
        code = main(["report", path, "--compare", base,
                     "--require-keys", "twoata.emptiness.,nonexistent."])
        assert code == 1
        assert "missing instrumentation" in capsys.readouterr().err

    def test_malformed_input_exit_two(self, capsys, tmp_path):
        path = tmp_path / "bench.json"
        path.write_text("{nope")
        assert main(["report", str(path)]) == 2
        assert "error:" in capsys.readouterr().err
