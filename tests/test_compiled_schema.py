"""Tests for the compile-once :class:`CompiledSchema` pipeline.

Four contracts of the per-schema artifact layer:

* **Identity** — :func:`schema_id_of` hashes the schema's *content* (EDTD
  fingerprint + relevant alphabet), so it is stable across construction
  orders and distinguishes genuinely different schemas.
* **Compile-once** — a stream of same-schema problems builds exactly one
  :class:`CompiledSchema` (asserted via the ``schema.compile.count``
  counter); the registry is a bounded LRU; forked batch workers inherit
  the parent's precompiled sessions and never compile themselves.
* **Fork hygiene** — half-built sessions are never observable after a
  fork, and a finished pool leaves no sessions behind.
* **Parity** — the warm compiled-schema paths produce byte-identical
  output to the retained pre-refactor construction paths (the
  differential oracles: ``schema=None`` / ``frame=None`` /
  ``partition=None`` / ``shared=None``) on a 200+ instance random sweep.
"""

from __future__ import annotations

import random

import pytest

from repro import obs
from repro.analysis import session as session_module
from repro.analysis.problems import Problem, ProblemKind, Verdict
from repro.analysis.reductions import (
    containment_to_node_unsat,
    sat_to_edtd_sat,
)
from repro.analysis.registry import default_registry
from repro.analysis.session import (
    SchemaSession,
    discard_incomplete_sessions,
    reset_sessions,
    schema_id_of,
    session_for,
)
from repro.edtd import DTD
from repro.parallel.cache import _edtd_fingerprint, encode_result
from repro.parallel.runner import BatchRunner
from repro.trees import to_xml
from repro.xpath import parse_node, parse_path, to_source
from repro.xpath.ast import Axis

from .helpers import random_node, random_path

pytestmark = pytest.mark.filterwarnings(
    "ignore::DeprecationWarning")  # fork-in-threads notice on 3.12+


@pytest.fixture(autouse=True)
def _isolated_registry():
    """Every test starts and ends with an empty session registry."""
    reset_sessions()
    yield
    reset_sessions()


def _sat(source: str, edtd=None) -> Problem:
    return Problem(ProblemKind.SATISFIABILITY, phi=parse_node(source),
                   edtd=edtd)


#: Four distinct problems over one compiled schema (labels {p, q}).
SAME_SCHEMA = ("p and <down[q]>", "q and <down[p]>",
               "<down[p and q]>", "p or <down[q]>")


# ------------------------------------------------------------ schema identity


class TestSchemaId:
    def test_stable_across_edtd_construction_orders(self):
        rules = {"a": "b*", "b": "c*", "c": "eps"}
        one = DTD(rules, root="a")
        other = DTD(dict(reversed(list(rules.items()))), root="a")
        phi = parse_node("a")
        assert one is not other
        assert schema_id_of(phi, edtd=one) == schema_id_of(phi, edtd=other)

    def test_same_label_alphabet_shares_an_id(self):
        ids = {schema_id_of(parse_node(source)) for source in SAME_SCHEMA}
        assert len(ids) == 1

    def test_disjoint_alphabets_differ(self):
        assert schema_id_of(parse_node("p and q")) \
            != schema_id_of(parse_node("r and s"))

    def test_schema_content_changes_the_id(self):
        phi = parse_node("a")
        loose = DTD({"a": "a*"}, root="a")
        strict = DTD({"a": "eps"}, root="a")
        assert schema_id_of(phi, edtd=loose) \
            != schema_id_of(phi, edtd=strict)


# --------------------------------------------------------------- compile-once


class TestCompileOnce:
    def test_one_schema_compiles_once(self):
        problems = [_sat(source) for source in SAME_SCHEMA]
        with obs.record("test") as recording:
            sessions = {id(session_for(problem)) for problem in problems}
        assert len(sessions) == 1
        counters = recording.counters
        assert counters["schema.compile.count"] == 1
        assert counters["analysis.session.created"] == 1
        assert counters["analysis.session.reused"] == len(problems) - 1
        assert counters["schema.compile.cache_hit"] == len(problems) - 1

    def test_two_schemas_compile_twice(self):
        problems = [_sat(source) for source in SAME_SCHEMA]
        problems += [_sat(source.replace("p", "r").replace("q", "s"))
                     for source in SAME_SCHEMA]
        with obs.record("test") as recording:
            for problem in problems:
                session_for(problem)
        assert recording.counters["schema.compile.count"] == 2

    def test_direct_engine_calls_share_the_session(self):
        engine = default_registry().get("automata")
        problem = _sat("p and <down[q]>")
        with obs.record("test") as recording:
            first = engine.solve(problem)
            second = engine.solve(problem)
        assert encode_result(first) == encode_result(second)
        assert recording.counters["schema.compile.count"] == 1

    def test_partition_seed_engages_for_satisfiability(self):
        engine = default_registry().get("automata")
        with obs.record("test") as recording:
            result = engine.solve(_sat("p and <down[q]>"))
        assert result.verdict is Verdict.SATISFIABLE
        assert recording.counters.get("twoata.partition_shared", 0) >= 1

    def test_decorated_partition_engages_for_containment(self):
        engine = default_registry().get("automata")
        problem = Problem(ProblemKind.CONTAINMENT,
                          alpha=parse_path("down[p]"),
                          beta=parse_path("down"))
        with obs.record("test") as recording:
            result = engine.solve(problem)
        assert result.verdict is Verdict.UNSATISFIABLE  # containment holds
        assert recording.counters.get("twoata.partition_shared", 0) >= 1

    def test_derived_artifacts_are_memoized(self):
        edtd = DTD({"a": "b*", "b": "eps"}, root="a")
        compiled = session_for(_sat("a", edtd=edtd)).compiled
        with obs.record("test") as recording:
            # The eager compile already built the schema's own frame.
            assert compiled.type_frame() is compiled.type_frame()
            assert compiled.schema_tables() is compiled.schema_tables()
            gamma = ("a", "b", "z")
            assert compiled.permissive_frame(gamma) \
                is compiled.permissive_frame(gamma)
            assert compiled.decorated_partition() \
                is compiled.decorated_partition()
        counters = recording.counters
        assert counters["schema.compile.derived_hit"] >= 4
        assert counters.get("schema.compile.frames", 0) == 0
        assert counters["schema.compile.tables"] == 1
        assert counters["schema.compile.reductions"] == 2

    def test_session_exposes_the_compiled_artifact(self):
        session = session_for(_sat("p"))
        assert session.kernel_cache is session.compiled.kernel_cache
        stats = session.stats()
        assert stats["compile_s"] == session.compiled.compile_s
        assert stats["problems"] == 1


# ----------------------------------------------------------------- LRU bounds


class TestSessionLRU:
    def test_bounded_registry_evicts_least_recently_used(self, monkeypatch):
        monkeypatch.setattr(session_module, "MAX_SESSIONS", 2)
        a, b, c = _sat("a1"), _sat("b1"), _sat("c1")
        with obs.record("test") as recording:
            first = session_for(a)
            session_for(b)
            session_for(c)        # evicts a (capacity 2)
            again = session_for(a)  # recompiles; evicts b
        counters = recording.counters
        assert counters["analysis.session.evicted"] == 2
        assert counters["schema.compile.count"] == 4
        assert counters.get("analysis.session.reused", 0) == 0
        assert again is not first

    def test_recently_used_session_survives_eviction(self, monkeypatch):
        monkeypatch.setattr(session_module, "MAX_SESSIONS", 2)
        a, b, c = _sat("a1"), _sat("b1"), _sat("c1")
        warm_a = session_for(a)
        session_for(b)
        session_for(a)  # touch: b becomes least recently used
        session_for(c)  # evicts b, not a
        assert session_for(a) is warm_a


# --------------------------------------------------------------- fork hygiene


class TestForkHygiene:
    def test_discard_incomplete_sessions_drops_in_flight_builds(self):
        session_for(_sat("p"))  # a finished session
        in_flight = "0" * 64
        session_module._BUILDING.add(in_flight)
        session_module._SESSIONS[in_flight] = SchemaSession(in_flight)
        discard_incomplete_sessions()
        assert in_flight not in session_module._SESSIONS
        assert len(session_module._SESSIONS) == 1  # finished one survives

    def test_after_fork_hook_renews_the_lock(self):
        lock_before = session_module._LOCK
        session_module._BUILDING.add("1" * 64)
        session_module._after_fork_in_child()
        assert session_module._LOCK is not lock_before
        assert not session_module._BUILDING

    def test_forked_workers_inherit_warm_sessions(self):
        """Satellite regression: a batch over one schema compiles once in
        the parent; the forked workers only ever *reuse* the inherited
        session (zero worker-side compiles)."""
        problems = [_sat(source) for source in SAME_SCHEMA]
        runner = BatchRunner(workers=2, collect_stats=True)
        with obs.record("test") as recording:
            report = runner.run(problems)
        assert all(outcome.result is not None for outcome in report.outcomes)
        assert recording.counters["schema.compile.count"] == 1
        worker_counters = [record.get("counters") or {}
                           for outcome in report.outcomes
                           for record in outcome.worker_records]
        assert worker_counters
        assert sum(c.get("schema.compile.count", 0)
                   for c in worker_counters) == 0
        assert sum(c.get("analysis.session.reused", 0)
                   for c in worker_counters) >= len(problems)
        [entry] = report.schemas
        assert entry["schema_id"] == schema_id_of(problems[0].phi)
        assert entry["problems"] == len(problems)
        assert entry["session_reuse"] == pytest.approx(1.0)

    def test_pool_shutdown_resets_sessions(self):
        BatchRunner(workers=1).run([_sat("p")])
        assert not session_module._SESSIONS


# ------------------------------------------------------- differential oracles


class TestDifferentialOracles:
    """The warm compiled-schema paths against the retained pre-refactor
    construction paths, on 230 random instances overall."""

    def test_automata_sat_matches_frameless_oracle(self):
        """120 instances: 2ATA emptiness with the session's partition seed
        and shared kernel cache vs the bare per-call path."""
        engine = default_registry().get("automata")
        rng = random.Random(2026)
        checked = 0
        while checked < 120:
            phi = random_node(rng, 2, frozenset({"star"}))
            problem = Problem(ProblemKind.SATISFIABILITY, phi=phi)
            if not engine.admits(problem):
                continue
            session = session_for(problem)
            warm = engine._check(phi, session, session.compiled.partition)
            cold = engine._check(phi, None, None)
            assert (warm is None) == (cold is None), to_source(phi)
            if warm is None:
                continue
            assert warm[0] == cold[0], to_source(phi)
            if not warm[0]:  # satisfiable: identical witness tree and node
                assert to_xml(warm[1]) == to_xml(cold[1]), to_source(phi)
                assert warm[2] == cold[2], to_source(phi)
            checked += 1

    def test_reduction_frames_match_schemaless_construction(self):
        """80 instances: the memoized Prop. 5 / Prop. 4 frames vs rebuilding
        the reduction from scratch."""
        rng = random.Random(7)
        for _ in range(40):
            phi = random_node(rng, 2, frozenset({"star"}))
            compiled = session_for(
                Problem(ProblemKind.SATISFIABILITY, phi=phi)).compiled
            warm = sat_to_edtd_sat(phi, schema=compiled)
            cold = sat_to_edtd_sat(phi)
            assert to_source(warm.formula) == to_source(cold.formula)
            assert _edtd_fingerprint(warm.edtd) == _edtd_fingerprint(cold.edtd)
        edtd = DTD({"p": "(p | q)*", "q": "eps"}, root="p")
        for _ in range(40):
            alpha = random_path(rng, 2, frozenset({"star"}))
            beta = random_path(rng, 2, frozenset({"star"}))
            problem = Problem(ProblemKind.CONTAINMENT, alpha=alpha,
                              beta=beta, edtd=edtd)
            compiled = session_for(problem).compiled
            assert compiled.edtd is edtd  # the memo guard's precondition
            warm = containment_to_node_unsat(alpha, beta, edtd,
                                             schema=compiled)
            cold = containment_to_node_unsat(alpha, beta, edtd)
            assert to_source(warm.formula) == to_source(cold.formula)
            assert _edtd_fingerprint(warm.edtd) == _edtd_fingerprint(cold.edtd)

    def test_expspace_matches_frameless_oracle(self):
        """30 instances: the Fig. 2 procedure with the compiled type frame
        vs ``frame=None``."""
        engine = default_registry().get("expspace")
        edtd = DTD({"p": "(p | q)*", "q": "q*"}, root="p")
        rng = random.Random(13)
        checked = 0
        while checked < 30:
            phi = random_node(rng, 2, frozenset(), axes=(Axis.DOWN,))
            problem = Problem(ProblemKind.SATISFIABILITY, phi=phi, edtd=edtd)
            if not engine.admits(problem):
                continue
            compiled = session_for(problem).compiled
            warm = engine._satisfiable(phi, edtd, compiled)
            cold = engine._satisfiable(phi, edtd, None)
            assert (warm is None) == (cold is None), to_source(phi)
            if warm is None:
                continue
            assert encode_result(warm) == encode_result(cold), to_source(phi)
            checked += 1
