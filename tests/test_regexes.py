"""Tests for the regular-expression substrate: AST, parser, NFA, DFA."""

import itertools
import random

import pytest

from repro.regexes import (
    Alt,
    Concat,
    DFA,
    Empty,
    Epsilon,
    KleeneStar,
    NFA,
    Symbol,
    alt_all,
    concat_all,
    determinize,
    nfa_to_regex,
    optional,
    parse_regex,
    plus,
    regex_size,
    regex_to_source,
    symbols_of,
    thompson_nfa,
)
from repro.regexes.parser import RegexSyntaxError

ALPHABET = frozenset({"a", "b"})


def words(max_length: int, alphabet=("a", "b")):
    for length in range(max_length + 1):
        yield from itertools.product(alphabet, repeat=length)


def language(nfa: NFA, max_length: int) -> set:
    return {w for w in words(max_length) if nfa.accepts(w)}


class TestParserPrinter:
    @pytest.mark.parametrize("source, member, nonmember", [
        ("a", ("a",), ("b",)),
        ("a b", ("a", "b"), ("a",)),
        ("a | b", ("b",), ("a", "a")),
        ("a*", ("a", "a", "a"), ("b",)),
        ("a+", ("a",), ()),
        ("a?", (), ("a", "a")),
        ("(a b)* a", ("a",), ("a", "b")),
        ("eps", (), ("a",)),
    ])
    def test_membership(self, source, member, nonmember):
        nfa = thompson_nfa(parse_regex(source))
        assert nfa.accepts(member)
        assert not nfa.accepts(nonmember)

    def test_empty_language(self):
        nfa = thompson_nfa(parse_regex("empty"))
        assert nfa.is_empty()

    def test_roundtrip_through_printer(self):
        rng = random.Random(0)
        sources = ["a (b | eps)* a?", "(a|b)+ a b", "a b c | d*"]
        for source in sources:
            regex = parse_regex(source)
            again = parse_regex(regex_to_source(regex))
            n1, n2 = thompson_nfa(regex), thompson_nfa(again)
            for w in words(4, ("a", "b", "c", "d")):
                assert n1.accepts(w) == n2.accepts(w)

    def test_syntax_errors(self):
        for bad in ["(a", "a |", "*", "a))"]:
            with pytest.raises(RegexSyntaxError):
                parse_regex(bad)

    def test_multichar_symbols(self):
        nfa = thompson_nfa(parse_regex("chapter section*"))
        assert nfa.accepts(["chapter", "section", "section"])
        assert not nfa.accepts(["section"])


class TestAstHelpers:
    def test_size(self):
        assert regex_size(parse_regex("a b | c*")) == 6

    def test_symbols_of(self):
        assert symbols_of(parse_regex("a (b | eps)*")) == {"a", "b"}

    def test_concat_all_empty_is_epsilon(self):
        assert isinstance(concat_all([]), Epsilon)

    def test_alt_all_empty_is_empty(self):
        assert isinstance(alt_all([]), Empty)

    def test_sugar(self):
        assert thompson_nfa(plus(Symbol("a"))).accepts(["a"])
        assert not thompson_nfa(plus(Symbol("a"))).accepts([])
        assert thompson_nfa(optional(Symbol("a"))).accepts([])


class TestNFAOperations:
    def test_epsilon_elimination_preserves_language(self):
        rng = random.Random(1)
        for source in ["a* b*", "(a|b)* a", "a? b? a?"]:
            nfa = thompson_nfa(parse_regex(source))
            bare = nfa.without_epsilon()
            assert all(
                nfa.accepts(w) == bare.accepts(w) for w in words(5)
            )
            assert all(symbol is not None for (_, symbol) in bare.transitions)

    def test_reversed(self):
        nfa = thompson_nfa(parse_regex("a b b"))
        rev = nfa.reversed()
        assert rev.accepts(["b", "b", "a"])
        assert not rev.accepts(["a", "b", "b"])

    def test_product_is_intersection(self):
        n1 = thompson_nfa(parse_regex("a (a|b)*"))
        n2 = thompson_nfa(parse_regex("(a|b)* b"))
        both = n1.product(n2)
        for w in words(5):
            assert both.accepts(w) == (n1.accepts(w) and n2.accepts(w))

    def test_is_empty(self):
        assert thompson_nfa(parse_regex("empty a")).is_empty()
        assert not thompson_nfa(parse_regex("a")).is_empty()

    def test_accepts_epsilon(self):
        assert thompson_nfa(parse_regex("a*")).accepts_epsilon()
        assert not thompson_nfa(parse_regex("a")).accepts_epsilon()


class TestDFA:
    def test_determinize_preserves_language(self):
        for source in ["a* b", "(a|b)* a (a|b)", "a+ | b+"]:
            nfa = thompson_nfa(parse_regex(source))
            dfa = determinize(nfa, ALPHABET)
            for w in words(6):
                assert dfa.accepts(w) == nfa.accepts(w), (source, w)

    def test_minimize_preserves_language_and_shrinks(self):
        nfa = thompson_nfa(parse_regex("(a|b)* a (a|b)"))
        dfa = determinize(nfa, ALPHABET)
        minimal = dfa.minimize()
        assert minimal.num_states <= dfa.num_states
        for w in words(6):
            assert dfa.accepts(w) == minimal.accepts(w)

    def test_known_minimal_size(self):
        # "(a|b)* a (a|b)^1": minimal DFA has 2^2 = 4 states (suffix window).
        nfa = thompson_nfa(parse_regex("(a|b)* a (a|b)"))
        assert determinize(nfa, ALPHABET).minimize().num_states == 4

    def test_complement(self):
        dfa = determinize(thompson_nfa(parse_regex("a b")), ALPHABET)
        comp = dfa.complement()
        for w in words(4):
            assert comp.accepts(w) == (not dfa.accepts(w))

    def test_product_modes(self):
        d1 = determinize(thompson_nfa(parse_regex("a (a|b)*")), ALPHABET)
        d2 = determinize(thompson_nfa(parse_regex("(a|b)* b")), ALPHABET)
        for w in words(4):
            assert d1.product(d2, "and").accepts(w) == \
                (d1.accepts(w) and d2.accepts(w))
            assert d1.product(d2, "or").accepts(w) == \
                (d1.accepts(w) or d2.accepts(w))

    def test_equivalent(self):
        d1 = determinize(thompson_nfa(parse_regex("a a* ")), ALPHABET)
        d2 = determinize(thompson_nfa(parse_regex("a* a")), ALPHABET)
        d3 = determinize(thompson_nfa(parse_regex("a*")), ALPHABET)
        assert d1.equivalent(d2)
        assert not d1.equivalent(d3)

    def test_some_word_is_shortest(self):
        dfa = determinize(thompson_nfa(parse_regex("a a a | a a")), ALPHABET)
        assert dfa.some_word() == ["a", "a"]
        empty = determinize(thompson_nfa(parse_regex("empty")), ALPHABET)
        assert empty.some_word() is None

    def test_incomplete_rejected(self):
        with pytest.raises(ValueError):
            DFA(ALPHABET, 1, 0, frozenset(), {0: {"a": 0}})


class TestStateElimination:
    @pytest.mark.parametrize("source", [
        "a", "a b", "a | b", "a*", "(a | b)* a", "a (b a)* b?", "empty",
    ])
    def test_nfa_to_regex_roundtrip(self, source):
        nfa = thompson_nfa(parse_regex(source))
        back = thompson_nfa(nfa_to_regex(nfa))
        for w in words(5):
            assert nfa.accepts(w) == back.accepts(w), (source, w)

    def test_random_roundtrips(self):
        rng = random.Random(7)

        def random_regex(depth):
            if depth == 0:
                return Symbol(rng.choice("ab"))
            kind = rng.randrange(4)
            if kind == 0:
                return Concat(random_regex(depth - 1), random_regex(depth - 1))
            if kind == 1:
                return Alt(random_regex(depth - 1), random_regex(depth - 1))
            if kind == 2:
                return KleeneStar(random_regex(depth - 1))
            return Symbol(rng.choice("ab"))

        for _ in range(25):
            regex = random_regex(3)
            nfa = thompson_nfa(regex)
            back = thompson_nfa(nfa_to_regex(nfa))
            for w in words(4):
                assert nfa.accepts(w) == back.accepts(w)
