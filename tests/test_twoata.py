"""Tests for the 2ATA construction (§3.3): Table III and Lemma 12."""

import random

import pytest

from repro.automata import TwoATA, accepts, build_twoata, closure, to_normal_form
from repro.automata.nf import NFLoop, NFNot
from repro.semantics import evaluate_nodes
from repro.trees import XMLTree, random_tree
from repro.xpath import parse_node

from .helpers import random_node

STAR_EQ = frozenset({"star", "eq"})


class TestClosure:
    def test_contains_shifted_loops_and_negations(self):
        nf = to_normal_form(parse_node("eq(down, down)"))
        cl = closure(nf)
        assert nf in cl
        loops = [e for e in cl if isinstance(e, NFLoop)]
        states = loops[0].automaton.num_states
        # All state pairs are present, positively and negated.
        assert len(loops) >= states * states
        assert any(isinstance(e, NFNot) for e in cl)

    def test_closure_polynomial_in_formula(self):
        sizes = []
        for n in range(1, 5):
            inner = "/".join(["down"] * n)
            ata = build_twoata(parse_node(f"<{inner}>"))
            sizes.append(ata.num_states)
        # Quadratic-ish growth, not exponential: successive ratios bounded.
        ratios = [b / a for a, b in zip(sizes, sizes[1:])]
        assert max(ratios) < 3


class TestAcceptancePriorities:
    def test_loop_states_get_priority_one(self):
        ata = build_twoata(parse_node("p"))
        for index, expr in enumerate(ata.state_exprs):
            expected = 1 if isinstance(expr, NFLoop) else 2
            assert ata.priority(index) == expected

    def test_initial_state_is_wrapped_loop(self):
        ata = build_twoata(parse_node("p"))
        assert isinstance(ata.initial_expr, NFLoop)


class TestLemma12:
    """A_φ accepts T iff T satisfies φ somewhere."""

    @pytest.mark.parametrize("source", [
        "p",
        "not p",
        "p and not q",
        "<down[p]>",
        "not <down*[p]>",
        "eq(down*, down/down)",
        "eq(down*[p]/up, .)",
        "<(down[p])*[q]>",
        "not eq(down[p], right*)",
    ])
    def test_acceptance_matches_satisfaction(self, source):
        rng = random.Random(41)
        phi = parse_node(source)
        ata = build_twoata(phi)
        hits = 0
        for _ in range(10):
            tree = random_tree(rng, 7, ["p", "q"])
            expected = bool(evaluate_nodes(tree, phi))
            hits += expected
            assert accepts(ata, tree) == expected, (source, tree.to_spec())

    def test_acceptance_random_formulas(self):
        rng = random.Random(42)
        for _ in range(10):
            phi = random_node(rng, 2, STAR_EQ)
            ata = build_twoata(phi)
            for _ in range(4):
                tree = random_tree(rng, 6, ["p", "q"])
                assert accepts(ata, tree) == bool(evaluate_nodes(tree, phi))

    def test_single_node_trees(self):
        ata = build_twoata(parse_node("p and not <down>"))
        assert accepts(ata, XMLTree(["p"], [None]))
        assert not accepts(ata, XMLTree(["q"], [None]))
        # "somewhere": the leaf p-child satisfies it even under a p-root.
        assert accepts(ata, XMLTree.build(("p", ["p"])))
        assert accepts(ata, XMLTree.build(("q", ["p"])))
        # No leaf carries p here: every p-node has a child.
        assert not accepts(ata, XMLTree.build(("q", [("p", ["q"])])))

    def test_deep_chain(self):
        phi = parse_node("p and not <down*[q]>")
        ata = build_twoata(phi)
        assert accepts(ata, XMLTree.chain("ppp"))
        assert not accepts(ata, XMLTree.chain("ppq"))

    def test_loop_formula_on_wide_tree(self):
        # eq(↓[p], ↓[q]): a child that is both p and q — impossible.
        ata = build_twoata(parse_node("eq(down[p], down[q])"))
        for spec in [("a", ["p", "q"]), ("a", [("p", ["q"])])]:
            assert not accepts(ata, XMLTree.build(spec))

    def test_delta_is_memoized(self):
        ata = build_twoata(parse_node("p"))
        tree = XMLTree.build(("p", ["q"]))
        accepts(ata, tree)
        memo_size = len(ata._delta_memo)
        accepts(ata, tree)
        assert len(ata._delta_memo) == memo_size
