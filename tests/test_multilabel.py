"""Tests for multi-labeled trees and the Lemma 25 tree encoding."""

import pytest

from repro.semantics import evaluate_nodes, holds_at
from repro.trees import MultiLabelTree, XMLTree, encode_multilabel_tree
from repro.xpath import parse_node
from repro.lowerbounds import encode_formula


@pytest.fixture
def sample():
    return MultiLabelTree.build(
        (["p", "q"], [
            (["p"], []),
            ([], [(["q", "r"], [])]),
        ])
    )


class TestMultiLabelTree:
    def test_labels(self, sample):
        assert sample.labels(0) == {"p", "q"}
        assert sample.has_label(1, "p")
        assert not sample.has_label(2, "p")
        assert sample.labels(3) == {"q", "r"}

    def test_structure(self, sample):
        assert sample.size == 4
        assert sample.children(0) == (1, 2)
        assert sample.parent(3) == 2

    def test_alphabet(self, sample):
        assert sample.alphabet() == {"p", "q", "r"}

    def test_equality(self, sample):
        other = MultiLabelTree.build(
            (["q", "p"], [(["p"], []), ([], [(["r", "q"], [])])])
        )
        assert sample == other
        assert hash(sample) == hash(other)

    def test_labelset_count_checked(self):
        skeleton = XMLTree(["", ""], [None, 0])
        with pytest.raises(ValueError):
            MultiLabelTree(skeleton, [{"p"}])

    def test_evaluator_supports_multilabels(self, sample):
        phi = parse_node("p and q")
        assert evaluate_nodes(sample, phi) == {0}
        both = parse_node("<down[p]> and <down*[r]>")
        assert 0 in evaluate_nodes(sample, both)


class TestLemma25Encoding:
    def test_encoding_shape(self, sample):
        encoded = encode_multilabel_tree(sample)
        # One x node per original node plus one auxiliary leaf per label.
        total_labels = sum(len(sample.labels(n)) for n in sample.nodes)
        assert encoded.size == sample.size + total_labels
        assert encoded.label(0) == "x"

    def test_aux_nodes_are_trailing_leaves(self, sample):
        encoded = encode_multilabel_tree(sample)
        for node in encoded.nodes:
            if encoded.label(node) != "x":
                assert encoded.is_leaf(node)
                sibling = encoded.next_sibling(node)
                if sibling is not None:
                    assert encoded.label(sibling) != "x"

    def test_marker_collision_rejected(self):
        tree = MultiLabelTree.build((["x"], []))
        with pytest.raises(ValueError):
            encode_multilabel_tree(tree)

    @pytest.mark.parametrize("source", [
        "p and q",
        "<down[p]>",
        "not <down*[r]>",
        "<down[p] intersect down*[p]>",
        "eq(down*[q], down/down)",
    ])
    def test_formula_encoding_agrees(self, sample, source):
        phi = parse_node(source)
        encoded_tree = encode_multilabel_tree(sample)
        encoded_phi = encode_formula(phi)
        assert holds_at(sample, phi, 0) == holds_at(encoded_tree, encoded_phi, 0)

    def test_marker_in_formula_rejected(self):
        with pytest.raises(ValueError):
            encode_formula(parse_node("x"))
