"""Hypothesis property-based tests pinning the paper's core invariants."""

import random

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.automata import (
    FreshLabels,
    NFEvaluator,
    eliminate_skips,
    path_to_automaton,
    path_to_epa,
    to_normal_form,
)
from repro.semantics import evaluate_nodes, evaluate_path
from repro.trees import XMLTree
from repro.xpath import parse_node, to_source, parse_path
from repro.xpath.ast import Axis
from repro.xpath.measures import size
from repro.xpath.rewrite import converse

from .helpers import random_node, random_path

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

# --------------------------------------------------------------- strategies

labels = st.sampled_from(["p", "q"])


@st.composite
def trees(draw, max_nodes=7):
    seed = draw(st.integers(min_value=0, max_value=2 ** 32 - 1))
    from repro.trees import random_tree
    return random_tree(random.Random(seed), max_nodes, ["p", "q"])


@st.composite
def paths(draw, operators=frozenset()):
    seed = draw(st.integers(min_value=0, max_value=2 ** 32 - 1))
    return random_path(random.Random(seed), 3, operators)


@st.composite
def nodes(draw, operators=frozenset()):
    seed = draw(st.integers(min_value=0, max_value=2 ** 32 - 1))
    return random_node(random.Random(seed), 3, operators)


# --------------------------------------------------------------- properties


@SETTINGS
@given(paths(frozenset({"star", "cap", "minus"})), trees())
def test_printer_parser_roundtrip(path, tree):
    assert parse_path(to_source(path)) == path


@SETTINGS
@given(nodes(frozenset({"eq"})))
def test_node_roundtrip(node):
    assert parse_node(to_source(node)) == node


@SETTINGS
@given(paths(frozenset({"star", "cap"})), trees())
def test_converse_inverts(path, tree):
    fwd = evaluate_path(tree, path)
    bwd = evaluate_path(tree, converse(path))
    fwd_pairs = {(a, b) for a, bs in fwd.items() for b in bs}
    bwd_pairs = {(a, b) for a, bs in bwd.items() for b in bs}
    assert bwd_pairs == {(b, a) for (a, b) in fwd_pairs}


@SETTINGS
@given(paths(frozenset({"star"})), trees())
def test_normal_form_preserves_relation(path, tree):
    automaton = eliminate_skips(path_to_automaton(path))
    assert NFEvaluator(tree).relation(automaton) == evaluate_path(tree, path)


@SETTINGS
@given(nodes(frozenset({"eq"})), trees())
def test_normal_form_preserves_nodes(node, tree):
    nf = to_normal_form(node)
    assert NFEvaluator(tree).nodes(nf) == evaluate_nodes(tree, node)


@SETTINGS
@given(paths(frozenset({"cap"})), trees())
def test_epa_translation_preserves_relation(path, tree):
    epa = path_to_epa(path, FreshLabels())
    assert NFEvaluator(tree).relation(epa.expand()) == \
        evaluate_path(tree, path)


@SETTINGS
@given(paths(frozenset({"star", "cap", "minus"})))
def test_size_positive_and_subexpressions_consistent(path):
    from repro.xpath.measures import subexpressions
    assert size(path) >= 1
    assert size(path) == sum(
        1 for _ in _syntax_nodes(path)
    )


def _syntax_nodes(expr):
    """Count syntax-tree nodes independently of measures.size."""
    from repro.xpath.ast import (
        And, AxisClosure, AxisStep, Complement, Filter, ForLoop, Intersect,
        Label, Not, PathEquality, Self, Seq, SomePath, Star, Top, Union, VarIs,
    )
    stack = [expr]
    while stack:
        e = stack.pop()
        yield e
        if isinstance(e, (Seq, Union, Intersect, Complement, And, PathEquality)):
            stack += [e.left, e.right]
        elif isinstance(e, Filter):
            stack += [e.path, e.predicate]
        elif isinstance(e, (Star, SomePath)):
            stack.append(e.path)
        elif isinstance(e, Not):
            stack.append(e.child)
        elif isinstance(e, ForLoop):
            stack += [e.source, e.body]


@SETTINGS
@given(trees(), paths(frozenset({"star"})))
def test_star_is_reflexive_and_transitive(tree, path):
    from repro.xpath.ast import Star
    closure = evaluate_path(tree, Star(path))
    for n in tree.nodes:
        assert n in closure.get(n, frozenset())
    pairs = {(a, b) for a, bs in closure.items() for b in bs}
    for (a, b) in pairs:
        for (c, d) in pairs:
            if b == c:
                assert (a, d) in pairs


@SETTINGS
@given(trees(), paths(), paths())
def test_intersection_is_semantic_meet(tree, left, right):
    from repro.xpath.ast import Intersect
    both = evaluate_path(tree, Intersect(left, right))
    l_rel = evaluate_path(tree, left)
    r_rel = evaluate_path(tree, right)
    for n in tree.nodes:
        assert both.get(n, frozenset()) == \
            l_rel.get(n, frozenset()) & r_rel.get(n, frozenset())


@SETTINGS
@given(trees(), nodes())
def test_negation_partitions(tree, node):
    from repro.xpath.ast import Not
    pos = evaluate_nodes(tree, node)
    neg = evaluate_nodes(tree, Not(node))
    assert pos | neg == frozenset(tree.nodes)
    assert not (pos & neg)


@SETTINGS
@given(st.lists(labels, min_size=1, max_size=8))
def test_serialization_roundtrip_words(word):
    from repro.trees import from_xml, to_xml
    tree = XMLTree.chain(word)
    assert from_xml(to_xml(tree)) == tree
