"""The rewrite pass manager (:mod:`repro.xpath.passes`).

Three layers of evidence that the pipeline is semantics-preserving:

* **Differential, per pass** — each pass of the ``full`` pipeline is
  applied alone to randomized expressions and compared against the
  :class:`~repro.semantics.ReferenceEvaluator` (which never normalizes or
  rewrites) on randomized trees.  A disagreement localizes the unsound
  rule immediately.
* **Differential, whole pipeline** — :func:`~repro.xpath.passes.canonical`
  at every registered level vs the reference, plus idempotence: the
  canonical form is a fixpoint *by identity*.
* **Round-trip** — for the corpus of every expression literal in the test
  and benchmark suites, printing the canonical form and re-parsing it
  re-interns onto the same dense key (``to_source`` stays injective on
  canonical forms, so the on-disk verdict-cache keys are faithful).

Plus targeted unit tests for the individual algebraic laws and the cost
guard, and a regression for the old ``optimize.simplify_union``
divergence (its private union flatten/rebuild neither deduplicated nor
ordered members, so its output disagreed with the normalizer's form).
"""

from __future__ import annotations

import random
import re
from pathlib import Path

import pytest

from repro.semantics import ReferenceEvaluator
from repro.trees import random_tree
from repro.xpath import (
    intern_expr,
    parse_node,
    parse_path,
    passes,
    size,
    to_source,
)
from repro.xpath.ast import (
    Axis,
    AxisClosure,
    AxisStep,
    NodeExpr,
    PathExpr,
)
from repro.xpath.intern import intern_key
from repro.xpath.passes import (
    EMPTY_PATH,
    FALSE,
    canonical,
    canonical_with_stats,
    cost,
    get_pipeline,
    is_empty_path,
    rebuild_union,
    union_members,
)

from .helpers import DEFAULT_LABELS, random_node, random_path

ALL_OPERATORS = frozenset({"cap", "minus", "star", "eq"})
#: Generator labels include one ("r") outside the schema alphabet below,
#: so dead-label elimination actually fires in the differential runs.
GEN_LABELS = ("p", "q", "r")
ALPHABET = frozenset(DEFAULT_LABELS)


def _random_trees(rng: random.Random, count: int, max_nodes: int = 6):
    # Trees are generated over the schema alphabet: the dead-labels pass
    # is only equivalence-preserving on documents the schema admits.
    return [random_tree(rng, max_nodes, list(DEFAULT_LABELS))
            for _ in range(count)]


def _random_exprs(rng: random.Random, count: int):
    exprs: list = []
    for _ in range(count):
        depth = rng.randint(1, 4)
        if rng.random() < 0.5:
            exprs.append(random_path(rng, depth, ALL_OPERATORS,
                                     labels=GEN_LABELS))
        else:
            exprs.append(random_node(rng, depth, ALL_OPERATORS,
                                     labels=GEN_LABELS))
    return exprs


def _evaluate(tree, expr):
    reference = ReferenceEvaluator(tree)
    if isinstance(expr, PathExpr):
        return reference.path(expr)
    return reference.nodes(expr)


# ------------------------------------------------------------ differential


FULL_PASSES = get_pipeline("full").passes


@pytest.mark.parametrize("rewrite_pass", FULL_PASSES,
                         ids=[p.name for p in FULL_PASSES])
def test_each_pass_preserves_semantics(rewrite_pass):
    rng = random.Random(hash(rewrite_pass.name) & 0xFFFF)
    trees = _random_trees(rng, 5)
    for expr in _random_exprs(rng, 60):
        interned = intern_expr(expr)
        rewritten = rewrite_pass.apply(interned, ALPHABET, [0])
        if rewritten is interned:
            continue
        for tree in trees:
            assert _evaluate(tree, rewritten) == _evaluate(tree, interned), \
                (rewrite_pass.name, to_source(interned), to_source(rewritten))


@pytest.mark.parametrize("level", passes.PASS_LEVELS)
def test_pipeline_preserves_semantics(level):
    rng = random.Random(hash(level) & 0xFFFF)
    trees = _random_trees(rng, 5)
    for expr in _random_exprs(rng, 80):
        result = canonical(expr, level=level, alphabet=ALPHABET)
        for tree in trees:
            assert _evaluate(tree, result) == _evaluate(tree, expr), \
                (level, to_source(intern_expr(expr)), to_source(result))


@pytest.mark.parametrize("level", passes.PASS_LEVELS)
def test_pipeline_is_idempotent_by_identity(level):
    rng = random.Random(20070 + len(level))
    for expr in _random_exprs(rng, 80):
        once = canonical(expr, level=level, alphabet=ALPHABET)
        assert canonical(once, level=level, alphabet=ALPHABET) is once


def test_pipeline_never_grows_the_expression():
    rng = random.Random(717)
    for expr in _random_exprs(rng, 80):
        interned = intern_expr(expr)
        result = canonical(interned, level="full", alphabet=ALPHABET)
        assert cost(result) <= cost(interned)


# ------------------------------------------------------------- round-trip


def _corpus() -> list[str]:
    here = Path(__file__).resolve().parent
    pattern = re.compile(r"parse_(?:path|node)\(\s*[\"']([^\"'\\\n]+)[\"']")
    sources: set[str] = set()
    for directory in (here, here.parent / "benchmarks"):
        for path in sorted(directory.glob("*.py")):
            sources.update(pattern.findall(path.read_text(encoding="utf-8")))
    assert len(sources) > 50  # the suites are full of expression literals
    return sorted(sources)


def test_canonical_forms_round_trip_through_the_printer():
    checked = 0
    for source in _corpus():
        try:
            expr = parse_path(source)
        except Exception:  # noqa: BLE001 - node expression or template
            try:
                expr = parse_node(source)
            except Exception:  # noqa: BLE001 - not a real literal (f-string
                continue       # fragment, deliberately-bad syntax, ...)
        for level in passes.PASS_LEVELS:
            root = canonical(expr, level=level)
            reparse = parse_path if isinstance(root, PathExpr) else parse_node
            again = intern_expr(reparse(to_source(root)))
            assert again is root, (level, source, to_source(root))
            assert intern_key(again) == intern_key(root)
        checked += 1
    assert checked > 50


# ------------------------------------------------------------ unit rewrites


def _canon_path(source: str, level: str = "full",
                alphabet: frozenset | None = None) -> PathExpr:
    return canonical(parse_path(source), level=level, alphabet=alphabet)


def _canon_node(source: str, level: str = "full",
                alphabet: frozenset | None = None) -> NodeExpr:
    return canonical(parse_node(source), level=level, alphabet=alphabet)


class TestAlgebraicLaws:
    def test_union_duplicates_collapse(self):
        assert _canon_path("down[p] union down[p]") is _canon_path("down[p]")

    def test_union_is_order_insensitive(self):
        assert _canon_path("down[p] union up") is _canon_path("up union down[p]")

    def test_star_of_step_is_closure(self):
        assert _canon_path("down*") is intern_expr(AxisClosure(Axis.DOWN))
        assert _canon_path("(down*)*") is intern_expr(AxisClosure(Axis.DOWN))

    def test_star_absorbs_identity_member(self):
        assert _canon_path("(down union .)*") is \
            intern_expr(AxisClosure(Axis.DOWN))

    def test_closure_composition_collapses(self):
        assert _canon_path("down*/down*") is intern_expr(AxisClosure(Axis.DOWN))

    def test_filter_merge(self):
        assert _canon_path("down[p][q]") is _canon_path("down[p and q]")

    def test_trailing_identity_filter_fuses(self):
        assert _canon_path("down/.[p]") is _canon_path("down[p]")

    def test_self_equality_is_some_path(self):
        # α ≈ α holds exactly where α has a target: eq(α, α) → ⟨α⟩.
        assert _canon_node("eq(down, down)") is _canon_node("<down>")

    def test_contradiction_is_false(self):
        assert _canon_node("p and not p") is FALSE

    def test_empty_path_propagates(self):
        assert is_empty_path(_canon_path("down except down"))
        assert is_empty_path(_canon_path("up/(down except down)/down"))
        assert _canon_node("<down except down>") is FALSE

    def test_some_path_with_identity_is_top(self):
        assert _canon_node("<down union .>") is intern_expr(parse_node("true"))

    def test_union_member_subsumed_by_closure(self):
        assert _canon_path("down union down*") is \
            intern_expr(AxisClosure(Axis.DOWN))

    def test_intersect_with_superset_drops_it(self):
        assert _canon_path("down intersect down*") is \
            intern_expr(AxisStep(Axis.DOWN))

    def test_complement_of_subsumed_is_empty(self):
        assert is_empty_path(_canon_path("down except down*"))


class TestDeadLabels:
    def test_label_outside_alphabet_is_false(self):
        sigma = frozenset({"p"})
        assert _canon_node("q", alphabet=sigma) is FALSE
        assert is_empty_path(_canon_path("down[q]", alphabet=sigma))

    def test_alphabet_labels_survive(self):
        sigma = frozenset({"p"})
        assert _canon_node("p", alphabet=sigma) is intern_expr(parse_node("p"))

    def test_without_alphabet_nothing_fires(self):
        assert _canon_node("q") is intern_expr(parse_node("q"))


class TestCostGuard:
    def test_canonical_constants_priced_as_atoms(self):
        # ``down except down*`` (4 nodes) collapses to ``.[false]``
        # (4 nodes) only because the canonical empty is priced as one
        # atom — the guard must not block the emptiness funnel.
        assert cost(EMPTY_PATH) == (1, 1)
        assert cost(FALSE) == (1, 1)
        assert is_empty_path(_canon_path("down except down*"))

    def test_levels_are_memoized_independently(self):
        expr = parse_path("down[p and p] union down[p and p]")
        basic = canonical(expr, level="basic")
        full = canonical(expr, level="full")
        assert size(full) <= size(basic)
        assert canonical(expr, level="basic") is basic
        assert canonical(expr, level="full") is full


class TestStats:
    def test_canonical_with_stats_reports_node_counts(self):
        expr = parse_path("down[p] union down[p] union down")
        result, stats = canonical_with_stats(expr)
        assert stats.level == "full"
        assert stats.nodes_before >= stats.nodes_after
        assert stats.nodes_after == size(result)
        assert "normalize" in stats.per_pass

    def test_session_default_is_adjustable(self):
        previous = passes.set_default_pipeline("basic")
        try:
            assert passes.default_pipeline() == "basic"
            expr = parse_node("p and not p")
            assert canonical(expr) is not FALSE  # basic keeps it
            assert canonical(expr, level="full") is FALSE
        finally:
            passes.set_default_pipeline(previous)


class TestUnionHelpers:
    def test_members_flatten_nested_unions(self):
        members = union_members(parse_path("(down union up) union down"))
        assert [to_source(m) for m in members] == ["down", "up", "down"]

    def test_rebuild_of_empty_list_is_the_empty_path(self):
        assert rebuild_union([]) is EMPTY_PATH


class TestOptimizeDivergenceRegression:
    """`simplify_union` used to keep private flatten/rebuild helpers whose
    output diverged from the normalizer's canonical member order and kept
    syntactic duplicates; it now goes through the shared pipeline."""

    def test_permuted_unions_simplify_identically(self):
        from repro.analysis.optimize import simplify_union

        left = simplify_union(parse_path("down[p] union up union down"),
                              method="bounded", max_nodes=4)
        right = simplify_union(parse_path("down union up union down[p]"),
                               method="bounded", max_nodes=4)
        assert intern_expr(left) is intern_expr(right)

    def test_duplicate_members_drop_without_engine_calls(self):
        from repro import obs
        from repro.analysis.optimize import simplify_union

        query = parse_path("up[q] union up[q]")
        with obs.record("dedupe") as recording:
            simplified = simplify_union(query, method="bounded", max_nodes=4)
        assert to_source(simplified) == "up[q]"
        counters = recording.to_run_record().to_dict()["counters"]
        assert not any(name.startswith("dispatch.") for name in counters)
