"""Tests for the bounded-search engines and the top-level analysis API."""

import random

import pytest

from repro.analysis import (
    Verdict,
    check_containment,
    contains,
    equivalent,
    node_satisfiable,
    path_satisfiable,
    random_witness_search,
    relevant_alphabet,
    satisfiable,
)
from repro.edtd import DTD, book_edtd
from repro.semantics import evaluate_nodes, evaluate_path
from repro.xpath import parse_node, parse_path


class TestNodeSatisfiable:
    def test_witness_is_minimal_and_valid(self):
        result = node_satisfiable(parse_node("p and <down[q and <down>]>"))
        assert result
        assert result.witness.size == 3  # minimal: p -> q -> leaf
        assert result.witness_node in evaluate_nodes(
            result.witness, parse_node("p and <down[q and <down>]>"))

    def test_unsat_within_bound(self):
        result = node_satisfiable(parse_node("p and not p"), max_nodes=3)
        assert not result
        assert result.verdict is Verdict.NO_WITNESS_WITHIN_BOUND
        assert not result.conclusive
        assert result.explored_up_to == 3

    def test_alphabet_includes_fresh_label(self):
        # ¬p is satisfiable only with a non-p label available.
        result = node_satisfiable(parse_node("not p"))
        assert result
        assert result.witness.label(result.witness_node) != "p"

    def test_relevant_alphabet(self):
        assert relevant_alphabet(parse_node("p and q")) == ["p", "q", "z"]
        book = book_edtd()
        assert relevant_alphabet(parse_node("p"), book) == \
            sorted(book.concrete_labels())

    def test_with_edtd(self):
        book = book_edtd()
        result = node_satisfiable(parse_node("Paragraph"), max_nodes=4,
                                  edtd=book)
        assert result
        assert book.conforms(result.witness)

    def test_trees_checked_accounting(self):
        result = node_satisfiable(parse_node("p"), max_nodes=2)
        assert result.trees_checked >= 1


class TestPathSatisfiable:
    def test_satisfiable_path(self):
        result = path_satisfiable(parse_path("down[p]/down[q]"))
        assert result
        relation = evaluate_path(result.witness, parse_path("down[p]/down[q]"))
        assert relation

    def test_empty_path(self):
        result = path_satisfiable(parse_path("down[p and not p]"), max_nodes=3)
        assert not result


class TestContainment:
    @pytest.mark.parametrize("alpha, beta, contained", [
        ("down[p]", "down", True),
        ("down", "down[p]", False),
        ("down/down", "down+", True),
        ("down*", "down* union up", True),
        ("down* intersect down/down", "down/down", True),
        ("following", None, None),  # placeholder, skipped below
    ])
    def test_check_containment(self, alpha, beta, contained):
        if beta is None:
            pytest.skip("placeholder row")
        result = check_containment(parse_path(alpha), parse_path(beta),
                                   max_nodes=4)
        assert result.contained == contained

    def test_counterexample_decodes(self):
        result = check_containment(parse_path("down*"), parse_path("down"),
                                   max_nodes=4)
        assert not result.contained
        tree = result.counterexample
        d, e = result.counterexample_pair
        assert e in evaluate_path(tree, parse_path("down*")).get(d, ())
        assert e not in evaluate_path(tree, parse_path("down")).get(d, frozenset())

    def test_edtd_restricted_containment(self):
        schema = DTD({"a": "(a | b)*", "b": "eps"}, root="a")
        alpha = parse_path("down*[b]/down")
        beta = parse_path("down[a and not a]")
        unrestricted = check_containment(alpha, beta, max_nodes=4)
        assert not unrestricted.contained
        restricted = check_containment(alpha, beta, max_nodes=4, edtd=schema)
        assert restricted.contained


class TestDispatcher:
    def test_downward_cap_goes_conclusive(self):
        result = satisfiable(parse_node("<down[p] intersect down[q]>"))
        assert result.verdict is Verdict.UNSATISFIABLE
        assert result.conclusive

    def test_non_downward_goes_to_automata(self):
        # Outside CoreXPath↓(∩), but inside CoreXPath(*, ≈): since the
        # 2ATA emptiness engine landed this is decided conclusively
        # instead of falling through to the bounded search.
        result = satisfiable(parse_node("<up> and not <up>"), max_nodes=3)
        assert result.verdict is Verdict.UNSATISFIABLE
        assert result.conclusive

    def test_non_downward_forced_bounded_is_inconclusive(self):
        result = satisfiable(parse_node("<up> and not <up>"), max_nodes=3,
                             method="bounded")
        assert result.verdict is Verdict.NO_WITNESS_WITHIN_BOUND

    def test_method_expspace_rejects_bad_fragment(self):
        with pytest.raises(ValueError):
            satisfiable(parse_node("<up>"), method="expspace")

    def test_method_bounded_forces_search(self):
        result = satisfiable(parse_node("p and not p"), method="bounded",
                             max_nodes=3)
        assert result.verdict is Verdict.NO_WITNESS_WITHIN_BOUND

    def test_unknown_method(self):
        with pytest.raises(ValueError):
            satisfiable(parse_node("p"), method="magic")

    def test_contains_dispatch_conclusive(self):
        result = contains(parse_path("down* intersect down"), parse_path("down"))
        assert result.contained and result.conclusive

    def test_contains_counterexample_through_reduction(self):
        result = contains(parse_path("down*"), parse_path("down"))
        assert not result.contained
        tree = result.counterexample
        d, e = result.counterexample_pair
        assert e in evaluate_path(tree, parse_path("down*")).get(d, frozenset())

    def test_equivalent(self):
        a = parse_path("down/down*")
        b = parse_path("down*/down")
        result = equivalent(a, b)
        assert result.contained and result.conclusive
        result2 = equivalent(parse_path("down"), parse_path("down*"))
        assert not result2.contained


class TestRandomSearch:
    def test_finds_deep_witnesses(self):
        # Needs a chain of 5 p's — beyond the exhaustive engine's default.
        phi = parse_node("p and <down[p and <down[p and <down[p]>]>]>")
        rng = random.Random(123)
        result = random_witness_search(phi, rng, attempts=3000, max_nodes=10)
        assert result
        assert result.witness_node in evaluate_nodes(result.witness, phi)

    def test_reports_failure(self):
        phi = parse_node("p and not p")
        rng = random.Random(124)
        result = random_witness_search(phi, rng, attempts=50)
        assert not result
        assert result.trees_checked == 50
