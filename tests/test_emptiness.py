"""Tests for 2ATA emptiness (Theorem 10) and the ``automata`` engine.

Three layers:

* unit tests of :func:`repro.automata.emptiness.decide_emptiness` on
  hand-picked formulas with known verdicts;
* the engine contract — admission, conclusiveness, runtime declines,
  telemetry;
* differential sweeps against the bounded search over random
  CoreXPath(*, ≈) families: wherever both engines are conclusive the
  verdicts must agree, and every SAT witness must actually satisfy the
  formula under the reference semantics (``Plan.run``).
"""

from __future__ import annotations

import random

import pytest

from repro.analysis import contains, satisfiable
from repro.analysis.automata_engine import AutomataEngine
from repro.analysis.problems import Problem, ProblemKind, Verdict
from repro.automata import build_twoata, decide_emptiness
from repro.semantics import TreeContext, compile_plan
from repro.xpath import parse_node

from .helpers import random_node, random_path, relation_as_pairs

#: CoreXPath(*, ≈): transitive closure and path equality, no ∩ / ∖.
STAR_EQ = frozenset({"star", "eq"})


class TestDecideEmptiness:
    UNSAT = [
        "p and not p",
        "<up> and not <up>",
        "p and not <down*[p]>",
        "<down> and not <down[p]> and not <down[not p]>",
    ]
    SAT = [
        "p",
        "p and <down[q]>",
        "<up[q]> and p",
        "not <up> and <down*[q and not <down>]>",
        "<left> and <right>",
    ]

    @pytest.mark.parametrize("source", UNSAT)
    def test_unsatisfiable_formulas_give_empty(self, source):
        result = decide_emptiness(build_twoata(parse_node(source)))
        assert result.empty
        assert result.witness is None

    @pytest.mark.parametrize("source", SAT)
    def test_satisfiable_formulas_give_verified_witness(self, source):
        phi = parse_node(source)
        result = decide_emptiness(build_twoata(phi))
        assert not result.empty
        assert compile_plan(phi).run_single(TreeContext(result.witness))

    def test_result_carries_search_telemetry(self):
        result = decide_emptiness(build_twoata(parse_node("p")))
        assert result.entries > 0
        assert result.contexts > 0
        assert result.game_positions > 0


class TestAutomataEngine:
    def test_registered_between_expspace_and_bounded(self):
        from repro.analysis import default_registry
        engines = {e.name: e for e in
                   default_registry().candidates(
                       Problem(ProblemKind.SATISFIABILITY,
                               phi=parse_node("p")))}
        automata = engines["automata"]
        assert automata.conclusive
        assert engines["expspace"].cost_hint < automata.cost_hint
        assert automata.cost_hint < engines["bounded"].cost_hint

    def test_rejects_schema_and_foreign_fragments(self):
        from repro.edtd import DTD
        engine = AutomataEngine()
        with_schema = Problem(ProblemKind.SATISFIABILITY,
                              phi=parse_node("p"),
                              edtd=DTD({"p": "p*"}, root="p"))
        assert not engine.admits(with_schema)
        outside = Problem(ProblemKind.SATISFIABILITY,
                          phi=parse_node("<down except down[p]>"))
        assert not engine.admits(outside)

    def test_conclusive_unsat_where_bounded_gives_up(self):
        # Semantically (not syntactically) unsatisfiable: a grandparent
        # implies a parent.  The rewrite pipeline cannot collapse it, so
        # the ↑ axes reach dispatch and select the automata engine.
        result = satisfiable(parse_node("<up/up> and not <up>"),
                             max_nodes=3, stats=True)
        assert result.verdict is Verdict.UNSATISFIABLE
        assert result.conclusive
        assert result.stats["meta"]["engine"] == "automata"

    def test_emptiness_counters_land_in_run_records(self):
        result = satisfiable(parse_node("<up/up> and not <up>"), stats=True)
        counters = result.stats["counters"]
        assert counters["twoata.emptiness.states"] > 0
        assert counters["twoata.emptiness.bases"] > 0
        assert counters["twoata.emptiness.game_nodes"] > 0
        assert counters["twoata.emptiness.games_solved"] == 1
        assert counters["dispatch.automata"] == 1

    def test_saturation_phase_profile_lands_in_run_records(self):
        result = satisfiable(parse_node("<up/up> and not <up>"), stats=True)
        counters = result.stats["counters"]
        assert counters["twoata.emptiness.rounds"] >= 1
        assert counters["parity.games_solved"] >= 1
        assert counters["parity.recursions"] >= 1
        assert 0.0 <= result.stats["gauges"][
            "twoata.emptiness.eval_memo_hit_rate"] <= 1.0
        # Latency histograms with quantile summaries (per saturation round
        # and for the whole dispatch).
        histograms = result.stats["histograms"]
        rounds = histograms["twoata.emptiness.round_s"]
        assert rounds["count"] == counters["twoata.emptiness.rounds"]
        assert rounds["p50"] is not None and rounds["p99"] is not None
        assert rounds["p50"] <= rounds["p99"]
        assert histograms["dispatch.solve_s"]["count"] == 1
        # Phase spans nest under the emptiness solve.
        from repro.obs import RunRecord

        spans = {span["name"]
                 for span in RunRecord.from_dict(result.stats).iter_spans()}
        assert {"twoata.emptiness.saturate", "twoata.emptiness.game_build",
                "twoata.emptiness.game_solve"} <= spans

    def test_emptiness_result_reports_saturation_profile(self):
        result = decide_emptiness(
            build_twoata(parse_node("<up/up> and not <up>")))
        assert result.rounds >= 1
        assert result.evals > 0

    def test_too_many_states_declines(self):
        engine = AutomataEngine()
        engine_small = AutomataEngine()
        engine_small.max_states = 1
        problem = Problem(ProblemKind.SATISFIABILITY, phi=parse_node("p"))
        assert engine.solve(problem) is not None
        assert engine_small.solve(problem) is None


class TestDifferentialAgainstBounded:
    """Random CoreXPath(*, ≈) sweeps: automata vs bounded search.

    The bounded engine is conclusive only on the SAT side, so agreement
    means: a bounded witness forces an automata SAT, an automata UNSAT
    forces a bounded give-up, and both engines' verdicts coincide
    byte-for-byte whenever both are conclusive.
    """

    def test_node_satisfiability_sweep(self):
        rng = random.Random(7)
        engine = AutomataEngine()
        decided = 0
        for _ in range(60):
            phi = random_node(rng, 2, STAR_EQ)
            problem = Problem(ProblemKind.SATISFIABILITY, phi=phi)
            assert engine.admits(problem)
            result = engine.solve(problem)
            if result is None:  # guards tripped: dispatch falls to bounded
                continue
            decided += 1
            assert result.conclusive
            bounded = satisfiable(phi, method="bounded", max_nodes=4)
            if result.verdict is Verdict.SATISFIABLE:
                nodes = compile_plan(phi).run_single(
                    TreeContext(result.witness))
                assert result.witness_node in nodes
            else:
                assert bounded.verdict is Verdict.NO_WITNESS_WITHIN_BOUND
            if bounded.verdict is Verdict.SATISFIABLE:
                assert result.verdict is Verdict.SATISFIABLE
        assert decided >= 40

    def test_containment_sweep(self):
        rng = random.Random(11)
        engine = AutomataEngine()
        decided = 0
        for _ in range(20):
            alpha = random_path(rng, 2, STAR_EQ)
            beta = random_path(rng, 2, STAR_EQ)
            problem = Problem(ProblemKind.CONTAINMENT,
                              alpha=alpha, beta=beta)
            assert engine.admits(problem)
            result = engine.solve(problem)
            if result is None:
                continue
            decided += 1
            assert result.conclusive
            bounded = contains(alpha, beta, method="bounded", max_nodes=4)
            if result.verdict is Verdict.SATISFIABLE:
                rel_a, rel_b = compile_plan(alpha, beta).run(
                    TreeContext(result.counterexample))
                pair = result.counterexample_pair
                assert pair in relation_as_pairs(rel_a)
                assert pair not in relation_as_pairs(rel_b)
            else:
                assert bounded.verdict is not Verdict.SATISFIABLE
            if bounded.verdict is Verdict.SATISFIABLE:
                assert result.verdict is Verdict.SATISFIABLE
        assert decided >= 10
