"""Tests for extended path automata (§4): Lemmas 15, 16, 17."""

import random

import pytest

from repro.automata import (
    EPA,
    FreshLabels,
    LetNF,
    NFEvaluator,
    NormalFormError,
    intersect_epas,
    node_to_let_nf,
    path_to_epa,
)
from repro.automata.epa import environment_size, nf_substitute_label
from repro.automata.nf import NFAnd, NFLabel, NFNot, NFTop
from repro.semantics import evaluate_nodes, evaluate_path
from repro.trees import random_tree
from repro.xpath import parse_node, parse_path
from repro.xpath.measures import size

from .helpers import random_node, random_path

STAR_CAP = frozenset({"star", "cap"})


class TestLemma15:
    def test_product_state_count(self):
        first = path_to_epa(parse_path("down*"), FreshLabels())
        second = path_to_epa(parse_path("down/down"), FreshLabels())
        product = intersect_epas(first, second, FreshLabels())
        assert product.num_states == first.num_states * second.num_states

    def test_product_relation(self):
        rng = random.Random(51)
        pairs = [
            ("down*", "down/down"),
            ("down*[p]/down*", "down*[q]/down*"),
            ("down/up", "right* union ."),
        ]
        fresh = FreshLabels()
        for left_src, right_src in pairs:
            left = path_to_epa(parse_path(left_src), fresh)
            right = path_to_epa(parse_path(right_src), fresh)
            product = intersect_epas(left, right, fresh)
            expanded = product.expand()
            direct = parse_path(f"({left_src}) intersect ({right_src})")
            for _ in range(10):
                tree = random_tree(rng, 7, ["p", "q"])
                assert NFEvaluator(tree).relation(expanded) == \
                    evaluate_path(tree, direct)


class TestLemma16Paths:
    @pytest.mark.parametrize("source", [
        "down intersect down",
        "down* intersect down/down",
        "(down*[p]/down*) intersect (down*[q]/down*)",
        "down*/up* intersect right*",
        "((down/down) intersect down*) intersect (down[p]/down)",
        "(down union right)* intersect down*",
        "down[<down intersect right*>]",
    ])
    def test_translation_preserves_relation(self, source):
        rng = random.Random(52)
        path = parse_path(source)
        epa = path_to_epa(path, FreshLabels())
        expanded = epa.expand()
        for _ in range(8):
            tree = random_tree(rng, 7, ["p", "q"])
            assert NFEvaluator(tree).relation(expanded) == \
                evaluate_path(tree, path), source

    def test_random_star_cap_paths(self):
        rng = random.Random(53)
        for _ in range(25):
            path = random_path(rng, 3, STAR_CAP)
            epa = path_to_epa(path, FreshLabels())
            tree = random_tree(rng, 6, ["p", "q"])
            assert NFEvaluator(tree).relation(epa.expand()) == \
                evaluate_path(tree, path)

    def test_state_bound_of_lemma16(self):
        # |π|_S ≤ 2^|α| — very loose; check it holds on a nested family.
        # (depth 3 takes minutes and ~40k states; the benchmark covers it.)
        for depth in (1, 2):
            from repro.succinctness import cap_tower
            path = cap_tower(depth)
            epa = path_to_epa(path, FreshLabels())
            assert epa.num_states <= 2 ** size(path)

    def test_outside_fragment_rejected(self):
        with pytest.raises(NormalFormError):
            path_to_epa(parse_path("down except up"), FreshLabels())


class TestLemma16Nodes:
    @pytest.mark.parametrize("source", [
        "<down intersect down[p]>",
        "not <(down*[p]) intersect (down*[q])>",
        "<((down/down) intersect down*)[p]> and q",
        "eq(down*, down/down)",
    ])
    def test_translation_preserves_nodes(self, source):
        rng = random.Random(54)
        node = parse_node(source)
        letnf = node_to_let_nf(node, FreshLabels())
        expanded = letnf.expand()
        for _ in range(8):
            tree = random_tree(rng, 7, ["p", "q"])
            assert NFEvaluator(tree).nodes(expanded) == \
                evaluate_nodes(tree, node), source

    def test_random_nodes(self):
        rng = random.Random(55)
        for _ in range(20):
            node = random_node(rng, 2, STAR_CAP | frozenset({"eq"}))
            letnf = node_to_let_nf(node, FreshLabels())
            tree = random_tree(rng, 6, ["p", "q"])
            assert NFEvaluator(tree).nodes(letnf.expand()) == \
                evaluate_nodes(tree, node)


class TestLemma17BoundedDepth:
    def test_bounded_depth_is_polynomial(self):
        """Lemma 17: with intersection depth fixed, EPA sizes grow
        polynomially — verified as: doubling the input length scales the
        size by a bounded factor (no exponential doubling)."""
        from repro.succinctness import cap_chain

        sizes = {}
        for length in (2, 4, 8):
            epa = path_to_epa(cap_chain(length), FreshLabels())
            sizes[length] = epa.size()
        assert sizes[4] / sizes[2] < 4
        assert sizes[8] / sizes[4] < 4  # linear, not exponential

    def test_nested_depth_squares(self):
        """Lemma 16's regime: each extra nesting level multiplies the state
        count roughly by itself (the |π₁|_S · |π₂|_S product)."""
        from repro.succinctness import cap_tower

        states = [
            path_to_epa(cap_tower(depth), FreshLabels()).num_states
            for depth in (1, 2)
        ]
        assert states[1] > states[0] ** 2 / 4


class TestEnvironments:
    def test_substitution(self):
        expr = NFAnd(NFLabel("a"), NFNot(NFLabel("b")))
        out = nf_substitute_label(expr, "b", NFTop())
        assert out == NFAnd(NFLabel("a"), NFNot(NFTop()))

    def test_duplicate_binding_rejected(self):
        letnf = LetNF(NFLabel("a"), (("a", NFTop()), ("a", NFTop())))
        with pytest.raises(ValueError):
            letnf.expand()

    def test_forward_references_resolve(self):
        # First binding's definition uses the second binding's label.
        letnf = LetNF(
            NFLabel("one"),
            (("one", NFNot(NFLabel("two"))), ("two", NFTop())),
        )
        assert letnf.expand() == NFNot(NFTop())

    def test_sizes(self):
        letnf = LetNF(NFLabel("a"), (("a", NFAnd(NFTop(), NFTop())),))
        assert environment_size(letnf.environment) == 4
        assert letnf.size() == 5
