"""Tests for Lemma 20: simple-path instantiation for CoreXPath↓(∩)."""

import random

import pytest

from repro.analysis import instantiate, intersect_simple, simple_to_path, suffixes
from repro.analysis.simplepaths import DOWN, DOWN_STAR
from repro.semantics import evaluate_path
from repro.trees import random_tree
from repro.xpath import parse_path
from repro.xpath.ast import Label, Top
from repro.xpath.builders import union_all
from repro.xpath.measures import size

from .helpers import random_path, relation_as_pairs
from repro.xpath.ast import Axis


def assert_inst_equivalent(source, rng, trials=12):
    path = parse_path(source)
    members = instantiate(path)
    union = union_all([simple_to_path(member) for member in members])
    for _ in range(trials):
        tree = random_tree(rng, 7, ["p", "q", "r"])
        assert evaluate_path(tree, path) == evaluate_path(tree, union), source
    return members


class TestInstantiate:
    def test_paper_example(self):
        """§5's worked example: inst(↓*[q]/↓* ∩ ↓*[r]/↓*) has exactly the
        four interleavings."""
        path = parse_path("down*[q]/down* intersect down*[r]/down*")
        members = instantiate(path)
        assert len(members) == 4
        q, r = Label("q"), Label("r")
        assert (DOWN_STAR, q, DOWN_STAR, r, DOWN_STAR) in members
        assert (DOWN_STAR, r, DOWN_STAR, q, DOWN_STAR) in members

    @pytest.mark.parametrize("source", [
        "down",
        "down*",
        "down[p]",
        "down*[p]",
        ".",
        "down/down[p]",
        "down union down*",
        "down intersect down*",
        "down/down intersect down*",
        "down*[q]/down* intersect down*[r]/down*",
        "(down[p] union down*)/down intersect down/down*",
        "(down intersect down[p]) intersect down[q]",
    ])
    def test_equivalence(self, source):
        rng = random.Random(81)
        assert_inst_equivalent(source, rng)

    def test_random_downward_cap(self):
        rng = random.Random(82)
        for _ in range(25):
            path = random_path(rng, 3, frozenset({"cap"}), axes=(Axis.DOWN,))
            members = instantiate(path)
            union = union_all([simple_to_path(member) for member in members])
            tree = random_tree(rng, 6, ["p", "q"])
            assert evaluate_path(tree, path) == evaluate_path(tree, union)

    def test_member_length_bound(self):
        """Lemma 20(ii): each member has length ≤ 4·|α|."""
        rng = random.Random(83)
        for _ in range(30):
            path = random_path(rng, 3, frozenset({"cap"}), axes=(Axis.DOWN,))
            for member in instantiate(path):
                assert len(member) <= 4 * size(path)

    def test_upward_axis_rejected(self):
        with pytest.raises(ValueError):
            instantiate(parse_path("up"))

    def test_empty_intersection(self):
        # ↓ ∩ . : a child equal to self — impossible; inst is empty.
        assert instantiate(parse_path("down intersect .")) == frozenset()


class TestIntSimple:
    def test_base_cases(self):
        assert intersect_simple((), ()) == {()}
        assert intersect_simple((), (DOWN,)) == frozenset()
        assert intersect_simple((), (DOWN_STAR,)) == {()}
        p = Label("p")
        assert intersect_simple((), (p,)) == {(p,)}

    def test_down_meets_star(self):
        result = intersect_simple((DOWN,), (DOWN_STAR,))
        assert result == {(DOWN,)}

    def test_symmetry(self):
        a = (DOWN, Label("p"))
        b = (DOWN_STAR, Label("q"))
        rng = random.Random(84)
        left = union_all([simple_to_path(m) for m in intersect_simple(a, b)])
        right = union_all([simple_to_path(m) for m in intersect_simple(b, a)])
        for _ in range(10):
            tree = random_tree(rng, 6, ["p", "q"])
            assert evaluate_path(tree, left) == evaluate_path(tree, right)


class TestSuffixes:
    def test_all_suffixes(self):
        member = (DOWN, Label("p"), DOWN_STAR)
        got = list(suffixes(member))
        assert got == [member, (Label("p"), DOWN_STAR), (DOWN_STAR,), ()]

    def test_epsilon_simple_path(self):
        # ε renders as .[⊤] and denotes the identity.
        from repro.trees import XMLTree
        tree = XMLTree.build(("a", ["b"]))
        rel = evaluate_path(tree, simple_to_path(()))
        assert relation_as_pairs(rel) == {(0, 0), (1, 1)}
