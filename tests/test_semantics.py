"""Tests for the Table II semantics and the §2.2/§7 extensions."""

import random

import pytest

from repro.semantics import (
    Evaluator,
    evaluate_nodes,
    evaluate_path,
    holds_at,
    holds_somewhere,
    path_contained_on,
    relation_pairs,
)
from repro.semantics.evaluator import UnboundVariableError
from repro.trees import XMLTree, random_tree
from repro.xpath import parse_node, parse_path
from repro.xpath.builders import following, preceding

from .helpers import relation_as_pairs


@pytest.fixture
def tree():
    #        0:a
    #      /     \
    #    1:b      4:a
    #   /   \       \
    #  2:c  3:b     5:c
    return XMLTree.build(("a", [("b", ["c", "b"]), ("a", ["c"])]))


class TestAxes:
    def test_down(self, tree):
        assert relation_as_pairs(evaluate_path(tree, parse_path("down"))) == {
            (0, 1), (0, 4), (1, 2), (1, 3), (4, 5),
        }

    def test_up_is_converse_of_down(self, tree):
        down = relation_as_pairs(evaluate_path(tree, parse_path("down")))
        up = relation_as_pairs(evaluate_path(tree, parse_path("up")))
        assert up == {(b, a) for (a, b) in down}

    def test_siblings(self, tree):
        assert relation_as_pairs(evaluate_path(tree, parse_path("right"))) == {
            (1, 4), (2, 3),
        }
        assert relation_as_pairs(evaluate_path(tree, parse_path("left"))) == {
            (4, 1), (3, 2),
        }

    def test_axis_closures_are_reflexive(self, tree):
        for axis in ("down*", "up*", "left*", "right*"):
            relation = evaluate_path(tree, parse_path(axis))
            assert all(n in relation[n] for n in tree.nodes)

    def test_down_star(self, tree):
        assert evaluate_path(tree, parse_path("down*"))[0] == frozenset(tree.nodes)
        assert evaluate_path(tree, parse_path("down*"))[1] == {1, 2, 3}

    def test_self(self, tree):
        assert relation_as_pairs(evaluate_path(tree, parse_path("."))) == {
            (n, n) for n in tree.nodes
        }


class TestCompositeOperators:
    def test_seq(self, tree):
        assert relation_as_pairs(evaluate_path(tree, parse_path("down/down"))) == {
            (0, 2), (0, 3), (0, 5),
        }

    def test_union(self, tree):
        got = evaluate_path(tree, parse_path("down union up"))
        left = evaluate_path(tree, parse_path("down"))
        right = evaluate_path(tree, parse_path("up"))
        assert relation_as_pairs(got) == \
            relation_as_pairs(left) | relation_as_pairs(right)

    def test_filter_restricts_targets(self, tree):
        got = relation_as_pairs(evaluate_path(tree, parse_path("down[b]")))
        assert got == {(0, 1), (1, 3)}

    def test_intersect(self, tree):
        got = evaluate_path(tree, parse_path("down+ intersect down/down"))
        assert relation_as_pairs(got) == {(0, 2), (0, 3), (0, 5)}

    def test_complement(self, tree):
        got = evaluate_path(tree, parse_path("down* except down+"))
        assert relation_as_pairs(got) == {(n, n) for n in tree.nodes}

    def test_general_star(self, tree):
        # (↓[b])* : reflexive closure of b-children steps.
        got = relation_as_pairs(evaluate_path(tree, parse_path("(down[b])*")))
        assert (0, 3) in got          # 0 -> 1 -> 3, both b-steps
        assert (0, 0) in got          # reflexive
        assert (0, 2) not in got      # 2 is labeled c

    def test_star_of_mixed_path(self, tree):
        everywhere = evaluate_path(tree, parse_path("(down union up)*"))
        assert everywhere[3] == frozenset(tree.nodes)


class TestNodeExpressions:
    def test_label_top(self, tree):
        assert evaluate_nodes(tree, parse_node("a")) == {0, 4}
        assert evaluate_nodes(tree, parse_node("true")) == frozenset(tree.nodes)
        assert evaluate_nodes(tree, parse_node("false")) == frozenset()

    def test_boolean_connectives(self, tree):
        assert evaluate_nodes(tree, parse_node("not b")) == {0, 2, 4, 5}
        assert evaluate_nodes(tree, parse_node("b and <down>")) == {1}
        assert evaluate_nodes(tree, parse_node("a or b")) == {0, 1, 3, 4}

    def test_some_path(self, tree):
        assert evaluate_nodes(tree, parse_node("<down[c]>")) == {1, 4}
        assert evaluate_nodes(tree, parse_node("<up>")) == {1, 2, 3, 4, 5}

    def test_path_equality_is_existential(self, tree):
        # ⟨↓⟩-targets shared between down and down[b].
        assert evaluate_nodes(tree, parse_node("eq(down, down[b])")) == {0, 1}
        # loop: eq(α, .) — some α-path returns to the start.
        assert evaluate_nodes(tree, parse_node("eq(down/up, .)")) == {0, 1, 4}

    def test_helpers(self, tree):
        assert holds_somewhere(tree, parse_node("c"))
        assert holds_at(tree, parse_node("c"), 2)
        assert not holds_at(tree, parse_node("c"), 0)
        assert path_contained_on(tree, parse_path("down[b]"), parse_path("down"))
        assert not path_contained_on(tree, parse_path("down"), parse_path("down[b]"))

    def test_relation_pairs_helper(self, tree):
        relation = evaluate_path(tree, parse_path("right"))
        assert relation_pairs(relation) == {(1, 4), (2, 3)}


class TestDocumentOrderPaths:
    def test_following_matches_document_order(self, tree):
        got = relation_as_pairs(evaluate_path(tree, following))
        expected = set()
        for n in tree.nodes:
            for m in tree.nodes:
                if m > n and not tree.is_ancestor(n, m):
                    expected.add((n, m))
        assert got == expected

    def test_preceding_is_converse_of_following(self, tree):
        fwd = relation_as_pairs(evaluate_path(tree, following))
        bwd = relation_as_pairs(evaluate_path(tree, preceding))
        assert bwd == {(b, a) for (a, b) in fwd}


class TestForLoops:
    def test_for_loop_intersection_identity(self):
        # "for $i in α return β[. is $i]" ≡ α ∩ β (§2.2).
        rng = random.Random(5)
        alpha = parse_path("down*")
        via_for = parse_path("for $i in down* return down/down[. is $i]")
        direct = parse_path("down* intersect down/down")
        for _ in range(25):
            tree = random_tree(rng, 8, ["p", "q"])
            assert evaluate_path(tree, via_for) == evaluate_path(tree, direct)

    def test_for_loop_semantics_by_hand(self, tree):
        # for $i in down[c] return down: pairs (n, m) with m any child of n,
        # provided n has a c-child.
        got = relation_as_pairs(evaluate_path(
            tree, parse_path("for $i in down[c] return down")))
        assert got == {(1, 2), (1, 3), (4, 5)}

    def test_var_is_needs_binding(self, tree):
        with pytest.raises(UnboundVariableError):
            evaluate_nodes(tree, parse_node(". is $x"))

    def test_explicit_assignment(self, tree):
        assert evaluate_nodes(tree, parse_node(". is $x"), {"x": 3}) == {3}
        got = evaluate_path(tree, parse_path("down[. is $x]"), {"x": 3})
        assert relation_as_pairs(got) == {(1, 3)}

    def test_nested_for_loops(self, tree):
        # for $i in down return (for $j in down[. is $i] return .[. is $j])
        inner = "for $j in down[. is $i] return .[. is $j]"
        path = parse_path(f"for $i in down return ({inner})")
        # $j ranges over down-children equal to $i, and the body returns the
        # current node filtered to equal $j — i.e. nothing (the current node
        # is the parent, never its own child).
        assert evaluate_path(tree, path) == {}


class TestEvaluatorCaching:
    def test_repeated_evaluation_consistent(self, tree):
        evaluator = Evaluator(tree)
        path = parse_path("down*[b]/up")
        assert evaluator.path(path) == evaluator.path(path)

    def test_multilabel_dispatch(self):
        from repro.trees import MultiLabelTree
        tree = MultiLabelTree.build((["p", "q"], [(["p"], [])]))
        assert evaluate_nodes(tree, parse_node("p and q")) == {0}
        assert evaluate_nodes(tree, parse_node("p and not q")) == {1}
