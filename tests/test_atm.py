"""Tests for the alternating Turing machine substrate (§6.1)."""

import pytest

from repro.lowerbounds import (
    ATM,
    LEFT,
    RIGHT,
    all_ones_machine,
    first_symbol_machine,
    parity_machine,
)


class TestValidation:
    def test_overlapping_state_kinds_rejected(self):
        with pytest.raises(ValueError):
            ATM(frozenset({"q"}), frozenset({"q"}), "qa", "qr", "q",
                frozenset({"a"}), frozenset({"a", "_"}), "_", frozenset())

    def test_halting_state_transitions_rejected(self):
        with pytest.raises(ValueError):
            ATM(frozenset({"q"}), frozenset(), "qa", "qr", "q",
                frozenset({"a"}), frozenset({"a", "_"}), "_",
                frozenset({("qa", "a", "q", "a", RIGHT)}))

    def test_blank_must_be_work_symbol(self):
        with pytest.raises(ValueError):
            ATM(frozenset({"q"}), frozenset(), "qa", "qr", "q",
                frozenset({"a"}), frozenset({"a"}), "_", frozenset())


class TestSemantics:
    def test_existential_machine(self):
        machine = first_symbol_machine()
        assert machine.accepts("a", 2)
        assert not machine.accepts("b", 2)
        assert machine.accepts("ab", 4)

    def test_deterministic_machine(self):
        machine = parity_machine()
        assert machine.accepts("11", 4)
        assert machine.accepts("101", 4)
        assert not machine.accepts("100", 4)

    def test_universal_machine(self):
        machine = all_ones_machine()
        assert machine.accepts("111", 4)
        assert not machine.accepts("110", 4)
        assert not machine.accepts("011", 4)

    def test_off_tape_detected(self):
        machine = parity_machine()
        with pytest.raises(ValueError):
            machine.accepts("11", 2)  # blank transition would exit the tape

    def test_word_outside_input_alphabet(self):
        with pytest.raises(ValueError):
            parity_machine().accepts("x", 4)

    def test_word_longer_than_tape(self):
        with pytest.raises(ValueError):
            parity_machine().accepts("0000", 2)

    def test_moves_sorted(self):
        machine = all_ones_machine()
        moves = machine.moves("q0", "1")
        assert moves == sorted(moves)
        assert len(moves) == 2


class TestStrategyTree:
    def test_accepting_tree_has_no_reject(self):
        machine = all_ones_machine()
        tree = machine.strategy_tree("11", 4)
        assert not tree.contains_state("qr")
        assert tree.contains_state("qa")

    def test_rejecting_tree_contains_reject(self):
        machine = all_ones_machine()
        tree = machine.strategy_tree("10", 4)
        assert tree.contains_state("qr")

    def test_existential_picks_single_branch(self):
        machine = first_symbol_machine()
        tree = machine.strategy_tree("a", 2)
        node = tree
        while node.children:
            assert len(node.children) == 1
            node = node.children[0]
        assert node.configuration[0] == "qa"

    def test_universal_keeps_all_branches(self):
        machine = all_ones_machine()
        tree = machine.strategy_tree("11", 4)
        assert len(tree.children) == 2  # continue vs check

    def test_size(self):
        machine = first_symbol_machine()
        assert machine.strategy_tree("a", 2).size() == 2
