"""Tests for the shared §6 encoding helpers."""

import pytest

from repro.lowerbounds.atm import parity_machine
from repro.lowerbounds.encoding import (
    at_most_one_state,
    c_bit,
    d_bit,
    exactly_one_symbol,
    marker_label,
    some_state,
    state_label,
    symbol_label,
    value_equals,
)
from repro.semantics import evaluate_nodes
from repro.trees import MultiLabelTree


def cell(labels):
    return MultiLabelTree.build((list(labels), []))


class TestLabelNamespaces:
    def test_prefixes_disjoint(self):
        assert state_label("1") != symbol_label("1")
        assert c_bit(0) != d_bit(0)
        assert marker_label("L", "q") != marker_label("R", "q")
        assert state_label("x") != marker_label("L", "x")


class TestValueEquals:
    @pytest.mark.parametrize("value, k, bits, expected", [
        (0, 2, [], True),
        (1, 2, ["c0"], True),
        (2, 2, ["c1"], True),
        (3, 2, ["c0", "c1"], True),
        (1, 2, ["c1"], False),
        (0, 2, ["c0"], False),
    ])
    def test_bit_patterns(self, value, k, bits, expected):
        tree = cell(bits)
        formula = value_equals(value, k)
        assert (0 in evaluate_nodes(tree, formula)) == expected

    def test_d_counter_variant(self):
        tree = cell(["d1"])
        assert 0 in evaluate_nodes(tree, value_equals(2, 2, d_bit))
        assert 0 not in evaluate_nodes(tree, value_equals(2, 2, c_bit))


class TestCellWellFormedness:
    def test_exactly_one_symbol(self):
        machine = parity_machine()
        formula = exactly_one_symbol(machine)
        assert 0 in evaluate_nodes(cell([symbol_label("0")]), formula)
        assert 0 not in evaluate_nodes(cell([]), formula)
        assert 0 not in evaluate_nodes(
            cell([symbol_label("0"), symbol_label("1")]), formula)

    def test_at_most_one_state(self):
        machine = parity_machine()
        formula = at_most_one_state(machine)
        assert 0 in evaluate_nodes(cell([]), formula)
        assert 0 in evaluate_nodes(cell([state_label("even")]), formula)
        assert 0 not in evaluate_nodes(
            cell([state_label("even"), state_label("odd")]), formula)

    def test_some_state(self):
        machine = parity_machine()
        formula = some_state(machine)
        assert 0 in evaluate_nodes(cell([state_label("qa")]), formula)
        assert 0 not in evaluate_nodes(cell([symbol_label("0")]), formula)
