"""Tests for the observability layer (repro.obs) and its threading through
the decision procedures."""

import json

import pytest

from repro import obs
from repro.analysis import contains, satisfiable
from repro.analysis.problems import SatResult, Verdict
from repro.obs import RunRecord
from repro.xpath import parse_node, parse_path


class TestSpans:
    def test_disabled_is_noop(self):
        assert obs.active() is None
        assert not obs.is_enabled()
        assert obs.span("anything") is obs.NULL_SPAN
        obs.count("nothing")  # must not raise, must not record anywhere
        obs.gauge("nothing", 1.0)
        obs.note("nothing", "x")

    def test_nesting_structure(self):
        with obs.record("run") as rec:
            with obs.span("outer"):
                with obs.span("inner-a"):
                    pass
                with obs.span("inner-b", label=3):
                    pass
            with obs.span("sibling"):
                pass
        root = rec.root
        assert [c.name for c in root.children] == ["outer", "sibling"]
        outer = root.children[0]
        assert [c.name for c in outer.children] == ["inner-a", "inner-b"]
        assert outer.children[1].attrs == {"label": 3}

    def test_timing_monotonicity(self):
        """Every span duration is non-negative and a parent runs at least
        as long as each child (children are fully nested in time)."""
        with obs.record("run") as rec:
            with obs.span("outer"):
                with obs.span("inner"):
                    sum(range(1000))
        outer = rec.root.children[0]
        inner = outer.children[0]
        assert inner.duration_s >= 0.0
        assert outer.duration_s >= inner.duration_s
        assert rec.root.duration_s >= outer.duration_s

    def test_manual_span_driving(self):
        with obs.record("run") as rec:
            span = obs.span("loop").start()
            span.annotate(items=7)
            span.finish()
        assert rec.root.children[0].attrs == {"items": 7}
        assert rec.root.children[0].duration_s is not None

    def test_exception_unwinds_spans(self):
        with obs.record("run") as rec:
            with pytest.raises(RuntimeError):
                with obs.span("outer"):
                    with obs.span("inner"):
                        raise RuntimeError("boom")
            with obs.span("after"):
                pass
        # "after" must be a sibling of "outer", not nested inside it.
        assert [c.name for c in rec.root.children] == ["outer", "after"]

    def test_unwound_span_finish_does_not_corrupt_the_stack(self):
        """Regression: finishing a span that was already unwound off the
        stack (its parent finished first, e.g. during exception cleanup of
        manually-driven spans) must not pop live entries — that stack
        unbalance used to corrupt the parentage and timings of every later
        span in the recording."""
        with obs.record("run") as rec:
            outer = obs.span("outer").start()
            inner = obs.span("inner").start()
            outer.finish()  # unwinds inner too (exception-path analog)
            inner.finish()  # already off the stack: must be a no-op
            inner.finish()  # double-finish: also a no-op
            with obs.span("after"):
                pass
        assert [c.name for c in rec.root.children] == ["outer", "after"]
        after = rec.root.children[1]
        assert after.duration_s is not None and after.duration_s >= 0.0
        assert rec.root.duration_s >= after.duration_s

    def test_span_started_after_recording_stopped_is_inert(self):
        """A span object that outlives its recording (kept by a generator or
        a worker shutting down) must not attach to the cleared stack or
        raise when driven."""
        with obs.record("run") as rec:
            straggler = obs.span("late")
        straggler.start()  # recording stopped: nothing to attach to
        straggler.finish()
        assert rec.root.children == []
        assert straggler.duration_s is not None  # still timed, just detached


class TestCounters:
    def test_count_and_gauge(self):
        with obs.record("run") as rec:
            obs.count("widgets")
            obs.count("widgets", 4)
            obs.gauge("depth", 2)
            obs.gauge("depth", 9)
        assert rec.counters == {"widgets": 5}
        assert rec.gauges == {"depth": 9}

    def test_counters_reset_between_runs(self):
        with obs.record("first") as first:
            obs.count("widgets", 10)
        with obs.record("second") as second:
            obs.count("gadgets")
        assert first.counters == {"widgets": 10}
        assert second.counters == {"gadgets": 1}
        assert "widgets" not in second.counters

    def test_nested_recordings_innermost_wins(self):
        with obs.record("outer") as outer:
            obs.count("seen")
            with obs.record("inner") as inner:
                obs.count("seen")
        assert outer.counters == {"seen": 1}
        assert inner.counters == {"seen": 1}

    def test_enable_disable_ambient(self):
        recording = obs.enable("ambient-test")
        try:
            obs.count("ambient.hits")
            assert obs.active() is recording
        finally:
            stopped = obs.disable()
        assert stopped is recording
        assert recording.counters == {"ambient.hits": 1}
        assert obs.active() is None


class TestRunRecord:
    def _sample(self) -> RunRecord:
        with obs.record("sample", flavor="test") as rec:
            with obs.span("phase", step=1):
                obs.count("things", 3)
            obs.gauge("level", 4.5)
            rec.note("engine", "bounded")
        return rec.to_run_record()

    def test_json_round_trip(self):
        run = self._sample()
        clone = RunRecord.from_json(run.to_json())
        assert clone == run
        # And through plain dicts (what result.stats carries).
        assert RunRecord.from_dict(json.loads(json.dumps(run.to_dict()))) == run

    def test_schema_version_guard(self):
        data = self._sample().to_dict()
        data["schema_version"] = 99
        with pytest.raises(ValueError):
            RunRecord.from_dict(data)

    def test_iter_spans(self):
        run = self._sample()
        names = [span["name"] for span in run.iter_spans()]
        assert names == ["sample", "phase"]
        assert all(span["duration_s"] is not None for span in run.iter_spans())

    def test_summary_mentions_key_facts(self):
        run = self._sample()
        text = run.summary()
        assert "engine: bounded" in text
        assert "things: 3" in text
        assert "phase" in text


class TestDecisionProcedureStats:
    def test_stats_default_off(self):
        result = satisfiable(parse_node("p"))
        assert result.stats is None

    def test_expspace_eligible_input_reports_expspace(self):
        # CoreXPath↓(∩): dispatched to the complete Figure 2 engine.  The
        # intersection must not simplify away (down[p] ∩ down* would) or
        # the canonical form lands in the patterns fragment instead.
        result = satisfiable(parse_node(
            "<down[p]/down intersect down/down[q]>"), stats=True)
        assert result.verdict is Verdict.SATISFIABLE
        assert result.stats["meta"]["engine"] == "expspace"
        assert result.stats["counters"]["dispatch.expspace"] == 1
        assert result.stats["counters"]["expspace.types_enumerated"] > 0
        run = RunRecord.from_dict(result.stats)
        assert any(s["name"] == "expspace.fixpoint" for s in run.iter_spans())

    def test_bounded_only_input_reports_bounded(self):
        # Forced bounded search (auto dispatch would give the ↑ axis to the
        # automata engine); the point here is the bounded-engine telemetry.
        result = satisfiable(parse_node("<up> and not <up>"),
                             max_nodes=3, stats=True, method="bounded")
        assert result.verdict is Verdict.NO_WITNESS_WITHIN_BOUND
        assert result.stats["meta"]["engine"] == "bounded"
        assert result.stats["counters"]["dispatch.bounded"] == 1
        assert result.stats["counters"]["trees.enumerated"] > 0
        assert result.stats["counters"]["evaluator.calls"] > 0
        run = RunRecord.from_dict(result.stats)
        sizes = [s for s in run.iter_spans() if s["name"] == "bounded.size"]
        assert sizes and all(s["duration_s"] >= 0 for s in sizes)

    def test_contains_stats_meta(self):
        result = contains(parse_path("child::a"), parse_path("descendant::a"),
                          stats=True)
        assert result.contained and result.conclusive
        meta = result.stats["meta"]
        assert meta["command"] == "contains"
        assert meta["verdict"] == "unsatisfiable"
        assert meta["inputs"]["alpha_size"] == 3
        run = RunRecord.from_dict(result.stats)
        with_durations = [s for s in run.iter_spans()
                          if s["duration_s"] is not None]
        assert len(with_durations) >= 3
        assert len(result.stats["counters"]) >= 3

    def test_no_recording_leaks_after_stats_run(self):
        satisfiable(parse_node("p"), stats=True)
        assert obs.active() is None
        assert not obs.is_enabled()

    def test_with_stats_preserves_fields(self):
        result = SatResult(Verdict.UNSATISFIABLE, trees_checked=7)
        tagged = result.with_stats({"name": "x"})
        assert tagged.trees_checked == 7
        assert tagged.stats == {"name": "x"}
        assert result.stats is None
