"""The engine registry: dispatch policy, forcing, decision records."""

from __future__ import annotations

import pytest

from repro.analysis import (
    Problem,
    ProblemKind,
    contains,
    default_registry,
    equivalent,
    plan_and_run,
    satisfiable,
)
from repro.analysis.problems import Verdict
from repro.analysis.registry import Engine, EngineDeclined, EngineRegistry
from repro.semantics import plan_cache_info
from repro.xpath import parse_node, parse_path


class TestDefaultRegistry:
    def test_builtin_engines_are_registered(self):
        names = default_registry().names()
        for expected in ("patterns", "expspace", "automata", "bidirectional",
                         "bounded", "random"):
            assert expected in names

    def test_candidates_ordered_by_cost(self):
        problem = Problem(ProblemKind.SATISFIABILITY, phi=parse_node("p"))
        candidates = default_registry().candidates(problem)
        costs = [engine.cost_hint for engine in candidates]
        assert costs == sorted(costs)
        assert candidates[0].name == "patterns"

    def test_auto_prefers_cheapest_conclusive_engine(self):
        result = satisfiable(parse_node("p"), stats=True)
        assert result.stats["meta"]["engine"] == "patterns"
        decision = result.stats["meta"]["engine_decision"]
        assert decision["chosen"] == "patterns"
        assert [c["name"] for c in decision["candidates"]] == [
            "patterns", "expspace", "automata", "bidirectional", "bounded",
            "random"]

    def test_auto_skips_patterns_outside_its_fragment(self):
        # Negation is outside the tree-pattern fragment but inside the
        # EXPSPACE engine's downward fragment.
        result = satisfiable(parse_node("p and not <down[q]>"), stats=True)
        assert result.stats["meta"]["engine"] == "expspace"
        by_name = {c["name"]: c
                   for c in result.stats["meta"]["engine_decision"]["candidates"]}
        assert by_name["patterns"]["admits"] is False
        assert "error" not in by_name["patterns"]

    def test_auto_falls_back_when_fragment_not_admitted(self):
        # Path complementation is outside the EXPSPACE engine's fragment.
        phi = parse_node("<down except down[p]>")
        result = satisfiable(phi, stats=True)
        assert result.stats["meta"]["engine"] == "bounded"
        decision = result.stats["meta"]["engine_decision"]
        by_name = {c["name"]: c for c in decision["candidates"]}
        assert by_name["expspace"]["admits"] is False
        assert by_name["bounded"]["admits"] is True

    def test_decision_record_is_attached_for_containment(self):
        result = contains(parse_path("down[p]"), parse_path("down"),
                          stats=True)
        decision = result.stats["meta"]["engine_decision"]
        assert decision["chosen"] == result.stats["meta"]["engine"]


class TestForcedEngines:
    def test_forced_engine_must_admit(self):
        phi = parse_node("<down except down[p]>")
        with pytest.raises(ValueError, match="does not admit"):
            satisfiable(phi, method="expspace")

    def test_unknown_method_is_rejected_before_dispatch(self):
        with pytest.raises(ValueError, match="unknown method"):
            satisfiable(parse_node("p"), method="quantum")

    def test_forcing_bounded_skips_the_complete_engine(self):
        result = satisfiable(parse_node("p"), method="bounded", stats=True)
        assert result.stats["meta"]["engine"] == "bounded"
        assert result.verdict is Verdict.SATISFIABLE

    def test_forcing_random_engine(self):
        result = satisfiable(parse_node("p"), method="random")
        assert result.verdict is Verdict.SATISFIABLE
        assert not result.conclusive or result.witness is not None


class TestRegistryMechanics:
    def test_get_unknown_engine_raises(self):
        with pytest.raises(ValueError, match="unknown engine"):
            EngineRegistry().get("nope")

    def test_runtime_decline_falls_through_to_next_engine(self):
        calls: list[str] = []

        class Declines(Engine):
            name = "declines"
            conclusive = True
            cost_hint = 1

            def admits(self, problem):
                return True

            def solve(self, problem, session=None):
                calls.append("declines")
                return None

        class Answers(Engine):
            name = "answers"
            cost_hint = 2

            def admits(self, problem):
                return True

            def solve(self, problem, session=None):
                calls.append("answers")
                from repro.analysis.problems import SatResult
                return SatResult(Verdict.UNSATISFIABLE)

        registry = EngineRegistry()
        registry.register(Declines())
        registry.register(Answers())
        problem = Problem(ProblemKind.SATISFIABILITY, phi=parse_node("p"))
        result = registry.plan_and_run(problem)
        assert calls == ["declines", "answers"]
        assert result.verdict is Verdict.UNSATISFIABLE

    def test_no_admitting_engine_raises(self):
        registry = EngineRegistry()
        problem = Problem(ProblemKind.SATISFIABILITY, phi=parse_node("p"))
        with pytest.raises(ValueError, match="no registered engine"):
            registry.plan_and_run(problem)

    def test_forced_decline_raises_engine_declined(self):
        phi = parse_node("<down except down[p]>")
        with pytest.raises(EngineDeclined):
            satisfiable(phi, method="expspace")

    def test_module_level_plan_and_run_uses_default_registry(self):
        problem = Problem(ProblemKind.SATISFIABILITY, phi=parse_node("p"))
        result = plan_and_run(problem)
        assert result.verdict is Verdict.SATISFIABLE


class _Boom(Engine):
    name = "boom"
    cost_hint = 1

    def admits(self, problem):
        return True

    def solve(self, problem, session=None):
        raise RuntimeError("engine bug")


class _Answers(Engine):
    name = "answers"
    cost_hint = 2

    def admits(self, problem):
        return True

    def solve(self, problem, session=None):
        from repro.analysis.problems import SatResult
        return SatResult(Verdict.UNSATISFIABLE)


class TestEngineExceptionFallthrough:
    """Regression: an engine raising mid-``solve`` used to abort the whole
    dispatch; it must fall through like a runtime decline."""

    def _problem(self):
        return Problem(ProblemKind.SATISFIABILITY, phi=parse_node("p"))

    def test_raising_engine_falls_through_to_next(self):
        registry = EngineRegistry()
        registry.register(_Boom())
        registry.register(_Answers())
        result = registry.plan_and_run(self._problem())
        assert result.verdict is Verdict.UNSATISFIABLE

    def test_error_is_recorded_in_the_decision(self):
        from repro import obs
        registry = EngineRegistry()
        registry.register(_Boom())
        registry.register(_Answers())
        with obs.record("run") as recording:
            registry.plan_and_run(self._problem())
        decision = recording.meta["engine_decision"]
        assert decision["chosen"] == "answers"
        by_name = {entry["name"]: entry for entry in decision["candidates"]}
        assert by_name["boom"]["error"] == "RuntimeError: engine bug"
        assert recording.counters["dispatch.error.boom"] == 1

    def test_forced_raising_engine_reraises(self):
        registry = EngineRegistry()
        registry.register(_Boom())
        registry.register(_Answers())
        problem = Problem(ProblemKind.SATISFIABILITY, phi=parse_node("p"),
                          engine="boom")
        with pytest.raises(RuntimeError, match="engine bug"):
            registry.plan_and_run(problem)

    def test_all_raising_engines_reraise_the_last_error(self):
        class Boom2(_Boom):
            name = "boom2"
            cost_hint = 2

            def solve(self, problem, session=None):
                raise KeyError("second bug")

        registry = EngineRegistry()
        registry.register(_Boom())
        registry.register(Boom2())
        with pytest.raises(KeyError, match="second bug"):
            registry.plan_and_run(self._problem())


class _DeclinesLoudly(Engine):
    """Simulates a clean decline surfacing as an exception — the shape a
    nested dispatch produces when its forced engine declines."""

    name = "loud-decline"
    conclusive = True
    cost_hint = 1

    def admits(self, problem):
        return True

    def solve(self, problem, session=None):
        raise EngineDeclined("nested dispatch declined")


class TestDeclineVsErrorDistinction:
    """Regression: a runtime-declining cheap engine must never be recorded
    as a ``dispatch.error.<name>`` — declines and genuine engine errors
    stay distinguishable in ``engine_decision``."""

    def _problem(self):
        return Problem(ProblemKind.SATISFIABILITY, phi=parse_node("p"))

    def test_engine_declined_exception_is_a_clean_decline(self):
        from repro import obs
        registry = EngineRegistry()
        registry.register(_DeclinesLoudly())
        registry.register(_Answers())
        with obs.record("run") as recording:
            result = registry.plan_and_run(self._problem())
        assert result.verdict is Verdict.UNSATISFIABLE
        decision = recording.meta["engine_decision"]
        assert decision["chosen"] == "answers"
        by_name = {entry["name"]: entry for entry in decision["candidates"]}
        assert by_name["loud-decline"].get("declined") is True
        assert "error" not in by_name["loud-decline"]
        assert recording.counters["dispatch.declined.loud-decline"] == 1
        assert "dispatch.error.loud-decline" not in recording.counters

    def test_solve_returning_none_counts_as_decline_not_error(self):
        from repro import obs

        class Declines(Engine):
            name = "quiet-decline"
            conclusive = True
            cost_hint = 1

            def admits(self, problem):
                return True

            def solve(self, problem, session=None):
                return None

        registry = EngineRegistry()
        registry.register(Declines())
        registry.register(_Answers())
        with obs.record("run") as recording:
            registry.plan_and_run(self._problem())
        by_name = {entry["name"]: entry
                   for entry in recording.meta["engine_decision"]["candidates"]}
        assert by_name["quiet-decline"].get("declined") is True
        assert "error" not in by_name["quiet-decline"]
        assert recording.counters["dispatch.declined.quiet-decline"] == 1
        assert "dispatch.error.quiet-decline" not in recording.counters

    def test_forced_engine_declined_reraises_without_error_entry(self):
        from repro import obs
        registry = EngineRegistry()
        registry.register(_DeclinesLoudly())
        problem = Problem(ProblemKind.SATISFIABILITY, phi=parse_node("p"),
                          engine="loud-decline")
        with obs.record("run") as recording:
            with pytest.raises(EngineDeclined):
                registry.plan_and_run(problem)
        by_name = {entry["name"]: entry
                   for entry in recording.meta["engine_decision"]["candidates"]}
        assert by_name["loud-decline"].get("declined") is True
        assert "error" not in by_name["loud-decline"]

    def test_patterns_runtime_decline_is_not_an_error(self):
        # ``admits`` passes (pure pattern syntax) but the canonical-model
        # guard trips at runtime: many flexible edges against a large β.
        from repro import obs
        from repro.analysis.patterns import PatternsEngine

        alpha = parse_path("/".join(["down*[p]"] * 6))
        beta = parse_path("down[p]/down[q]")
        problem = Problem(ProblemKind.CONTAINMENT, alpha=alpha, beta=beta)
        canonical = problem.canonical()
        engine = PatternsEngine()
        assert engine.admits(canonical)
        with obs.record("run") as recording:
            result = contains(alpha, beta, stats=False)
        assert result.conclusive
        counters = recording.counters
        assert counters.get("dispatch.declined.patterns", 0) >= 1
        assert "dispatch.error.patterns" not in counters


class TestEquivalenceAggregation:
    def test_per_direction_figures_are_preserved(self):
        # α ≡ β via bounded search: both directions inconclusive.
        alpha = parse_path("down except down[p]")
        beta = parse_path("down[not p]")
        result = equivalent(alpha, beta, max_nodes=4)
        assert result.verdict is Verdict.NO_WITNESS_WITHIN_BOUND
        forward, backward = result.per_direction
        assert forward is not None and backward is not None
        assert result.trees_checked == (forward.trees_checked
                                        + backward.trees_checked)
        assert result.explored_up_to == 4
        assert forward.explored_up_to == 4
        assert backward.explored_up_to == 4

    def test_failing_forward_direction_short_circuits(self):
        result = equivalent(parse_path("down"), parse_path("down[p]"),
                            max_nodes=3)
        assert result.verdict is Verdict.SATISFIABLE  # counterexample found
        assert result.counterexample is not None
        forward, backward = result.per_direction
        assert forward is result or forward.counterexample is not None
        assert backward is None

    def test_conclusive_equivalence_has_conclusive_directions(self):
        # Downward fragment: both directions go through the complete engine.
        result = equivalent(parse_path("down[p]"), parse_path("down[p]"))
        assert result.verdict is Verdict.UNSATISFIABLE
        assert result.conclusive
        forward, backward = result.per_direction
        assert forward.conclusive and backward.conclusive
        assert result.explored_up_to is None


class TestPlanCacheCounters:
    def test_cache_hits_show_up_in_stats(self):
        phi = parse_node("<down except down[q1]>")
        first = satisfiable(phi, max_nodes=3, stats=True)
        assert first.stats["counters"].get("plan.cache.miss", 0) >= 1
        second = satisfiable(phi, max_nodes=3, stats=True)
        assert second.stats["counters"].get("plan.cache.hit", 0) >= 1

    def test_plan_cache_info_reports_progress(self):
        before = plan_cache_info()
        phi = parse_node("<down except down[q2]>")
        satisfiable(phi, max_nodes=3)
        satisfiable(phi, max_nodes=3)
        after = plan_cache_info()
        assert after["misses"] >= before["misses"] + 1
        assert after["hits"] >= before["hits"] + 1
        assert after["plans"] >= before["plans"]
