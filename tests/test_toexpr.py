"""Tests for Lemma 33: automata back to CoreXPath(*, ≈) expressions, and the
Theorem 34 pipeline CoreXPath(*, ∩) → CoreXPath(*, ≈)."""

import random

import pytest

from repro.automata import (
    FreshLabels,
    NFEvaluator,
    eliminate_skips,
    node_to_let_nf,
    path_to_automaton,
    path_to_epa,
    to_normal_form,
)
from repro.automata.toexpr import (
    automaton_to_path,
    epa_to_path,
    letnf_to_expr,
    nf_to_expr,
)
from repro.semantics import evaluate_nodes, evaluate_path
from repro.trees import random_tree
from repro.xpath import parse_node, parse_path
from repro.xpath.fragments import CORE_STAR_EQ
from repro.xpath.measures import operators_used

from .helpers import random_node, random_path


class TestAutomatonToPath:
    @pytest.mark.parametrize("source", [
        "down", "up", "left", "right", "down*", ".",
        "down/right*", "(down[p] union right)*", "down[p]/up",
        "up*/down*", "down*[p and not q]",
    ])
    def test_roundtrip_relation(self, source):
        rng = random.Random(61)
        automaton = eliminate_skips(path_to_automaton(parse_path(source)))
        back = automaton_to_path(automaton)
        assert CORE_STAR_EQ.admits(back)
        for _ in range(10):
            tree = random_tree(rng, 7, ["p", "q"])
            assert NFEvaluator(tree).relation(automaton) == \
                evaluate_path(tree, back), source

    def test_random_roundtrips(self):
        rng = random.Random(62)
        for _ in range(20):
            path = random_path(rng, 2, frozenset({"star"}))
            automaton = eliminate_skips(path_to_automaton(path))
            back = automaton_to_path(automaton)
            tree = random_tree(rng, 6, ["p", "q"])
            assert evaluate_path(tree, path) == evaluate_path(tree, back)

    def test_nf_to_expr(self):
        rng = random.Random(63)
        for source in ["p", "not (p and q)", "eq(down*, down/down)"]:
            nf = to_normal_form(parse_node(source))
            back = nf_to_expr(nf)
            for _ in range(8):
                tree = random_tree(rng, 6, ["p", "q"])
                assert NFEvaluator(tree).nodes(nf) == \
                    evaluate_nodes(tree, back)


class TestTheorem34Pipeline:
    @pytest.mark.parametrize("source", [
        "<down intersect down[p]>",
        "not <(down*[p]) intersect (down*[q])>",
        "eq(down[p], down[q])",
    ])
    def test_cap_to_eq_equivalence(self, source):
        rng = random.Random(64)
        node = parse_node(source)
        translated = letnf_to_expr(node_to_let_nf(node, FreshLabels()))
        ops = operators_used(translated)
        assert "cap" not in ops and "minus" not in ops and "for" not in ops
        for _ in range(10):
            tree = random_tree(rng, 6, ["p", "q"])
            assert evaluate_nodes(tree, node) == \
                evaluate_nodes(tree, translated), source

    def test_path_pipeline(self):
        rng = random.Random(65)
        path = parse_path("down* intersect down/down")
        translated = epa_to_path(path_to_epa(path, FreshLabels()))
        assert CORE_STAR_EQ.admits(translated)
        for _ in range(10):
            tree = random_tree(rng, 6, ["p", "q"])
            assert evaluate_path(tree, path) == \
                evaluate_path(tree, translated)

    def test_blowup_is_real(self):
        """Theorem 35: the ∩ side is genuinely more succinct — the
        translated expression is much larger."""
        from repro.xpath.measures import size
        node = parse_node("not <(down*[p]) intersect (down*[q])>")
        translated = letnf_to_expr(node_to_let_nf(node, FreshLabels()))
        assert size(translated) > 20 * size(node)
