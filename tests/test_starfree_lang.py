"""Tests for the star-free expression substrate (Theorem 30's source
problem)."""

import itertools

import pytest

from repro.regexes import (
    SFComplement,
    SFConcat,
    SFSymbol,
    SFUnion,
    starfree_accepts,
    starfree_alphabet,
    starfree_min_dfa,
    starfree_nonempty,
    starfree_size,
    starfree_witness,
)

A, B = SFSymbol("a"), SFSymbol("b")
ALPHABET = frozenset({"a", "b"})


def words(max_length):
    for length in range(max_length + 1):
        yield from itertools.product("ab", repeat=length)


class TestBasics:
    def test_symbol(self):
        assert starfree_accepts(A, ["a"], ALPHABET)
        assert not starfree_accepts(A, ["b"], ALPHABET)
        assert not starfree_accepts(A, [], ALPHABET)

    def test_concat_union(self):
        expr = SFUnion(SFConcat(A, B), B)
        assert starfree_accepts(expr, ["a", "b"], ALPHABET)
        assert starfree_accepts(expr, ["b"], ALPHABET)
        assert not starfree_accepts(expr, ["a"], ALPHABET)

    def test_complement_is_relative_to_alphabet(self):
        expr = SFComplement(A)
        assert starfree_accepts(expr, [], ALPHABET)       # ε ∉ {a}
        assert starfree_accepts(expr, ["b"], ALPHABET)
        assert not starfree_accepts(expr, ["a"], ALPHABET)

    def test_double_complement(self):
        expr = SFComplement(SFComplement(A))
        for w in words(3):
            assert starfree_accepts(expr, list(w), ALPHABET) == \
                starfree_accepts(A, list(w), ALPHABET)

    def test_sigma_star_and_empty(self):
        sigma_star = SFComplement(SFConcat(A, SFComplement(SFConcat(A, A))))
        # Not literally Σ*, but: ∅ = −(a ∪ −a), Σ* = −∅.
        empty = SFComplement(SFUnion(A, SFComplement(A)))
        assert not starfree_nonempty(empty, ALPHABET)
        sigma = SFComplement(empty)
        assert all(starfree_accepts(sigma, list(w), ALPHABET) for w in words(3))

    def test_size_and_alphabet(self):
        expr = SFComplement(SFUnion(A, SFConcat(B, B)))
        assert starfree_size(expr) == 6
        assert starfree_alphabet(expr) == {"a", "b"}

    def test_operator_sugar(self):
        assert starfree_accepts(A + B, ["a", "b"], ALPHABET)
        assert starfree_accepts(A | B, ["b"], ALPHABET)
        assert starfree_accepts(-A, [], ALPHABET)


class TestNonemptiness:
    def test_witness_shortest(self):
        expr = SFConcat(SFComplement(A), A)  # some word ending in a, not 'a' alone...
        witness = starfree_witness(expr, ALPHABET)
        assert witness is not None
        assert starfree_accepts(expr, witness, ALPHABET)

    def test_epsilon_language(self):
        # {ε} = −(Σ⁺) with Σ⁺ = (a ∪ b)·Σ*.
        empty = SFComplement(SFUnion(A, SFComplement(A)))
        sigma_star = SFComplement(empty)
        sigma_plus = SFConcat(SFUnion(A, B), sigma_star)
        just_epsilon = SFComplement(sigma_plus)
        assert starfree_nonempty(just_epsilon, ALPHABET)
        assert starfree_witness(just_epsilon, ALPHABET) == []
        for w in words(3):
            assert starfree_accepts(just_epsilon, list(w), ALPHABET) == (len(w) == 0)

    def test_min_dfa_grows_with_nesting(self):
        # Each complement round can only be answered deterministically;
        # sizes must be positive and the language stays exact.
        expr = A
        sizes = []
        for _ in range(3):
            expr = SFComplement(SFConcat(expr, A))
            sizes.append(starfree_min_dfa(expr, ALPHABET).num_states)
        assert all(s >= 2 for s in sizes)

    def test_empty_alphabet_rejected(self):
        with pytest.raises(ValueError):
            starfree_min_dfa(A, frozenset())
