"""Tests for the §3.1 normal form: path automata and the translation from
CoreXPath(*, ≈), including skip elimination and Lemma 11."""

import random

import pytest

from repro.automata import (
    NFEvaluator,
    NormalFormError,
    PathAutomaton,
    Step,
    eliminate_skips,
    loops_fixpoint,
    nf_size,
    path_to_automaton,
    to_normal_form,
)
from repro.automata.nf import NFLabel, NFLoop, NFTop, nf_negate
from repro.semantics import evaluate_nodes, evaluate_path
from repro.trees import XMLTree, random_tree
from repro.xpath import parse_node, parse_path

from .helpers import random_node, random_path

STAR_EQ = frozenset({"star", "eq"})


class TestSteps:
    def test_converse_pairs(self):
        assert Step.FIRST_CHILD.converse is Step.PARENT_OF_FIRST
        assert Step.RIGHT.converse is Step.LEFT
        assert Step.LEFT.converse.converse is Step.LEFT

    def test_step_semantics(self):
        from repro.automata.evaluate import possible_steps, step_target
        tree = XMLTree.build(("a", ["b", "c"]))
        assert step_target(tree, 0, Step.FIRST_CHILD) == 1
        assert step_target(tree, 1, Step.PARENT_OF_FIRST) == 0
        assert step_target(tree, 2, Step.PARENT_OF_FIRST) is None  # not first
        assert step_target(tree, 1, Step.RIGHT) == 2
        assert possible_steps(tree, 0) == {Step.FIRST_CHILD}
        assert possible_steps(tree, 1) == {Step.PARENT_OF_FIRST, Step.RIGHT}
        assert possible_steps(tree, 2) == {Step.LEFT}


class TestPathAutomatonTranslation:
    @pytest.mark.parametrize("source", [
        "down", "up", "left", "right", "down*", "up*", "left*", "right*",
        ".", "down/up", "down[p]", "down* union right",
        "(down[p] union right)*", "down[p and <right>]/up*",
    ])
    def test_relation_matches_direct_semantics(self, source):
        rng = random.Random(31)
        path = parse_path(source)
        automaton = path_to_automaton(path)
        squeezed = eliminate_skips(automaton)
        for _ in range(12):
            tree = random_tree(rng, 8, ["p", "q"])
            evaluator = NFEvaluator(tree)
            direct = evaluate_path(tree, path)
            assert evaluator.relation(automaton) == direct, source
            assert evaluator.relation(squeezed) == direct, source

    def test_random_star_eq_paths(self):
        rng = random.Random(32)
        for _ in range(40):
            path = random_path(rng, 3, STAR_EQ)
            automaton = eliminate_skips(path_to_automaton(path))
            tree = random_tree(rng, 7, ["p", "q"])
            assert NFEvaluator(tree).relation(automaton) == \
                evaluate_path(tree, path)

    def test_outside_fragment_rejected(self):
        with pytest.raises(NormalFormError):
            path_to_automaton(parse_path("down intersect up"))
        with pytest.raises(NormalFormError):
            path_to_automaton(parse_path("down except up"))

    def test_skip_elimination_shrinks(self):
        automaton = path_to_automaton(parse_path("down*[p]/up*"))
        squeezed = eliminate_skips(automaton)
        assert squeezed.num_states < automaton.num_states


class TestNodeTranslation:
    @pytest.mark.parametrize("source", [
        "p", "true", "not p", "p and q", "<down[p]>",
        "eq(down*, down/down)", "eq(down*[p]/up, .)",
        "not <(down[p])*/right>",
    ])
    def test_nodes_match_direct_semantics(self, source):
        rng = random.Random(33)
        node = parse_node(source)
        nf = to_normal_form(node)
        for _ in range(12):
            tree = random_tree(rng, 8, ["p", "q"])
            assert NFEvaluator(tree).nodes(nf) == evaluate_nodes(tree, node)

    def test_random_nodes(self):
        rng = random.Random(34)
        for _ in range(40):
            node = random_node(rng, 3, STAR_EQ)
            nf = to_normal_form(node)
            tree = random_tree(rng, 7, ["p", "q"])
            assert NFEvaluator(tree).nodes(nf) == evaluate_nodes(tree, node)

    def test_translation_is_linear_in_size(self):
        # |nf(φ)| stays within a fixed multiple of |φ| across a family.
        from repro.xpath.measures import size as xsize
        ratios = []
        for n in range(1, 7):
            inner = "/".join(["down"] * n)
            node = parse_node(f"eq({inner}, down*)")
            ratios.append(nf_size(to_normal_form(node)) / xsize(node))
        assert max(ratios) <= 12  # linear: bounded ratio

    def test_outside_fragment_rejected(self):
        with pytest.raises(NormalFormError):
            to_normal_form(parse_node("<down except up>"))


class TestAutomatonOperations:
    def test_shift(self):
        automaton = path_to_automaton(parse_path("down"))
        shifted = automaton.shift(automaton.final, automaton.initial)
        assert shifted.initial == automaton.final
        assert shifted.transitions == automaton.transitions

    def test_reversed_is_converse(self):
        rng = random.Random(35)
        for source in ["down/right", "down*[p]", "(down union right)*"]:
            automaton = eliminate_skips(path_to_automaton(parse_path(source)))
            reverse = automaton.reversed()
            for _ in range(8):
                tree = random_tree(rng, 7, ["p", "q"])
                evaluator = NFEvaluator(tree)
                fwd = {
                    (a, b)
                    for a, bs in evaluator.relation(automaton).items()
                    for b in bs
                }
                bwd = {
                    (a, b)
                    for a, bs in evaluator.relation(reverse).items()
                    for b in bs
                }
                assert bwd == {(b, a) for (a, b) in fwd}

    def test_size_measure(self):
        automaton = PathAutomaton(
            2, frozenset({(0, NFLabel("p"), 1), (0, Step.RIGHT, 1)}), 0, 1
        )
        assert automaton.size() == 3  # 2 states + |p| = 1

    def test_negate(self):
        assert nf_negate(nf_negate(NFTop())) == NFTop()

    def test_invalid_transitions_rejected(self):
        with pytest.raises(ValueError):
            PathAutomaton(1, frozenset({(0, Step.RIGHT, 5)}), 0, 0)
        with pytest.raises(TypeError):
            PathAutomaton(1, frozenset({(0, "bogus", 0)}), 0, 0)


class TestLemma11:
    """LOOPS fixpoint characterization vs product reachability."""

    @pytest.mark.parametrize("source", [
        "down*", "down[p]/up", "(down union right)*/up*",
        "down*[p]/up*",
    ])
    def test_fixpoint_matches_reachability(self, source):
        rng = random.Random(36)
        automaton = eliminate_skips(path_to_automaton(parse_path(source)))
        for _ in range(6):
            tree = random_tree(rng, 6, ["p", "q"])
            evaluator = NFEvaluator(tree)
            loops = loops_fixpoint(tree, automaton, evaluator)
            for node in tree.nodes:
                for q in range(automaton.num_states):
                    for q2 in range(automaton.num_states):
                        expected = node in evaluator.loop_nodes(
                            automaton.shift(q, q2))
                        assert ((node, q, q2) in loops) == expected

    def test_reflexive_base_case(self):
        automaton = eliminate_skips(path_to_automaton(parse_path("down")))
        tree = XMLTree.build(("a", ["b"]))
        loops = loops_fixpoint(tree, automaton)
        for node in tree.nodes:
            for q in range(automaton.num_states):
                assert (node, q, q) in loops
