"""Tests for the §6.3 (forward) and §6.4 (downward) hardness reductions."""

import pytest

from repro.lowerbounds import (
    all_ones_machine,
    downward_reduction,
    encode_strategy_tree_downward,
    encode_strategy_tree_forward,
    first_symbol_machine,
    forward_reduction,
    parity_machine,
)
from repro.semantics import holds_at
from repro.xpath.ast import Axis
from repro.xpath.measures import axes_used, operators_used, size


class TestForwardReduction:
    def test_fragment_is_forward_cap(self):
        red = forward_reduction(parity_machine(), "00")
        assert axes_used(red.formula) <= {Axis.DOWN, Axis.RIGHT}
        assert operators_used(red.formula) == {"cap"}

    @pytest.mark.parametrize("machine, words", [
        (first_symbol_machine(), ["a", "b"]),
        (parity_machine(), ["0", "1"]),
        (all_ones_machine(), ["1", "0"]),
    ])
    def test_formula_holds_iff_accepts(self, machine, words):
        for word in words:
            red = forward_reduction(machine, word)
            tree = encode_strategy_tree_forward(machine, word)
            accepts = machine.accepts(word, 2 ** len(word))
            assert holds_at(tree, red.formula, 0) == accepts, word

    def test_rejection_pinned_on_acc(self):
        machine = all_ones_machine()
        red = forward_reduction(machine, "0")
        tree = encode_strategy_tree_forward(machine, "0")
        verdicts = {name: holds_at(tree, c, 0) for name, c in red.conjuncts.items()}
        assert verdicts.pop("acc") is False
        assert all(verdicts.values()), verdicts

    def test_configurations_are_sibling_runs(self):
        machine = first_symbol_machine()
        tree = encode_strategy_tree_forward(machine, "a")
        root_children = tree.children(0)
        # 2 cells first, then successor configuration roots (r-marked).
        assert not tree.has_label(root_children[0], "r")
        assert not tree.has_label(root_children[1], "r")
        assert all(tree.has_label(c, "r") for c in root_children[2:])

    def test_markers_present_in_successors(self):
        machine = first_symbol_machine()
        tree = encode_strategy_tree_forward(machine, "a")
        markers = [
            n for n in tree.nodes
            if any(label.startswith("m:") for label in tree.labels(n))
        ]
        assert markers  # every non-initial configuration carries one

    def test_empty_word_rejected(self):
        with pytest.raises(ValueError):
            forward_reduction(parity_machine(), "")


class TestDownwardReduction:
    def test_fragment_is_downward_cap(self):
        red = downward_reduction(parity_machine(), "10")
        assert axes_used(red.formula) <= {Axis.DOWN}
        assert operators_used(red.formula) == {"cap"}

    @pytest.mark.parametrize("machine, words", [
        (first_symbol_machine(), ["a", "b"]),
        (parity_machine(), ["10", "11"]),
        (all_ones_machine(), ["11", "10"]),
    ])
    def test_formula_holds_iff_accepts(self, machine, words):
        for word in words:
            red = downward_reduction(machine, word)
            tree = encode_strategy_tree_downward(machine, word)
            accepts = machine.accepts(word, 2 ** len(word))
            assert holds_at(tree, red.formula, 0) == accepts, word

    def test_two_counters_on_cells(self):
        machine = first_symbol_machine()
        tree = encode_strategy_tree_downward(machine, "a")
        # k=1: chains of 2 configs × 2 cells; root has C=0, D=0 (no bits).
        assert not tree.has_label(0, "c0")
        assert not tree.has_label(0, "d0")
        # Some node carries both bits set (C=1 within D=1).
        assert any(
            tree.has_label(n, "c0") and tree.has_label(n, "d0")
            for n in tree.nodes
        )

    def test_chains_padded_to_full_length(self):
        machine = first_symbol_machine()
        tree = encode_strategy_tree_downward(machine, "a")
        # Each branch has exactly 2^k · 2^k = 4 cells (k = 1).
        leaves = [n for n in tree.nodes if tree.skeleton.is_leaf(n)]
        for leaf in leaves:
            depth = tree.skeleton.depth(leaf)
            assert depth == 3  # 4 cells per chain → depth 3

    def test_conjunct_breakdown_on_reject(self):
        machine = parity_machine()
        red = downward_reduction(machine, "10")
        tree = encode_strategy_tree_downward(machine, "10")
        verdicts = {name: holds_at(tree, c, 0) for name, c in red.conjuncts.items()}
        assert verdicts.pop("acc") is False
        assert all(verdicts.values()), verdicts

    def test_size_growth(self):
        machine = parity_machine()
        s1 = size(downward_reduction(machine, "1").formula)
        s2 = size(downward_reduction(machine, "11").formula)
        assert s2 > s1  # counters add per-bit conjuncts
