"""Tests for witness minimization (delta-debugging on trees)."""

import random

import pytest

from repro.analysis.shrink import (
    shrink_counterexample,
    shrink_sat_witness,
    shrink_witness,
)
from repro.semantics import evaluate_path, holds_somewhere
from repro.trees import XMLTree, random_tree
from repro.xpath import parse_node, parse_path


class TestShrinkWitness:
    def test_already_minimal(self):
        tree = XMLTree(["p"], [None])
        assert shrink_witness(tree, lambda t: True) == tree

    def test_prunes_irrelevant_subtrees(self):
        tree = XMLTree.build(
            ("a", [("noise", ["noise", "noise"]), ("p", []), "noise"])
        )
        shrunk = shrink_witness(
            tree, lambda t: any(t.label(n) == "p" for n in t.nodes)
        )
        assert shrunk == XMLTree(["p"], [None])

    def test_splices_out_intermediate_nodes(self):
        tree = XMLTree.build(("a", [("b", [("c", [("p", [])])])]))
        shrunk = shrink_witness(
            tree, lambda t: any(t.label(n) == "p" for n in t.nodes)
        )
        # b and c are spliced out, then single-child roots are promoted.
        assert shrunk == XMLTree(["p"], [None])

    def test_rejects_bad_initial_witness(self):
        tree = XMLTree(["p"], [None])
        with pytest.raises(ValueError):
            shrink_witness(tree, lambda t: False)

    def test_result_always_satisfies(self):
        rng = random.Random(909)
        phi = parse_node("p and <down[q]>")
        for _ in range(15):
            tree = random_tree(rng, 12, ["p", "q"])
            if not holds_somewhere(tree, phi):
                continue
            shrunk = shrink_sat_witness(tree, phi)
            assert holds_somewhere(shrunk, phi)
            assert shrunk.size <= tree.size


class TestShrinkSatWitness:
    def test_reaches_the_minimum(self):
        # The minimal model of p ∧ ⟨↓[q]⟩ has 2 nodes.
        tree = XMLTree.build(
            ("z", [("p", ["q", "z", ("z", ["q"])]), ("p", ["q"])])
        )
        phi = parse_node("p and <down[q]>")
        shrunk = shrink_sat_witness(tree, phi)
        assert shrunk.size == 2


class TestShrinkCounterexample:
    def test_counterexample_stays_valid(self):
        alpha, beta = parse_path("down*"), parse_path("down")
        tree = XMLTree.build(("a", [("b", [("c", ["d"])]), "e"]))
        shrunk = shrink_counterexample(tree, alpha, beta)
        left = evaluate_path(shrunk, alpha)
        right = evaluate_path(shrunk, beta)
        assert any(
            targets - right.get(source, frozenset())
            for source, targets in left.items()
        )
        # ↓* ⋢ ↓ is already refuted by a single node (the reflexive pair).
        assert shrunk.size == 1
