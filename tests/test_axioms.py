"""A semantic catalog of the ten Cate–Marx style equational axioms (§9).

The paper's Discussion points to the complete axiomatization of
CoreXPath(∩, −, for) [ten Cate & Marx 2009] for rewrite-based optimization.
We cannot reproduce the completeness proof, but we can pin the axioms
themselves: every law below is verified semantically on randomized
documents.  These are exactly the rewrite rules a practical optimizer would
apply.
"""

import random

import pytest

from repro.semantics import evaluate_nodes, evaluate_path
from repro.trees import random_tree
from repro.xpath import parse_node, parse_path

from .helpers import random_path

PATH_LAWS = [
    # Composition is associative with identity `.`.
    ("(down/up)/down*", "down/(up/down*)"),
    ("./down", "down"),
    ("down/.", "down"),
    # Union: associative, commutative, idempotent; composition distributes.
    ("down union (up union right)", "(down union up) union right"),
    ("down union up", "up union down"),
    ("down union down", "down"),
    ("(down union up)/left", "down/left union up/left"),
    ("left/(down union up)", "left/down union left/up"),
    # Filters: conjunction splits; filters commute; filter of ⊤ is identity.
    ("down[p and q]", "down[p][q]"),
    ("down[p][q]", "down[q][p]"),
    ("down[true]", "down"),
    # Filters distribute over union.
    ("(down union up)[p]", "down[p] union up[p]"),
    # Intersection: associative, commutative, idempotent; absorbs union.
    ("down intersect (down* intersect down+)",
     "(down intersect down*) intersect down+"),
    ("down intersect down*", "down* intersect down"),
    ("down intersect down", "down"),
    ("down intersect (down union up)", "down"),
    # Complement laws (relative difference).
    ("down except down", "down[false]"),
    ("down except up", "down"),
    ("(down union up) except up", "down except up"),
    # Kleene algebra facts for the * extension.
    ("(down)*", "(. union down/(down)*)"),
    ("((down)*)*", "(down)*"),
    ("(down union .)*", "(down)*"),
    # Axis-closure unfolding: τ* = . ∪ τ/τ*.
    ("down*", ". union down/down*"),
    ("up*", ". union up/up*"),
]

NODE_LAWS = [
    # Boolean algebra.
    ("p and q", "q and p"),
    ("p and (q and true)", "(p and q) and true"),
    ("not (not p)", "p"),
    ("p and not p", "false"),
    ("p or not p", "true"),
    # ⟨·⟩ distributes over union and composition unfolds.
    ("<down union up>", "<down> or <up>"),
    ("<down/up>", "<down[<up>]>"),
    ("<down[false]>", "false"),
    ("<.>", "true"),
    # Path equality laws (§2.2/§3.1).
    ("eq(down, down)", "<down>"),
    ("eq(down, up)", "eq(up, down)"),
    ("eq(down*, .)", "true"),
    ("<down[p]>", "eq(down[p], down)"),
    # loop(α/β˘) ≡ α ≈ β for a concrete instance (converse by hand).
    ("eq(down[p], right)", "eq(down[p]/(.[true]), right)"),
]


@pytest.mark.parametrize("left, right", PATH_LAWS,
                         ids=[f"{l} == {r}" for l, r in PATH_LAWS])
def test_path_laws(left, right):
    rng = random.Random(hash(left) & 0xFFFF)
    left_path, right_path = parse_path(left), parse_path(right)
    for _ in range(15):
        tree = random_tree(rng, 8, ["p", "q"])
        assert evaluate_path(tree, left_path) == \
            evaluate_path(tree, right_path), (left, right, tree.to_spec())


@pytest.mark.parametrize("left, right", NODE_LAWS,
                         ids=[f"{l} == {r}" for l, r in NODE_LAWS])
def test_node_laws(left, right):
    rng = random.Random(hash(right) & 0xFFFF)
    left_node, right_node = parse_node(left), parse_node(right)
    for _ in range(15):
        tree = random_tree(rng, 8, ["p", "q"])
        assert evaluate_nodes(tree, left_node) == \
            evaluate_nodes(tree, right_node), (left, right, tree.to_spec())


def test_de_morgan_for_paths():
    """U − (α ∪ β) = (U − α) ∩ (U − β), the law behind §2.2's ∪-definition."""
    rng = random.Random(424)
    universe = parse_path("up*/down*")
    for _ in range(10):
        alpha = random_path(rng, 2)
        beta = random_path(rng, 2)
        tree = random_tree(rng, 7, ["p", "q"])
        from repro.xpath.ast import Complement, Intersect, Union
        left = evaluate_path(tree, Complement(universe, Union(alpha, beta)))
        right = evaluate_path(tree, Intersect(
            Complement(universe, alpha), Complement(universe, beta)))
        assert left == right


def test_for_loop_laws():
    """§2.2: `for $i in α return β[. is $i]` ≡ α ∩ β, and a vacuous binder
    is a guard for ⟨α⟩."""
    rng = random.Random(425)
    cap = parse_path("down* intersect down/down")
    via_for = parse_path("for $i in down* return down/down[. is $i]")
    guard = parse_path("for $i in down[p] return .")
    guarded = parse_path(".[<down[p]>]")
    for _ in range(15):
        tree = random_tree(rng, 7, ["p", "q"])
        assert evaluate_path(tree, cap) == evaluate_path(tree, via_for)
        assert evaluate_path(tree, guard) == evaluate_path(tree, guarded)
