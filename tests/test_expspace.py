"""Tests for the Figure 2 algorithm (CoreXPath↓(∩) satisfiability w.r.t.
EDTDs) — cross-validated against exhaustive bounded search."""

import random

import pytest

from repro.analysis import (
    TooManyModalAtoms,
    TypeSystem,
    downward_cap_satisfiable,
)
from repro.analysis.problems import Verdict
from repro.edtd import DTD, book_edtd, nested_sections_edtd
from repro.semantics import evaluate_nodes
from repro.trees import all_trees
from repro.xpath import parse_node
from repro.xpath.ast import Axis

from .helpers import random_node


def brute_force_sat(phi, edtd, max_nodes):
    for tree in all_trees(max_nodes, sorted(edtd.concrete_labels())):
        if edtd.conforms(tree) and evaluate_nodes(tree, phi):
            return True
    return False


@pytest.fixture
def permissive():
    return DTD({"p": "(p|q)*", "q": "(p|q)*"}, root="q")


class TestAgainstBruteForce:
    CASES = [
        "p",
        "p and q",
        "<down[p] intersect down*>",
        "<down[p] intersect down[q]>",
        "not <down> and <down*>",
        "<down*[p]/down*[q] intersect down/down>",
        "<down/down intersect down*[p]/down> and not <down[p]>",
        "p and not <down*[p]>",
        "<down intersect down>",
        "every_placeholder",
    ]

    @pytest.mark.parametrize("source", CASES[:-1])
    def test_verdicts_match(self, source, permissive):
        phi = parse_node(source)
        result = downward_cap_satisfiable(phi, permissive)
        expected = brute_force_sat(phi, permissive, 5)
        assert bool(result) == expected, source
        assert result.conclusive

    def test_random_formulas(self, permissive):
        rng = random.Random(91)
        checked = 0
        for _ in range(30):
            phi = random_node(rng, 2, frozenset({"cap"}), axes=(Axis.DOWN,))
            try:
                result = downward_cap_satisfiable(phi, permissive)
            except TooManyModalAtoms:
                continue
            checked += 1
            assert bool(result) == brute_force_sat(phi, permissive, 4), phi
        assert checked >= 20

    def test_witness_is_a_model(self, permissive):
        phi = parse_node("<down*[p]/down*[q] intersect down/down>")
        result = downward_cap_satisfiable(phi, permissive)
        assert result
        assert permissive.conforms(result.witness)
        assert evaluate_nodes(result.witness, phi)


class TestSchemaInteraction:
    def test_book_schema(self):
        book = book_edtd()
        # An Image directly under Book is impossible.
        phi = parse_node("Book and <down[Image]>")
        assert not downward_cap_satisfiable(phi, book)
        # An Image two levels under a Chapter is fine.
        phi2 = parse_node("Chapter and <down/down[Image]>")
        result = downward_cap_satisfiable(phi2, book)
        assert result and book.conforms(result.witness)

    def test_edtd_abstract_types_respected(self):
        edtd = nested_sections_edtd(2)
        deep = parse_node("s and <down[s and <down[s]>]>")
        shallow = parse_node("s and <down[s]>")
        assert not downward_cap_satisfiable(deep, edtd)
        assert downward_cap_satisfiable(shallow, edtd)

    def test_content_model_order(self):
        schema = DTD({"a": "b c", "b": "eps", "c": "eps"}, root="a")
        # "a child c followed (as a sibling walk downward cannot see)…" —
        # check simply that b-before-c is enforced through satisfiability:
        # a node with only a c-child cannot exist.
        phi = parse_node("a and <down[c]> and not <down[b]>")
        assert not downward_cap_satisfiable(phi, schema)
        phi2 = parse_node("a and <down[c]> and <down[b]>")
        assert downward_cap_satisfiable(phi2, schema)


class TestTypeSystem:
    def test_modal_atom_guard(self, permissive):
        # Deeply nested intersections of long compositions explode the
        # simple-path set; the guard must fire rather than hang.
        deep = parse_node("<down*[p]/down*[q] intersect down*[q]/down*[p]>")
        with pytest.raises(TooManyModalAtoms):
            downward_cap_satisfiable(deep, permissive, max_modal_atoms=4)

    def test_types_enumerated_are_consistent(self, permissive):
        phi = parse_node("<down[p] intersect down*>")
        from repro.xpath.ast import AxisClosure, Filter, SomePath
        wrapped = SomePath(Filter(AxisClosure(Axis.DOWN), phi))
        system = TypeSystem(wrapped, permissive)
        types = system.all_types()
        assert types
        for t in types:
            # ↓*-monotonicity closure condition holds by construction.
            for suffix in system.modal_atoms:
                if suffix[0] == "down*" and t.holds_suffix(suffix[1:]):
                    assert t.holds_suffix(suffix)
