"""Tests for the parity-game substrate (backs 2ATA acceptance)."""

import random

import pytest

from repro.games import ParityGame, solve_cobuchi, solve_parity


def game(owner, priority, moves):
    return ParityGame(dict(owner), dict(priority), dict(moves))


class TestValidation:
    def test_dead_end_rejected(self):
        with pytest.raises(ValueError):
            game({0: 0}, {0: 2}, {0: ()})

    def test_escaping_move_rejected(self):
        with pytest.raises(ValueError):
            game({0: 0}, {0: 2}, {0: (1,)})

    def test_key_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ParityGame({0: 0}, {0: 2, 1: 2}, {0: (0,)})


class TestKnownGames:
    def test_even_self_loop_wins_for_eve(self):
        g = game({0: 0}, {0: 2}, {0: (0,)})
        win_eve, win_adam = solve_parity(g)
        assert win_eve == {0} and win_adam == set()

    def test_odd_self_loop_wins_for_adam(self):
        g = game({0: 0}, {0: 1}, {0: (0,)})
        win_eve, win_adam = solve_parity(g)
        assert win_adam == {0}

    def test_eve_chooses_the_good_loop(self):
        # Eve at 0 picks between an odd loop (1) and an even loop (2).
        g = game({0: 0, 1: 1, 2: 1}, {0: 2, 1: 1, 2: 2},
                 {0: (1, 2), 1: (1,), 2: (2,)})
        win_eve, _ = solve_parity(g)
        assert 0 in win_eve and 2 in win_eve and 1 not in win_eve

    def test_adam_chooses_the_bad_loop(self):
        g = game({0: 1, 1: 1, 2: 1}, {0: 2, 1: 1, 2: 2},
                 {0: (1, 2), 1: (1,), 2: (2,)})
        _, win_adam = solve_parity(g)
        assert 0 in win_adam

    def test_min_parity_convention(self):
        # A cycle visiting priorities {1, 2} infinitely: min = 1 → Adam wins.
        g = game({0: 0, 1: 0}, {0: 1, 1: 2}, {0: (1,), 1: (0,)})
        _, win_adam = solve_parity(g)
        assert win_adam == {0, 1}

    def test_priority_zero_beats_one(self):
        g = game({0: 0, 1: 0}, {0: 1, 1: 0}, {0: (1,), 1: (0,)})
        win_eve, _ = solve_parity(g)
        assert win_eve == {0, 1}

    def test_three_priorities(self):
        # Eve can force through priority-0 position infinitely often.
        g = game({0: 0, 1: 1, 2: 0},
                 {0: 0, 1: 1, 2: 2},
                 {0: (1,), 1: (0, 2), 2: (0,)})
        win_eve, _ = solve_parity(g)
        # Every play cycles through 0 infinitely (all moves funnel back).
        assert win_eve == {0, 1, 2}


class TestCrossValidation:
    def test_zielonka_matches_cobuchi_on_random_games(self):
        rng = random.Random(99)
        for _ in range(400):
            n = rng.randint(1, 9)
            owner = {v: rng.randint(0, 1) for v in range(n)}
            priority = {v: rng.randint(1, 2) for v in range(n)}
            moves = {
                v: tuple(rng.sample(range(n), rng.randint(1, n)))
                for v in range(n)
            }
            g = game(owner, priority, moves)
            assert solve_parity(g) == solve_cobuchi(g)

    def test_partition(self):
        rng = random.Random(100)
        for _ in range(100):
            n = rng.randint(1, 8)
            g = game(
                {v: rng.randint(0, 1) for v in range(n)},
                {v: rng.randint(0, 3) for v in range(n)},
                {v: tuple(rng.sample(range(n), rng.randint(1, n)))
                 for v in range(n)},
            )
            win_eve, win_adam = solve_parity(g)
            assert win_eve | win_adam == set(range(n))
            assert not (win_eve & win_adam)

    def test_cobuchi_rejects_other_priorities(self):
        g = game({0: 0}, {0: 3}, {0: (0,)})
        with pytest.raises(ValueError):
            solve_cobuchi(g)
