"""The ``patterns`` engine: recognizer, homomorphism check, canonical
models, schema cover search, boundary fallthrough, differential sweeps.

The correctness backbone is the randomized differential sweep at the
bottom: on positive downward tree patterns — with and without a DTD — the
polynomial engine must agree verdict-for-verdict with the conclusive
``expspace``/``automata`` engines and never contradict a ``bounded``
witness, and every satisfiability witness must re-verify through a
compiled plan.
"""

from __future__ import annotations

import random

import pytest

from repro import obs
from repro.analysis import contains, satisfiable
from repro.analysis.patterns import PatternsEngine, embeds, instantiate
from repro.analysis.problems import Problem, ProblemKind, Verdict
from repro.analysis.registry import EngineDeclined, default_registry
from repro.edtd import EDTD
from repro.edtd.examples import book_edtd, nested_sections_edtd
from repro.semantics import TreeContext, compile_plan
from repro.xpath import parse_node, parse_path, to_source
from repro.xpath.ast import (
    And,
    Axis,
    AxisClosure,
    AxisStep,
    Filter,
    Label,
    Seq,
    SomePath,
)
from repro.xpath.fragments import (
    EDGE_CHILD,
    EDGE_DESC_SELF,
    compile_pattern,
    is_tree_pattern,
)


# ------------------------------------------------------------- recognizer


class TestRecognizer:
    def test_basic_path_pattern_shape(self):
        pattern = compile_pattern(parse_path("down[p]/down*[q and <down[r]>]"))
        assert pattern is not None
        assert pattern.size == 4
        assert pattern.root == 0
        assert pattern.out == 2  # the down* step's target, not the branch
        assert pattern.labels[1] == frozenset({"p"})
        assert pattern.labels[2] == frozenset({"q"})
        assert pattern.edges[0] == ((EDGE_CHILD, 1),)
        assert pattern.edges[1] == ((EDGE_DESC_SELF, 2),)
        assert pattern.edges[2] == ((EDGE_CHILD, 3),)

    def test_node_expression_pattern_selects_root(self):
        pattern = compile_pattern(parse_node("p and <down[q]>"))
        assert pattern is not None
        assert pattern.out == pattern.root == 0
        assert pattern.labels[0] == frozenset({"p"})

    def test_self_step_adds_no_node(self):
        pattern = compile_pattern(parse_path("self::*/down[p]"))
        assert pattern is not None
        assert pattern.size == 2

    def test_conflicting_labels_are_kept_not_rejected(self):
        pattern = compile_pattern(parse_node("p and q"))
        assert pattern is not None
        assert pattern.conflicted

    def test_starred_child_step_is_descendant_or_self(self):
        pattern = compile_pattern(parse_path("(down)*"))
        assert pattern is not None
        assert pattern.edges[0] == ((EDGE_DESC_SELF, 1),)

    @pytest.mark.parametrize("source, parse", [
        ("up", parse_path),                          # upward axis
        ("right", parse_path),                       # sibling axis
        ("down[not p]", parse_path),                 # negation
        ("down[<down union down/down>]", parse_path),  # union under a filter
        ("down union down[p]", parse_path),          # top-level union
        ("down[eq(down, down/down)]", parse_path),   # path equality (≈)
        ("down intersect down[p]", parse_path),      # intersection
        ("down except down[p]", parse_path),         # complementation
        ("(down/down)*", parse_path),                # star on a non-child path
        ("down[<up>]", parse_path),                  # upward axis in a filter
        ("not p", parse_node),                       # node-level negation
        ("for $x in down return down[. is $x]", parse_path),  # for-loop
    ])
    def test_excluded_constructs_are_rejected(self, source, parse):
        assert compile_pattern(parse(source)) is None
        assert not is_tree_pattern(parse(source))


# --------------------------------------------------- homomorphism + models


class TestHomomorphism:
    def _pat(self, source):
        pattern = compile_pattern(parse_path(source))
        assert pattern is not None
        return pattern

    def test_identity_embedding(self):
        alpha = self._pat("down[p]/down[q]")
        assert embeds(alpha, alpha)

    def test_child_edge_never_maps_onto_flexible_edge(self):
        # β = down requires an actual child; α = down* guarantees none.
        assert not embeds(self._pat("down"), self._pat("down*"))
        assert embeds(self._pat("down*"), self._pat("down"))

    def test_descendant_edge_maps_across_paths(self):
        assert embeds(self._pat("down*[q]"), self._pat("down[p]/down[q]"))

    def test_output_anchor_is_respected(self):
        # Same shape, but β selects the q-node while α selects the p-node.
        assert not embeds(self._pat("down[q]"), self._pat("down[<down[q]>]"))

    def test_label_guarantee_is_required(self):
        assert not embeds(self._pat("down[p]"), self._pat("down"))


class TestInstantiate:
    def test_zero_length_merges_nodes(self):
        # down*'s target is a wildcard, so merging it onto the p-node works.
        pattern = compile_pattern(parse_path("down[p]/down*"))
        built = instantiate(pattern, {(1, 0): 0}, "z")
        assert built is not None
        tree, pos = built
        assert tree.size == 2
        assert pos[1] == pos[2]
        assert tree.label(pos[1]) == "p"

    def test_conflicting_merge_is_no_model(self):
        pattern = compile_pattern(parse_path("down[p]/down*[q]"))
        # p-node and q-node merged: two labels on one tree node — skipped.
        assert pattern.labels[1] == frozenset({"p"})
        assert pattern.labels[2] == frozenset({"q"})
        assert instantiate(pattern, {(1, 0): 0}, "z") is None

    def test_chain_interiors_carry_the_fill_label(self):
        pattern = compile_pattern(parse_path("down*[p]"))
        built = instantiate(pattern, {(0, 0): 3}, "z")
        assert built is not None
        tree, pos = built
        assert tree.size == 4
        assert [tree.label(n) for n in range(4)] == ["z", "z", "z", "p"]
        assert pos[pattern.out] == 3


# ------------------------------------------------------- verdict unit table


class TestVerdicts:
    @pytest.mark.parametrize("alpha, beta, contained", [
        ("down[p]", "down", True),
        ("down", "down[p]", False),
        ("down/down", "down*", True),
        ("down*", "down/down", False),
        ("down[p]/down[q]", "down/down[q]", True),
        ("down[p and q]", "down[p]", True),   # conflicted α: vacuous
        ("down[<down[p]>]/down", "down/down", True),
        ("down/down", "down[<down>]/down", True),
        ("down*[p]", "down*", True),
        ("down*", "down*[p]", False),
        ("down/down*", "down*", True),
        ("down*", "down/down*", False),       # length-0 expansion
        ("down[p][q]", "down[q][p]", True),
        ("down[<down[p]/down[q]>]", "down[<down/down[q]>]", True),
        ("down[<down[p]/down[q]>]", "down[<down[q]/down[p]>]", False),
    ])
    def test_containment_verdict(self, alpha, beta, contained):
        result = contains(parse_path(alpha), parse_path(beta),
                          method="patterns")
        assert result.conclusive
        assert result.contained is contained, (alpha, beta)

    def test_counterexample_pairs_reverify_through_a_plan(self):
        alpha, beta = parse_path("down*"), parse_path("down[p]/down")
        result = contains(alpha, beta, method="patterns")
        assert result.verdict is Verdict.SATISFIABLE
        tree, (source, target) = (result.counterexample,
                                  result.counterexample_pair)
        in_alpha, in_beta = compile_plan(alpha, beta).run(TreeContext(tree))
        assert target in in_alpha.get(source, frozenset())
        assert target not in in_beta.get(source, frozenset())

    def test_sat_witness_reverifies_through_a_plan(self):
        phi = parse_node("p and <down*[q and <down[r]>]>")
        result = satisfiable(phi, method="patterns")
        assert result.verdict is Verdict.SATISFIABLE
        satisfied = compile_plan(phi).run_single(TreeContext(result.witness))
        assert result.witness_node in satisfied

    def test_conflicted_node_expression_is_unsat(self):
        result = satisfiable(parse_node("p and q"), method="patterns")
        assert result.verdict is Verdict.UNSATISFIABLE
        assert result.conclusive


class TestSchemaSat:
    def test_dtd_restricts_labels(self):
        dtd = EDTD.from_rules({"a": "b*", "b": "c?", "c": "eps"}, "a")
        sat = satisfiable(parse_node("<down/down[c]>"), edtd=dtd,
                          method="patterns")
        assert sat.verdict is Verdict.SATISFIABLE
        assert dtd.conforms(sat.witness)
        unsat = satisfiable(parse_node("a and <down[c]>"), edtd=dtd,
                            method="patterns")
        assert unsat.verdict is Verdict.UNSATISFIABLE

    def test_book_dtd_witness_conforms(self):
        book = book_edtd()
        phi = parse_node("<down[Chapter]/down[Section]/down[Paragraph]>")
        result = satisfiable(phi, edtd=book, method="patterns")
        assert result.verdict is Verdict.SATISFIABLE
        assert book.conforms(result.witness)
        satisfied = compile_plan(phi).run_single(TreeContext(result.witness))
        assert result.witness_node in satisfied

    def test_edtd_projection_depth_bound(self):
        # §2.1: sections nested at most 3 deep, all projecting to "s".
        edtd = nested_sections_edtd(3)
        ok = satisfiable(parse_node("s and <down/down[s]>"), edtd=edtd,
                         method="patterns")
        assert ok.verdict is Verdict.SATISFIABLE
        too_deep = satisfiable(parse_node("<down/down/down[s]>"), edtd=edtd,
                               method="patterns")
        assert too_deep.verdict is Verdict.UNSATISFIABLE

    def test_descendant_threads_through_recursion(self):
        dtd = EDTD.from_rules({"a": "a? b?", "b": "eps"}, "a")
        result = satisfiable(parse_node("<down*[b]> and <down[a]>"),
                             edtd=dtd, method="patterns")
        assert result.verdict is Verdict.SATISFIABLE
        assert dtd.conforms(result.witness)

    def test_session_reuses_pattern_tables(self):
        from repro.analysis.session import reset_sessions, session_for
        reset_sessions()
        dtd = EDTD.from_rules({"a": "b*", "b": "eps"}, "a")
        satisfiable(parse_node("<down[b]>"), edtd=dtd, method="patterns")
        satisfiable(parse_node("a and <down[b]>"), edtd=dtd,
                    method="patterns")
        problem = Problem(ProblemKind.SATISFIABILITY,
                          phi=parse_node("<down[b]>"), edtd=dtd).canonical()
        session = session_for(problem)
        # Realizability tables live on the compile-once schema artifact
        # (built at most once per schema); the per-pattern cover memos
        # stay session state.
        tables = session.compiled.schema_tables()
        assert tables is session.compiled.schema_tables()
        assert any(key[0] == "cover" for key in session.pattern_cache)
        assert session.stats()["pattern_entries"] >= 2
        reset_sessions()


# ---------------------------------------------- boundary fallthrough (sat.)


#: Out-of-fragment constructs: (kind, expressions...) — each must be
#: declined by ``patterns`` and decided identically by ``automata``.
BOUNDARY_CASES = [
    ("sat", "not p"),
    ("sat", "<up/down[p]>"),
    ("sat", "<right[p]>"),
    ("sat", "<down[not p]>"),
    ("sat", "<down[p] union down[q]>"),
    ("sat", "<(down/down)*[p]>"),
    ("sat", "<down[eq(down, down[p])]>"),
    ("contains", "down[not p]", "down"),
    ("contains", "down union down/down", "down*"),
    ("contains", "down[eq(down, down/down)]", "down"),
    ("contains", "up", "up*"),
    ("contains", "(down/down)*", "down*"),
    ("contains", "down[<right>]", "down"),
]


class TestBoundaryFallthrough:
    """Satellite: each excluded construct is declined by ``patterns`` and
    falls through to ``automata`` with an identical verdict."""

    @pytest.mark.parametrize("case", BOUNDARY_CASES,
                             ids=[" ".join(c) for c in BOUNDARY_CASES])
    def test_declined_and_identical_to_automata(self, case):
        if case[0] == "sat":
            exprs = {"phi": parse_node(case[1])}
            problem = Problem(ProblemKind.SATISFIABILITY, **exprs)
            run = lambda method: satisfiable(exprs["phi"], method=method,
                                             stats=True)  # noqa: E731
        else:
            exprs = {"alpha": parse_path(case[1]), "beta": parse_path(case[2])}
            problem = Problem(ProblemKind.CONTAINMENT, **exprs)
            run = lambda method: contains(exprs["alpha"], exprs["beta"],
                                          method=method, stats=True)  # noqa: E731
        assert not PatternsEngine().admits(problem.canonical())
        with pytest.raises(EngineDeclined):
            run("patterns")
        auto = run("auto")
        try:
            automata = run("automata")
        except EngineDeclined:
            # The 2ATA engine may itself guard-decline at runtime; the
            # fallthrough contract is then about auto dispatch alone.
            automata = None
        if automata is not None:
            assert auto.verdict == automata.verdict, case
        by_name = {c["name"]: c
                   for c in auto.stats["meta"]["engine_decision"]["candidates"]}
        assert by_name["patterns"]["admits"] is False
        assert "error" not in by_name["patterns"]
        assert auto.stats["meta"]["engine"] != "patterns"


# ------------------------------------------------------ differential sweeps


LABELS = ["p", "q"]


def _random_predicate(rng):
    roll = rng.random()
    if roll < 0.6:
        return Label(rng.choice(LABELS))
    if roll < 0.85:
        inner = AxisStep(Axis.DOWN)
        if rng.random() < 0.5:
            inner = Filter(inner, Label(rng.choice(LABELS)))
        return SomePath(inner)
    return And(Label(rng.choice(LABELS)), _random_predicate(rng))


def _random_pattern_path(rng, flexible_budget):
    steps = []
    for _ in range(rng.randint(1, 2)):
        if flexible_budget[0] > 0 and rng.random() < 0.4:
            flexible_budget[0] -= 1
            step = AxisClosure(Axis.DOWN)
        else:
            step = AxisStep(Axis.DOWN)
        if rng.random() < 0.5:
            step = Filter(step, _random_predicate(rng))
        steps.append(step)
    path = steps[0]
    for step in steps[1:]:
        path = Seq(path, step)
    return path


def _random_pattern_node(rng):
    phi = SomePath(_random_pattern_path(rng, [1]))
    if rng.random() < 0.5:
        phi = And(Label(rng.choice(LABELS)), phi)
    return phi


class TestDifferentialSweep:
    """≥200 randomized positive downward patterns, with and without a DTD:
    the polynomial engine agrees with the conclusive engines everywhere
    and never contradicts a bounded-search witness."""

    def test_containment_against_expspace_and_bounded(self):
        rng = random.Random(0xC0DE)
        for _ in range(60):
            alpha = _random_pattern_path(rng, [1])
            beta = _random_pattern_path(rng, [1])
            fast = contains(alpha, beta, method="patterns")
            assert fast.conclusive
            slow = contains(alpha, beta, method="expspace")
            assert fast.verdict == slow.verdict, \
                (to_source(alpha), to_source(beta))
            bounded = contains(alpha, beta, method="bounded", max_nodes=4)
            if bounded.verdict is Verdict.SATISFIABLE:
                assert fast.verdict is Verdict.SATISFIABLE, \
                    (to_source(alpha), to_source(beta))
            if fast.verdict is Verdict.SATISFIABLE:
                tree, (source, target) = (fast.counterexample,
                                          fast.counterexample_pair)
                in_alpha, in_beta = compile_plan(alpha, beta).run(
                    TreeContext(tree))
                assert target in in_alpha.get(source, frozenset())
                assert target not in in_beta.get(source, frozenset())

    def test_containment_against_automata(self):
        # The 2ATA engine is slow (and guard-declines) on larger pattern
        # pairs, so this leg of the sweep sticks to single-step shapes.
        pairs = [
            ("down", "down"),
            ("down[p]", "down"),
            ("down", "down[p]"),
            ("down*", "down"),
            ("down", "down*"),
            ("down*[p]", "down*"),
            ("down[p]", "down[q]"),
            ("down*", "down*[p]"),
        ]
        compared = 0
        for alpha_src, beta_src in pairs:
            alpha, beta = parse_path(alpha_src), parse_path(beta_src)
            fast = contains(alpha, beta, method="patterns")
            try:
                slow = contains(alpha, beta, method="automata")
            except EngineDeclined:
                continue
            compared += 1
            assert fast.verdict == slow.verdict, (alpha_src, beta_src)
        assert compared >= 5

    def test_satisfiability_schemaless(self):
        rng = random.Random(0x5A7)
        for _ in range(60):
            phi = _random_pattern_node(rng)
            fast = satisfiable(phi, method="patterns")
            slow = satisfiable(phi, method="expspace")
            assert fast.verdict == slow.verdict, to_source(phi)
            if fast.verdict is Verdict.SATISFIABLE:
                satisfied = compile_plan(phi).run_single(
                    TreeContext(fast.witness))
                assert fast.witness_node in satisfied, to_source(phi)

    def test_satisfiability_under_a_dtd(self):
        rng = random.Random(0xD7D)
        dtd = EDTD.from_rules({"a": "b* c?", "b": "c? b?", "c": "eps"}, "a")
        LABELS[:] = ["a", "b", "c"]
        try:
            for _ in range(80):
                phi = _random_pattern_node(rng)
                fast = satisfiable(phi, edtd=dtd, method="patterns")
                slow = satisfiable(phi, edtd=dtd, method="expspace")
                assert fast.verdict == slow.verdict, to_source(phi)
                if fast.verdict is Verdict.SATISFIABLE:
                    assert dtd.conforms(fast.witness), to_source(phi)
                    satisfied = compile_plan(phi).run_single(
                        TreeContext(fast.witness))
                    assert fast.witness_node in satisfied, to_source(phi)
        finally:
            LABELS[:] = ["p", "q"]


# -------------------------------------------------------------- dispatch


class TestDispatchIntegration:
    def test_patterns_is_the_cheapest_registered_engine(self):
        problem = Problem(ProblemKind.CONTAINMENT,
                          alpha=parse_path("down[p]"),
                          beta=parse_path("down"))
        candidates = default_registry().candidates(problem)
        assert candidates[0].name == "patterns"
        assert candidates[0].cost_hint < default_registry().get(
            "automata").cost_hint

    def test_auto_dispatch_picks_patterns_on_fragment(self):
        result = contains(parse_path("down[p]"), parse_path("down"),
                          stats=True)
        assert result.stats["meta"]["engine"] == "patterns"
        assert result.conclusive

    def test_counters_are_recorded(self):
        with obs.record("run") as recording:
            contains(parse_path("down[p]/down*"), parse_path("down/down*"),
                     method="patterns")
        counters = recording.counters
        assert counters.get("patterns.admitted") == 1
        assert counters.get("patterns.embeddings", 0) >= 1
        assert counters.get("patterns.table_cells", 0) >= 1

    def test_equivalence_routes_directions_through_patterns(self):
        from repro.analysis import equivalent
        result = equivalent(parse_path("down[p][q]"), parse_path("down[q][p]"),
                            stats=True)
        assert result.verdict is Verdict.UNSATISFIABLE
        assert result.conclusive
        assert result.stats["counters"].get("dispatch.patterns") == 2
