"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, load_schema, main


@pytest.fixture
def schema_file(tmp_path):
    path = tmp_path / "book.schema"
    path.write_text(
        "# the paper's book schema\n"
        "Book = Chapter+\n"
        "Chapter = Section+\n"
        "Section = (Section | Paragraph | Image)+\n"
        "Paragraph = eps\n"
        "Image = eps\n"
    )
    return str(path)


@pytest.fixture
def edtd_file(tmp_path):
    path = tmp_path / "sections.schema"
    path.write_text(
        "s1 = s2?\n"
        "s2 = eps\n"
        "%projection\n"
        "s1 -> s\n"
        "s2 -> s\n"
    )
    return str(path)


DOC = "<Book><Chapter><Section><Image/></Section></Chapter></Book>"


class TestSchemaLoading:
    def test_dtd(self, schema_file):
        schema = load_schema(schema_file)
        assert schema.root_type == "Book"
        assert schema.is_dtd

    def test_edtd_projection(self, edtd_file):
        schema = load_schema(edtd_file)
        assert not schema.is_dtd
        assert schema.projection["s1"] == "s"

    def test_bad_rule(self, tmp_path):
        bad = tmp_path / "bad.schema"
        bad.write_text("no separator here\n")
        with pytest.raises(ValueError):
            load_schema(str(bad))

    def test_empty_schema(self, tmp_path):
        empty = tmp_path / "empty.schema"
        empty.write_text("# nothing\n")
        with pytest.raises(ValueError):
            load_schema(str(empty))


class TestCommands:
    def test_evaluate(self, capsys):
        code = main(["evaluate", "down*[Image]", "--xml", DOC, "--from", "0"])
        assert code == 0
        assert "from node 0: [3]" in capsys.readouterr().out

    def test_evaluate_all_sources(self, capsys):
        main(["evaluate", "down", "--xml", DOC])
        out = capsys.readouterr().out
        assert "0 -> [1]" in out

    def test_satisfiable_positive(self, capsys):
        code = main(["satisfiable", "p and <down[q]>"])
        assert code == 0
        out = capsys.readouterr().out
        assert "satisfiable" in out
        assert "witness" in out

    def test_satisfiable_conclusive_negative(self, capsys):
        code = main(["satisfiable", "<down[p] intersect down[q]>"])
        assert code == 0
        assert "unsatisfiable" in capsys.readouterr().out

    def test_satisfiable_inconclusive(self, capsys):
        # Forced bounded search: auto dispatch would hand this to the
        # automata engine and decide it conclusively.
        code = main(["satisfiable", "<up> and not <up>", "--max-nodes", "3",
                     "--engine", "bounded"])
        assert code == 2

    def test_satisfiable_with_schema(self, capsys, schema_file):
        code = main(["satisfiable", "Paragraph and <down>",
                     "--schema", schema_file])
        assert code == 0
        assert "unsatisfiable" in capsys.readouterr().out

    def test_contains_positive(self, capsys):
        code = main(["contains", "down[p]", "down"])
        assert code == 0
        assert "contained: True" in capsys.readouterr().out

    def test_contains_negative_exits_1(self, capsys):
        code = main(["contains", "down", "down[p]"])
        assert code == 1
        assert "counterexample" in capsys.readouterr().out

    def test_validate(self, capsys, schema_file):
        assert main(["validate", "--schema", schema_file, "--xml", DOC]) == 0
        assert "valid" in capsys.readouterr().out
        bad = "<Book><Image/></Book>"
        assert main(["validate", "--schema", schema_file, "--xml", bad]) == 1
        assert "INVALID" in capsys.readouterr().out

    def test_translate_for(self, capsys):
        code = main(["translate", "down* except down[p]", "--to", "for"])
        assert code == 0
        assert "for $" in capsys.readouterr().out

    def test_translate_eq(self, capsys):
        code = main(["translate", "down intersect down[p]", "--to", "eq"])
        assert code == 0
        out = capsys.readouterr().out
        assert "intersect" not in out
        assert "eq(" in out

    def test_translate_official(self, capsys):
        code = main(["translate", "down*[p] intersect down", "--to", "official"])
        assert code == 0
        out = capsys.readouterr().out
        assert "descendant-or-self::*" in out
        assert "intersect" in out

    def test_translate_normal_form(self, capsys):
        code = main(["translate", "eq(down, down)", "--to", "normal-form"])
        assert code == 0
        assert "NFLoop" in capsys.readouterr().out

    def test_show(self, capsys):
        code = main(["show", "down intersect down[p]"])
        assert code == 0
        out = capsys.readouterr().out
        assert "CoreXPath↓(∩)" in out
        assert "size: 5" in out

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_official_axis_syntax(self, capsys):
        code = main(["contains", "child::a", "descendant::a"])
        assert code == 0
        assert "contained: True" in capsys.readouterr().out


class TestStreamsAndExitCodes:
    """The stream contract: answers on stdout, diagnostics on stderr."""

    def test_verdict_on_stdout_only(self, capsys):
        assert main(["satisfiable", "p"]) == 0
        captured = capsys.readouterr()
        assert "verdict: satisfiable" in captured.out
        assert captured.err == ""

    def test_parse_error_on_stderr_exit_2(self, capsys):
        code = main(["satisfiable", "<<<not an expression"])
        assert code == 2
        captured = capsys.readouterr()
        assert "error:" in captured.err
        assert captured.out == ""

    def test_bad_schema_file_on_stderr_exit_2(self, capsys, tmp_path):
        bad = tmp_path / "bad.schema"
        bad.write_text("no separator here\n")
        code = main(["satisfiable", "p", "--schema", str(bad)])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_inconclusive_warns_on_stderr_exit_2(self, capsys):
        """Bound-exhausted 'no witness' is ambiguous: non-zero exit plus a
        stderr warning, never a bare success."""
        code = main(["satisfiable", "<up> and not <up>", "--max-nodes", "3",
                     "--engine", "bounded"])
        assert code == 2
        captured = capsys.readouterr()
        assert "no-witness-within-bound" in captured.out
        assert "warning:" in captured.err
        assert "not a proof" in captured.err

    def test_contains_inconclusive_exit_2(self, capsys):
        code = main(["contains", "up", "up", "--max-nodes", "2",
                     "--engine", "bounded"])
        assert code == 2
        captured = capsys.readouterr()
        assert "conclusive: False" in captured.out
        assert "warning:" in captured.err


class TestEngineErrorPaths:
    """Satellite contract: a forced engine that declines, raises, or does
    not exist is a diagnostic on stderr and exit code 2 — never a
    traceback on either stream."""

    # Enough distinct modal atoms that the EXPSPACE engine's memory guard
    # declines at runtime (candidate space > 60k types).
    TOO_BIG = " and ".join(f"<down[p{i}]>" for i in range(12))

    def test_unknown_engine_name_exits_2(self, capsys):
        code = main(["satisfiable", "p", "--engine", "warp-drive"])
        assert code == 2
        captured = capsys.readouterr()
        assert "error:" in captured.err
        assert "warp-drive" in captured.err
        assert "Traceback" not in captured.err
        assert captured.out == ""

    def test_runtime_decline_honors_exit_contract(self, capsys):
        code = main(["satisfiable", self.TOO_BIG, "--engine", "expspace"])
        assert code == 2
        captured = capsys.readouterr()
        assert "error:" in captured.err
        assert "declined" in captured.err
        assert "Traceback" not in captured.err
        assert captured.out == ""

    def test_forced_engine_exception_exits_2(self, capsys):
        from repro.analysis import default_registry
        from repro.analysis.registry import Engine

        class Explodes(Engine):
            name = "test-cli-explodes"

            def admits(self, problem):
                return True

            def solve(self, problem, session=None):
                raise RuntimeError("catastrophic engine bug")

        default_registry().register(Explodes())
        try:
            code = main(["satisfiable", "p", "--engine", "test-cli-explodes"])
        finally:
            default_registry()._engines.pop("test-cli-explodes", None)
        assert code == 2
        captured = capsys.readouterr()
        assert "error: RuntimeError: catastrophic engine bug" in captured.err
        assert "Traceback" not in captured.err
        assert captured.out == ""

    def test_auto_dispatch_still_answers_declined_input(self, capsys):
        # Without forcing, the guard's decline falls through to the bounded
        # engine: the same input yields a clean (inconclusive) verdict, not
        # an error.  The ``not q`` keeps the instance outside the patterns
        # fragment, which would otherwise answer it conclusively.
        code = main(["satisfiable", self.TOO_BIG + " and not q",
                     "--max-nodes", "2"])
        captured = capsys.readouterr()
        assert code == 2  # bound too small for a witness — but no crash
        assert "no-witness-within-bound" in captured.out
        assert "warning:" in captured.err
        assert "error:" not in captured.err


class TestBatchCommand:
    def _write_corpus(self, tmp_path):
        lines = [
            {"id": "c1", "kind": "contains", "alpha": "down[p]",
             "beta": "down"},
            {"id": "s1", "kind": "satisfiable", "expr": "p and <down[q]>"},
            {"id": "c2", "kind": "contains", "alpha": "down",
             "beta": "down[p]", "max_nodes": 3},
        ]
        path = tmp_path / "corpus.jsonl"
        path.write_text("# comment line\n" + "\n".join(
            __import__("json").dumps(line) for line in lines) + "\n")
        return path

    def _records(self, out):
        import json
        return {record["id"]: record
                for record in map(json.loads, out.splitlines())}

    def test_batch_happy_path_and_warm_cache(self, capsys, tmp_path):
        corpus = self._write_corpus(tmp_path)
        argv = ["batch", str(corpus), "--workers", "2",
                "--cache-dir", str(tmp_path / "cache")]
        assert main(argv) == 0
        captured = capsys.readouterr()
        records = self._records(captured.out)
        assert records["c1"]["verdict"] == "unsatisfiable"
        assert records["c1"]["contained"] is True
        assert records["c2"]["contained"] is False
        assert records["c2"]["counterexample_pair"] is not None
        assert records["s1"]["verdict"] == "satisfiable"
        assert all(record["cache"] == "miss" for record in records.values())
        assert "3 problems" in captured.err

        assert main(argv) == 0  # warm run: every verdict from the cache
        captured = capsys.readouterr()
        records = self._records(captured.out)
        assert all(record["cache"] == "hit" for record in records.values())
        assert "3 cache hits" in captured.err

    def test_batch_output_file_and_stdin(self, capsys, tmp_path, monkeypatch):
        import io
        import json
        monkeypatch.setattr(
            "sys.stdin",
            io.StringIO('{"kind": "satisfiable", "expr": "p"}\n'))
        out = tmp_path / "answers.jsonl"
        code = main(["batch", "-", "--no-cache", "--workers", "1",
                     "--output", str(out)])
        assert code == 0
        assert capsys.readouterr().out == ""  # answers went to the file
        [record] = [json.loads(line)
                    for line in out.read_text().splitlines()]
        assert record["verdict"] == "satisfiable"

    def test_batch_bad_line_exits_2_with_error_record(self, capsys, tmp_path):
        corpus = tmp_path / "bad.jsonl"
        corpus.write_text(
            'not json at all\n'
            '{"kind": "contains", "alpha": "down[p]", "beta": "down"}\n')
        code = main(["batch", str(corpus), "--no-cache", "--workers", "1"])
        assert code == 2
        captured = capsys.readouterr()
        records = self._records(captured.out)
        assert "invalid JSON" in records[1]["error"]
        # The good line is still decided.
        good = next(r for r in records.values() if "verdict" in r)
        assert good["verdict"] == "unsatisfiable"
        assert "1 bad input lines" in captured.err

    def test_batch_unknown_engine_flag_exits_2(self, capsys, tmp_path):
        corpus = self._write_corpus(tmp_path)
        code = main(["batch", str(corpus), "--engine", "warp-drive"])
        assert code == 2
        captured = capsys.readouterr()
        assert "error:" in captured.err
        assert "warp-drive" in captured.err

    def test_batch_unknown_engine_on_a_line_is_line_scoped(self, capsys,
                                                           tmp_path):
        corpus = tmp_path / "corpus.jsonl"
        corpus.write_text(
            '{"kind": "satisfiable", "expr": "p", "engine": "warp-drive"}\n'
            '{"kind": "satisfiable", "expr": "p"}\n')
        code = main(["batch", str(corpus), "--no-cache", "--workers", "1"])
        assert code == 2
        records = self._records(capsys.readouterr().out)
        assert "unknown engine" in records[1]["error"]
        good = next(r for r in records.values() if "verdict" in r)
        assert good["verdict"] == "satisfiable"

    def test_batch_engine_flag_has_single_problem_semantics(self, capsys,
                                                            tmp_path):
        """``batch --engine`` forces the same engine a single-problem
        ``satisfiable --engine`` call would use: under auto dispatch the ↑
        axis goes to the automata engine and is decided conclusively, under
        a forced bounded search the very same line stays inconclusive.

        Pinned to ``--passes basic``: the full rewrite pipeline collapses
        ``<up> and not <up>`` to ``false`` before dispatch, at which point
        the (cheaper) expspace engine rightly takes the ↑-free residue."""
        corpus = tmp_path / "corpus.jsonl"
        corpus.write_text('{"kind": "satisfiable", "id": "s", '
                          '"expr": "<up> and not <up>", "max_nodes": 3}\n')
        assert main(["batch", str(corpus), "--no-cache", "--workers", "1",
                     "--passes", "basic"]) == 0
        auto = self._records(capsys.readouterr().out)["s"]
        assert auto["verdict"] == "unsatisfiable"
        assert auto["engine"] == "automata"
        assert main(["batch", str(corpus), "--no-cache",
                     "--workers", "1"]) == 0
        full = self._records(capsys.readouterr().out)["s"]
        assert full["verdict"] == "unsatisfiable"
        assert full["engine"] == "expspace"
        assert main(["batch", str(corpus), "--no-cache", "--workers", "1",
                     "--engine", "bounded"]) == 0
        forced = self._records(capsys.readouterr().out)["s"]
        assert forced["verdict"] == "no-witness-within-bound"
        assert forced["engine"] == "bounded"

    def test_batch_stats_flag_reports_run(self, capsys, tmp_path):
        corpus = self._write_corpus(tmp_path)
        code = main(["batch", str(corpus), "--no-cache", "--workers", "2",
                     "--stats"])
        assert code == 0
        captured = capsys.readouterr()
        assert "== run: batch ==" in captured.err
        assert "batch.problems" in captured.err

    def test_batch_trace_merges_worker_processes(self, capsys, tmp_path):
        from repro.obs import traceout

        lines = [
            {"id": f"s{i}", "kind": "satisfiable",
             "expr": f"p{i} and <down[q{i}]>"}
            for i in range(6)
        ]
        corpus = tmp_path / "corpus.jsonl"
        corpus.write_text("\n".join(json.dumps(line) for line in lines))
        out = tmp_path / "trace.json"
        code = main(["batch", str(corpus), "--no-cache", "--workers", "2",
                     "--trace", str(out)])
        assert code == 0
        payload = json.loads(out.read_text())
        assert traceout.validate_trace(payload) == []
        # One merged timeline: coordinator lanes plus >= 2 worker processes.
        assert len(traceout.worker_pids(payload)) >= 2
        lanes = traceout.events_by_lane(payload)
        assert (0, 0) in lanes
        assert any(tid == "problem[0]" for pid, tid in lanes if pid == 0)

    def test_batch_trace_renders_cache_hits(self, capsys, tmp_path):
        from repro.obs import traceout

        corpus = tmp_path / "corpus.jsonl"
        corpus.write_text(json.dumps(
            {"id": "s", "kind": "satisfiable", "expr": "p"}))
        cache_dir = str(tmp_path / "cache")
        out = tmp_path / "trace.json"
        assert main(["batch", str(corpus), "--cache-dir", cache_dir,
                     "--workers", "1"]) == 0
        assert main(["batch", str(corpus), "--cache-dir", cache_dir,
                     "--workers", "1", "--trace", str(out)]) == 0
        capsys.readouterr()
        payload = json.loads(out.read_text())
        assert traceout.validate_trace(payload) == []
        hits = [run for run in payload["otherData"]["runs"]
                if run.get("name") == "cache.hit"]
        assert hits and hits[0]["counters"]["cache.hit"] == 1
        probe_names = {event["name"]
                       for event in payload["traceEvents"]
                       if event.get("ph") == "X" and event["pid"] == 0}
        assert "cache.probe" in probe_names


class TestStatsFlags:
    def test_stats_goes_to_stderr(self, capsys):
        code = main(["satisfiable", "self::a", "--stats"])
        assert code == 0
        captured = capsys.readouterr()
        assert "verdict: satisfiable" in captured.out
        assert "== run: satisfiable ==" in captured.err
        assert "engine:" in captured.err
        assert "counters:" in captured.err
        assert "== run" not in captured.out

    def test_trace_file_is_chrome_format(self, capsys, tmp_path):
        import json

        from repro.obs import traceout

        out = tmp_path / "trace.json"
        code = main(["contains", "child::a", "descendant::a",
                     "--stats", "--trace", str(out)])
        assert code == 0
        payload = json.loads(out.read_text())
        assert traceout.validate_trace(payload) == []
        # The machine-readable RunRecord rides along under otherData.runs.
        run = payload["otherData"]["runs"][0]
        assert run["meta"]["engine"] in ("patterns", "expspace", "bounded")
        assert run["meta"]["verdict"] == "unsatisfiable"
        assert len(run["counters"]) >= 3
        timed = [event for event in payload["traceEvents"]
                 if event["ph"] == "X" and event["dur"] >= 0]
        assert len(timed) >= 3

    def test_trace_json_alias_keeps_working(self, capsys, tmp_path):
        import json

        out = tmp_path / "trace.json"
        code = main(["satisfiable", "self::a", "--trace-json", str(out)])
        assert code == 0
        payload = json.loads(out.read_text())
        assert "traceEvents" in payload
        assert payload["otherData"]["runs"][0]["meta"]["verdict"] \
            == "satisfiable"

    def test_trace_dash_to_stderr(self, capsys):
        code = main(["satisfiable", "p", "--trace", "-"])
        assert code == 0
        captured = capsys.readouterr()
        assert '"traceEvents"' in captured.err
        assert '"traceEvents"' not in captured.out

    def test_stats_off_leaves_result_clean(self, capsys):
        assert main(["satisfiable", "p"]) == 0
        assert "== run" not in capsys.readouterr().err
