"""Shared test utilities: random expression generators and comparisons."""

from __future__ import annotations

import random

from repro.xpath.ast import (
    And,
    Axis,
    AxisClosure,
    AxisStep,
    Complement,
    Filter,
    ForLoop,
    Intersect,
    Label,
    NodeExpr,
    Not,
    PathEquality,
    PathExpr,
    Self,
    Seq,
    SomePath,
    Star,
    Top,
    Union,
)

DEFAULT_LABELS = ("p", "q")


def random_path(rng: random.Random, depth: int,
                operators: frozenset[str] = frozenset(),
                axes: tuple[Axis, ...] = tuple(Axis),
                labels: tuple[str, ...] = DEFAULT_LABELS) -> PathExpr:
    """A random path expression of bounded syntax-tree depth using only the
    given extension operators ('eq', 'cap', 'minus', 'star', 'for')."""
    if depth <= 0:
        choice = rng.randrange(3)
        if choice == 0:
            return AxisStep(rng.choice(axes))
        if choice == 1:
            return AxisClosure(rng.choice(axes))
        return Self()
    options = ["axis", "axis_star", "self", "seq", "union", "filter"]
    if "cap" in operators:
        options.append("cap")
    if "minus" in operators:
        options.append("minus")
    if "star" in operators:
        options.append("star")
    kind = rng.choice(options)
    if kind == "axis":
        return AxisStep(rng.choice(axes))
    if kind == "axis_star":
        return AxisClosure(rng.choice(axes))
    if kind == "self":
        return Self()
    if kind == "seq":
        return Seq(random_path(rng, depth - 1, operators, axes, labels),
                   random_path(rng, depth - 1, operators, axes, labels))
    if kind == "union":
        return Union(random_path(rng, depth - 1, operators, axes, labels),
                     random_path(rng, depth - 1, operators, axes, labels))
    if kind == "filter":
        return Filter(random_path(rng, depth - 1, operators, axes, labels),
                      random_node(rng, depth - 1, operators, axes, labels))
    if kind == "cap":
        return Intersect(random_path(rng, depth - 1, operators, axes, labels),
                         random_path(rng, depth - 1, operators, axes, labels))
    if kind == "minus":
        return Complement(random_path(rng, depth - 1, operators, axes, labels),
                          random_path(rng, depth - 1, operators, axes, labels))
    return Star(random_path(rng, depth - 1, operators, axes, labels))


def random_node(rng: random.Random, depth: int,
                operators: frozenset[str] = frozenset(),
                axes: tuple[Axis, ...] = tuple(Axis),
                labels: tuple[str, ...] = DEFAULT_LABELS) -> NodeExpr:
    """A random node expression of bounded depth."""
    if depth <= 0:
        return Label(rng.choice(labels)) if rng.random() < 0.8 else Top()
    options = ["label", "top", "not", "and", "some"]
    if "eq" in operators:
        options.append("eq")
    kind = rng.choice(options)
    if kind == "label":
        return Label(rng.choice(labels))
    if kind == "top":
        return Top()
    if kind == "not":
        return Not(random_node(rng, depth - 1, operators, axes, labels))
    if kind == "and":
        return And(random_node(rng, depth - 1, operators, axes, labels),
                   random_node(rng, depth - 1, operators, axes, labels))
    if kind == "some":
        return SomePath(random_path(rng, depth - 1, operators, axes, labels))
    return PathEquality(random_path(rng, depth - 1, operators, axes, labels),
                        random_path(rng, depth - 1, operators, axes, labels))


def relation_as_pairs(relation) -> frozenset[tuple[int, int]]:
    return frozenset(
        (source, target)
        for source, targets in relation.items()
        for target in targets
    )
