"""Tests for the XPath AST, parser, printers, and measures (§2.2, §2.3)."""

import random

import pytest

from repro.xpath import (
    Axis,
    AxisClosure,
    AxisStep,
    Complement,
    Filter,
    ForLoop,
    Intersect,
    Label,
    Not,
    PathEquality,
    Self,
    Seq,
    SomePath,
    Star,
    Top,
    Union,
    VarIs,
    XPathSyntaxError,
    axes_used,
    direct_intersection_depth,
    free_variables,
    intersection_depth,
    labels_used,
    operators_used,
    parse_node,
    parse_path,
    size,
    to_paper,
    to_source,
)
from repro.xpath.builders import (
    bottom,
    down,
    down_plus,
    every,
    following,
    iff,
    implies,
    or_,
    preceding,
    repeat,
    seq_all,
    union_all,
)

from .helpers import random_node, random_path


class TestParser:
    @pytest.mark.parametrize("source, expected", [
        ("down", AxisStep(Axis.DOWN)),
        ("up*", AxisClosure(Axis.UP)),
        (".", Self()),
        ("down/up", Seq(AxisStep(Axis.DOWN), AxisStep(Axis.UP))),
        ("down union right", Union(AxisStep(Axis.DOWN), AxisStep(Axis.RIGHT))),
        ("down intersect up", Intersect(AxisStep(Axis.DOWN), AxisStep(Axis.UP))),
        ("down except up", Complement(AxisStep(Axis.DOWN), AxisStep(Axis.UP))),
        ("down[p]", Filter(AxisStep(Axis.DOWN), Label("p"))),
        ("(down)*", Star(AxisStep(Axis.DOWN))),
        ("down+", Seq(AxisStep(Axis.DOWN), AxisClosure(Axis.DOWN))),
    ])
    def test_path_forms(self, source, expected):
        assert parse_path(source) == expected

    def test_for_loop(self):
        parsed = parse_path("for $x in down return down[. is $x]")
        assert parsed == ForLoop(
            "x", AxisStep(Axis.DOWN),
            Filter(AxisStep(Axis.DOWN), VarIs("x")),
        )

    @pytest.mark.parametrize("source, expected", [
        ("p", Label("p")),
        ("true", Top()),
        ("false", Not(Top())),
        ("not p", Not(Label("p"))),
        ("p and q", Label("p") & Label("q")),
        ("<down>", SomePath(AxisStep(Axis.DOWN))),
        ("eq(down, up)", PathEquality(AxisStep(Axis.DOWN), AxisStep(Axis.UP))),
        (". is $v", VarIs("v")),
    ])
    def test_node_forms(self, source, expected):
        assert parse_node(source) == expected

    def test_or_expands(self):
        assert parse_node("p or q") == or_(Label("p"), Label("q"))

    def test_precedence(self):
        # '/' binds tighter than intersect, which binds tighter than except,
        # which binds tighter than union.
        parsed = parse_path("down/up intersect left union right except .")
        assert isinstance(parsed, Union)
        assert isinstance(parsed.right, Complement)
        assert isinstance(parsed.left, Intersect)
        assert isinstance(parsed.left.left, Seq)

    def test_quoted_labels(self):
        assert parse_node("'weird label'") == Label("weird label")
        assert parse_node(r"'it\'s'") == Label("it's")

    def test_keyword_labels_need_quotes(self):
        with pytest.raises(XPathSyntaxError):
            parse_node("union")
        assert parse_node("'union'") == Label("union")

    @pytest.mark.parametrize("bad", [
        "down[", "down union", "(down", "for $x down", "", "down]",
        "eq(down)", ". is x",
    ])
    def test_syntax_errors(self, bad):
        with pytest.raises(XPathSyntaxError):
            parse_path(bad)


class TestPrinterRoundtrip:
    @pytest.mark.parametrize("ops", [
        frozenset(), frozenset({"eq"}), frozenset({"cap", "star"}),
        frozenset({"minus"}),
    ])
    def test_random_paths_roundtrip(self, ops):
        rng = random.Random(17)
        for _ in range(60):
            path = random_path(rng, 3, ops)
            assert parse_path(to_source(path)) == path

    def test_random_nodes_roundtrip(self):
        rng = random.Random(18)
        for _ in range(60):
            node = random_node(rng, 3, frozenset({"eq"}))
            assert parse_node(to_source(node)) == node

    def test_for_loop_roundtrip(self):
        path = ForLoop("i", AxisStep(Axis.DOWN),
                       Filter(Self(), VarIs("i")))
        assert parse_path(to_source(path)) == path

    def test_paper_notation(self):
        assert to_paper(parse_path("down*[p] intersect up")) == "↓*[p] ∩ ↑"
        assert to_paper(parse_node("not (p and true)")) == "¬(p ∧ ⊤)"
        assert to_paper(parse_node("eq(down, .)")) == "↓ ≈ ."
        assert to_paper(parse_node("false")) == "⊥"


class TestMeasures:
    def test_size_matches_paper_definition(self):
        # ↓⁺[p ∧ ¬⟨↓[q]⟩] from §2.2: ↓/↓* (3) + filter (1) + p (1) + ∧ (1)
        # + ¬ (1) + ⟨⟩ (1) + ↓ (1) + filter (1) + q (1) = 11.
        expr = parse_path("down+[p and not <down[q]>]")
        assert size(expr) == 11

    def test_intersection_depth(self):
        assert direct_intersection_depth(parse_path("down intersect up")) == 1
        nested = parse_path("(down intersect up) intersect left")
        assert direct_intersection_depth(nested) == 2
        flat = parse_path("(down intersect up)/(down intersect up)")
        assert direct_intersection_depth(flat) == 1
        inside_filter = parse_path("down[<down intersect up>]")
        assert direct_intersection_depth(inside_filter) == 0
        assert intersection_depth(inside_filter) == 1

    def test_labels_axes_operators(self):
        expr = parse_node("eq(down*[p], right) and not q")
        assert labels_used(expr) == {"p", "q"}
        assert axes_used(expr) == {Axis.DOWN, Axis.RIGHT}
        assert operators_used(expr) == {"eq"}

    def test_free_variables(self):
        open_expr = parse_path("down[. is $x]")
        assert free_variables(open_expr) == {"x"}
        closed = parse_path("for $x in down return down[. is $x]")
        assert free_variables(closed) == frozenset()
        shadow = parse_path("for $x in down[. is $x] return .")
        assert free_variables(shadow) == {"x"}  # free in the source clause


class TestBuilders:
    def test_every_is_negated_exists(self):
        assert every(down, Label("p")) == \
            Not(SomePath(Filter(down, Not(Label("p")))))

    def test_implies_iff_bottom(self):
        p, q = Label("p"), Label("q")
        assert implies(p, q) == Not(p & Not(q))
        assert bottom == Not(Top())
        assert iff(p, q) == implies(p, q) & implies(q, p)

    def test_repeat(self):
        assert repeat(down, 0) == Self()
        assert repeat(down, 3) == Seq(Seq(down, down), down)
        with pytest.raises(ValueError):
            repeat(down, -1)

    def test_seq_union_all(self):
        assert seq_all([]) == Self()
        assert isinstance(union_all([]), Filter)  # the empty relation

    def test_following_preceding_shapes(self):
        # ↑*/→⁺/↓* with →⁺ = →/→* (right-nested composition).
        assert to_paper(following) == "↑*/(→/→*/↓*)"
        assert to_paper(preceding) == "↑*/(←/←*/↓*)"
        assert down_plus == Seq(down, AxisClosure(Axis.DOWN))


class TestOperatorSugar:
    def test_path_sugar(self):
        assert down / down == Seq(down, down)
        assert (down | down) == Union(down, down)
        assert (down & down) == Intersect(down, down)
        assert (down - down) == Complement(down, down)
        assert down["p"] == Filter(down, Label("p"))
        assert down.star() == Star(down)
        assert down.exists() == SomePath(down)

    def test_node_sugar(self):
        p = Label("p")
        assert ~p == Not(p)
        assert (p & "q") == (p & Label("q"))

    def test_variable_names_without_sigil(self):
        with pytest.raises(ValueError):
            VarIs("$x")
        with pytest.raises(ValueError):
            ForLoop("$x", down, down)
