"""Tests for EDTDs (Definition 2): conformance, typing, generation."""

import random

import pytest

from repro.edtd import (
    DTD,
    EDTD,
    ConformanceError,
    book_edtd,
    nested_sections_edtd,
    random_conforming_tree,
)
from repro.trees import XMLTree


@pytest.fixture
def book():
    return book_edtd()


class TestConformance:
    def test_paper_book_example(self, book):
        tree = XMLTree.build(
            ("Book", [("Chapter", [("Section", [
                "Paragraph", ("Section", ["Image"])
            ])])])
        )
        assert book.conforms(tree)
        book.validate(tree)  # must not raise

    def test_wrong_root(self, book):
        assert not book.conforms(XMLTree.build(("Chapter", [("Section", ["Image"])])))

    def test_empty_section_rejected(self, book):
        # Section requires (Section|Paragraph|Image)+ — at least one child.
        tree = XMLTree.build(("Book", [("Chapter", [("Section", [])])]))
        assert not book.conforms(tree)
        with pytest.raises(ConformanceError):
            book.validate(tree)

    def test_child_order_matters(self):
        schema = DTD({"a": "b c"}, root="a")
        assert schema.conforms(XMLTree.build(("a", ["b", "c"])))
        assert not schema.conforms(XMLTree.build(("a", ["c", "b"])))

    def test_witness_typing(self, book):
        tree = XMLTree.build(("Book", [("Chapter", [("Section", ["Image"])])]))
        typing = book.witness_typing(tree)
        assert typing == ["Book", "Chapter", "Section", "Image"]
        assert book.witness_typing(XMLTree.build(("Book", []))) is None


class TestExtendedDTD:
    def test_nested_sections_is_not_a_dtd(self):
        edtd = nested_sections_edtd(3)
        assert not edtd.is_dtd
        deep3 = XMLTree.build(("s", [("s", [("s", [])])]))
        deep4 = XMLTree.build(("s", [("s", [("s", [("s", [])])])]))
        assert edtd.conforms(deep3)
        assert not edtd.conforms(deep4)

    def test_typing_uses_abstract_labels(self):
        edtd = nested_sections_edtd(2)
        tree = XMLTree.build(("s", [("s", [])]))
        assert edtd.witness_typing(tree) == ["s1", "s2"]

    def test_projection_validated(self):
        with pytest.raises(ValueError):
            EDTD(frozenset({"a"}), {"a": None}, "a", {})  # type: ignore[arg-type]

    def test_unknown_content_symbol_rejected(self):
        from repro.regexes import parse_regex
        with pytest.raises(ValueError):
            EDTD(frozenset({"a"}), {"a": parse_regex("ghost")}, "a", {"a": "a"})

    def test_root_type_must_exist(self):
        from repro.regexes import parse_regex
        with pytest.raises(ValueError):
            EDTD(frozenset({"a"}), {"a": parse_regex("eps")}, "r", {"a": "a"})


class TestSizeAndNFA:
    def test_size_is_sum_of_regex_sizes(self, book):
        assert book.size() > 0
        assert book.size() == sum(
            _regex_size(book.content[label]) for label in book.abstract_labels
        )

    def test_max_nfa_states(self, book):
        assert book.max_nfa_states() >= 2

    def test_content_nfa_cached(self, book):
        assert book.content_nfa("Book") is book.content_nfa("Book")


def _regex_size(regex):
    from repro.regexes import regex_size
    return regex_size(regex)


class TestGeneration:
    def test_generated_trees_conform(self, book):
        rng = random.Random(11)
        for _ in range(30):
            tree = random_conforming_tree(book, rng, max_nodes=40)
            assert book.conforms(tree)
            assert tree.size <= 40

    def test_generated_trees_vary(self, book):
        rng = random.Random(12)
        trees = {random_conforming_tree(book, rng, max_nodes=40) for _ in range(20)}
        assert len(trees) > 1

    def test_nested_sections_generation(self):
        edtd = nested_sections_edtd(3)
        rng = random.Random(13)
        for _ in range(20):
            tree = random_conforming_tree(edtd, rng, max_nodes=10)
            assert edtd.conforms(tree)
            assert tree.height() <= 2  # at most 3 nested s-nodes
