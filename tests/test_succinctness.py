"""Tests for the §8 succinctness machinery."""

import itertools
import random

import pytest

from repro.succinctness import (
    cap_chain,
    cap_tower,
    measure_cap_translation,
    measure_path_cap_translation,
    minimal_dfa_size_for_phi_k,
    phi_k,
    phi_k_property,
    self_check,
    tower,
    violation_nfa,
)
from repro.semantics import evaluate_nodes
from repro.trees import XMLTree
from repro.xpath import parse_node
from repro.xpath.measures import intersection_depth, operators_used, size


class TestPhiK:
    def test_size_is_quadratic(self):
        sizes = [size(phi_k(k)) for k in range(1, 6)]
        # Quadratic: second differences are constant-ish, growth subcubic.
        assert sizes[-1] < 20 * 5 * 5 + 100
        assert all(b > a for a, b in zip(sizes, sizes[1:]))

    def test_stays_in_cap_fragment(self):
        assert operators_used(phi_k(2)) == {"cap"}
        assert intersection_depth(phi_k(3)) >= 3

    @pytest.mark.parametrize("k", [1, 2])
    def test_formula_matches_property(self, k):
        rng = random.Random(211)
        formula = phi_k(k)
        for _ in range(150):
            length = rng.randint(1, 10)
            word = [rng.choice("pq") for _ in range(length)]
            tree = XMLTree.chain(word)
            everywhere = len(evaluate_nodes(tree, formula)) == tree.size
            assert everywhere == phi_k_property(word, k), (k, word)

    def test_property_edge_cases(self):
        assert phi_k_property([], 1)
        assert phi_k_property(["p"], 1)
        # ppp vs ppq at offset 2 with matching offset-0: violation needs
        # two anchors; the canonical violating word for k=1:
        # positions i, j both starting pp, u_{i+2} ≠ u_{j+2}.
        assert not phi_k_property(list("ppppq"), 1)
        assert phi_k_property(list("pppp"), 1)

    def test_rejects_k_zero(self):
        with pytest.raises(ValueError):
            phi_k(0)
        with pytest.raises(ValueError):
            violation_nfa(0)


class TestWordAutomata:
    def test_self_check_k1(self):
        self_check(1, max_length=9)

    def test_self_check_k2_short(self):
        import itertools as it
        _, _, dfa = minimal_dfa_size_for_phi_k(2)
        for length in range(0, 8):
            for word in it.product("pq", repeat=length):
                assert dfa.accepts(word) == phi_k_property(word, 2), word

    def test_dfa_size_exceeds_theory_bound(self):
        """Theorem 35's lower bound: ≥ 2^{2^k} states for NFAs; minimal
        DFAs are no smaller."""
        for k in (1, 2):
            _, dfa_size, _ = minimal_dfa_size_for_phi_k(k)
            assert dfa_size >= 2 ** (2 ** k) / 2  # generous slack at k=1

    def test_growth_is_superexponential_flavored(self):
        _, s1, _ = minimal_dfa_size_for_phi_k(1)
        _, s2, _ = minimal_dfa_size_for_phi_k(2)
        assert s2 > 4 * s1


class TestTranslationMeasurements:
    def test_chain_family_linear(self):
        sizes = [
            measure_path_cap_translation(cap_chain(n),
                                         include_expression=False)["epa_size"]
            for n in (1, 2, 4)
        ]
        assert sizes[2] < 5 * sizes[1]
        assert all(
            measure_path_cap_translation(cap_chain(n),
                                         include_expression=False)
            ["intersection_depth"] == 1
            for n in (1, 3)
        )

    def test_tower_family_squares(self):
        states = [
            measure_path_cap_translation(cap_tower(d),
                                         include_expression=False)["epa_states"]
            for d in (1, 2)
        ]
        assert states[1] >= states[0] ** 2 // 2

    def test_node_measurement_includes_expression(self):
        report = measure_cap_translation(
            parse_node("<down intersect down[p]>"))
        assert report["output_size"] > report["input_size"]

    def test_tower_function(self):
        assert [tower(h) for h in range(4)] == [1, 2, 4, 16]
        assert tower(2, base=3) == 27

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            cap_chain(0)
        with pytest.raises(ValueError):
            cap_tower(0)
