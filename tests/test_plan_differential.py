"""Differential tests: the compiled plan kernel vs the reference evaluator.

The plan-backed :class:`repro.semantics.Evaluator` must agree with the
straightforward recursive :class:`repro.semantics.ReferenceEvaluator` on
every tree, expression and assignment — the reference implements the paper
semantics directly and never normalizes, interns or shares work, so any
disagreement localizes a bug in interning, normalization or compilation.

Also checks the interning laws the plan cache relies on:
``intern_expr`` collapses structural equality onto identity and
``normalize`` is idempotent (``normalize(normalize(e)) is normalize(e)``).
"""

from __future__ import annotations

import random

import pytest

from repro.semantics import Evaluator, ReferenceEvaluator, compile_plan
from repro.semantics.plan import TreeContext
from repro.trees import MultiLabelTree, random_tree
from repro.xpath import intern_expr, normalize, parse_node, parse_path
from repro.xpath.ast import ForLoop, VarIs

from .helpers import DEFAULT_LABELS, random_node, random_path

# One fragment per extension operator the generators can emit, plus the
# base language and the full combination.
FRAGMENTS = [
    pytest.param(frozenset(), id="core"),
    pytest.param(frozenset({"cap"}), id="cap"),
    pytest.param(frozenset({"minus"}), id="minus"),
    pytest.param(frozenset({"star"}), id="star"),
    pytest.param(frozenset({"eq"}), id="eq"),
    pytest.param(frozenset({"cap", "minus", "star", "eq"}), id="all"),
]


def _random_trees(rng: random.Random, count: int, max_nodes: int = 6):
    return [random_tree(rng, max_nodes, DEFAULT_LABELS) for _ in range(count)]


@pytest.mark.parametrize("operators", FRAGMENTS)
def test_plan_matches_reference_on_paths(operators):
    rng = random.Random(hash(tuple(sorted(operators))) & 0xFFFF)
    trees = _random_trees(rng, 6)
    for _ in range(40):
        alpha = random_path(rng, rng.randint(1, 4), operators)
        for tree in trees:
            expected = ReferenceEvaluator(tree).path(alpha)
            actual = Evaluator(tree).path(alpha)
            assert actual == expected, (alpha, tree.labels)


@pytest.mark.parametrize("operators", FRAGMENTS)
def test_plan_matches_reference_on_nodes(operators):
    rng = random.Random(~hash(tuple(sorted(operators))) & 0xFFFF)
    trees = _random_trees(rng, 6)
    for _ in range(40):
        phi = random_node(rng, rng.randint(1, 4), operators)
        for tree in trees:
            expected = ReferenceEvaluator(tree).nodes(phi)
            actual = Evaluator(tree).nodes(phi)
            assert actual == expected, (phi, tree.labels)


def test_plan_matches_reference_on_for_loops():
    """The helpers never emit for/is, so exercise the binder opcodes
    explicitly: random bodies wrapped in for-loops over random sources."""
    rng = random.Random(2007)
    trees = _random_trees(rng, 6)
    for _ in range(30):
        source = random_path(rng, 2, frozenset({"star"}))
        body = random_path(rng, 2, frozenset({"cap"}))
        hop = random_path(rng, 1)
        expr = ForLoop("i", source, Seq_or(body, hop))
        for tree in trees:
            expected = ReferenceEvaluator(tree).path(expr)
            actual = Evaluator(tree).path(expr)
            assert actual == expected, (expr, tree.labels)


def Seq_or(body, hop):
    """``body[. is $i] ∪ hop`` — guarantees the bound variable occurs."""
    from repro.xpath.ast import Filter, Union

    return Union(Filter(body, VarIs("i")), hop)


def test_plan_matches_reference_under_assignments():
    rng = random.Random(7)
    expr = parse_path("down*[. is $x]/down union up[. is $y]")
    for tree in _random_trees(rng, 8):
        for x in range(len(tree.labels)):
            assignment = {"x": x, "y": rng.randrange(len(tree.labels))}
            expected = ReferenceEvaluator(tree).path(expr, assignment)
            actual = Evaluator(tree).path(expr, assignment)
            assert actual == expected


def test_parsed_official_style_expressions_agree():
    cases = [
        "down[p]/down*[q]",
        "(down union right)*[p and not q]",
        "down[<up/up>]/left*",
        "down* intersect (down/down*)",
        "down* except (down[p]/down*)",
        "for $i in down* return down[. is $i]",
    ]
    rng = random.Random(13)
    trees = _random_trees(rng, 6)
    for source in cases:
        expr = parse_path(source)
        for tree in trees:
            assert (Evaluator(tree).path(expr)
                    == ReferenceEvaluator(tree).path(expr)), source


def test_plan_matches_reference_on_multilabel_trees():
    rng = random.Random(99)
    for _ in range(20):
        base = random_tree(rng, 5, DEFAULT_LABELS)
        labels = [frozenset(rng.sample(("p", "q", "r"), rng.randint(0, 2)))
                  for _ in range(base.size)]
        tree = MultiLabelTree(base, labels)
        phi = random_node(rng, 3, frozenset({"eq"}),
                          labels=("p", "q", "r"))
        assert (Evaluator(tree).nodes(phi)
                == ReferenceEvaluator(tree).nodes(phi))


def test_shared_plan_runs_all_roots_in_one_pass():
    alpha = parse_path("down[p]/down*")
    beta = parse_path("down/down*")
    plan = compile_plan(alpha, beta)
    rng = random.Random(3)
    for tree in _random_trees(rng, 5):
        left, right = plan.run(TreeContext(tree))
        assert left == ReferenceEvaluator(tree).path(alpha)
        assert right == ReferenceEvaluator(tree).path(beta)


# ------------------------------------------------------------- interning laws


def test_intern_collapses_structural_equality_to_identity():
    rng = random.Random(42)
    for _ in range(50):
        expr = random_path(rng, 3, frozenset({"cap", "minus", "star"}))
        clone = parse_path_roundtrip(expr)
        assert intern_expr(expr) is intern_expr(clone)


def parse_path_roundtrip(expr):
    from repro.xpath import parse_path, to_source

    return parse_path(to_source(expr))


def test_normalize_is_idempotent():
    rng = random.Random(17)
    for _ in range(60):
        expr = random_path(rng, 4, frozenset({"cap", "minus", "star", "eq"}))
        normal = normalize(expr)
        assert normalize(normal) is normal
    for _ in range(60):
        phi = random_node(rng, 4, frozenset({"cap", "minus", "star", "eq"}))
        normal = normalize(phi)
        assert normalize(normal) is normal


def test_normalize_preserves_semantics():
    rng = random.Random(23)
    trees = _random_trees(rng, 5)
    for _ in range(40):
        expr = random_path(rng, 4, frozenset({"cap", "minus", "star", "eq"}))
        normal = normalize(expr)
        for tree in trees:
            assert (ReferenceEvaluator(tree).path(normal)
                    == ReferenceEvaluator(tree).path(expr))


def test_normalize_unit_laws():
    p = parse_path("down[p]")
    assert normalize(parse_path("./down[p]")) is normalize(p)
    assert normalize(parse_path("down[p]/.")) is normalize(p)
    assert normalize(parse_path("down[p][true]")) is normalize(p)
    phi = parse_node("not not p")
    assert normalize(phi) is normalize(parse_node("p"))
    # Commutativity + associativity + idempotence of union.
    a = parse_path("(down union up) union down")
    b = parse_path("up union down")
    assert normalize(a) is normalize(b)
