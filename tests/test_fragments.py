"""Tests for fragment descriptors CoreXPath_Y(X)."""

import pytest

from repro.xpath import Fragment, fragment_of, parse_node, parse_path
from repro.xpath.ast import Axis
from repro.xpath.fragments import (
    CORE,
    CORE_CAP,
    CORE_EQ,
    CORE_FOR,
    CORE_MINUS,
    CORE_STAR,
    CORE_STAR_CAP,
    CORE_STAR_EQ,
    DOWNWARD,
    DOWNWARD_CAP,
    DOWNWARD_STAR_CAP,
    FORWARD_CAP,
    VERTICAL_CAP,
)


class TestAdmission:
    def test_core_admits_basic(self):
        assert CORE.admits(parse_path("down*/up[p and not q] union right"))

    def test_core_rejects_extensions(self):
        assert not CORE.admits(parse_path("down intersect up"))
        assert not CORE.admits(parse_path("(down/down)*"))
        assert not CORE.admits(parse_node("eq(down, up)"))

    def test_axis_restriction(self):
        assert DOWNWARD.admits(parse_path("down*/down[p]"))
        assert not DOWNWARD.admits(parse_path("down/up"))
        assert VERTICAL_CAP.admits(parse_path("down/up intersect down*"))
        assert not VERTICAL_CAP.admits(parse_path("right"))
        assert FORWARD_CAP.admits(parse_path("down/right intersect down"))
        assert not FORWARD_CAP.admits(parse_path("left"))

    def test_star_vs_axis_closure(self):
        # τ* is plain CoreXPath; (α)* needs the star extension.
        assert CORE.admits(parse_path("down*"))
        assert not CORE.admits(parse_path("(down[p])*"))
        assert CORE_STAR.admits(parse_path("(down[p])*"))

    def test_for_fragment(self):
        loop = parse_path("for $i in down return down[. is $i]")
        assert CORE_FOR.admits(loop)
        assert not CORE.admits(loop)

    def test_violations_are_descriptive(self):
        problems = DOWNWARD_CAP.violations(parse_path("up intersect (down)*"))
        assert any("↑" in p for p in problems)
        assert any("*" in p for p in problems)
        assert DOWNWARD_CAP.violations(parse_path("down intersect down")) == []


class TestStructure:
    def test_inclusion_order(self):
        assert CORE <= CORE_EQ <= CORE_STAR_EQ
        assert CORE_CAP <= CORE_STAR_CAP
        assert DOWNWARD_CAP <= DOWNWARD_STAR_CAP
        assert not (CORE_MINUS <= CORE_CAP)
        assert DOWNWARD <= CORE

    def test_fragment_of_is_minimal(self):
        expr = parse_path("down intersect down*")
        frag = fragment_of(expr)
        assert frag.axes == frozenset({Axis.DOWN})
        assert frag.operators == frozenset({"cap"})
        assert frag <= DOWNWARD_CAP

    def test_names(self):
        assert CORE.name == "CoreXPath()"
        assert CORE_STAR_EQ.name == "CoreXPath(*, ≈)"
        assert DOWNWARD_CAP.name == "CoreXPath↓(∩)"
        assert FORWARD_CAP.name == "CoreXPath↓→(∩)"
        assert str(VERTICAL_CAP) == "CoreXPath↓↑(∩)"

    def test_unknown_operator_rejected(self):
        with pytest.raises(ValueError):
            Fragment(operators=frozenset({"teleport"}))
