"""Differential and unit tests for the bitset emptiness kernel.

The dense integer kernel (``_BitsetChecker``) must be observationally
identical to the dict-of-frozensets reference kernel
(``_ReferenceChecker``): same verdicts, same witness trees, same round
and entry counts, on every problem.  The sweeps here check that over the
curated corpus from :mod:`tests.test_emptiness` plus randomized
CoreXPath(*, ≈) formulas.  (``evals`` is deliberately *not* compared:
the bitset kernel's token-keyed evaluation memo collapses contexts that
share a wrapped-up excursion vector, so it legitimately evaluates fewer
combinations.)

Unit tests cover the three supporting pieces:

* mask/test formula compilation (:class:`CompiledEval`) against a naive
  recursive evaluator,
* the antichain dominance order — a partial order on wide-integer
  summary vectors — and the rank-0/monotone soundness gate, and
* :class:`SchemaSession` reuse: one worker-local kernel cache per
  compiled schema across a batch.
"""

from __future__ import annotations

import itertools
import random

import pytest

from repro.analysis import (
    Problem,
    ProblemKind,
    SchemaSession,
    reset_sessions,
    schema_id_of,
    session_for,
)
from repro.analysis.reductions import containment_to_node_unsat
from repro.automata import KernelCache, build_twoata, decide_emptiness
from repro.automata.core import FALSE, TRUE, FormulaTable
from repro.automata.emptiness import (
    ANTICHAIN_ENV,
    EmptinessLimit,
    _BitsetChecker,
)
from repro.semantics import TreeContext, compile_plan
from repro.xpath import parse_node, parse_path

from .helpers import random_node
from .test_emptiness import STAR_EQ, TestDecideEmptiness

CORPUS = list(TestDecideEmptiness.UNSAT) + list(TestDecideEmptiness.SAT)


def _both(ata, **limits):
    bitset = decide_emptiness(ata, kernel="bitset", **limits)
    reference = decide_emptiness(ata, kernel="reference", **limits)
    return bitset, reference


def _assert_identical(bitset, reference):
    assert bitset.kernel == "bitset" and reference.kernel == "reference"
    assert bitset.empty == reference.empty
    assert bitset.witness == reference.witness
    assert bitset.rounds == reference.rounds
    assert bitset.entries == reference.entries
    assert bitset.contexts == reference.contexts
    # NOT bitset.evals == reference.evals: see the module docstring.


def _satisfies(tree, phi) -> bool:
    return bool(compile_plan(phi).run_single(TreeContext(tree)))


# --------------------------------------------------- kernel differential


class TestKernelDifferential:
    @pytest.mark.parametrize("source", CORPUS)
    def test_corpus_identical_across_kernels(self, source):
        bitset, reference = _both(build_twoata(parse_node(source)))
        _assert_identical(bitset, reference)

    @pytest.mark.parametrize("source", TestDecideEmptiness.SAT)
    def test_witnesses_satisfy_the_formula(self, source):
        phi = parse_node(source)
        bitset, reference = _both(build_twoata(phi))
        assert not bitset.empty
        assert _satisfies(bitset.witness, phi)
        assert _satisfies(reference.witness, phi)

    @pytest.mark.parametrize("n", [2, 3, 4])
    def test_containment_reduction_family(self, n):
        """The E1 benchmark shape: ``up^n ⊑ up*`` through Prop. 4."""
        alpha = parse_path("/".join(["up"] * n))
        reduction = containment_to_node_unsat(alpha, parse_path("up*"))
        bitset, reference = _both(build_twoata(reduction.formula))
        _assert_identical(bitset, reference)
        assert bitset.empty  # the containment holds

    def test_randomized_core_star_eq_formulas(self):
        """Seeded sweep of random CoreXPath(*, ≈) node expressions."""
        rng = random.Random(20260808)
        checked = 0
        attempts = 0
        while checked < 30 and attempts < 400:
            attempts += 1
            phi = random_node(rng, rng.randint(1, 3), STAR_EQ)
            ata = build_twoata(phi)
            if ata.num_states > 160:
                continue
            try:
                bitset, reference = _both(
                    ata, max_evals=60_000, max_entries=3_000,
                    max_contexts=800)
            except EmptinessLimit:
                continue
            _assert_identical(bitset, reference)
            if not bitset.empty:
                assert _satisfies(bitset.witness, phi)
            checked += 1
        assert checked >= 20, f"only {checked} instances within guards"


# ------------------------------------------------- mask/test compilation


def _naive_eval(table, index, truth):
    node = table.node(index)
    tag = node[0]
    if tag == "true":
        return True
    if tag == "false":
        return False
    if tag == "atom":
        return truth[node]
    if tag == "and":
        return all(_naive_eval(table, child, truth) for child in node[1])
    assert tag == "or"
    return any(_naive_eval(table, child, truth) for child in node[1])


class TestCompileEval:
    def test_constants_short_circuit(self):
        table = FormulaTable()
        assert table.compile_eval(TRUE).const is True
        assert table.compile_eval(FALSE).const is False
        assert table.compile_eval(TRUE).evaluate(0)
        assert not table.compile_eval(FALSE).evaluate(0)

    def test_bare_atom(self):
        table = FormulaTable()
        compiled = table.compile_eval(table.atom("down1", 3))
        assert compiled.atoms == (("atom", "down1", 3),)
        assert compiled.evaluate(0b1)
        assert not compiled.evaluate(0b0)

    def test_flat_conjunction_uses_neg_mask_only(self):
        table = FormulaTable()
        atoms = [table.atom("stay", i) for i in range(3)]
        compiled = table.compile_eval(table.conj(atoms))
        assert compiled.program == ()  # complete veto mask, no program
        assert compiled.neg_mask == 0b111 and compiled.pos_mask == 0
        assert compiled.evaluate(0b111)
        for bits in range(0b111):
            assert not compiled.evaluate(bits)

    def test_flat_disjunction_uses_pos_mask(self):
        table = FormulaTable()
        atoms = [table.atom("stay", i) for i in range(3)]
        compiled = table.compile_eval(table.disj(atoms))
        assert compiled.pos_mask == 0b111
        assert not compiled.evaluate(0b000)
        for bits in range(1, 0b1000):
            assert compiled.evaluate(bits)

    def test_nested_programs_agree_with_naive_evaluation(self):
        table = FormulaTable()
        a = table.atom("stay", 0)
        b = table.atom("down1", 1)
        c = table.atom("down2", 2)
        d = table.atom("up", 3)
        formulas = [
            table.conj([table.disj([a, b]), c]),
            table.disj([table.conj([a, b]), table.conj([c, d])]),
            table.conj([table.disj([a, b]), table.disj([c, d]), a]),
            table.disj([table.conj([a, table.disj([b, c])]), d]),
        ]
        for index in formulas:
            compiled = table.compile_eval(index)
            assert compiled.program  # genuinely nested
            width = len(compiled.atoms)
            for bits in range(1 << width):
                truth = {atom: bool(bits >> position & 1)
                         for position, atom in enumerate(compiled.atoms)}
                assert compiled.evaluate(bits) == \
                    _naive_eval(table, index, truth), (index, bits)

    def test_compilation_is_memoized(self):
        table = FormulaTable()
        index = table.conj([table.atom("stay", 0), table.atom("up", 1)])
        assert table.compile_eval(index) is table.compile_eval(index)


# ------------------------------------------------- antichain dominance


def _saturated(source, **kwargs):
    checker = _BitsetChecker(build_twoata(parse_node(source)),
                             max_evals=20_000, max_entries=2_000,
                             max_contexts=500, **kwargs)
    checker.saturate()
    return checker


class TestAntichainOrder:
    def test_gate_requires_rank0_and_monotone_root(self):
        # Loop-free, monotone: pruning is on and actually fires.
        checker = _saturated("p")
        assert checker._rank0 and checker._monotone and checker.antichain
        assert checker.pruned > 0
        # A loop test (⟨down[q]⟩ builds an NFLoop) breaks rank 0: the
        # simulation argument fails and the gate must force pruning off.
        checker = _saturated("p and <down[q]>")
        assert not checker._rank0
        assert not checker.antichain and checker.pruned == 0

    def test_constructor_and_env_kill_switch(self, monkeypatch):
        assert _saturated("p", antichain=False).pruned == 0
        monkeypatch.setenv(ANTICHAIN_ENV, "off")
        result = decide_emptiness(build_twoata(parse_node("p")),
                                  kernel="bitset")
        assert result.pruned == 0 and not result.empty

    def test_dominance_is_a_partial_order(self):
        """Reflexive, transitive, antisymmetric on the discovered pool."""
        checker = _saturated("p")
        values = [checker._vr_vals[token] for token in checker._pool]
        assert len(values) >= 3

        def dominates(x, y):  # x ⊆ y as wide-int bit sets
            return x | y == y

        for x in values:
            assert dominates(x, x)
        for x, y, z in itertools.product(values, repeat=3):
            if dominates(x, y) and dominates(y, z):
                assert dominates(x, z)
        for x, y in itertools.combinations(values, 2):
            # Interning makes distinct pool tokens distinct vectors.
            assert not (dominates(x, y) and dominates(y, x))

    def test_live_frontier_is_an_antichain(self):
        checker = _saturated("p")
        live = checker._live(list(checker._pool))
        values = checker._vr_vals
        assert live  # something survives
        for x, y in itertools.combinations(live, 2):
            assert values[x] | values[y] != values[y]  # x ⊄ y
            assert values[y] | values[x] != values[x]  # y ⊄ x
        assert checker.frontier_size() == \
            len(checker._pool) - len(checker._dead)

    def test_dead_vectors_are_dominated_by_a_live_one(self):
        """Prune soundness: every pruned vector is ⊆ some surviving one,
        so dropping it from sweeps loses no behaviour."""
        checker = _saturated("p")
        assert checker._dead
        values = checker._vr_vals
        live = checker._live(list(checker._pool))
        for dead in checker._dead:
            assert any(values[dead] | values[token] == values[token]
                       for token in live), dead

    @pytest.mark.parametrize("source", CORPUS)
    def test_pruning_preserves_verdicts(self, source, monkeypatch):
        ata = build_twoata(parse_node(source))
        phi = parse_node(source)
        with_pruning = decide_emptiness(ata, kernel="bitset")
        monkeypatch.setenv(ANTICHAIN_ENV, "off")
        without = decide_emptiness(ata, kernel="bitset")
        assert without.pruned == 0
        assert with_pruning.empty == without.empty
        if not with_pruning.empty:
            assert _satisfies(with_pruning.witness, phi)
            assert _satisfies(without.witness, phi)


# ----------------------------------------------------- schema sessions


def _sat_problem(source):
    return Problem(ProblemKind.SATISFIABILITY, phi=parse_node(source))


class TestSchemaSession:
    @pytest.fixture(autouse=True)
    def _fresh_registry(self):
        reset_sessions()
        yield
        reset_sessions()

    def test_schema_id_is_stable_and_discriminating(self):
        phi = parse_node("p and <down[q]>")
        again = parse_node("p and <down[q]>")
        assert schema_id_of(phi) == schema_id_of(again)
        # A different label alphabet compiles to a different schema.
        assert schema_id_of(phi) != schema_id_of(parse_node("r"))

    def test_same_schema_shares_one_session(self):
        first = session_for(_sat_problem("p and q"))
        second = session_for(_sat_problem("q or p"))  # same alphabet
        assert isinstance(first, SchemaSession)
        assert first is second
        assert first.problems_seen == 2
        assert first.stats()["problems"] == 2

    def test_distinct_schemas_get_distinct_sessions(self):
        first = session_for(_sat_problem("p"))
        second = session_for(_sat_problem("r"))
        assert first is not second
        assert first.schema_id != second.schema_id

    def test_reset_sessions_discards_state(self):
        first = session_for(_sat_problem("p"))
        reset_sessions()
        second = session_for(_sat_problem("p"))
        assert first is not second and second.problems_seen == 1

    def test_kernel_cache_warms_across_a_batch(self):
        """Re-deciding over a shared cache adds nothing the second time."""
        cache = KernelCache()
        ata = build_twoata(parse_node("p and not <down*[q]>"))
        cold = decide_emptiness(ata, kernel="bitset", shared=cache)
        warm_sizes = dict(cache.stats())
        assert sum(warm_sizes.values()) > 0
        rerun = decide_emptiness(
            build_twoata(parse_node("p and not <down*[q]>")),
            kernel="bitset", shared=cache)
        assert dict(cache.stats()) == warm_sizes
        assert rerun.empty == cold.empty
        assert rerun.witness == cold.witness

    def test_engine_batch_reuses_the_session(self):
        """Two same-schema problems through the automata engine leave one
        session holding both, with a warmed kernel cache."""
        from repro.analysis import contains

        # Both pairs are label-free, so they compile to the same schema.
        assert contains(parse_path("down/down"), parse_path("down*"),
                        method="automata")
        assert contains(parse_path("up/up"), parse_path("up*"),
                        method="automata")
        [session] = [session_for(Problem(
            ProblemKind.CONTAINMENT, alpha=parse_path("down/down"),
            beta=parse_path("down*")))]
        assert session.problems_seen >= 1
        stats = session.stats()
        assert stats["rtc"] > 0 and stats["wrap"] > 0
