"""Tests for the Chrome trace-event writer (:mod:`repro.obs.traceout`).

Covers the span-tree round-trip invariants (well-formed parent links, no
orphans), single- and cross-process trace assembly, worker-record merging
when attempts time out or race, and the structural validator the CI smoke
gate relies on.
"""

import json

from repro import obs
from repro.analysis.problems import Problem, ProblemKind
from repro.obs import RunRecord, traceout
from repro.parallel import BatchRunner
from repro.xpath import parse_node


def _recorded_run(name="unit"):
    with obs.record(name) as recording:
        with obs.span("outer"):
            with obs.span("inner", detail=1):
                pass
            with obs.span("sibling"):
                pass
    return recording.to_run_record()


class TestSpanTree:
    def test_parent_links_are_well_formed(self):
        record = _recorded_run()
        parents = traceout.span_parents(record)
        roots = [sid for sid, parent in parents.items() if parent is None]
        assert len(roots) == 1
        for span_id, parent in parents.items():
            if parent is not None:
                assert parent in parents, f"span {span_id} orphaned"
                assert parent != span_id

    def test_span_ids_are_dense_and_unique(self):
        record = _recorded_run()
        ids = sorted(traceout.span_parents(record))
        assert ids == list(range(len(ids)))

    def test_round_trip_through_json(self):
        record = _recorded_run()
        clone = RunRecord.from_json(record.to_json())
        assert traceout.span_parents(clone) == traceout.span_parents(record)

    def test_exception_unwind_keeps_tree_well_formed(self):
        with obs.record("boom") as recording:
            try:
                with obs.span("outer"):
                    with obs.span("inner"):
                        raise RuntimeError("escape")
            except RuntimeError:
                pass
        parents = traceout.span_parents(recording.to_run_record())
        assert sum(1 for parent in parents.values() if parent is None) == 1


class TestSingleTrace:
    def test_events_carry_wall_clock_and_ids(self):
        record = _recorded_run()
        payload = traceout.single_trace(record)
        assert traceout.validate_trace(payload) == []
        events = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        assert {e["name"] for e in events} \
            >= {"unit", "outer", "inner", "sibling"}
        for event in events:
            assert event["ts"] > 0  # epoch microseconds
            assert event["dur"] >= 0
            assert event["pid"] == 0
        inner = next(e for e in events if e["name"] == "inner")
        assert inner["args"]["detail"] == 1
        assert inner["args"]["parent_id"] is not None

    def test_runs_ride_along_in_other_data(self):
        record = _recorded_run()
        payload = traceout.single_trace(record)
        assert payload["otherData"]["format"] == traceout.TRACE_FORMAT
        assert payload["otherData"]["runs"][0]["name"] == "unit"

    def test_payload_is_json_serializable(self, tmp_path):
        payload = traceout.single_trace(_recorded_run())
        out = tmp_path / "trace.json"
        traceout.write_trace(out, payload)
        assert json.loads(out.read_text()) == payload


class TestBatchTrace:
    def _problems(self, n=4):
        return [
            Problem(ProblemKind.SATISFIABILITY,
                    phi=parse_node(f"p{i} and <down[q{i}]>"), max_nodes=4)
            for i in range(n)
        ]

    def test_merges_coordinator_and_worker_lanes(self):
        runner = BatchRunner(workers=2, cache=None, collect_stats=True)
        with obs.record("batch") as recording:
            report = runner.run(self._problems())
        coordinator = recording.to_run_record()
        payload = traceout.batch_trace(report, coordinator)
        assert traceout.validate_trace(payload) == []
        pids = traceout.worker_pids(payload)
        assert len(pids) >= 2, "expected spans from >= 2 worker processes"
        lanes = traceout.events_by_lane(payload)
        # One per-problem coordinator lane each, plus the main lane.
        coord_lanes = [key for key in lanes if key[0] == 0]
        assert (0, 0) in lanes
        assert len(coord_lanes) == len(report.outcomes) + 1
        # Worker lanes carry the engine spans recorded inside the workers.
        worker_events = [event for (pid, _), events in lanes.items()
                        if pid > 0 for event in events]
        assert any(event["name"].startswith("engine.")
                   for event in worker_events)

    def test_timed_out_workers_leave_no_orphan_lane(self):
        # A worker killed by timeout ships no record: its pid must simply
        # be absent while the coordinator lane still shows the attempt.
        runner = BatchRunner(workers=1, timeout=0.005, cache=None,
                             collect_stats=True)
        hard = Problem(
            ProblemKind.SATISFIABILITY,
            phi=parse_node("<down[<down[a and <down[b]>]>]> and "
                           "not <down[c]>"),
            max_nodes=64)
        with obs.record("batch") as recording:
            report = runner.run([hard])
        payload = traceout.batch_trace(report, recording.to_run_record())
        assert traceout.validate_trace(payload) == []
        outcome = report.outcomes[0]
        timed_out = [attempt for attempt in outcome.attempts
                     if attempt["status"] == "timeout"]
        shipped = {record["meta"].get("pid")
                   for record in outcome.worker_records}
        assert None not in shipped
        # Every worker lane in the trace corresponds to a shipped record.
        assert traceout.worker_pids(payload) == {p for p in shipped}
        if timed_out:
            coord = outcome.coord_stats
            assert coord is not None
            attempts = [span for span in RunRecord.from_dict(coord).iter_spans()
                        if span["name"] == "worker.attempt"]
            assert any(span.get("attrs", {}).get("status") == "timeout"
                       for span in attempts)

    def test_cache_hits_render_on_synthetic_lane(self, tmp_path):
        problems = self._problems(2)
        runner = BatchRunner(workers=2, cache=tmp_path / "cache",
                             collect_stats=True)
        runner.run(problems)  # warm
        with obs.record("batch") as recording:
            report = runner.run(problems)  # all hits
        assert all(outcome.cache_hit for outcome in report.outcomes)
        payload = traceout.batch_trace(report, recording.to_run_record())
        assert traceout.validate_trace(payload) == []
        assert traceout.worker_pids(payload) == set()
        lanes = traceout.events_by_lane(payload)
        assert any(pid == -1 for pid, _ in lanes), \
            "cache-hit records should render on the synthetic cache lane"


class TestValidate:
    def test_flags_missing_fields(self):
        payload = {"traceEvents": [{"ph": "X"}], "otherData": {}}
        problems = traceout.validate_trace(payload)
        assert any("missing" in problem for problem in problems)
        assert any("format" in problem for problem in problems)

    def test_flags_non_list_events(self):
        assert traceout.validate_trace({"traceEvents": None}) \
            == ["traceEvents missing or not a list"]
