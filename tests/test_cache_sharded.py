"""Concurrency, tiering and lifecycle tests for the sharded VerdictCache.

The flat-file cache of PR 3 never had to survive *concurrent* writers —
the batch runner serialized stores through one coordinator process.  The
sharded two-tier cache explicitly supports multi-process use (a daemon
and CLI runs sharing one directory), so these tests hammer one shard
from several processes, verify the legacy-layout migration, the memory
LRU tier (including serving a key whose disk file was deleted), corrupt
entry tolerance, and the bounded-disk GC (API and ``repro cache gc``).
"""

from __future__ import annotations

import json
import multiprocessing
import os

import pytest

from repro.analysis.problems import Problem, ProblemKind, SatResult, Verdict
from repro.parallel import VerdictCache, problem_fingerprint
from repro.xpath import parse_node

_CTX = multiprocessing.get_context(
    "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn")

pytestmark = pytest.mark.skipif(
    _CTX.get_start_method() != "fork",
    reason="multi-process cache tests rely on fork inheritance")


def _problem(index: int) -> Problem:
    # max_nodes is part of the fingerprint, so each index is its own key.
    return Problem(ProblemKind.SATISFIABILITY, phi=parse_node("p"),
                   max_nodes=2 + index)


def _result() -> SatResult:
    return SatResult(Verdict.SATISFIABLE)


def _write_range(directory: str, start: int, count: int, barrier) -> None:
    cache = VerdictCache(directory, shards=1)
    barrier.wait()  # maximize write overlap on the single shard
    for index in range(start, start + count):
        assert cache.put(_problem(index), _result())


def _hammer_one_key(directory: str, rounds: int, barrier) -> None:
    cache = VerdictCache(directory, shards=1, memory_entries=0)
    barrier.wait()
    for _ in range(rounds):
        assert cache.put(_problem(0), _result())


class TestMultiProcess:
    def test_concurrent_writers_one_shard(self, tmp_path):
        """Several processes writing disjoint keys into the *same* shard
        (shards=1) under the per-shard lock: every entry lands intact."""
        directory = str(tmp_path)
        writers = 4
        per_writer = 6
        barrier = _CTX.Barrier(writers)
        processes = [
            _CTX.Process(target=_write_range,
                         args=(directory, start * per_writer, per_writer,
                               barrier))
            for start in range(writers)
        ]
        for process in processes:
            process.start()
        for process in processes:
            process.join(timeout=60)
            assert process.exitcode == 0
        reader = VerdictCache(directory, shards=1)
        for index in range(writers * per_writer):
            assert reader.get(_problem(index)) is not None
        assert reader.disk_hits == writers * per_writer
        assert reader.corrupt == 0

    def test_contended_writes_same_key_never_corrupt(self, tmp_path):
        """Two processes rewriting one key while this process reads it:
        atomic rename + shard lock mean a reader never sees a torn file."""
        directory = str(tmp_path)
        barrier = _CTX.Barrier(3)
        processes = [
            _CTX.Process(target=_hammer_one_key,
                         args=(directory, 50, barrier))
            for _ in range(2)
        ]
        for process in processes:
            process.start()
        barrier.wait()
        reader = VerdictCache(directory, shards=1, memory_entries=0)
        while any(process.is_alive() for process in processes):
            result = reader.get(_problem(0))
            if result is not None:
                assert result.verdict is Verdict.SATISFIABLE
        for process in processes:
            process.join(timeout=60)
            assert process.exitcode == 0
        assert reader.corrupt == 0
        assert reader.get(_problem(0)) is not None


class TestLegacyMigration:
    def test_flat_layout_migrates_into_shards(self, tmp_path):
        writer = VerdictCache(tmp_path)
        problems = [_problem(index) for index in range(3)]
        for problem in problems:
            writer.put(problem, _result())
        # Simulate the PR 3..9 layout: entries directly in the root.
        for problem in problems:
            key = problem_fingerprint(problem)
            flat = tmp_path / f"{key}.json"
            os.replace(writer._path(key), flat)
        for child in list(tmp_path.iterdir()):
            if child.is_dir():
                for straggler in child.iterdir():
                    straggler.unlink()
                child.rmdir()
        fresh = VerdictCache(tmp_path)
        for problem in problems:
            assert fresh.get(problem) is not None
            key = problem_fingerprint(problem)
            assert fresh._path(key).exists()
            assert not (tmp_path / f"{key}.json").exists()
        assert fresh.disk_hits == len(problems)

    def test_non_digest_files_left_alone(self, tmp_path):
        stranger = tmp_path / "not-a-digest.json"
        stranger.write_text("{}", encoding="utf-8")
        cache = VerdictCache(tmp_path)
        assert cache.get(_problem(0)) is None  # triggers migration
        assert stranger.exists()


class TestMemoryTier:
    def test_mem_hit_survives_deleted_disk_file(self, tmp_path):
        """The warm hit path never touches the filesystem: a key in the
        memory tier is served even after its disk entry vanished."""
        cache = VerdictCache(tmp_path)
        problem = _problem(0)
        cache.put(problem, _result())
        cache._path(problem_fingerprint(problem)).unlink()
        assert cache.get(problem) is not None
        assert (cache.mem_hits, cache.disk_hits) == (1, 0)

    def test_lru_eviction_bounds_the_tier(self, tmp_path):
        cache = VerdictCache(tmp_path, memory_entries=1)
        first, second = _problem(0), _problem(1)
        cache.put(first, _result())
        cache.put(second, _result())  # evicts first from memory
        assert cache.evicted == 1
        assert cache.get(first) is not None  # served from disk...
        assert cache.disk_hits == 1
        assert cache.get(first) is not None  # ...and re-promoted to memory
        assert cache.mem_hits == 1

    def test_disabled_tier_goes_to_disk(self, tmp_path):
        cache = VerdictCache(tmp_path, memory_entries=0)
        problem = _problem(0)
        cache.put(problem, _result())
        assert cache.get(problem) is not None
        assert (cache.mem_hits, cache.disk_hits) == (0, 1)


class TestCorruptEntries:
    def test_corrupt_disk_entry_is_a_counted_miss_then_overwritten(
            self, tmp_path):
        cache = VerdictCache(tmp_path)
        problem = _problem(0)
        key = problem_fingerprint(problem)
        shard = cache._shard_dir(key)
        shard.mkdir(parents=True, exist_ok=True)
        (shard / f"{key}.json").write_text("{\"trunc", encoding="utf-8")
        assert cache.get(problem) is None
        assert cache.corrupt == 1
        assert not (shard / f"{key}.json").exists()
        assert cache.put(problem, _result())
        assert cache.get(problem) is not None

    def test_wrong_shape_entry_is_corrupt_too(self, tmp_path):
        cache = VerdictCache(tmp_path)
        problem = _problem(0)
        key = problem_fingerprint(problem)
        shard = cache._shard_dir(key)
        shard.mkdir(parents=True, exist_ok=True)
        (shard / f"{key}.json").write_text(
            json.dumps({"type": "sat"}), encoding="utf-8")  # no verdict
        assert cache.get(problem) is None
        assert cache.corrupt == 1


class TestDiskBounds:
    def _fill(self, cache: VerdictCache, count: int) -> list[Problem]:
        problems = [_problem(index) for index in range(count)]
        for tick, problem in enumerate(problems):
            cache.put(problem, _result())
            # Deterministic ages: index 0 is oldest regardless of clock
            # resolution.
            path = cache._path(problem_fingerprint(problem))
            os.utime(path, (1000 + tick, 1000 + tick))
        return problems

    def test_gc_removes_oldest_first(self, tmp_path):
        cache = VerdictCache(tmp_path)
        problems = self._fill(cache, 5)
        summary = cache.gc(max_entries=2)
        assert summary["removed"] == 3
        assert summary["entries"] == 2
        fresh = VerdictCache(tmp_path)
        assert fresh.get(problems[0]) is None  # oldest gone
        assert fresh.get(problems[4]) is not None  # newest kept

    def test_gc_max_bytes(self, tmp_path):
        cache = VerdictCache(tmp_path)
        self._fill(cache, 4)
        total = sum(size for _, size, _ in cache._disk_entries())
        summary = cache.gc(max_bytes=total // 2)
        assert summary["bytes"] <= total // 2
        assert summary["removed"] >= 1

    def test_put_enforces_bounds(self, tmp_path):
        cache = VerdictCache(tmp_path, max_entries=2)
        self._fill(cache, 4)
        assert len(cache._disk_entries()) <= 2
        assert cache.gc_removed >= 2

    def test_unbounded_gc_is_a_pure_scan(self, tmp_path):
        cache = VerdictCache(tmp_path)
        self._fill(cache, 3)
        summary = cache.gc()
        assert summary["removed"] == 0
        assert summary["entries"] == 3

    def test_cli_cache_gc_and_info(self, tmp_path, capsys):
        from repro.cli import main

        cache = VerdictCache(tmp_path)
        self._fill(cache, 3)
        assert main(["cache", "info", "--cache-dir", str(tmp_path)]) == 0
        info = json.loads(capsys.readouterr().out)
        assert info["entries"] == 3
        assert main(["cache", "gc", "--cache-dir", str(tmp_path),
                     "--max-entries", "1"]) == 0
        captured = capsys.readouterr()
        summary = json.loads(captured.out)
        assert summary["removed"] == 2
        assert "cache gc: removed 2" in captured.err
        assert main(["cache", "info", "--cache-dir", str(tmp_path)]) == 0
        info = json.loads(capsys.readouterr().out)
        assert info["entries"] == 1
