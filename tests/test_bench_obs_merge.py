"""The benchmark harness's BENCH_obs.json merge: dedupe by test id,
latest record wins.

The merge logic lives in ``benchmarks/conftest.py``, which pytest loads
only for benchmark sessions; these tests import the module directly so
the dedupe invariant is covered by the tier-1 suite.
"""

import importlib.util
from pathlib import Path

_CONFTEST = Path(__file__).resolve().parent.parent / "benchmarks" / "conftest.py"


def _load_merge():
    spec = importlib.util.spec_from_file_location("bench_conftest_under_test",
                                                  _CONFTEST)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _record(duration):
    return {"duration_s": duration, "counters": {}, "gauges": {}}


class TestMergeObsRecords:
    def test_fresh_records_build_a_payload(self):
        module = _load_merge()
        payload = module.merge_obs_records(None, [
            {"nodeid": "t::a", "record": _record(1.0)},
        ])
        assert payload["schema_version"] == module._OBS_SCHEMA_VERSION
        assert payload["runs"] == {"t::a": _record(1.0)}

    def test_rerun_in_one_session_dedupes_keeping_latest(self):
        """A test id appearing twice in the session log (rerun plugins,
        duplicated nodeids on the command line) must contribute exactly one
        entry — the later one."""
        module = _load_merge()
        payload = module.merge_obs_records(None, [
            {"nodeid": "t::a", "record": _record(1.0)},
            {"nodeid": "t::b", "record": _record(5.0)},
            {"nodeid": "t::a", "record": _record(2.0)},
        ])
        assert payload["runs"]["t::a"] == _record(2.0)
        assert payload["runs"]["t::b"] == _record(5.0)
        assert len(payload["runs"]) == 2

    def test_fresh_record_replaces_stored_one(self):
        module = _load_merge()
        existing = {"schema_version": module._OBS_SCHEMA_VERSION,
                    "runs": {"t::a": _record(9.0), "t::old": _record(3.0)}}
        payload = module.merge_obs_records(existing, [
            {"nodeid": "t::a", "record": _record(1.5)},
        ])
        assert payload["runs"]["t::a"] == _record(1.5)
        # Entries from other sessions survive untouched.
        assert payload["runs"]["t::old"] == _record(3.0)

    def test_malformed_existing_payload_is_discarded(self):
        module = _load_merge()
        for junk in (["not", "a", "dict"], {"runs": "nope"}, 42, "text"):
            payload = module.merge_obs_records(junk, [
                {"nodeid": "t::a", "record": _record(1.0)},
            ])
            assert payload["runs"] == {"t::a": _record(1.0)}

    def test_idempotent_over_repeated_sessions(self):
        module = _load_merge()
        records = [{"nodeid": "t::a", "record": _record(1.0)}]
        once = module.merge_obs_records(None, records)
        twice = module.merge_obs_records(once, records)
        assert twice == once
