"""Tests for the official-XPath-syntax printer."""

import pytest

from repro.xpath import parse_node, parse_path
from repro.xpath.official import to_official


class TestPaths:
    @pytest.mark.parametrize("source, expected", [
        ("down", "child::*"),
        ("up", "parent::*"),
        ("down*", "descendant-or-self::*"),
        ("up*", "ancestor-or-self::*"),
        ("right", "following-sibling::*[1]"),
        (".", "."),
        ("down/down", "child::*/child::*"),
        ("down union up", "child::* | parent::*"),
        ("down intersect up", "child::* intersect parent::*"),
        ("down except up", "child::* except parent::*"),
        ("down[p]", "child::*[self::p]"),
    ])
    def test_rendering(self, source, expected):
        assert to_official(parse_path(source)) == expected

    def test_closure_annotated(self):
        rendered = to_official(parse_path("(down[p])*"))
        assert "(: closure :)" in rendered

    def test_for_loop(self):
        rendered = to_official(
            parse_path("for $i in down return down[. is $i]"))
        assert rendered.startswith("for $i in child::*")
        assert ". is $i" in rendered


class TestNodes:
    @pytest.mark.parametrize("source, expected", [
        ("true", "true()"),
        ("false", "false()"),
        ("not p", "not(self::p)"),
        ("p and q", "self::p and self::q"),
        ("<down>", "child::*"),
    ])
    def test_rendering(self, source, expected):
        assert to_official(parse_node(source)) == expected

    def test_path_equality_as_exists_intersect(self):
        rendered = to_official(parse_node("eq(down, up)"))
        assert rendered == "exists((child::*) intersect (parent::*))"

    def test_awkward_label(self):
        rendered = to_official(parse_node("'weird label'"))
        assert "name() = 'weird label'" in rendered
