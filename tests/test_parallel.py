"""Tests for repro.parallel: the batch runner, the verdict cache, engine
racing, timeouts, and worker-failure isolation.

The pool uses the ``fork`` start method, so engine doubles registered in
the *parent's* default registry (the ``Raiser``/``Sleeper`` classes below)
are inherited by worker processes without pickling; only results cross
the pipe.
"""

from __future__ import annotations

import json
import random
import time

import pytest

from repro.analysis import contains, default_registry, satisfiable
from repro.analysis.problems import (
    ContainmentResult,
    Problem,
    ProblemKind,
    SatResult,
    Verdict,
)
from repro.analysis.registry import Engine
from repro.parallel import (
    BatchError,
    BatchRunner,
    VerdictCache,
    contains_many,
    problem_fingerprint,
    run_batch,
    satisfiable_many,
)
from repro.parallel.cache import (
    decode_result,
    encode_result,
    engine_set_fingerprint,
)
from repro.xpath import parse_node, parse_path

from .helpers import random_path

pytestmark = pytest.mark.filterwarnings(
    "ignore::DeprecationWarning")  # fork-in-threads notice on 3.12+


# --------------------------------------------------------- engine doubles


class Raiser(Engine):
    """Admits everything, always raises: the poison the pool must survive."""

    name = "test-raiser"
    conclusive = False
    cost_hint = 1  # cheapest: always tried first

    def admits(self, problem):
        return problem.kind in (ProblemKind.SATISFIABILITY,
                                ProblemKind.CONTAINMENT)

    def solve(self, problem, session=None):
        raise RuntimeError("injected engine failure")


class Sleeper(Engine):
    """Hangs far past any test timeout; only a terminate stops it."""

    name = "test-sleeper"
    conclusive = True  # a race contender
    cost_hint = 1

    def admits(self, problem):
        return problem.kind in (ProblemKind.SATISFIABILITY,
                                ProblemKind.CONTAINMENT)

    def solve(self, problem, session=None):
        time.sleep(60)
        raise AssertionError("sleeper was not terminated")


@pytest.fixture
def register_engine():
    """Register doubles in the default registry; always unregister after."""
    names: list[str] = []

    def _register(engine: Engine) -> Engine:
        default_registry().register(engine)
        names.append(engine.name)
        return engine

    yield _register
    for name in names:
        default_registry()._engines.pop(name, None)


def _pairs(seed: int, count: int):
    rng = random.Random(seed)
    operators = frozenset({"minus", "star"})
    return [(random_path(rng, 2, operators), random_path(rng, 2, operators))
            for _ in range(count)]


def _canon(results):
    return [encode_result(result) for result in results]


# ------------------------------------------------------------ verdict cache


class TestProblemFingerprint:
    def test_stable_across_reparses(self):
        first = Problem(ProblemKind.CONTAINMENT, alpha=parse_path("down[p]"),
                        beta=parse_path("down"))
        second = Problem(ProblemKind.CONTAINMENT, alpha=parse_path("down[p]"),
                         beta=parse_path("down"))
        assert problem_fingerprint(first) == problem_fingerprint(second)

    def test_sensitive_to_every_config_axis(self):
        base = Problem(ProblemKind.CONTAINMENT, alpha=parse_path("down[p]"),
                       beta=parse_path("down"), max_nodes=6)
        variants = [
            Problem(ProblemKind.CONTAINMENT, alpha=parse_path("down[q]"),
                    beta=parse_path("down"), max_nodes=6),
            Problem(ProblemKind.CONTAINMENT, alpha=parse_path("down"),
                    beta=parse_path("down[p]"), max_nodes=6),
            Problem(ProblemKind.CONTAINMENT, alpha=parse_path("down[p]"),
                    beta=parse_path("down"), max_nodes=7),
            Problem(ProblemKind.CONTAINMENT, alpha=parse_path("down[p]"),
                    beta=parse_path("down"), max_nodes=6, engine="bounded"),
            Problem(ProblemKind.EQUIVALENCE, alpha=parse_path("down[p]"),
                    beta=parse_path("down"), max_nodes=6),
        ]
        keys = {problem_fingerprint(variant) for variant in variants}
        assert problem_fingerprint(base) not in keys
        assert len(keys) == len(variants)

    def test_schema_changes_the_key(self):
        from repro.edtd import DTD
        plain = Problem(ProblemKind.SATISFIABILITY, phi=parse_node("p"))
        schema = Problem(ProblemKind.SATISFIABILITY, phi=parse_node("p"),
                         edtd=DTD({"p": "p*"}, root="p"))
        assert problem_fingerprint(plain) != problem_fingerprint(schema)

    def test_engine_set_does_not_change_the_key(self, register_engine):
        """Since cache schema v5 the key is stable across engine
        registration: conclusive verdicts are proofs and survive ladder
        changes.  Staleness of *inconclusive* entries is handled at ``get``
        time via the per-entry engine fingerprint, not via the key."""
        problem = Problem(ProblemKind.SATISFIABILITY, phi=parse_node("p"))
        before = problem_fingerprint(problem)
        register_engine(Sleeper())
        assert problem_fingerprint(problem) == before

    def test_current_engine_set_is_in_the_fingerprint(self):
        names = engine_set_fingerprint().split(",")
        assert "automata" in names
        assert "patterns" in names


class TestResultRoundTrip:
    def test_sat_result_with_witness(self):
        result = satisfiable(parse_node("p and <down[q]>"))
        assert result.witness is not None
        clone = decode_result(encode_result(result))
        assert encode_result(clone) == encode_result(result)
        assert clone.verdict is result.verdict
        assert clone.witness_node == result.witness_node

    def test_containment_with_counterexample(self):
        result = contains(parse_path("down"), parse_path("down[p]"),
                          max_nodes=3)
        assert result.counterexample is not None
        clone = decode_result(encode_result(result))
        assert encode_result(clone) == encode_result(result)
        assert clone.counterexample_pair == result.counterexample_pair

    def test_equivalence_per_direction(self):
        from repro.analysis import equivalent
        result = equivalent(parse_path("down except down[p]"),
                            parse_path("down[not p]"), max_nodes=4)
        assert result.per_direction is not None
        clone = decode_result(encode_result(result))
        assert isinstance(clone, ContainmentResult)
        assert clone.per_direction is not None
        assert encode_result(clone) == encode_result(result)


class TestVerdictCache:
    def _problem(self):
        return Problem(ProblemKind.CONTAINMENT, alpha=parse_path("down[p]"),
                       beta=parse_path("down"), max_nodes=4)

    def test_put_then_get_across_instances(self, tmp_path):
        problem = self._problem()
        result = contains(problem.alpha, problem.beta,
                          max_nodes=problem.max_nodes)
        writer = VerdictCache(tmp_path)
        assert writer.put(problem, result)
        reader = VerdictCache(tmp_path)  # cold in-memory layer: hits disk
        cached = reader.get(problem)
        assert cached is not None
        assert encode_result(cached) == encode_result(result)
        assert reader.info()["hits"] == 1
        assert writer.info()["stores"] == 1

    def test_miss_counts(self, tmp_path):
        cache = VerdictCache(tmp_path)
        assert cache.get(self._problem()) is None
        info = cache.info()
        assert info["directory"] == str(tmp_path)
        assert (info["hits"], info["misses"], info["stores"]) == (0, 1, 0)
        assert (info["mem_hits"], info["disk_hits"]) == (0, 0)

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        problem = self._problem()
        result = contains(problem.alpha, problem.beta,
                          max_nodes=problem.max_nodes)
        VerdictCache(tmp_path).put(problem, result)
        key = problem_fingerprint(problem)
        (tmp_path / f"{key}.json").write_text("{not json", encoding="utf-8")
        fresh = VerdictCache(tmp_path)
        assert fresh.get(problem) is None
        assert fresh.info()["misses"] == 1

    def test_conclusive_entry_survives_engine_change(self, tmp_path,
                                                     register_engine):
        """A conclusive verdict is a proof: growing the engine ladder must
        not evict it (cache schema v5)."""
        problem = self._problem()
        result = contains(problem.alpha, problem.beta,
                          max_nodes=problem.max_nodes)
        assert result.conclusive
        cache = VerdictCache(tmp_path)
        assert cache.put(problem, result)
        register_engine(Sleeper())
        served = VerdictCache(tmp_path).get(problem)
        assert served is not None
        assert encode_result(served) == encode_result(result)

    def test_inconclusive_entry_not_served_after_engine_change(
            self, tmp_path, register_engine):
        """A ``no-witness-within-bound`` answer depends on which engines
        exist — a new engine (``patterns`` being the motivating case) might
        turn it into a proof, so it round-trips under its own ladder but is
        a miss once the registered engine set changes."""
        problem = Problem(ProblemKind.CONTAINMENT, alpha=parse_path("down[p]"),
                          beta=parse_path("down"), max_nodes=3,
                          engine="bounded")
        result = contains(problem.alpha, problem.beta, method="bounded",
                          max_nodes=3)
        assert result.verdict is Verdict.NO_WITNESS_WITHIN_BOUND
        cache = VerdictCache(tmp_path)
        assert cache.put(problem, result)
        round_tripped = VerdictCache(tmp_path).get(problem)
        assert round_tripped is not None
        assert encode_result(round_tripped) == encode_result(result)
        register_engine(Sleeper())
        assert VerdictCache(tmp_path).get(problem) is None

    def test_incompatible_entry_is_a_miss(self, tmp_path):
        problem = self._problem()
        key = problem_fingerprint(problem)
        tmp_path.joinpath(f"{key}.json").write_text(
            json.dumps({"type": "sat", "verdict": "not-a-verdict"}),
            encoding="utf-8")
        assert VerdictCache(tmp_path).get(problem) is None


# --------------------------------------------------- differential behaviour


class TestDifferential:
    """The tentpole contract: batch verdicts == sequential verdicts, under
    every pool configuration, including poisoned and hanging engines."""

    def test_pool_race_and_cache_match_sequential(self, tmp_path):
        pairs = _pairs(seed=7, count=12)
        sequential = [contains(alpha, beta, max_nodes=3)
                      for alpha, beta in pairs]
        want = _canon(sequential)

        cache_dir = tmp_path / "cache"
        cold = contains_many(pairs, max_nodes=3, workers=2, cache=cache_dir)
        assert _canon(cold) == want

        warm_cache = VerdictCache(cache_dir)
        warm = contains_many(pairs, max_nodes=3, workers=2, cache=warm_cache)
        assert _canon(warm) == want
        assert warm_cache.info()["hits"] == len(pairs)

        raced = contains_many(pairs, max_nodes=3, workers=2, race=True)
        assert _canon(raced) == want

    def test_raising_first_engine_changes_nothing(self, register_engine):
        register_engine(Raiser())
        pairs = _pairs(seed=11, count=6)
        # Sequential dispatch also survives the raiser (it falls through),
        # so both sides exercise the same ladder semantics.
        sequential = [contains(alpha, beta, max_nodes=3)
                      for alpha, beta in pairs]
        report = run_batch(
            [Problem(ProblemKind.CONTAINMENT, alpha=alpha, beta=beta,
                     max_nodes=3) for alpha, beta in pairs],
            workers=2)
        assert not report.failed
        assert _canon(report.results()) == _canon(sequential)
        for outcome in report.outcomes:
            assert any(failure.engine == "test-raiser"
                       and failure.error_type == "RuntimeError"
                       for failure in outcome.failures)
            assert outcome.engine != "test-raiser"

    def test_timing_out_first_engine_changes_nothing(self, register_engine):
        # Sequential baseline *without* the sleeper: a timed-out engine must
        # degrade to exactly the verdict the rest of the ladder produces.
        pairs = _pairs(seed=13, count=2)
        sequential = [contains(alpha, beta, max_nodes=3)
                      for alpha, beta in pairs]
        register_engine(Sleeper())
        report = run_batch(
            [Problem(ProblemKind.CONTAINMENT, alpha=alpha, beta=beta,
                     max_nodes=3) for alpha, beta in pairs],
            workers=2, timeout=1.0)
        assert not report.failed
        assert _canon(report.results()) == _canon(sequential)
        for outcome in report.outcomes:
            statuses = {attempt["engine"]: attempt["status"]
                        for attempt in outcome.attempts}
            assert statuses["test-sleeper"] == "timeout"
            assert outcome.engine not in (None, "test-sleeper")

    def test_satisfiable_many_matches_sequential(self):
        exprs = [parse_node("p"), parse_node("p and not p"),
                 parse_node("<down[p]> and <down[q]>")]
        sequential = [satisfiable(phi, max_nodes=3) for phi in exprs]
        batch = satisfiable_many(exprs, max_nodes=3, workers=2)
        assert _canon(batch) == _canon(sequential)
        assert all(isinstance(result, SatResult) for result in batch)


# ------------------------------------------------------------------ racing


class TestRacing:
    def test_first_conclusive_verdict_wins(self, register_engine):
        register_engine(Sleeper())
        report = run_batch(
            [Problem(ProblemKind.CONTAINMENT, alpha=parse_path("down[p]"),
                     beta=parse_path("down"))],
            workers=1, race=True, timeout=10.0)
        [outcome] = report.outcomes
        assert outcome.result is not None and outcome.result.conclusive
        assert outcome.race_winner in ("patterns", "expspace")
        statuses = {attempt["engine"]: attempt["status"]
                    for attempt in outcome.attempts}
        assert statuses["test-sleeper"] == "lost-race"

    def test_forced_engine_skips_the_race(self):
        report = run_batch(
            [Problem(ProblemKind.CONTAINMENT, alpha=parse_path("down[p]"),
                     beta=parse_path("down"), engine="bounded")],
            workers=1, race=True)
        [outcome] = report.outcomes
        assert outcome.race_winner is None
        assert outcome.engine == "bounded"


# ------------------------------------------------------- failure isolation


class TestFailureIsolation:
    def test_all_engines_failing_raises_batch_error(self, register_engine):
        register_engine(Raiser())
        with pytest.raises(BatchError) as info:
            satisfiable_many([parse_node("p")], method="test-raiser",
                             workers=1)
        [outcome] = info.value.outcomes
        assert outcome.result is None
        assert "RuntimeError" in outcome.error
        assert outcome.failures[0].traceback  # full child traceback shipped

    def test_runner_reports_failures_without_raising(self, register_engine):
        register_engine(Raiser())
        report = BatchRunner(workers=1).run(
            [Problem(ProblemKind.SATISFIABILITY, phi=parse_node("p"),
                     engine="test-raiser")])
        [outcome] = report.outcomes
        assert report.failed == [outcome]
        assert outcome.error is not None
        assert report.summary()["worker_failures"] == 1

    def test_poisoned_problem_does_not_leak(self, register_engine):
        """One forced-to-fail problem next to healthy ones: the healthy
        verdicts are unchanged and arrive in input order."""
        register_engine(Raiser())
        healthy = Problem(ProblemKind.CONTAINMENT,
                          alpha=parse_path("down[p]"), beta=parse_path("down"))
        poisoned = Problem(ProblemKind.SATISFIABILITY, phi=parse_node("p"),
                           engine="test-raiser")
        report = run_batch([healthy, poisoned, healthy], workers=2)
        first, bad, last = report.outcomes
        assert first.result is not None and first.result.conclusive
        assert last.result is not None
        assert encode_result(first.result) == encode_result(last.result)
        assert bad.result is None and bad.error is not None


# ----------------------------------------------------------- API mechanics


class TestBatchAPI:
    def test_unknown_method_rejected_before_spawning(self):
        with pytest.raises(ValueError, match="unknown method"):
            contains_many([(parse_path("down"), parse_path("down"))],
                          method="quantum")

    def test_empty_batch(self):
        report = BatchRunner(workers=2).run([])
        assert report.outcomes == []
        assert report.summary()["problems"] == 0

    def test_workers_must_be_positive(self):
        with pytest.raises(ValueError, match="workers"):
            BatchRunner(workers=0)

    def test_results_in_input_order(self):
        pairs = [(parse_path("down[p]"), parse_path("down")),
                 (parse_path("down"), parse_path("down[p]")),
                 (parse_path("down[q]"), parse_path("down"))]
        results = contains_many(pairs, max_nodes=3, workers=3)
        assert [bool(result) for result in results] == [True, False, True]

    def test_batch_metrics_reach_the_recording(self, tmp_path):
        from repro import obs
        pairs = [(parse_path("down[p]"), parse_path("down"))]
        with obs.record("test-batch") as recording:
            contains_many(pairs, workers=1, cache=tmp_path / "cache")
            contains_many(pairs, workers=1, cache=tmp_path / "cache")
        counters = recording.counters
        assert counters["batch.problems"] == 2
        assert counters["batch.cache.miss"] == 1
        assert counters["batch.cache.hit"] == 1
        assert "batch.wall_s" in recording.gauges
