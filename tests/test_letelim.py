"""Tests for let elimination (Lemma 18)."""

import random

import pytest

from repro.automata import (
    FreshLabels,
    NFEvaluator,
    eliminate_lets,
    nf_labels_used,
    node_to_let_nf,
)
from repro.automata.epa import LetNF
from repro.automata.letelim import (
    nf_exists_down,
    nf_exists_right,
    nf_or,
    nf_somewhere,
    relativize_steps,
)
from repro.automata.nf import NFAnd, NFLabel, NFNot, NFTop, nf_size
from repro.semantics import evaluate_nodes
from repro.trees import MultiLabelTree, XMLTree, all_trees, random_tree
from repro.xpath import parse_node


def nf_satisfiable(expr, alphabet, max_nodes):
    for tree in all_trees(max_nodes, list(alphabet)):
        if NFEvaluator(tree).nodes(expr):
            return True
    return False


def decorate_witness(tree: XMLTree, letnf: LetNF) -> XMLTree:
    """Build the Lemma 18 decorated tree: attach an auxiliary leaf child
    labeled p to every node where p's (expanded) definition holds."""
    from repro.automata.epa import _expanded_definitions

    expanded = _expanded_definitions(letnf.environment)
    evaluator = NFEvaluator(tree)
    extras = {
        node: sorted(
            name for name, defn in expanded.items()
            if node in evaluator.nodes(defn)
        )
        for node in tree.nodes
    }

    def spec(node):
        kids = [spec(child) for child in tree.children(node)]
        aux = [(name, []) for name in extras[node]]
        return (tree.label(node), kids + aux)

    return XMLTree.build(spec(0))


class TestCombinators:
    def test_nf_or(self):
        tree = XMLTree.build(("p", ["q"]))
        expr = nf_or(NFLabel("p"), NFLabel("q"))
        assert NFEvaluator(tree).nodes(expr) == {0, 1}

    def test_nf_somewhere(self):
        tree = XMLTree.build(("a", [("b", ["p"]), "c"]))
        expr = nf_somewhere(NFLabel("p"))
        assert NFEvaluator(tree).nodes(expr) == frozenset(tree.nodes)
        absent = nf_somewhere(NFLabel("zz"))
        assert NFEvaluator(tree).nodes(absent) == frozenset()

    def test_nf_exists_down(self):
        tree = XMLTree.build(("a", ["p", ("b", ["p"])]))
        expr = nf_exists_down(NFLabel("p"))
        assert NFEvaluator(tree).nodes(expr) == {0, 2}

    def test_nf_exists_right(self):
        tree = XMLTree.build(("a", ["b", "p", "c"]))
        expr = nf_exists_right(NFLabel("p"))
        assert NFEvaluator(tree).nodes(expr) == {1}

    def test_relativize_steps_blindness(self):
        # Guarded to ¬aux, a step through an aux node is blocked.
        tree = XMLTree.build(("a", ["aux", "b"]))
        guard = NFNot(NFLabel("aux"))
        expr = relativize_steps(nf_exists_down(NFLabel("b")), guard)
        # The down gadget inside was built fresh here, so relativization
        # applies to it: ⟨↓[b]⟩ must step FIRST_CHILD (aux) then RIGHT —
        # the first-child step lands on aux and is blocked.
        assert NFEvaluator(tree).nodes(expr) == frozenset()


class TestLemma18:
    @pytest.mark.parametrize("source, satisfiable", [
        ("<down intersect down[p]>", True),
        ("<down[p] intersect down[q]>", False),
        ("eq(down*, down/down)", True),
        ("<(down/down) intersect down>", False),
    ])
    def test_equisatisfiability(self, source, satisfiable):
        node = parse_node(source)
        letnf = node_to_let_nf(node, FreshLabels())
        plain = eliminate_lets(letnf)
        assert not (nf_labels_used(plain) & {n for n, _ in letnf.environment} -
                    nf_labels_used(plain))  # bound labels may appear as aux markers

        if satisfiable:
            # Positive direction, constructively: decorate a witness of the
            # expanded formula and check the eliminated formula on it.
            expanded = letnf.expand()
            witness = None
            for tree in all_trees(4, ["p", "q", "z"]):
                nodes = NFEvaluator(tree).nodes(expanded)
                if nodes:
                    witness = (tree, min(nodes))
                    break
            assert witness is not None
            decorated = decorate_witness(witness[0], letnf)
            assert NFEvaluator(decorated).nodes(plain), source
        else:
            # Negative direction: the eliminated formula's alphabet includes
            # all the auxiliary let-labels, so exhaustive search is
            # infeasible — sample decorated-shaped random trees instead.
            alphabet = sorted(nf_labels_used(plain) | {"z"})
            rng = random.Random(hash(source) & 0xFFFF)
            evaluated = 0
            for _ in range(25):
                tree = random_tree(rng, 6, alphabet)
                assert not NFEvaluator(tree).nodes(plain), source
                evaluated += 1
            assert evaluated == 25

    def test_no_environment_is_identity(self):
        letnf = LetNF(NFLabel("p"), ())
        assert eliminate_lets(letnf) is letnf.core

    def test_output_polynomial(self):
        node = parse_node(
            "<down intersect down[p]> and <down* intersect down/down>"
        )
        letnf = node_to_let_nf(node, FreshLabels())
        plain = eliminate_lets(letnf)
        assert nf_size(plain) <= songs_bound(letnf.size())

    def test_duplicate_labels_rejected(self):
        letnf = LetNF(NFLabel("a"), (("a", NFTop()), ("a", NFTop())))
        with pytest.raises(ValueError):
            eliminate_lets(letnf)


def songs_bound(n: int) -> int:
    """Quadratic bound (the paper proves |φ'| quadratic in |φ|); our
    relativization constant is larger, so allow a generous polynomial."""
    return 200 * n * n
