"""Figure 1 hierarchy: the constructive expressivity inclusions checked
semantically, plus the paper's §2.2 running examples end-to-end."""

import random

import pytest

from repro.automata import FreshLabels, node_to_let_nf
from repro.automata.toexpr import letnf_to_expr
from repro.edtd import book_edtd, random_conforming_tree
from repro.lowerbounds import eliminate_complements
from repro.semantics import evaluate_nodes, evaluate_path
from repro.trees import XMLTree, random_tree
from repro.xpath import parse_node, parse_path
from repro.xpath.ast import Complement, Intersect, PathEquality, SomePath, Union
from repro.xpath.measures import operators_used
from repro.xpath.rewrite import (
    complement_via_for,
    eq_via_intersect,
    intersect_via_complement,
    union_via_complement,
)


class TestHierarchySteps:
    """CoreXPath(≈) ≤ CoreXPath(∩) ≤ CoreXPath(−) ≤ CoreXPath(for)."""

    def test_eq_to_cap_to_minus_to_for(self):
        rng = random.Random(301)
        eq_expr = parse_node("eq(down*[p], down/down)")

        # ≈ expressed with ∩.
        cap_expr = eq_via_intersect(eq_expr)
        # The ∩ inside expressed with −.
        inner = cap_expr.path
        assert isinstance(inner, Intersect)
        minus_expr = SomePath(intersect_via_complement(inner))
        # Each − expressed with for.
        for_expr = SomePath(eliminate_complements(minus_expr.path))

        assert operators_used(cap_expr) == {"cap"}
        assert operators_used(minus_expr) == {"minus"}
        assert operators_used(for_expr) == {"for"}

        for _ in range(25):
            tree = random_tree(rng, 8, ["p", "q"])
            reference = evaluate_nodes(tree, eq_expr)
            assert evaluate_nodes(tree, cap_expr) == reference
            assert evaluate_nodes(tree, minus_expr) == reference
            assert evaluate_nodes(tree, for_expr) == reference

    def test_star_cap_to_star_eq(self):
        """CoreXPath(*, ∩) ≡ CoreXPath(*, ≈): the Theorem 34 pipeline."""
        rng = random.Random(302)
        original = parse_node("<(down union right)* intersect down*>")
        translated = letnf_to_expr(node_to_let_nf(original, FreshLabels()))
        assert "cap" not in operators_used(translated)
        for _ in range(15):
            tree = random_tree(rng, 6, ["p", "q"])
            assert evaluate_nodes(tree, original) == \
                evaluate_nodes(tree, translated)

    def test_union_definable_from_complement(self):
        rng = random.Random(303)
        union = Union(parse_path("down[p]"), parse_path("right"))
        via_minus = union_via_complement(union)
        assert "cap" not in operators_used(via_minus)
        for _ in range(20):
            tree = random_tree(rng, 7, ["p", "q"])
            assert evaluate_path(tree, union) == evaluate_path(tree, via_minus)


class TestPaperExamples:
    """The §2.2 book examples, evaluated on schema-conforming documents."""

    @pytest.fixture
    def chapter_tree(self):
        return XMLTree.build(("Book", [
            ("Chapter", [
                ("Section", ["Paragraph", "Image"]),          # image @ 4
                ("Section", [("Section", ["Image"]), "Paragraph"]),  # image @ 7
            ]),
            ("Chapter", [("Section", ["Image", "Image"])]),   # images @ 11, 12
        ]))

    FIRST_IMAGE_EQ = (
        "down*[Image and not eq((up*/(left+/down*))[Image], "
        "up+[Chapter]/down+[Image])]"
    )

    def test_first_image_of_each_chapter_eq(self, chapter_tree):
        # CoreXPath(≈): images with no preceding image in the same chapter.
        expr = parse_path(self.FIRST_IMAGE_EQ)
        got = evaluate_path(chapter_tree, expr).get(0, frozenset())
        assert got == {4, 11}

    def test_following_images_same_chapter_cap(self, chapter_tree):
        # CoreXPath(∩): from the first Image, the following images within
        # the same chapter.
        expr = parse_path(
            "(up*/(right+/down*))[Image] intersect up+[Chapter]/down+[Image]"
        )
        got = evaluate_path(chapter_tree, expr).get(4, frozenset())
        assert got == {7}

    def test_first_following_image_minus(self, chapter_tree):
        # CoreXPath(−): the first following image in the same chapter.
        following_image = "(up*/(right+/down*))[Image]"
        same_chapter = "up+[Chapter]/down+[Image]"
        expr = parse_path(
            f"({following_image} intersect {same_chapter})"
            f" except ({following_image}/{following_image})"
        )
        got = evaluate_path(chapter_tree, expr).get(4, frozenset())
        assert got == {7}

    def test_first_image_via_star(self, chapter_tree):
        # CoreXPath(*): walk first-children, skipping image-less subtrees.
        # The paper guards the sideways skip with ¬⟨↓⁺[Image]⟩; since images
        # are leaves, that guard also lets the walk skip past an image it is
        # standing on, picking up later siblings too.  ↓*[Image]
        # (descendant-or-self) is the intended "subtree contains no image".
        expr = parse_path(
            "down[Chapter]/(down[not <left>] union "
            ".[not <down*[Image]>]/right)*[Image]"
        )
        got = evaluate_path(chapter_tree, expr).get(0, frozenset())
        assert got == {4, 11}

    def test_examples_agree_on_random_documents(self):
        rng = random.Random(304)
        book = book_edtd()
        eq_expr = parse_path(self.FIRST_IMAGE_EQ)
        star_expr = parse_path(
            "down[Chapter]/(down[not <left>] union "
            ".[not <down*[Image]>]/right)*[Image]"
        )
        compared = 0
        for _ in range(25):
            tree = random_conforming_tree(book, rng, max_nodes=30)
            got_eq = evaluate_path(tree, eq_expr).get(0, frozenset())
            got_star = evaluate_path(tree, star_expr).get(0, frozenset())
            assert got_eq == got_star, tree.to_spec()
            compared += 1
        assert compared == 25
