"""Tests for the workload optimizer (containment graph, covers, unions)."""

import pytest

from repro.analysis.optimize import (
    containment_graph,
    equivalence_classes,
    minimal_cover,
    simplify_union,
)
from repro.semantics import evaluate_path
from repro.trees import random_tree
from repro.xpath import parse_path, passes, to_source
from repro.xpath.passes import union_members


WORKLOAD = [
    "down[p]",            # 0: strictly inside 2
    "down[p] union down[q]",  # 1
    "down",               # 2: the top element
    "down/.",             # 3: equivalent to 2
    "down[q]",            # 4: strictly inside 1 and 2
]


@pytest.fixture(scope="module")
def graph():
    return containment_graph([parse_path(src) for src in WORKLOAD],
                             method="bounded", max_nodes=4)


class TestContainmentGraph:
    def test_reflexive(self, graph):
        for i in range(len(WORKLOAD)):
            assert i in graph.edges[i]

    def test_expected_edges(self, graph):
        assert 2 in graph.edges[0]       # down[p] ⊑ down
        assert 1 in graph.edges[0]       # down[p] ⊑ down[p] ∪ down[q]
        assert 0 not in graph.edges[2]   # down ⋢ down[p]
        assert 2 in graph.edges[3] and 3 in graph.edges[2]  # equivalent

    def test_equivalent_pairs(self, graph):
        assert (2, 3) in graph.equivalent_pairs()


class TestEquivalenceClasses:
    def test_partition(self, graph):
        classes = equivalence_classes(graph)
        flat = sorted(i for cls in classes for i in cls)
        assert flat == list(range(len(WORKLOAD)))

    def test_down_class(self, graph):
        classes = equivalence_classes(graph)
        assert [2, 3] in classes


class TestMinimalCover:
    def test_cover_is_the_maximal_queries(self, graph):
        cover = minimal_cover(graph)
        # `down` (index 2) subsumes everything else in this workload.
        assert cover == [2]

    def test_incomparable_queries_all_kept(self):
        graph = containment_graph(
            [parse_path("down[p]"), parse_path("down[q]"),
             parse_path("up")],
            method="bounded", max_nodes=4,
        )
        assert minimal_cover(graph) == [0, 1, 2]


class TestSimplifyUnion:
    def test_redundant_member_dropped(self):
        query = parse_path("down[p] union down")
        simplified = simplify_union(query, method="bounded", max_nodes=4)
        assert to_source(simplified) == "down"

    def test_irredundant_union_unchanged(self):
        query = parse_path("down[p] union up")
        simplified = simplify_union(query, method="bounded", max_nodes=4)
        # No member is dropped; the result is the rewrite-pipeline
        # canonical form of the same union (members canonically ordered).
        assert simplified == passes.canonical(query)
        assert set(union_members(simplified)) == set(union_members(query))

    def test_simplification_is_equivalent(self):
        import random
        rng = random.Random(717)
        query = parse_path("down[p] union down union down/.")
        simplified = simplify_union(query, method="bounded", max_nodes=4)
        for _ in range(15):
            tree = random_tree(rng, 7, ["p", "q"])
            assert evaluate_path(tree, query) == \
                evaluate_path(tree, simplified)

    def test_non_union_passthrough(self):
        query = parse_path("down[p]")
        assert simplify_union(query) is passes.canonical(query)

    def test_syntactic_duplicate_needs_no_engine(self):
        # Canonicalization dedupes the members before the containment
        # loop ever runs: no engine is dispatched at all.
        from repro import obs

        query = parse_path("down[p] union down[p]")
        with obs.record("simplify-union") as recording:
            simplified = simplify_union(query, method="bounded", max_nodes=4)
        assert to_source(simplified) == "down[p]"
        counters = recording.to_run_record().to_dict()["counters"]
        assert not any(name.startswith("dispatch.") for name in counters)
