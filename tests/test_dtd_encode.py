"""Tests for the DTD → CoreXPath(*) encoding (the Marx 2004 fact the paper
uses to drop schemas from its * upper bounds)."""

import random

import pytest

from repro.edtd import DTD, book_edtd, nested_sections_edtd, random_conforming_tree
from repro.edtd.encode import content_model_to_path, dtd_to_corexpath_star
from repro.regexes import parse_regex
from repro.semantics import holds_at
from repro.trees import XMLTree, all_trees, random_tree
from repro.xpath import size
from repro.xpath.fragments import CORE_STAR
from repro.xpath.measures import operators_used


class TestContentModelPath:
    def test_word_walk(self):
        # On a sibling run b, c, c: the walk for "b c*" entered at b ends at
        # the last matched sibling.
        from repro.semantics import evaluate_path
        from repro.xpath.ast import Axis, AxisStep
        tree = XMLTree.build(("a", ["b", "c", "c"]))
        walk = content_model_to_path(parse_regex("c c"), AxisStep(Axis.RIGHT))
        relation = evaluate_path(tree, walk)
        assert relation.get(1) == frozenset({3})


class TestDTDEncoding:
    SCHEMAS = [
        DTD({"a": "b c", "b": "eps", "c": "eps"}, root="a"),
        DTD({"a": "b*", "b": "a?"}, root="a"),
        DTD({"a": "(b | c)+", "b": "eps", "c": "b?"}, root="a"),
        book_edtd(),
    ]

    @pytest.mark.parametrize("index", range(len(SCHEMAS)))
    def test_encoding_matches_conformance_exhaustively(self, index):
        schema = self.SCHEMAS[index]
        phi = dtd_to_corexpath_star(schema)
        alphabet = sorted(schema.concrete_labels())[:3]
        for tree in all_trees(4, alphabet):
            assert holds_at(tree, phi, 0) == schema.conforms(tree), \
                tree.to_spec()

    @pytest.mark.parametrize("index", range(len(SCHEMAS)))
    def test_encoding_accepts_generated_documents(self, index):
        schema = self.SCHEMAS[index]
        phi = dtd_to_corexpath_star(schema)
        rng = random.Random(811 + index)
        for _ in range(10):
            tree = random_conforming_tree(schema, rng, max_nodes=25)
            assert holds_at(tree, phi, 0), tree.to_spec()

    def test_encoding_rejects_mutations(self):
        schema = book_edtd()
        phi = dtd_to_corexpath_star(schema)
        tree = XMLTree.build(
            ("Book", [("Chapter", [("Section", ["Image"])])])
        )
        assert holds_at(tree, phi, 0)
        broken = tree.relabel({"Image": "Chapter"})
        assert not holds_at(broken, phi, 0)

    def test_stays_in_core_star(self):
        phi = dtd_to_corexpath_star(self.SCHEMAS[0])
        assert operators_used(phi) <= {"star"}
        assert CORE_STAR.admits(phi)

    def test_linear_blowup(self):
        """The Marx fact: the encoding is linear in the DTD size."""
        sizes = {}
        for width in (2, 4, 8):
            rules = {"a": " | ".join(["b"] * width) + " ", "b": "eps"}
            rules["a"] = "(" + " | ".join(["b"] * width) + ")*"
            schema = DTD(rules, root="a")
            sizes[width] = size(dtd_to_corexpath_star(schema)) / schema.size()
        assert max(sizes.values()) / min(sizes.values()) < 3

    def test_edtd_rejected(self):
        with pytest.raises(ValueError):
            dtd_to_corexpath_star(nested_sections_edtd(2))
