"""Tests for fixed-bucket histograms and their RunRecord integration."""

import pytest

from repro import obs
from repro.obs import Histogram, RunRecord
from repro.obs.histogram import DEFAULT_BOUNDS


class TestBucketMath:
    def test_bounds_are_a_1_2_5_ladder(self):
        assert DEFAULT_BOUNDS == tuple(sorted(DEFAULT_BOUNDS))
        assert 1e-3 in DEFAULT_BOUNDS
        assert 2e-3 in DEFAULT_BOUNDS
        assert 5e-3 in DEFAULT_BOUNDS

    def test_observation_lands_in_first_bucket_at_or_above(self):
        h = Histogram()
        h.observe(3e-3)  # between 2e-3 and 5e-3 -> the 5e-3 bucket
        data = h.to_dict()
        filled = [(bound, n) for bound, n in data["buckets"] if n]
        assert filled == [[5e-3, 1]] or filled == [(5e-3, 1)]

    def test_boundary_value_goes_to_its_own_bucket(self):
        h = Histogram()
        h.observe(1e-3)  # exactly a bound -> counted in that bucket
        filled = [bound for bound, n in h.to_dict()["buckets"] if n]
        assert filled == [1e-3]

    def test_overflow_bucket_is_unbounded(self):
        h = Histogram()
        h.observe(1e9)
        filled = [bound for bound, n in h.to_dict()["buckets"] if n]
        assert filled == [None]

    def test_count_sum_min_max_mean(self):
        h = Histogram()
        for value in (0.01, 0.02, 0.03):
            h.observe(value)
        data = h.to_dict()
        assert data["count"] == 3
        assert data["sum"] == pytest.approx(0.06)
        assert data["min"] == 0.01
        assert data["max"] == 0.03
        assert data["mean"] == pytest.approx(0.02)


class TestQuantiles:
    def test_single_observation_is_exact(self):
        h = Histogram()
        h.observe(0.042)
        data = h.to_dict()
        assert data["p50"] == 0.042
        assert data["p99"] == 0.042

    def test_single_observation_exact_at_every_q(self):
        # Exactness must be structural, not an artifact of min == max
        # clamping: every quantile of one sample *is* that sample, even at
        # q = 0 and q = 1 and for values far inside a wide bucket.
        h = Histogram()
        h.observe(3.7e3)  # deep inside the (2e3, 5e3] bucket
        for q in (0.0, 0.25, 0.5, 0.9, 0.99, 1.0):
            assert h.quantile(q) == 3.7e3

    def test_zero_observations_raise(self):
        with pytest.raises(ValueError, match="empty"):
            Histogram().quantile(0.5)

    def test_two_observations_stay_within_range(self):
        h = Histogram()
        h.observe(1e-6)
        h.observe(4e3)  # opposite ends of the bucket ladder
        for q in (0.0, 0.5, 1.0):
            assert 1e-6 <= h.quantile(q) <= 4e3

    def test_quantile_fraction_is_validated(self):
        h = Histogram()
        h.observe(1.0)
        with pytest.raises(ValueError, match="fraction"):
            h.quantile(-0.1)
        with pytest.raises(ValueError, match="fraction"):
            h.quantile(1.5)

    def test_quantiles_clamp_to_observed_range(self):
        h = Histogram()
        for value in (0.011, 0.019):
            h.observe(value)
        data = h.to_dict()
        assert 0.011 <= data["p50"] <= 0.019
        assert 0.011 <= data["p99"] <= 0.019

    def test_p99_dominates_p50_on_skewed_data(self):
        h = Histogram()
        for _ in range(90):
            h.observe(1e-4)
        for _ in range(10):
            h.observe(1.0)
        data = h.to_dict()
        assert data["p50"] < 1e-3
        assert data["p99"] > 1e-2

    def test_empty_histogram_has_null_summaries(self):
        data = Histogram().to_dict()
        assert data["count"] == 0
        assert data["p50"] is None
        assert data["p99"] is None


class TestMergeAndRoundTrip:
    def test_round_trip(self):
        h = Histogram()
        for value in (0.001, 0.5, 30.0):
            h.observe(value)
        clone = Histogram.from_dict(h.to_dict())
        assert clone.to_dict() == h.to_dict()

    def test_merge_sums_counts(self):
        a, b = Histogram(), Histogram()
        a.observe(0.01)
        b.observe(10.0)
        a.merge(b)
        data = a.to_dict()
        assert data["count"] == 2
        assert data["min"] == 0.01
        assert data["max"] == 10.0


class TestRecordingIntegration:
    def test_observe_feeds_the_active_recording(self):
        with obs.record("run") as recording:
            obs.observe("latency_s", 0.002)
            obs.observe("latency_s", 0.004)
        record = recording.to_run_record()
        data = record.histograms["latency_s"]
        assert data["count"] == 2
        assert data["p50"] is not None and data["p99"] is not None

    def test_observe_is_noop_when_disabled(self):
        obs.observe("latency_s", 1.0)  # must not raise, must not record
        assert obs.active() is None

    def test_schema_v2_round_trip(self):
        with obs.record("run") as recording:
            obs.observe("x_s", 0.1)
        record = recording.to_run_record()
        data = record.to_dict()
        assert data["schema_version"] == 2
        assert data["trace_id"]
        clone = RunRecord.from_dict(data)
        assert clone.histograms == record.histograms
        assert clone.trace_id == record.trace_id

    def test_schema_v1_records_still_load(self):
        v1 = {"schema_version": 1, "name": "old", "duration_s": 0.5,
              "meta": {}, "counters": {"n": 1}, "gauges": {},
              "spans": {"name": "old", "duration_s": 0.5}}
        record = RunRecord.from_dict(v1)
        assert record.histograms == {}
        assert record.trace_id == ""
        assert record.counters == {"n": 1}

    def test_unknown_schema_version_rejected(self):
        with pytest.raises(ValueError, match="schema version"):
            RunRecord.from_dict({"schema_version": 99, "name": "x",
                                 "duration_s": 0.0})

    def test_summary_renders_histogram_lines(self):
        with obs.record("run") as recording:
            obs.observe("slow_s", 0.25)
            obs.observe("sizes", 12)
        text = recording.to_run_record().summary()
        assert "histograms:" in text
        assert "slow_s" in text and "ms" in text
        assert "sizes" in text
