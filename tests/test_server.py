"""Tests for the resident ExecutorService and the ``repro serve`` daemon.

The service half covers the lifecycle the one-shot BatchRunner never
exercised: residency across submissions (warm schema sessions), per-submit
timeout overrides, release/close semantics, and session-registry LRU
eviction while the service is live.  The daemon half drives the HTTP and
JSONL endpoints end to end over real sockets — validation and admission
rejections, load shedding, answer ordering, ``/stats``, graceful drain —
plus the ``repro batch --server`` CLI integration against a local batch
run of the same stream.
"""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.analysis import default_registry
from repro.analysis.problems import Problem, ProblemKind
from repro.analysis.registry import Engine
from repro.analysis.session import registry_stats, reset_sessions
from repro.parallel import BatchRunner, ExecutorService
from repro.server import (
    HttpClient,
    ServerClient,
    ServerConfig,
    http_json,
    start_in_thread,
)
from repro.xpath import parse_node, parse_path

pytestmark = pytest.mark.filterwarnings(
    "ignore::DeprecationWarning")  # fork-in-threads notice on 3.12+


def _contains(alpha: str = "down[p]", beta: str = "down",
              **kwargs) -> Problem:
    return Problem(ProblemKind.CONTAINMENT, alpha=parse_path(alpha),
                   beta=parse_path(beta), **kwargs)


def _sat(expr: str, **kwargs) -> Problem:
    return Problem(ProblemKind.SATISFIABILITY, phi=parse_node(expr),
                   **kwargs)


class Sleeper(Engine):
    name = "test-srv-sleeper"
    conclusive = True
    cost_hint = 1

    def admits(self, problem):
        return True

    def solve(self, problem, session=None):
        time.sleep(60)
        raise AssertionError("sleeper was not terminated")


@pytest.fixture
def sleeper_engine():
    default_registry().register(Sleeper())
    yield Sleeper.name
    default_registry()._engines.pop(Sleeper.name, None)


# ---------------------------------------------------------- ExecutorService


class TestExecutorService:
    def test_resident_sessions_across_submissions(self, tmp_path):
        """The compile-once property holds across *submissions*, not just
        within one batch: the second submit of a schema-shape reuses the
        parent's warm session instead of compiling again."""
        reset_sessions()
        before = registry_stats()
        service = ExecutorService(workers=2, cache=None)
        try:
            first = service.submit(_sat("p")).result(timeout=60)
            second = service.submit(_sat("p")).result(timeout=60)
            assert first.result is not None
            assert second.result is not None
            after = registry_stats()
            assert after["created"] - before["created"] == 1
            assert after["reused"] - before["reused"] >= 1
            stats = service.stats()
            assert stats["submitted"] == 2
            assert stats["completed"] == 2
            assert stats["inflight"] == 0
        finally:
            service.close()
        assert registry_stats()["resident"] == 0  # close resets sessions

    def test_concurrent_submitters(self):
        service = ExecutorService(workers=4, cache=None)
        results = {}
        errors = []

        def _submit(index: int) -> None:
            try:
                outcome = service.submit(
                    _sat("p", max_nodes=2 + index)).result(timeout=60)
                results[index] = outcome
            except Exception as error:  # noqa: BLE001
                errors.append(error)

        try:
            threads = [threading.Thread(target=_submit, args=(index,))
                       for index in range(6)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
            assert not errors
            assert len(results) == 6
            assert all(outcome.result is not None
                       for outcome in results.values())
        finally:
            service.close()

    def test_per_submit_timeout_override(self, sleeper_engine):
        service = ExecutorService(workers=1, cache=None, timeout=None)
        try:
            started = time.perf_counter()
            outcome = service.submit(
                _sat("p", engine=sleeper_engine),
                timeout=0.3).result(timeout=60)
            elapsed = time.perf_counter() - started
            assert elapsed < 30
            assert any(attempt["status"] == "timeout"
                       for attempt in outcome.attempts)
        finally:
            service.close()

    def test_release_keeps_service_usable(self):
        service = ExecutorService(workers=1, cache=None)
        try:
            assert service.submit(_sat("p")).result(timeout=60).result \
                is not None
            service.release()
            assert service._pool is None
            assert service.submit(_sat("p")).result(timeout=60).result \
                is not None  # pool lazily recreated
        finally:
            service.close()

    def test_close_is_terminal_and_idempotent(self):
        service = ExecutorService(workers=1, cache=None)
        service.close()
        service.close()
        assert service.closed
        with pytest.raises(RuntimeError):
            service.submit(_sat("p"))

    def test_batchrunner_leaves_no_threads_or_sessions(self):
        runner = BatchRunner(workers=2, cache=None)
        report = runner.run([_contains(), _sat("p")])
        assert all(outcome.result is not None for outcome in report.outcomes)
        assert runner.service._pool is None  # released after the run
        assert registry_stats()["resident"] == 0

    def test_session_lru_eviction_under_live_service(self, monkeypatch):
        """A long-lived service over many schema shapes stays bounded: the
        registry LRU-evicts beyond MAX_SESSIONS while the service keeps
        answering correctly."""
        import repro.analysis.session as session_module

        reset_sessions()
        monkeypatch.setattr(session_module, "MAX_SESSIONS", 2)
        before = registry_stats()
        service = ExecutorService(workers=1, cache=None)
        try:
            for expr in ("p", "q", "r", "s"):
                outcome = service.submit(_sat(expr)).result(timeout=60)
                assert outcome.result is not None
                assert outcome.result.verdict.value == "satisfiable"
            after = registry_stats()
            assert after["resident"] <= 2
            assert after["evicted"] - before["evicted"] >= 2
            # An evicted schema recompiles on resubmission — and still
            # answers.
            outcome = service.submit(_sat("p")).result(timeout=60)
            assert outcome.result is not None
        finally:
            service.close()


# ------------------------------------------------------------------ daemon


def _config(tmp_path, **kwargs) -> ServerConfig:
    kwargs.setdefault("port", 0)
    kwargs.setdefault("workers", 2)
    kwargs.setdefault("cache_dir", str(tmp_path / "cache"))
    return ServerConfig(**kwargs)


class TestHttpEndpoints:
    @pytest.fixture
    def server(self, tmp_path):
        with start_in_thread(_config(tmp_path)) as handle:
            yield handle

    def test_healthz(self, server):
        status, body = http_json(server.http_address, "/healthz")
        assert status == 200
        assert body["status"] == "ok"

    def test_solve_then_cache_hit(self, server):
        request = {"kind": "contains", "alpha": "down[p]", "beta": "down"}
        status, first = http_json(server.http_address, "/v1/solve", request)
        assert status == 200
        assert first["verdict"] == "unsatisfiable"
        assert first["contained"] is True
        assert first["cache"] == "miss"
        status, second = http_json(server.http_address, "/v1/solve", request)
        assert status == 200
        assert second["cache"] == "hit"
        assert second["engine"] == "cache"
        assert second["verdict"] == first["verdict"]

    def test_kind_pinning_aliases(self, server):
        status, body = http_json(server.http_address, "/v1/satisfiable",
                                 {"expr": "p and q"})
        assert status == 200
        assert body["kind"] == "satisfiable"
        status, body = http_json(server.http_address, "/v1/equivalent",
                                 {"alpha": "down", "beta": "down/down"})
        assert status == 200
        assert body["kind"] == "equivalent"
        assert body["contained"] is False

    def test_rejections(self, server):
        address = server.http_address
        cases = [
            ({"kind": "nope", "expr": "p"}, "unknown kind"),
            ({"expr": "p"}, "missing field"),  # contains without alpha
            ({"kind": "satisfiable", "expr": "p", "passes": "none"},
             "passes"),
            ({"kind": "satisfiable", "expr": "p", "timeout": 1e9},
             "timeout"),
            ({"kind": "satisfiable", "expr": "p", "max_nodes": 99},
             "max_nodes"),
            ({"kind": "satisfiable", "expr": "p", "engine": "no-such"},
             "unknown engine"),
            ({"kind": "satisfiable", "expr": "p("}, ""),  # syntax error
        ]
        for request, needle in cases:
            status, body = http_json(address, "/v1/solve", request)
            assert status == 400, request
            assert needle in body["error"]

    def test_invalid_json_and_routing(self, server):
        address = server.http_address
        with HttpClient(address) as client:
            status, body = client.request("/v1/solve", method="POST")
            assert status == 400  # empty body is not JSON
            status, body = client.request("/nowhere")
            assert status == 404
            status, body = client.request("/healthz", method="POST",
                                          payload={})
            assert status == 405
            status, body = client.request("/v1/solve", method="GET")
            assert status == 405

    def test_stats_shape_and_warm_compile_freeness(self, server):
        address = server.http_address
        request = {"kind": "satisfiable", "expr": "p or q"}
        assert http_json(address, "/v1/solve", request)[0] == 200
        _, cold = http_json(address, "/stats")
        assert http_json(address, "/v1/solve", request)[0] == 200
        _, warm = http_json(address, "/stats")
        for payload in (cold, warm):
            assert payload["status"] == "ok"
            for section in ("server", "executor", "sessions", "cache"):
                assert section in payload
        assert warm["server"]["cache_hits"] >= cold["server"]["cache_hits"]
        assert warm["cache"]["mem_hits"] >= 1
        # The warm request compiled nothing: the session registry's
        # lifetime counters are flat across it.
        assert warm["sessions"]["created"] == cold["sessions"]["created"]
        assert warm["executor"]["completed"] == \
            warm["executor"]["submitted"]

    def test_engine_allowlist(self, tmp_path):
        config = _config(tmp_path, engines=("patterns",))
        with start_in_thread(config) as handle:
            status, body = http_json(
                handle.http_address, "/v1/solve",
                {"kind": "satisfiable", "expr": "p", "engine": "bounded"})
            assert status == 400
            assert "not admitted" in body["error"]
            status, body = http_json(
                handle.http_address, "/v1/solve",
                {"kind": "satisfiable", "expr": "p", "engine": "patterns"})
            assert status == 200


class TestShedding:
    def test_max_inflight_zero_sheds_everything(self, tmp_path):
        with start_in_thread(_config(tmp_path, max_inflight=0)) as handle:
            status, body = http_json(
                handle.http_address, "/v1/solve",
                {"kind": "satisfiable", "expr": "p"})
            assert status == 429
            assert "overloaded" in body["error"]
            _, stats = http_json(handle.http_address, "/stats")
            assert stats["server"]["shed"] == 1
            assert stats["server"]["solved"] == 0


class TestJsonlProtocol:
    @pytest.fixture
    def server(self, tmp_path):
        config = _config(tmp_path, jsonl_port=0)
        with start_in_thread(config) as handle:
            yield handle

    def test_answers_in_input_order(self, server):
        client = ServerClient(server.jsonl_address)
        requests = [
            {"id": f"r{index}", "kind": "satisfiable", "expr": "p",
             "max_nodes": 2 + index}
            for index in range(8)
        ]
        records = client.solve_records(requests)
        assert [record["id"] for record in records] == \
            [request["id"] for request in requests]
        assert all(record["verdict"] == "satisfiable"
                   for record in records)

    def test_malformed_line_gets_error_record_in_place(self, server):
        client = ServerClient(server.jsonl_address)
        lines = [
            json.dumps({"kind": "satisfiable", "expr": "p"}),
            "{this is not json",
            json.dumps({"kind": "satisfiable", "expr": "q"}),
        ]
        records = client.solve_lines(lines)
        assert len(records) == 3
        assert records[0]["id"] == 1
        assert "invalid JSON" in records[1]["error"]
        assert records[1]["id"] == 2
        assert records[2]["id"] == 3
        assert records[2]["verdict"] == "satisfiable"

    def test_default_ids_number_payload_lines(self, server):
        client = ServerClient(server.jsonl_address)
        records = client.solve_records(
            [{"kind": "satisfiable", "expr": "p"},
             {"kind": "satisfiable", "expr": "q"}])
        assert [record["id"] for record in records] == [1, 2]


class TestCliIntegration:
    def _write_stream(self, tmp_path) -> str:
        lines = [
            {"id": "a", "kind": "contains", "alpha": "down[p]",
             "beta": "down"},
            {"id": "b", "kind": "satisfiable", "expr": "p and not p"},
            {"id": "c", "kind": "equivalent", "alpha": "down",
             "beta": "down/down"},
        ]
        path = tmp_path / "stream.jsonl"
        path.write_text("".join(json.dumps(line) + "\n" for line in lines),
                        encoding="utf-8")
        return str(path)

    @staticmethod
    def _stable(records: list[dict]) -> list[dict]:
        keep = ("id", "kind", "verdict", "conclusive", "contained",
                "counterexample_pair", "error")
        return [{key: record[key] for key in keep if key in record}
                for record in records]

    def test_batch_via_server_matches_local_batch(self, tmp_path, capsys):
        from repro.cli import main

        stream = self._write_stream(tmp_path)
        config = _config(tmp_path, jsonl_path=str(tmp_path / "sock"))
        with start_in_thread(config) as handle:
            assert main(["batch", stream, "--server",
                         handle.jsonl_address]) == 0
            served = [json.loads(line) for line
                      in capsys.readouterr().out.splitlines()]
        assert main(["batch", stream, "--no-cache", "--workers", "2"]) == 0
        local = [json.loads(line) for line
                 in capsys.readouterr().out.splitlines()]
        assert self._stable(served) == self._stable(local)

    def test_batch_via_server_bad_line_exits_2(self, tmp_path, capsys):
        from repro.cli import main

        stream = tmp_path / "bad.jsonl"
        stream.write_text('{"kind": "nope"}\n', encoding="utf-8")
        config = _config(tmp_path, jsonl_path=str(tmp_path / "sock"))
        with start_in_thread(config) as handle:
            assert main(["batch", str(stream), "--server",
                         handle.jsonl_address]) == 2
        records = [json.loads(line) for line
                   in capsys.readouterr().out.splitlines()]
        assert "unknown kind" in records[0]["error"]


class TestDrain:
    def test_stop_joins_and_unlinks_socket(self, tmp_path):
        sock = tmp_path / "drain.sock"
        handle = start_in_thread(_config(tmp_path, jsonl_path=str(sock)))
        assert sock.exists()
        assert http_json(handle.http_address, "/healthz")[0] == 200
        handle.stop()
        assert not handle.thread.is_alive()
        assert not sock.exists()
        handle.stop()  # idempotent
