"""Unit tests for the XML tree substrate (Definition 1)."""

import pytest

from repro.trees import XMLTree


@pytest.fixture
def book():
    return XMLTree.build(
        ("Book", [
            ("Chapter", [("Section", ["Paragraph", "Image"])]),
            ("Chapter", [("Section", [("Section", ["Image"])])]),
        ])
    )


class TestConstruction:
    def test_single_node(self):
        tree = XMLTree(["a"], [None])
        assert tree.size == 1
        assert tree.root == 0
        assert tree.label(0) == "a"
        assert tree.is_leaf(0)

    def test_build_nested(self, book):
        assert book.size == 9
        assert book.label(0) == "Book"
        assert [book.label(c) for c in book.children(0)] == ["Chapter", "Chapter"]

    def test_build_accepts_bare_string_leaves(self):
        tree = XMLTree.build(("a", ["b", "c"]))
        assert [tree.label(n) for n in tree.nodes] == ["a", "b", "c"]

    def test_chain(self):
        tree = XMLTree.chain("abc")
        assert tree.size == 3
        assert tree.children(0) == (1,)
        assert tree.children(1) == (2,)

    def test_chain_empty_rejected(self):
        with pytest.raises(ValueError):
            XMLTree.chain([])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            XMLTree([], [])

    def test_non_preorder_rejected(self):
        # node 1's subtree must be preorder-contiguous: here node 3 hangs
        # under node 1 but is numbered after node 2 (a child of the root).
        with pytest.raises(ValueError):
            XMLTree(["a", "b", "c", "d"], [None, 0, 0, 1])
        # A parent reference pointing forward is also rejected.
        with pytest.raises(ValueError):
            XMLTree(["a", "b"], [1, None])

    def test_root_must_be_first(self):
        with pytest.raises(ValueError):
            XMLTree(["a", "b"], [0, None])

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            XMLTree(["a", "b"], [None])


class TestNavigation:
    def test_parent_child(self, book):
        for node in book.nodes:
            for child in book.children(node):
                assert book.parent(child) == node

    def test_siblings(self, book):
        first, second = book.children(0)
        assert book.next_sibling(first) == second
        assert book.prev_sibling(second) == first
        assert book.next_sibling(second) is None
        assert book.prev_sibling(first) is None

    def test_first_child(self, book):
        assert book.first_child(0) == 1
        leaf = next(iter(book.leaves()))
        assert book.first_child(leaf) is None

    def test_depth_and_height(self, book):
        assert book.depth(0) == 0
        assert book.height() == 4  # Book/Chapter/Section/Section/Image

    def test_descendants_contiguous(self, book):
        desc = list(book.descendants(1))
        assert desc == [2, 3, 4]

    def test_descendants_or_self(self, book):
        assert list(book.descendants_or_self(2)) == [2, 3, 4]

    def test_ancestors(self, book):
        image = max(book.nodes_with_label("Image"))
        chain = list(book.ancestors(image))
        assert chain[-1] == 0
        assert all(book.is_ancestor(a, image) for a in chain)

    def test_is_ancestor_irreflexive(self, book):
        assert not book.is_ancestor(2, 2)

    def test_sibling_iterators(self):
        tree = XMLTree.build(("a", ["b", "c", "d"]))
        assert list(tree.following_siblings(1)) == [2, 3]
        assert list(tree.preceding_siblings(3)) == [2, 1]

    def test_leaves_and_labels(self, book):
        assert sorted(book.label(n) for n in book.leaves()) == \
            ["Image", "Image", "Paragraph"]
        assert len(list(book.nodes_with_label("Section"))) == 3

    def test_alphabet(self, book):
        assert book.alphabet() == {"Book", "Chapter", "Section",
                                   "Paragraph", "Image"}


class TestModifiers:
    def test_relabel_dict(self, book):
        renamed = book.relabel({"Image": "Figure"})
        assert sorted(renamed.label(n) for n in renamed.leaves()) == \
            ["Figure", "Figure", "Paragraph"]
        # Original is unchanged (immutability).
        assert "Image" in book.alphabet()

    def test_relabel_callable(self, book):
        upper = book.relabel(str.upper)
        assert upper.label(0) == "BOOK"

    def test_add_then_drop_root(self, book):
        grown = book.add_root("Library")
        assert grown.size == book.size + 1
        assert grown.label(0) == "Library"
        assert grown.drop_root() == book

    def test_drop_root_requires_single_child(self, book):
        with pytest.raises(ValueError):
            book.drop_root()

    def test_to_spec_roundtrip(self, book):
        assert XMLTree.build(book.to_spec()) == book


class TestEquality:
    def test_equal_and_hash(self):
        a = XMLTree.build(("a", ["b"]))
        b = XMLTree.build(("a", ["b"]))
        assert a == b
        assert hash(a) == hash(b)

    def test_unequal_labels(self):
        assert XMLTree.build(("a", ["b"])) != XMLTree.build(("a", ["c"]))

    def test_unequal_shape(self):
        assert XMLTree.build(("a", ["b", "c"])) != \
            XMLTree.build(("a", [("b", ["c"])]))

    def test_repr_evaluable_shape(self, book):
        assert "Book" in repr(book)
