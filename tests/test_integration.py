"""End-to-end integration scenarios across the whole pipeline."""

import random

import pytest

from repro import (
    DTD,
    Verdict,
    book_edtd,
    contains,
    equivalent,
    evaluate_path,
    parse_node,
    parse_path,
    satisfiable,
)
from repro.analysis import containment_to_node_unsat, node_satisfiable
from repro.automata import accepts, build_twoata
from repro.edtd import random_conforming_tree
from repro.trees import from_xml


class TestQueryOptimizationScenario:
    """Redundancy elimination over a workload of queries (the Tajima–Fukui
    motivation cited in Related Work)."""

    WORKLOAD = [
        "down[Chapter]/down[Section]",
        "down/down[Section]",
        "down[Chapter]/down",
        "down/down",
        "down*[Section] intersect down/down",
    ]

    def test_containment_matrix(self):
        paths = [parse_path(src) for src in self.WORKLOAD]
        matrix = {}
        for i, alpha in enumerate(paths):
            for j, beta in enumerate(paths):
                if i != j:
                    matrix[i, j] = contains(alpha, beta, max_nodes=4).contained
        # Every query is contained in "down/down".
        for i in range(len(paths)):
            if i != 3:
                assert matrix[i, 3], self.WORKLOAD[i]
        # "down/down" is contained in none of the filtered ones.
        assert not matrix[3, 0]

    def test_redundant_union_member_detected(self):
        general = parse_path("down/down")
        specific = parse_path("down[Chapter]/down[Section]")
        assert contains(specific, general, max_nodes=4).contained
        # So "specific union general" is equivalent to "general".
        union = specific | general
        assert equivalent(union, general, max_nodes=4).contained


class TestSchemaAwareAnalysis:
    def test_schema_makes_query_unsatisfiable(self):
        book = book_edtd()
        # Paragraphs never have children under the schema.
        phi = parse_node("Paragraph and <down>")
        unrestricted = satisfiable(phi)
        assert unrestricted  # fine without a schema
        restricted = satisfiable(phi, edtd=book)
        assert restricted.verdict is Verdict.UNSATISFIABLE
        assert restricted.conclusive  # via the Figure 2 engine

    def test_schema_containment_pipeline(self):
        book = book_edtd()
        # Only Chapters and Sections have Section children — a containment
        # that holds under the schema but not in general.
        alpha = parse_path("down[Section]")
        beta = parse_path(".[Chapter or Section]/down")
        with_schema = contains(alpha, beta, edtd=book)
        assert with_schema.contained and with_schema.conclusive
        without = contains(alpha, beta, max_nodes=4)
        assert not without.contained

    def test_witnesses_respect_schema(self):
        book = book_edtd()
        phi = parse_node("Section and <down[Image]>")
        result = satisfiable(phi, edtd=book)
        assert result and book.conforms(result.witness)


class TestDocumentPipeline:
    def test_xml_to_answer(self):
        document = """
        <Book>
          <Chapter><Section><Paragraph/><Image/></Section></Chapter>
          <Chapter><Section><Image/></Section></Chapter>
        </Book>
        """
        tree = from_xml(document)
        assert book_edtd().conforms(tree)
        images = parse_path("down*[Image]")
        relation = evaluate_path(tree, images)
        assert len(relation[0]) == 2

    def test_generated_corpus_statistics(self):
        rng = random.Random(401)
        book = book_edtd()
        query = parse_path("down*[Section and not <down[Image]>]")
        hits = 0
        for _ in range(20):
            tree = random_conforming_tree(book, rng, max_nodes=25)
            hits += bool(evaluate_path(tree, query).get(0))
        assert hits > 0  # the workload exercises the query


class TestCrossEngineAgreement:
    """The same question answered by three independent mechanisms."""

    CASES = [
        ("down[p]", "down", True),
        ("down", "down[p]", False),
        ("down/down intersect down*", "down/down", True),
        ("down*[p] intersect down", "down[p]", True),
        ("down[p]", "down[p] intersect down[q]", False),
    ]

    @pytest.mark.parametrize("alpha_src, beta_src, expected", CASES)
    def test_three_way_agreement(self, alpha_src, beta_src, expected):
        alpha, beta = parse_path(alpha_src), parse_path(beta_src)
        # 1. Bounded counterexample search.
        bounded = contains(alpha, beta, method="bounded", max_nodes=4)
        assert bounded.contained == expected
        # 2. Prop. 4 reduction + bounded node satisfiability.
        reduction = containment_to_node_unsat(alpha, beta)
        assert (not node_satisfiable(reduction.formula, max_nodes=4)) == expected
        # 3. The auto dispatcher (Figure 2 engine where applicable).
        auto = contains(alpha, beta)
        assert auto.contained == expected

    @pytest.mark.parametrize("source, expected", [
        ("p and not p", False),
        ("<down[p] intersect down*>", True),
        ("eq(down, down[p]) and not <down[p]>", False),
    ])
    def test_sat_vs_twoata(self, source, expected):
        """Bounded satisfiability agrees with 2ATA acceptance on the
        witness (Lemma 12 in anger)."""
        phi = parse_node(source)
        result = node_satisfiable(phi, max_nodes=4)
        assert bool(result) == expected
        if expected:
            from repro.xpath.fragments import CORE_STAR_EQ
            if CORE_STAR_EQ.admits(phi):
                ata = build_twoata(phi)
                assert accepts(ata, result.witness)
