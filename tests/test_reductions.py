"""Tests for the Proposition 4/5/6 inter-reductions."""

import random

import pytest

from repro.analysis import (
    containment_to_node_unsat,
    edtd_sat_to_sat,
    node_satisfiable,
    sat_to_edtd_sat,
)
from repro.analysis.engines import check_containment
from repro.edtd import DTD, book_edtd, nested_sections_edtd
from repro.semantics import evaluate_nodes, evaluate_path
from repro.trees import all_trees, random_tree
from repro.xpath import parse_node, parse_path
from repro.xpath.measures import size


def sat_wrt_edtd(formula, edtd, max_nodes):
    """Exhaustive EDTD-relative satisfiability up to a size bound."""
    alphabet = sorted(edtd.concrete_labels())
    for tree in all_trees(max_nodes, alphabet):
        if edtd.conforms(tree) and evaluate_nodes(tree, formula):
            return True
    return False


class TestProposition4:
    @pytest.mark.parametrize("alpha_src, beta_src, contained", [
        ("down[p]", "down", True),
        ("down", "down[p]", False),
        ("down/down", "down+", True),
        ("down+", "down/down", False),
        ("down* intersect down", "down", True),
    ])
    def test_containment_iff_unsat(self, alpha_src, beta_src, contained):
        alpha, beta = parse_path(alpha_src), parse_path(beta_src)
        reduction = containment_to_node_unsat(alpha, beta)
        sat = node_satisfiable(reduction.formula, max_nodes=4)
        assert bool(sat) == (not contained)

    def test_decode_gives_real_counterexample(self):
        alpha, beta = parse_path("down*"), parse_path("down")
        reduction = containment_to_node_unsat(alpha, beta)
        sat = node_satisfiable(reduction.formula, max_nodes=4)
        assert sat
        tree, (d, e) = reduction.decode(sat.witness, sat.witness_node)
        alpha_rel = evaluate_path(tree, alpha)
        beta_rel = evaluate_path(tree, beta)
        assert e in alpha_rel.get(d, frozenset())
        assert e not in beta_rel.get(d, frozenset())

    def test_reduction_is_polynomial(self):
        sizes = []
        for n in (2, 4, 8):
            alpha = parse_path("/".join(["down[p]"] * n))
            beta = parse_path("/".join(["down"] * n))
            reduction = containment_to_node_unsat(alpha, beta)
            sizes.append(size(reduction.formula) / (size(alpha) + size(beta)))
        # Ratio stays bounded: linear-in-input formula.
        assert max(sizes) / min(sizes) < 3

    def test_with_edtd_schema_sensitive_containment(self):
        # Under this schema, b-nodes are childless, so ↓*[b]/↓ is empty and
        # contained in anything — a containment that FAILS without the EDTD.
        schema = DTD({"a": "(a | b)*", "b": "eps"}, root="a")
        alpha = parse_path("down*[b]/down")
        beta = parse_path("down[a and not a]")  # the empty relation
        without = containment_to_node_unsat(alpha, beta)
        assert node_satisfiable(without.formula, max_nodes=4)  # no schema: fails
        with_schema = containment_to_node_unsat(alpha, beta, schema)
        assert not sat_wrt_edtd(with_schema.formula, with_schema.edtd, 4)

    def test_with_edtd_noncontainment_witnessed(self):
        schema = DTD({"a": "(a | b)*", "b": "eps"}, root="a")
        alpha = parse_path("down*[a]/down")
        beta = parse_path("down[a and not a]")
        reduction = containment_to_node_unsat(alpha, beta, schema)
        assert sat_wrt_edtd(reduction.formula, reduction.edtd, 4)


class TestProposition5:
    @pytest.mark.parametrize("source, sat", [
        ("p and not p", False),
        ("p and <down[q]>", True),
        ("not <up> and q", True),
        ("<down> and not <down>", False),
    ])
    def test_sat_iff_edtd_sat(self, source, sat):
        phi = parse_node(source)
        reduction = sat_to_edtd_sat(phi)
        assert sat_wrt_edtd(reduction.formula, reduction.edtd, 4) == sat

    def test_decode(self):
        phi = parse_node("p and <down[q]>")
        reduction = sat_to_edtd_sat(phi)
        alphabet = sorted(reduction.edtd.concrete_labels())
        for tree in all_trees(4, alphabet):
            if not reduction.edtd.conforms(tree):
                continue
            nodes = evaluate_nodes(tree, reduction.formula)
            if nodes:
                plain, node = reduction.decode(tree, min(nodes))
                assert node in evaluate_nodes(plain, phi)
                return
        pytest.fail("no witness found")

    def test_permissive_edtd_accepts_everything_relabeled(self):
        phi = parse_node("p")
        reduction = sat_to_edtd_sat(phi)
        rng = random.Random(71)
        gamma = sorted(set(reduction.edtd.concrete_labels()) - {reduction.edtd.root_type})
        for _ in range(10):
            tree = random_tree(rng, 6, gamma)
            grown = tree.add_root(reduction.edtd.root_type)
            assert reduction.edtd.conforms(grown)


class TestProposition6:
    """The witness-label alphabet of the Prop. 6 formula is |Δ| × ΣQ, so
    blind bounded search is infeasible even for toy schemas.  The positive
    direction is checked *constructively* (encode a conforming witness as a
    Prop. 6 witness tree, the formula must hold at its root); the negative
    direction by randomized sampling over witness-labeled trees."""

    @pytest.mark.parametrize("source", [
        "Image",
        "Book and <down[Chapter]>",
        "Section and <down[Image]> and <down[Paragraph]>",
    ])
    def test_positive_direction_constructively(self, source):
        from repro.analysis.reductions import encode_witness_tree
        from repro.edtd import random_conforming_tree

        book = book_edtd()
        phi = parse_node(source)
        reduction = edtd_sat_to_sat(phi, book)
        rng = random.Random(72)
        for _ in range(120):
            tree = random_conforming_tree(book, rng, max_nodes=25)
            if evaluate_nodes(tree, phi):
                encoded = encode_witness_tree(tree, book)
                assert 0 in evaluate_nodes(encoded, reduction.formula), source
                return
        pytest.fail(f"never sampled a model of {source}")

    @pytest.mark.parametrize("source", [
        "Image and Paragraph",
        "Book and <down[Section]>",   # chapters only directly under Book
        "Book and <up>",
    ])
    def test_negative_direction_by_sampling(self, source):
        from repro.xpath.measures import labels_used

        book = book_edtd()
        phi = parse_node(source)
        assert not sat_wrt_edtd(phi, book, 4)  # fixture sanity
        reduction = edtd_sat_to_sat(phi, book)
        alphabet = sorted(labels_used(reduction.formula))
        rng = random.Random(73)
        for _ in range(25):
            tree = random_tree(rng, 6, alphabet)
            assert not evaluate_nodes(tree, reduction.formula), source

    def test_encoded_witness_satisfies_structure_only_at_root(self):
        from repro.analysis.reductions import encode_witness_tree
        from repro.trees import XMLTree

        book = book_edtd()
        tree = XMLTree.build(
            ("Book", [("Chapter", [("Section", ["Image"])])])
        )
        phi = parse_node("Image")
        reduction = edtd_sat_to_sat(phi, book)
        encoded = encode_witness_tree(tree, book)
        nodes = evaluate_nodes(encoded, reduction.formula)
        assert nodes == {0}  # pinned to the root by ¬⟨↑⟩

    def test_decode_projects_witness(self):
        from repro.analysis.reductions import encode_witness_tree
        from repro.trees import XMLTree

        book = book_edtd()
        tree = XMLTree.build(("Book", [("Chapter", [("Section", ["Image"])])]))
        reduction = edtd_sat_to_sat(parse_node("Image"), book)
        encoded = encode_witness_tree(tree, book)
        plain, _ = reduction.decode(encoded, 0)
        assert plain == tree

    def test_extended_dtd_case(self):
        from repro.analysis.reductions import encode_witness_tree
        from repro.trees import XMLTree
        from repro.xpath.measures import labels_used

        edtd = nested_sections_edtd(2)
        shallow = parse_node("s and <down[s]>")
        deep = parse_node("s and <down[s and <down[s]>]>")
        shallow_red = edtd_sat_to_sat(shallow, edtd)
        deep_red = edtd_sat_to_sat(deep, edtd)
        # Positive: the two-level tree works for the shallow formula.
        two = XMLTree.build(("s", [("s", [])]))
        encoded = encode_witness_tree(two, edtd)
        assert 0 in evaluate_nodes(encoded, shallow_red.formula)
        # Negative for the deep formula: sampled witness-labeled trees.
        rng = random.Random(74)
        alphabet = sorted(labels_used(deep_red.formula))
        for _ in range(25):
            tree = random_tree(rng, 6, alphabet)
            assert not evaluate_nodes(tree, deep_red.formula)
