"""Tests for the result types of the static-analysis problems (§2.3)."""

from repro.analysis import ContainmentResult, SatResult, Verdict
from repro.trees import XMLTree


class TestSatResult:
    def test_truthiness(self):
        tree = XMLTree(["p"], [None])
        assert SatResult(Verdict.SATISFIABLE, tree, 0)
        assert not SatResult(Verdict.UNSATISFIABLE)
        assert not SatResult(Verdict.NO_WITNESS_WITHIN_BOUND)

    def test_conclusiveness(self):
        assert SatResult(Verdict.UNSATISFIABLE).conclusive
        assert SatResult(Verdict.SATISFIABLE, XMLTree(["p"], [None]), 0).conclusive
        assert not SatResult(Verdict.NO_WITNESS_WITHIN_BOUND).conclusive

    def test_defaults(self):
        result = SatResult(Verdict.UNSATISFIABLE)
        assert result.witness is None
        assert result.witness_node is None
        assert result.trees_checked == 0


class TestContainmentResult:
    def test_contained_semantics(self):
        tree = XMLTree(["p"], [None])
        refuted = ContainmentResult(Verdict.SATISFIABLE, tree, (0, 0))
        assert not refuted.contained
        assert not refuted
        assert refuted.conclusive

        proven = ContainmentResult(Verdict.UNSATISFIABLE)
        assert proven.contained and proven and proven.conclusive

        bounded = ContainmentResult(Verdict.NO_WITNESS_WITHIN_BOUND)
        assert bounded.contained  # "held as far as we looked"
        assert not bounded.conclusive

    def test_counterexample_carried(self):
        tree = XMLTree.build(("a", ["b"]))
        result = ContainmentResult(Verdict.SATISFIABLE, tree, (0, 1),
                                   explored_up_to=2, trees_checked=7)
        assert result.counterexample is tree
        assert result.counterexample_pair == (0, 1)
        assert result.trees_checked == 7
