"""Tests for the §6.2 reduction (CoreXPath↓↑(∩) 2-EXPTIME-hardness)."""

import pytest

from repro.lowerbounds import (
    all_ones_machine,
    encode_strategy_tree,
    first_symbol_machine,
    parity_machine,
    vertical_reduction,
)
from repro.semantics import holds_at
from repro.xpath.ast import Axis
from repro.xpath.fragments import Fragment
from repro.xpath.measures import axes_used, operators_used, size

MACHINES = [
    (first_symbol_machine(), ["a", "b"]),
    (parity_machine(), ["0", "1"]),
    (all_ones_machine(), ["1", "0"]),
]


class TestFormulaShape:
    def test_fragment_is_vertical_cap(self):
        # k = 2 so the per-bit intersections are real (k = 1 collapses
        # single-element intersections to their sole member).
        red = vertical_reduction(parity_machine(), "00")
        assert axes_used(red.formula) <= {Axis.DOWN, Axis.UP}
        assert operators_used(red.formula) == {"cap"}

    def test_size_polynomial_in_word_length(self):
        machine = parity_machine()
        sizes = [size(vertical_reduction(machine, "0" * k).formula)
                 for k in (1, 2, 3)]
        # Polynomial: successive growth factors are bounded.
        assert sizes[2] / sizes[1] < sizes[1] / sizes[0] + 2

    def test_conjuncts_exposed(self):
        red = vertical_reduction(parity_machine(), "0")
        assert set(red.conjuncts) == {
            "conf", "uni", "tape", "head", "id", "delta", "acc",
        }

    def test_empty_word_rejected(self):
        with pytest.raises(ValueError):
            vertical_reduction(parity_machine(), "")


class TestEncodingCorrectness:
    @pytest.mark.parametrize("machine, words", MACHINES)
    def test_formula_holds_iff_machine_accepts(self, machine, words):
        for word in words:
            red = vertical_reduction(machine, word)
            tree = encode_strategy_tree(machine, word)
            accepts = machine.accepts(word, 2 ** len(word))
            assert holds_at(tree, red.formula, 0) == accepts, word

    def test_rejecting_run_fails_exactly_acc(self):
        machine = parity_machine()
        red = vertical_reduction(machine, "1")  # odd number of 1s: reject
        tree = encode_strategy_tree(machine, "1")
        verdicts = {
            name: holds_at(tree, conjunct, 0)
            for name, conjunct in red.conjuncts.items()
        }
        assert verdicts["acc"] is False
        del verdicts["acc"]
        assert all(verdicts.values()), verdicts

    def test_encoding_structure(self):
        machine = first_symbol_machine()
        tree = encode_strategy_tree(machine, "a")
        # Global root unlabeled; r-nodes mark configuration roots.
        assert not tree.labels(0)
        r_nodes = [n for n in tree.nodes if tree.has_label(n, "r")]
        assert len(r_nodes) == 2  # initial config + one successor

    def test_cells_carry_counter_bits(self):
        machine = first_symbol_machine()
        tree = encode_strategy_tree(machine, "a")
        # With k=1 each config has 2 cells: bit values 0 and 1.
        cells = [
            n for n in tree.nodes
            if any(tree.has_label(n, f"sym:{s}")
                   for s in machine.work_alphabet)
        ]
        assert len(cells) == 4  # 2 configs × 2 cells
        with_bit = [n for n in cells if tree.has_label(n, "c0")]
        assert len(with_bit) == 2


class TestPerturbations:
    """Mutating the encoded model must break the matching conjunct."""

    def _mutate(self, tree, node, add=(), remove=()):
        from repro.trees import MultiLabelTree
        labelsets = [set(tree.labels(n)) for n in tree.nodes]
        labelsets[node] |= set(add)
        labelsets[node] -= set(remove)
        return MultiLabelTree(tree.skeleton, labelsets)

    def test_two_symbols_break_tape(self):
        machine = first_symbol_machine()
        red = vertical_reduction(machine, "a")
        tree = encode_strategy_tree(machine, "a")
        cell = next(n for n in tree.nodes if tree.has_label(n, "sym:a"))
        broken = self._mutate(tree, cell, add=["sym:b"])
        assert not holds_at(broken, red.conjuncts["tape"], 0)

    def test_foreign_symbol_breaks_uniformity_or_tape(self):
        machine = first_symbol_machine()
        red = vertical_reduction(machine, "a")
        tree = encode_strategy_tree(machine, "a")
        cell = next(n for n in tree.nodes if tree.has_label(n, "sym:a"))
        broken = self._mutate(tree, cell, remove=["sym:a"], add=["sym:b"])
        assert not holds_at(broken, red.formula, 0)

    def test_second_head_breaks_head_conjunct(self):
        machine = first_symbol_machine()
        red = vertical_reduction(machine, "a")
        tree = encode_strategy_tree(machine, "a")
        # Find a cell of the initial configuration without a state mark.
        cells = [
            n for n in tree.nodes
            if any(tree.has_label(n, f"sym:{s}") for s in machine.work_alphabet)
            and not any(tree.has_label(n, f"q:{q}") for q in machine.states)
        ]
        broken = self._mutate(tree, cells[0], add=["q:q0"])
        assert not holds_at(broken, red.formula, 0)
