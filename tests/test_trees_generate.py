"""Tests for tree generation/enumeration and serialization."""

import math
import random

import pytest

from repro.trees import (
    XMLTree,
    all_tree_shapes,
    all_trees,
    count_trees,
    from_xml,
    random_labeled_chain,
    random_tree,
    to_indented,
    to_xml,
)


def _catalan(n: int) -> int:
    return math.comb(2 * n, n) // (n + 1)


class TestEnumeration:
    @pytest.mark.parametrize("n", [1, 2, 3, 4, 5])
    def test_shape_count_is_catalan(self, n):
        assert sum(1 for _ in all_tree_shapes(n)) == _catalan(n - 1)

    def test_shapes_are_distinct(self):
        shapes = list(all_tree_shapes(5))
        assert len(shapes) == len(set(shapes))

    def test_all_trees_count_matches_formula(self):
        trees = list(all_trees(4, ["a", "b"]))
        assert len(trees) == count_trees(4, 2)
        assert len(trees) == len(set(trees))

    def test_all_trees_ordered_by_size(self):
        sizes = [t.size for t in all_trees(3, ["a"])]
        assert sizes == sorted(sizes)

    def test_all_trees_requires_alphabet(self):
        with pytest.raises(ValueError):
            list(all_trees(2, []))

    def test_zero_nodes_yields_nothing(self):
        assert list(all_tree_shapes(0)) == []


class TestRandom:
    def test_random_tree_valid_and_bounded(self):
        rng = random.Random(0)
        for _ in range(100):
            tree = random_tree(rng, 9, ["a", "b", "c"])
            assert 1 <= tree.size <= 9
            assert tree.alphabet() <= {"a", "b", "c"}

    def test_random_tree_deterministic_per_seed(self):
        t1 = random_tree(random.Random(42), 8, ["a", "b"])
        t2 = random_tree(random.Random(42), 8, ["a", "b"])
        assert t1 == t2

    def test_random_chain(self):
        rng = random.Random(1)
        chain = random_labeled_chain(rng, 5, ["x"])
        assert chain.size == 5
        assert all(len(chain.children(n)) <= 1 for n in chain.nodes)

    def test_random_chain_rejects_zero(self):
        with pytest.raises(ValueError):
            random_labeled_chain(random.Random(0), 0, ["x"])


class TestSerialization:
    def test_roundtrip(self):
        tree = XMLTree.build(("book", [("ch", ["s", "s"]), "ch"]))
        assert from_xml(to_xml(tree)) == tree

    def test_roundtrip_random(self):
        rng = random.Random(3)
        for _ in range(50):
            tree = random_tree(rng, 10, ["a", "b"])
            assert from_xml(to_xml(tree)) == tree

    def test_indented_roundtrip(self):
        tree = XMLTree.build(("a", [("b", ["c"]), "d"]))
        assert from_xml(to_indented(tree)) == tree

    def test_self_closing(self):
        assert from_xml("<a/>") == XMLTree(["a"], [None])

    def test_mismatched_tags_rejected(self):
        with pytest.raises(ValueError):
            from_xml("<a><b></a></b>")

    def test_unclosed_rejected(self):
        with pytest.raises(ValueError):
            from_xml("<a><b/>")

    def test_multiple_roots_rejected(self):
        with pytest.raises(ValueError):
            from_xml("<a/><b/>")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            from_xml("   ")

    def test_garbage_rejected(self):
        with pytest.raises(ValueError):
            from_xml("<a>hello</a>")

    def test_unserializable_label_rejected(self):
        tree = XMLTree(["weird label!"], [None])
        with pytest.raises(ValueError):
            to_xml(tree)
