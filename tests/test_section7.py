"""Tests for §7: Theorem 30 (star-free → F) and Theorem 31 (for-loops)."""

import itertools
import random

import pytest

from repro.analysis import check_containment
from repro.lowerbounds import (
    eliminate_complements,
    empty_path,
    in_fragment_f,
    nonemptiness_as_containment,
    starfree_to_path,
)
from repro.regexes import (
    SFComplement,
    SFConcat,
    SFSymbol,
    SFUnion,
    starfree_accepts,
    starfree_nonempty,
)
from repro.semantics import evaluate_path
from repro.trees import XMLTree, random_tree
from repro.xpath import parse_path
from repro.xpath.ast import Axis
from repro.xpath.measures import axes_used, operators_used

A, B = SFSymbol("a"), SFSymbol("b")
ALPHABET = frozenset({"a", "b"})

EXPRESSIONS = [
    A,
    SFConcat(A, B),
    SFUnion(A, SFConcat(B, B)),
    SFComplement(A),
    SFComplement(SFConcat(A, SFComplement(B))),
    SFConcat(SFComplement(SFUnion(A, B)), A),
]


class TestTheorem30:
    @pytest.mark.parametrize("expr", EXPRESSIONS)
    def test_tr_stays_in_fragment_f(self, expr):
        path = starfree_to_path(expr)
        assert in_fragment_f(path)
        assert axes_used(path) == {Axis.DOWN}
        assert operators_used(path) <= {"minus"}

    @pytest.mark.parametrize("expr", EXPRESSIONS)
    def test_word_path_correspondence(self, expr):
        """(n, m) ∈ [[tr(r)]] iff the labels strictly below n down to m
        spell a word of L(r) — on chains, for all words up to length 3."""
        path = starfree_to_path(expr)
        for length in range(4):
            for word in itertools.product("ab", repeat=length):
                tree = XMLTree.chain(("z",) + word)
                relation = evaluate_path(tree, path)
                got = length in relation.get(0, frozenset())
                want = starfree_accepts(expr, list(word), ALPHABET)
                assert got == want, (expr, word)

    def test_correspondence_on_branching_trees(self):
        rng = random.Random(201)
        expr = SFComplement(SFConcat(A, B))
        path = starfree_to_path(expr)
        for _ in range(20):
            tree = random_tree(rng, 8, ["a", "b"])
            relation = evaluate_path(tree, path)
            for n in tree.nodes:
                for m in tree.descendants_or_self(n):
                    word = _path_word(tree, n, m)
                    if word is None:
                        continue
                    got = m in relation.get(n, frozenset())
                    assert got == starfree_accepts(expr, word, ALPHABET)

    @pytest.mark.parametrize("expr, nonempty", [
        (A, True),
        (SFComplement(SFUnion(A, SFComplement(A))), False),   # ∅
        (SFConcat(A, SFComplement(SFUnion(A, B))), True),     # a · (Σ* minus a|b)
    ])
    def test_nonemptiness_as_containment(self, expr, nonempty):
        alpha, beta = nonemptiness_as_containment(expr)
        assert beta == empty_path()
        result = check_containment(alpha, beta, max_nodes=4)
        # Nonempty language ⟺ tr(r) NOT contained in the empty relation.
        assert result.contained == (not nonempty)
        assert starfree_nonempty(expr, ALPHABET) == nonempty  # cross-check

    def test_epsilon_language_repair(self):
        """The module's ε repair: {ε} maps to a relation containing the
        length-0 paths (the paper's ↓⁺ version would lose them)."""
        empty = SFComplement(SFUnion(A, SFComplement(A)))
        sigma_plus = SFConcat(SFUnion(A, B), SFComplement(empty))
        just_epsilon = SFComplement(sigma_plus)
        alpha, beta = nonemptiness_as_containment(just_epsilon)
        result = check_containment(alpha, beta, max_nodes=3)
        assert not result.contained  # language {ε} is nonempty


def _path_word(tree, n, m):
    """Labels strictly below n on the ancestor chain from m up to n, or
    None if m is not a descendant-or-self of n."""
    word = []
    cursor = m
    while cursor != n:
        word.append(tree.label(cursor))
        parent = tree.parent(cursor)
        if parent is None:
            return None
        cursor = parent
    word.reverse()
    return word


class TestTheorem31:
    @pytest.mark.parametrize("source", [
        "down* except down[p]",
        "down/down except down*[q]",
        "(down* except down) except down[p]",
        "down*[p] except (down except down[q])",
    ])
    def test_complement_elimination_equivalent(self, source):
        rng = random.Random(202)
        original = parse_path(source)
        rewritten = eliminate_complements(original)
        assert "minus" not in operators_used(rewritten)
        assert "for" in operators_used(rewritten)
        for _ in range(20):
            tree = random_tree(rng, 8, ["p", "q"])
            assert evaluate_path(tree, original) == \
                evaluate_path(tree, rewritten), source

    def test_single_variable_per_complement(self):
        rewritten = eliminate_complements(parse_path("down* except down"))
        from repro.xpath.measures import free_variables
        assert free_variables(rewritten) == frozenset()

    def test_downward_only_variant_matches_paper(self):
        # The paper's statement uses ↓* travel for the downward fragment.
        from repro.xpath import to_source
        rewritten = eliminate_complements(parse_path("down* except down"),
                                          downward_only=True)
        assert "up" not in to_source(rewritten)

    def test_theorem30_formulas_pass_through(self):
        """Composing Theorems 30 and 31: star-free nonemptiness via
        CoreXPath↓(for)."""
        expr = SFComplement(SFConcat(A, B))
        path = starfree_to_path(expr)
        rewritten = eliminate_complements(path)
        assert operators_used(rewritten) == {"for"}
        rng = random.Random(203)
        for _ in range(10):
            tree = random_tree(rng, 7, ["a", "b"])
            assert evaluate_path(tree, path) == evaluate_path(tree, rewritten)
