"""E13 — the polynomial ``patterns`` engine vs the 2ATA ladder (DESIGN.md §12).

Times containment on positive downward tree patterns — the fragment the
``patterns`` engine answers with a homomorphism check plus canonical-model
enumeration — against the ``automata`` engine deciding the same instances
through Prop. 4 and 2ATA emptiness.  The family sticks to single-step
shapes because the 2ATA engine guard-declines larger pattern pairs; even
there the polynomial engine wins by orders of magnitude, and the
acceptance bar is a family-median speedup of at least 10×.

The ``patterns.*`` counters (admissions, embedding checks, memo-table
cells, canonical models) land in ``BENCH_obs.json``; the perf gate's
``--require-keys`` treats losing that prefix as a build break.
"""

import gc
import statistics
import time

from repro import obs
from repro.analysis import contains
from repro.xpath import parse_path


#: Single-step pattern containments the 2ATA engine decides without its
#: emptiness guard tripping: both verdict polarities, both edge kinds.
FAMILY = [
    ("down[p]", "down"),
    ("down*[p]", "down*"),
    ("down*", "down"),
    ("down", "down*"),
]


def _median_runtime(fn, reps: int) -> float:
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        times = []
        for _ in range(reps):
            start = time.perf_counter()
            fn()
            times.append(time.perf_counter() - start)
    finally:
        if was_enabled:
            gc.enable()
    return statistics.median(times)


class TestPatternsSpeedup:
    """Patterns vs automata on identical single-step instances: identical
    verdicts, family-median duration improvement of at least 10×."""

    def test_single_step_family_median_speedup(self, benchmark, record):
        ratios: dict[str, float] = {}
        series: dict[str, tuple] = {}
        for alpha_src, beta_src in FAMILY:
            alpha, beta = parse_path(alpha_src), parse_path(beta_src)
            fast_result = contains(alpha, beta, method="patterns")
            slow_result = contains(alpha, beta, method="automata")
            assert fast_result.conclusive and slow_result.conclusive
            assert fast_result.verdict == slow_result.verdict, \
                (alpha_src, beta_src)
            fast = _median_runtime(
                lambda: contains(alpha, beta, method="patterns"), reps=9)
            slow = _median_runtime(
                lambda: contains(alpha, beta, method="automata"), reps=3)
            point = f"{alpha_src} <= {beta_src}"
            ratios[point] = slow / fast
            series[point] = (round(fast * 1000, 3), round(slow * 1000, 1),
                             round(ratios[point], 1))
        family_median = statistics.median(ratios.values())
        obs.gauge("patterns.speedup.family_median", family_median)
        record("E13 patterns vs automata, ms "
               "(instance -> (patterns, automata, ratio))", series)
        assert family_median >= 10.0, ratios
        benchmark(lambda: None)


class TestPatternsCounters:
    """The engine's work counters are recorded for the perf trajectory:
    a ladder-depth series over multi-step patterns the 2ATA engine cannot
    touch, all answered conclusively in polynomial time."""

    def test_ladder_depth_series(self, benchmark, record):
        series: dict[int, tuple] = {}
        for depth in (2, 4, 6):
            alpha = parse_path("/".join(["down[p]"] * depth))
            beta = parse_path("/".join(["down"] * depth))
            result = contains(alpha, beta, method="patterns")
            assert result.conclusive
            assert result.contained
            duration = _median_runtime(
                lambda: contains(alpha, beta, method="patterns"), reps=5)
            obs.gauge(f"patterns.containment_ms.depth{depth}",
                      round(duration * 1000, 3))
            series[depth] = round(duration * 1000, 3)
        record("E13 patterns ladder depth, ms (depth -> median)", series)
        benchmark(lambda: None)
