"""Shared fixtures and reporting helpers for the benchmark harness.

Each benchmark module reproduces one row/figure of the paper (see
DESIGN.md's per-experiment index) and records its measured series in
``benchmark.extra_info`` so the numbers survive into pytest-benchmark's
JSON output; a short human-readable series is also printed.
"""

import pytest


def report(title: str, series: dict) -> None:
    """Print a labeled series (visible with ``pytest -s``; always stored by
    the callers in benchmark.extra_info)."""
    print(f"\n[{title}]")
    for key, value in series.items():
        print(f"  {key}: {value}")


@pytest.fixture
def record(benchmark):
    """Attach a measured series to the benchmark record and echo it."""

    def _record(title: str, series: dict) -> None:
        benchmark.extra_info[title] = series
        report(title, series)

    return _record
