"""Shared fixtures and reporting helpers for the benchmark harness.

Each benchmark module reproduces one row/figure of the paper (see
DESIGN.md's per-experiment index) and records its measured series in
``benchmark.extra_info`` so the numbers survive into pytest-benchmark's
JSON output; a short human-readable series is also printed.

In addition, every benchmark test runs inside a :mod:`repro.obs` recording:
wall time plus all counters/gauges the instrumented engines emit (trees
enumerated, evaluator calls, automaton states, modal atoms, ...) are
written to ``BENCH_obs.json`` at session end.  The file is *append-safe* —
records merge into any existing file keyed by test nodeid — so successive
sessions grow one stable perf-trajectory artifact that later optimisation
PRs are judged against (see EXPERIMENTS.md).
"""

import json
from pathlib import Path

import pytest

from repro import obs

#: nodeid -> {"duration_s", "counters", "gauges"}; flushed at session end.
_OBS_RECORDS: dict = {}

_OBS_SCHEMA_VERSION = 1
_OBS_FILENAME = "BENCH_obs.json"


def report(title: str, series: dict) -> None:
    """Print a labeled series (visible with ``pytest -s``; always stored by
    the callers in benchmark.extra_info)."""
    print(f"\n[{title}]")
    for key, value in series.items():
        print(f"  {key}: {value}")


@pytest.fixture
def record(benchmark):
    """Attach a measured series to the benchmark record and echo it."""

    def _record(title: str, series: dict) -> None:
        benchmark.extra_info[title] = series
        report(title, series)

    return _record


@pytest.fixture(autouse=True)
def _obs_recording(request):
    """Collect per-test spans/counters; harvested by pytest_sessionfinish."""
    with obs.record(request.node.nodeid) as recording:
        yield recording
    run = recording.to_run_record()
    _OBS_RECORDS[request.node.nodeid] = {
        "duration_s": run.duration_s,
        "counters": run.counters,
        "gauges": run.gauges,
    }


def pytest_sessionfinish(session, exitstatus):
    """Merge this session's records into BENCH_obs.json (stable keys)."""
    if not _OBS_RECORDS:
        return
    path = Path(str(session.config.rootpath)) / _OBS_FILENAME
    existing: dict = {}
    if path.exists():
        try:
            existing = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            existing = {}
    runs = existing.get("runs", {}) if isinstance(existing, dict) else {}
    runs.update(_OBS_RECORDS)
    payload = {"schema_version": _OBS_SCHEMA_VERSION, "runs": runs}
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
