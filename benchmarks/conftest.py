"""Shared fixtures and reporting helpers for the benchmark harness.

Each benchmark module reproduces one row/figure of the paper (see
DESIGN.md's per-experiment index) and records its measured series in
``benchmark.extra_info`` so the numbers survive into pytest-benchmark's
JSON output; a short human-readable series is also printed.

In addition, every benchmark test runs inside a :mod:`repro.obs` recording:
wall time plus all counters/gauges the instrumented engines emit (trees
enumerated, evaluator calls, automaton states, modal atoms, ...) are
written to ``BENCH_obs.json`` at session end.  The file is *append-safe* —
records merge into any existing file keyed by test nodeid — so successive
sessions grow one stable perf-trajectory artifact that later optimisation
PRs are judged against (see EXPERIMENTS.md).
"""

import json
from pathlib import Path

import pytest

from repro import obs

#: Append-only log of per-test-run records, in execution order.  A test id
#: can legitimately appear more than once in a session (the same nodeid
#: passed twice on the command line, rerun plugins, flaky-test retries);
#: the session-end merge dedupes by test id keeping the LATEST record, so
#: BENCH_obs.json never grows duplicate or stale entries for one test.
_OBS_RECORDS: list[dict] = []

#: Version 2 adds per-test histogram summaries (p50/p90/p99) next to the
#: counters/gauges; version-1 entries merge in unchanged (no histograms).
_OBS_SCHEMA_VERSION = 2
_OBS_FILENAME = "BENCH_obs.json"


def report(title: str, series: dict) -> None:
    """Print a labeled series (visible with ``pytest -s``; always stored by
    the callers in benchmark.extra_info)."""
    print(f"\n[{title}]")
    for key, value in series.items():
        print(f"  {key}: {value}")


@pytest.fixture
def record(benchmark):
    """Attach a measured series to the benchmark record and echo it."""

    def _record(title: str, series: dict) -> None:
        benchmark.extra_info[title] = series
        report(title, series)

    return _record


@pytest.fixture(autouse=True)
def _obs_recording(request):
    """Collect per-test spans/counters; harvested by pytest_sessionfinish."""
    with obs.record(request.node.nodeid) as recording:
        yield recording
    run = recording.to_run_record()
    _OBS_RECORDS.append({
        "nodeid": request.node.nodeid,
        "record": {
            "duration_s": run.duration_s,
            "counters": run.counters,
            "gauges": run.gauges,
            # Quantile summaries only — the sparse bucket lists are trace
            # detail and would bloat a committed artifact.
            "histograms": {
                name: {key: data[key] for key in
                       ("count", "sum", "min", "max", "mean",
                        "p50", "p90", "p99")}
                for name, data in run.histograms.items()
            },
        },
    })


def merge_obs_records(existing, records: list[dict]) -> dict:
    """Merge a session's record log into a BENCH_obs.json payload.

    ``existing`` is the previous file content (any malformed shape is
    discarded); ``records`` is the append-only session log.  Entries are
    deduplicated by test id with the latest record winning — both within
    the session (a re-run test contributes exactly one entry) and against
    the existing file (a fresh record replaces the stored one).
    """
    runs: dict = {}
    if isinstance(existing, dict) and isinstance(existing.get("runs"), dict):
        runs.update(existing["runs"])
    for entry in records:  # execution order: later re-runs overwrite earlier
        runs[entry["nodeid"]] = entry["record"]
    return {"schema_version": _OBS_SCHEMA_VERSION, "runs": runs}


def pytest_sessionfinish(session, exitstatus):
    """Merge this session's records into BENCH_obs.json (stable keys)."""
    if not _OBS_RECORDS:
        return
    path = Path(str(session.config.rootpath)) / _OBS_FILENAME
    existing = None
    if path.exists():
        try:
            existing = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            existing = None
    payload = merge_obs_records(existing, _OBS_RECORDS)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
