"""E3 — Table I, row ∩, downward fragment: EXPSPACE-complete.

The Figure 2 algorithm decides CoreXPath↓(∩) satisfiability w.r.t. EDTDs
*conclusively*; the bounded-search baseline only explores models up to a
size cap.  We measure both engines on the same workload: the complete
procedure's advantage is decisiveness (and speed on unsatisfiable inputs,
where search must exhaust its budget).
"""

import pytest

from repro.analysis import downward_cap_satisfiable, node_satisfiable
from repro.edtd import DTD
from repro.xpath import parse_node

SCHEMA = DTD({"p": "(p|q)*", "q": "(p|q)*"}, root="q")

WORKLOAD = [
    ("sat-shallow", "<down[p] intersect down*>", True),
    ("unsat-clash", "<down[p] intersect down[q]>", False),
    ("sat-deep", "<down*[p]/down*[q] intersect down/down>", True),
    ("unsat-count", "<(down/down) intersect down>", False),
    ("unsat-combo", "<down/down intersect down*[p]/down> and not <down[p]>",
     False),
]


class TestFigure2Engine:
    @pytest.mark.parametrize("name, source, expected",
                             WORKLOAD, ids=[w[0] for w in WORKLOAD])
    def test_figure2(self, benchmark, record, name, source, expected):
        phi = parse_node(source)
        result = benchmark(downward_cap_satisfiable, phi, SCHEMA)
        assert bool(result) == expected
        assert result.conclusive
        record("Figure 2 verdict", {
            "case": name,
            "satisfiable": bool(result),
            "types_enumerated": result.trees_checked,
        })


class TestBoundedBaseline:
    @pytest.mark.parametrize("name, source, expected",
                             WORKLOAD, ids=[w[0] for w in WORKLOAD])
    def test_bounded_search(self, benchmark, record, name, source, expected):
        phi = parse_node(source)
        result = benchmark(node_satisfiable, phi, 5, SCHEMA)
        assert bool(result) == expected
        record("bounded-search verdict", {
            "case": name,
            "satisfiable": bool(result),
            "conclusive": result.conclusive,
            "trees_checked": result.trees_checked,
        })


class TestEngineComparison:
    def test_verdict_agreement_and_decisiveness(self, benchmark, record):
        rows = []
        for name, source, expected in WORKLOAD:
            phi = parse_node(source)
            complete = downward_cap_satisfiable(phi, SCHEMA)
            bounded = node_satisfiable(phi, 5, SCHEMA)
            assert bool(complete) == bool(bounded) == expected
            rows.append({
                "case": name,
                "figure2_conclusive": complete.conclusive,
                "bounded_conclusive": bounded.conclusive,
            })
        # The paper's point: the complete procedure is always conclusive,
        # the search baseline never is on unsatisfiable inputs.
        assert all(r["figure2_conclusive"] for r in rows)
        assert not any(
            r["bounded_conclusive"] for r in rows
            if r["case"].startswith("unsat")
        )
        benchmark(lambda: None)
        record("E3 engine comparison", {r["case"]: r for r in rows})
