"""E4 — Table I, row −: non-elementary, via star-free expressions
(Theorem 30).

Star-free nonemptiness costs one determinization per complement-nesting
level; we measure minimal-DFA sizes across a nested-complement family (the
growth *per level* is the non-elementary cost center) and run the Theorem 30
reduction end to end: nonemptiness of ``r`` as non-containment of ``tr(r)``
in ``↓* − ↓*``.
"""

import pytest

from repro.analysis import check_containment
from repro.lowerbounds import nonemptiness_as_containment, starfree_to_path
from repro.regexes import (
    SFComplement,
    SFConcat,
    SFSymbol,
    SFUnion,
    starfree_min_dfa,
    starfree_nonempty,
    starfree_size,
)
from repro.xpath.measures import size

A, B = SFSymbol("a"), SFSymbol("b")
ALPHABET = frozenset({"a", "b"})


def nested(depth: int):
    """−(a · −(a · … )) — one complement per level."""
    expr = A
    for _ in range(depth):
        expr = SFComplement(SFConcat(A, SFUnion(expr, SFConcat(B, expr))))
    return expr


class TestComplementCost:
    @pytest.mark.parametrize("depth", [1, 2, 3, 4])
    def test_min_dfa_growth(self, benchmark, record, depth):
        expr = nested(depth)
        dfa = benchmark(starfree_min_dfa, expr, ALPHABET)
        record("nested-complement series", {
            "depth": depth,
            "expr_size": starfree_size(expr),
            "min_dfa_states": dfa.num_states,
        })

    def test_growth_summary(self, benchmark, record):
        sizes = {
            depth: starfree_min_dfa(nested(depth), ALPHABET).num_states
            for depth in (1, 2, 3, 4)
        }
        assert sizes[4] > sizes[1]
        benchmark(lambda: None)
        record("E4 minimal DFA states per complement level", sizes)


class TestTheorem30Reduction:
    CASES = [
        ("symbol", A, True),
        ("empty", SFComplement(SFUnion(A, SFComplement(A))), False),
        ("beyond-sigma", SFConcat(A, SFComplement(SFUnion(A, B))), True),
        ("double-neg", SFComplement(SFComplement(SFConcat(A, B))), True),
    ]

    @pytest.mark.parametrize("name, expr, nonempty",
                             CASES, ids=[c[0] for c in CASES])
    def test_nonemptiness_as_containment(self, benchmark, record, name,
                                         expr, nonempty):
        alpha, beta = nonemptiness_as_containment(expr)

        result = benchmark(check_containment, alpha, beta, 4)
        assert result.contained == (not nonempty)
        assert starfree_nonempty(expr, ALPHABET) == nonempty
        record("Theorem 30 case", {
            "case": name,
            "tr_size": size(alpha),
            "expr_size": starfree_size(expr),
            "language_nonempty": nonempty,
        })

    def test_translation_size_linear_per_operator(self, benchmark, record):
        sizes = {
            depth: size(starfree_to_path(nested(depth)))
            for depth in (1, 2, 3)
        }
        # tr() itself is linear-ish (the union encoding adds a constant
        # factor); the hardness lives in deciding the containment.
        assert sizes[3] < 40 * sizes[1]
        benchmark(lambda: None)
        record("E4 tr(r) sizes", sizes)
