"""Batch throughput: ``repro.parallel`` vs sequential dispatch.

The corpus is a Table I-style scaling family — downward containment
problems over qualifiers, ``except``, and ``*`` (the rows whose decision
procedures dominate Table I's complexity landscape), label-permuted so
every instance costs roughly the same and a 4-worker pool load-balances.

Three configurations are measured on the *same* corpus:

* **sequential** — one in-process :func:`repro.analysis.contains` call per
  pair (the pre-batch baseline);
* **batch cold** — :class:`repro.parallel.BatchRunner` with 4 workers and
  an empty on-disk :class:`VerdictCache`;
* **batch warm** — a second runner over the same cache directory (fresh
  cache object, so hits come off disk, not the in-memory layer).

Verdicts must be *byte-identical* across all three (checked via the
cache's canonical JSON encoding).  The cold speedup is recorded always
and asserted ≥2× only where ≥4 CPUs are actually available — on fewer
cores a CPU-bound pool cannot beat physics, and the honest figure is the
one worth keeping in BENCH_obs.json.  The warm run must hit the cache on
≥90% of problems and beat sequential dispatch ≥2× regardless of core
count: skipping solved instances is the throughput win repeated
benchmark/CI runs actually see.
"""

import os
import time

from repro.analysis import contains
from repro.parallel import BatchRunner, VerdictCache
from repro.parallel.cache import encode_result
from repro.analysis.problems import Problem, ProblemKind
from repro.xpath import parse_path

MAX_NODES = 6
WORKERS = 4

#: (α, β) sources: two mid-weight shapes × label permutations.
CORPUS = [
    (f"down[{a}]/down[{b}]", "down/down")
    for a, b in [("p", "q"), ("q", "p"), ("p", "r"),
                 ("r", "p"), ("q", "r"), ("r", "q")]
] + [
    (f"down*[{a}]", f"down* except down*[{b}]")
    for a, b in [("q", "p"), ("p", "q"), ("r", "q"), ("q", "r")]
]


def _problems():
    return [
        Problem(ProblemKind.CONTAINMENT, alpha=parse_path(a),
                beta=parse_path(b), max_nodes=MAX_NODES)
        for a, b in CORPUS
    ]


def _canon(results):
    """Canonical bytes for a verdict list (the cache's JSON codec)."""
    return [encode_result(result) for result in results]


class TestBatchThroughput:
    def test_batch_vs_sequential(self, benchmark, record, tmp_path):
        problems = _problems()
        cache_dir = tmp_path / "verdicts"

        t0 = time.perf_counter()
        sequential = [
            contains(p.alpha, p.beta, max_nodes=p.max_nodes)
            for p in problems
        ]
        sequential_s = time.perf_counter() - t0

        cold_runner = BatchRunner(workers=WORKERS,
                                  cache=VerdictCache(cache_dir))
        cold = cold_runner.run(problems)
        warm_runner = BatchRunner(workers=WORKERS,
                                  cache=VerdictCache(cache_dir))
        warm = warm_runner.run(problems)

        # Byte-identical verdicts: sequential == batch cold == batch warm.
        want = _canon(sequential)
        assert _canon(cold.results()) == want
        assert _canon(warm.results()) == want
        assert not cold.failed and not warm.failed

        hit_rate = warm.cache_hits / len(problems)
        assert hit_rate >= 0.9, f"warm cache hit rate {hit_rate:.0%} < 90%"

        cold_speedup = sequential_s / cold.wall_s
        warm_speedup = sequential_s / warm.wall_s
        assert warm_speedup >= 2.0, (
            f"warm batch only {warm_speedup:.2f}x over sequential")
        cpus = len(os.sched_getaffinity(0)) \
            if hasattr(os, "sched_getaffinity") else (os.cpu_count() or 1)
        if cpus >= WORKERS:
            assert cold_speedup >= 2.0, (
                f"cold batch only {cold_speedup:.2f}x over sequential "
                f"with {WORKERS} workers on {cpus} CPUs")

        benchmark(lambda: None)
        record("batch throughput (Table I family)", {
            "problems": len(problems),
            "workers": WORKERS,
            "cpus_available": cpus,
            "sequential_s": round(sequential_s, 3),
            "batch_cold_s": round(cold.wall_s, 3),
            "batch_warm_s": round(warm.wall_s, 3),
            "speedup_cold": round(cold_speedup, 2),
            "speedup_warm": round(warm_speedup, 2),
            "warm_cache_hit_rate": hit_rate,
        })
        # Gauges land in BENCH_obs.json via the autouse obs recording.
        from repro import obs
        obs.gauge("batch_bench.sequential_s", sequential_s)
        obs.gauge("batch_bench.cold_wall_s", cold.wall_s)
        obs.gauge("batch_bench.warm_wall_s", warm.wall_s)
        obs.gauge("batch_bench.speedup_cold", cold_speedup)
        obs.gauge("batch_bench.speedup_warm", warm_speedup)
        obs.gauge("batch_bench.warm_hit_rate", hit_rate)
        obs.gauge("batch_bench.workers", WORKERS)
        obs.gauge("batch_bench.cpus", cpus)
