"""E10 — Lemmas 11 and 12: the correctness core of the §3 procedure,
exercised as benchmarks.

* Lemma 11: the LOOPS fixpoint equals product reachability — we time both
  loop-evaluation strategies and assert agreement.
* Lemma 12: 2ATA acceptance (parity-game product) equals direct Table II
  satisfaction — timed head-to-head on the same corpus.
"""

import random

import pytest

from repro.automata import (
    NFEvaluator,
    accepts,
    build_twoata,
    eliminate_skips,
    loops_fixpoint,
    path_to_automaton,
)
from repro.semantics import evaluate_nodes
from repro.trees import random_tree
from repro.xpath import parse_node, parse_path

FORMULAS = [
    "p and not q",
    "<down[p]>",
    "not <down*[p]>",
    "eq(down*, down/down)",
]


def corpus(seed: int, count: int = 5, max_nodes: int = 7):
    rng = random.Random(seed)
    return [random_tree(rng, max_nodes, ["p", "q"]) for _ in range(count)]


class TestLemma11:
    @pytest.mark.parametrize("strategy", ["fixpoint", "reachability"])
    def test_loop_evaluation(self, benchmark, record, strategy):
        automaton = eliminate_skips(
            path_to_automaton(parse_path("(down[p] union right)*/up*"))
        )
        trees = corpus(701, count=4, max_nodes=6)

        if strategy == "fixpoint":
            def run():
                return [len(loops_fixpoint(t, automaton)) for t in trees]
        else:
            def run():
                counts = []
                for t in trees:
                    evaluator = NFEvaluator(t)
                    total = 0
                    for q in range(automaton.num_states):
                        for q2 in range(automaton.num_states):
                            total += len(
                                evaluator.loop_nodes(automaton.shift(q, q2)))
                    counts.append(total + 0)
                return counts

        counts = benchmark(run)
        record("loop triple counts", {"strategy": strategy, "counts": counts})

    def test_agreement(self, benchmark, record):
        automaton = eliminate_skips(
            path_to_automaton(parse_path("down*[p]/up*")))
        trees = corpus(702, count=4, max_nodes=6)

        def run():
            for t in trees:
                evaluator = NFEvaluator(t)
                loops = loops_fixpoint(t, automaton, evaluator)
                for n in t.nodes:
                    for q in range(automaton.num_states):
                        for q2 in range(automaton.num_states):
                            expected = n in evaluator.loop_nodes(
                                automaton.shift(q, q2))
                            assert ((n, q, q2) in loops) == expected
            return True

        assert benchmark(run)
        record("Lemma 11", {"status": "fixpoint == reachability"})


class TestLemma12:
    @pytest.mark.parametrize("engine", ["twoata", "direct"])
    def test_satisfaction_check(self, benchmark, record, engine):
        formulas = [parse_node(src) for src in FORMULAS]
        automata = [build_twoata(phi) for phi in formulas]
        trees = corpus(703, count=4, max_nodes=6)

        if engine == "twoata":
            def run():
                return [
                    accepts(ata, t) for ata in automata for t in trees
                ]
        else:
            def run():
                return [
                    bool(evaluate_nodes(t, phi))
                    for phi in formulas for t in trees
                ]

        verdicts = benchmark(run)
        record("verdict vector", {"engine": engine,
                                  "positives": sum(verdicts)})

    def test_agreement(self, benchmark, record):
        formulas = [parse_node(src) for src in FORMULAS]
        automata = [build_twoata(phi) for phi in formulas]
        trees = corpus(704, count=4, max_nodes=6)

        def run():
            for phi, ata in zip(formulas, automata):
                for t in trees:
                    assert accepts(ata, t) == bool(evaluate_nodes(t, phi))
            return True

        assert benchmark(run)
        record("Lemma 12", {
            "status": "2ATA acceptance == Table II satisfaction",
            "pairs_checked": len(formulas) * len(trees),
        })
