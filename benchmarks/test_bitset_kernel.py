"""E12 — the bitset emptiness kernel vs the reference oracle (DESIGN.md §11).

Times the two interchangeable relation kernels of
:func:`repro.automata.emptiness.decide_emptiness` on the same pre-built
2ATAs and gates on the family-median speedup.  Machine noise on the E1
family is around ±20 %, so individual points are recorded but the
acceptance bar is the median across the family: GC is disabled during
timing and each point is a median over repeated runs.

The antichain series exercises the frontier pruning (active only on
rank-0 automata with a monotone root — in practice the propositional
fragment) so its ``twoata.emptiness.antichain.*`` counters land in
``BENCH_obs.json`` with nonzero prune counts; the perf gate's
``--require-keys`` treats losing that prefix as a build break.
"""

import gc
import statistics
import time

import pytest

from repro import obs
from repro.analysis.reductions import containment_to_node_unsat
from repro.automata import build_twoata, decide_emptiness
from repro.xpath import parse_node, parse_path


def _e1_ata(n: int):
    """The E1 containment point ``up^n ⊑ up*`` through Prop. 4."""
    alpha = parse_path("/".join(["up"] * n))
    reduction = containment_to_node_unsat(alpha, parse_path("up*"))
    return build_twoata(reduction.formula)


def _median_runtime(fn, reps: int) -> float:
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        times = []
        for _ in range(reps):
            start = time.perf_counter()
            fn()
            times.append(time.perf_counter() - start)
    finally:
        if was_enabled:
            gc.enable()
    return statistics.median(times)


class TestKernelSpeedup:
    """Bitset vs reference on identical inputs: identical answers,
    family-median duration improvement of at least 5×."""

    def test_e1_family_median_speedup(self, benchmark, record):
        ratios: dict[int, float] = {}
        series: dict[int, tuple] = {}
        for n in (4, 6, 8):
            ata = _e1_ata(n)
            bitset = decide_emptiness(ata, kernel="bitset")
            reference = decide_emptiness(ata, kernel="reference")
            # The kernels must agree on everything the procedure reports
            # (``evals`` excepted: the token-keyed memo of the bitset
            # kernel legitimately evaluates fewer combinations).
            assert bitset.empty and reference.empty
            assert (bitset.rounds, bitset.entries, bitset.contexts) == \
                (reference.rounds, reference.entries, reference.contexts)
            fast = _median_runtime(
                lambda: decide_emptiness(ata, kernel="bitset"), reps=9)
            slow = _median_runtime(
                lambda: decide_emptiness(ata, kernel="reference"), reps=5)
            ratios[n] = slow / fast
            obs.gauge(f"twoata.emptiness.kernel.speedup.n{n}", ratios[n])
            series[n] = (round(fast * 1000, 2), round(slow * 1000, 2),
                         round(ratios[n], 2))
        family_median = statistics.median(ratios.values())
        obs.gauge("twoata.emptiness.kernel.speedup.family_median",
                  family_median)
        record("E12 kernel speedup, ms (n -> (bitset, reference, ratio))",
               series)
        assert family_median >= 5.0, ratios
        benchmark(lambda: None)


class TestAntichainPruning:
    """Frontier pruning on the rank-0 fragment: counters recorded, prune
    rate nonzero, verdicts unchanged against the reference kernel."""

    @pytest.mark.parametrize("k", [2, 4, 6])
    def test_propositional_disjunction_series(self, benchmark, record, k):
        phi = parse_node(" or ".join(f"l{i}" for i in range(k)))
        ata = build_twoata(phi)
        result = benchmark(decide_emptiness, ata, kernel="bitset")
        assert not result.empty
        assert result.pruned > 0  # the antichain actually fired
        reference = decide_emptiness(ata, kernel="reference")
        assert reference.empty == result.empty
        record("antichain pruning (k-label disjunction)", {
            "k": k,
            "pruned": result.pruned,
            "entries": result.entries,
        })
