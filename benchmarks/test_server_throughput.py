"""E15 — serving throughput: the ``repro serve`` daemon request path.

One daemon (resident :class:`~repro.parallel.runner.ExecutorService` +
two-tier :class:`~repro.parallel.cache.VerdictCache`) answers the same
mixed 20-request workload three times over keep-alive HTTP:

* **cold** — empty cache: every request forks workers and solves, and the
  first request per schema shape compiles its session;
* **hot** — first warm pass: every verdict now comes from the cache's
  *memory* tier, no worker forks, no compiles;
* **cache-hit** — second warm pass: the steady state a long-lived daemon
  actually serves.

Verdicts must be identical across all three passes.  The steady-state
pass must run ≥5× the cold qps — serving a warm verdict is a dict lookup
plus HTTP framing, while cold solving forks processes — and the schema-
session registry must report *zero* compiles across the warm passes
(asserted from outside the process via ``/stats``, the same way the CI
server smoke does).

Per-request latencies land in the ``server.request_s`` histogram
(p50/p90/p99 in BENCH_obs.json, rendered by ``repro report``); the
daemon's own ``/stats`` figures are mirrored into ``server.*``/``cache.*``
counters from the benchmark thread, since the daemon's threads never
touch this recording.
"""

import time

from repro import obs
from repro.server import HttpClient, ServerConfig, start_in_thread

WORKERS = 4
#: Mixed workload: containment, equivalence and satisfiability over a few
#: distinct schema shapes (label sets), so the session registry is
#: exercised, label-permuted so instances cost roughly the same.
REQUESTS = [
    {"kind": "contains", "alpha": f"down[{a}]/down[{b}]", "beta": "down/down"}
    for a, b in [("p", "q"), ("q", "p"), ("p", "r"), ("r", "p"),
                 ("q", "r"), ("r", "q")]
] + [
    {"kind": "contains", "alpha": f"down*[{a}]",
     "beta": f"down* except down*[{b}]"}
    for a, b in [("q", "p"), ("p", "q"), ("r", "q"), ("q", "r")]
] + [
    {"kind": "satisfiable", "expr": expr}
    for expr in ("p and q", "p or q", "q and r", "r or p",
                 "p and not q", "q and not r", "not p and not q", "r")
] + [
    {"kind": "equivalent", "alpha": "down[p]", "beta": "down[p][q]"},
    {"kind": "equivalent", "alpha": "down", "beta": "down"},
]


def _run_pass(client: HttpClient, name: str) -> tuple[list, float]:
    """One full workload pass; returns (verdict summaries, wall seconds)
    and feeds every request latency into the server.request_s histogram."""
    answers = []
    started = time.perf_counter()
    for request in REQUESTS:
        t0 = time.perf_counter()
        status, record = client.request("/v1/solve", request)
        obs.observe("server.request_s", time.perf_counter() - t0)
        assert status == 200, (name, request, record)
        answers.append({key: record.get(key)
                        for key in ("kind", "verdict", "conclusive",
                                    "contained", "counterexample_pair")})
    return answers, time.perf_counter() - started


class TestServerThroughput:
    def test_cold_hot_cachehit_qps(self, benchmark, record, tmp_path):
        config = ServerConfig(port=0, workers=WORKERS,
                              cache_dir=str(tmp_path / "cache"))
        with start_in_thread(config) as handle:
            client = HttpClient(handle.http_address)
            cold_answers, cold_s = _run_pass(client, "cold")
            _, stats_after_cold = client.request("/stats")
            hot_answers, hot_s = _run_pass(client, "hot")
            _, stats_after_hot = client.request("/stats")
            hit_answers, hit_s = _run_pass(client, "cache-hit")
            _, stats = client.request("/stats")
            client.close()

        # Warm verdicts are the cold verdicts — the cache changes the
        # latency, never the answer.
        assert hot_answers == cold_answers
        assert hit_answers == cold_answers

        n = len(REQUESTS)
        cold_qps, hot_qps, hit_qps = n / cold_s, n / hot_s, n / hit_s
        assert hit_qps >= 5 * cold_qps, (
            f"steady-state {hit_qps:.0f} qps < 5x cold {cold_qps:.0f} qps")

        # Both warm passes were pure memory-tier hits, compiled nothing,
        # and forked nothing new (executor submissions all completed).
        server = stats["server"]
        sessions = stats["sessions"]
        assert stats["cache"]["mem_hits"] >= 2 * n
        assert server["cache_hits"] >= 2 * n
        assert sessions["created"] == \
            stats_after_cold["sessions"]["created"], "warm pass compiled"
        assert stats_after_hot["sessions"]["created"] == \
            stats_after_cold["sessions"]["created"]
        assert stats["executor"]["completed"] == \
            stats["executor"]["submitted"]

        benchmark(lambda: None)
        record("E15 serving throughput (mixed 20-request workload)", {
            "requests": n,
            "workers": WORKERS,
            "cold_s": round(cold_s, 3),
            "hot_s": round(hot_s, 3),
            "cache_hit_s": round(hit_s, 3),
            "cold_qps": round(cold_qps, 1),
            "hot_qps": round(hot_qps, 1),
            "cache_hit_qps": round(hit_qps, 1),
            "hit_over_cold": round(hit_qps / cold_qps, 1),
            "warm_compiles": sessions["created"]
            - stats_after_cold["sessions"]["created"],
        })
        # Mirror the daemon's figures into this (main-thread) recording:
        # the perf gate requires the server./cache. prefixes and the
        # daemon's own threads never touch the benchmark's obs recording.
        obs.count("server.requests", server["requests"])
        obs.count("server.solved", server["solved"])
        obs.count("server.cache_hits", server["cache_hits"])
        obs.gauge("server.qps_cold", cold_qps)
        obs.gauge("server.qps_hot", hot_qps)
        obs.gauge("server.qps_cache_hit", hit_qps)
        cache_info = stats["cache"]
        obs.count("cache.mem_hit", cache_info["mem_hits"])
        obs.count("cache.disk_hit", cache_info["disk_hits"])
        obs.count("cache.miss", cache_info["misses"])
        obs.count("cache.store", cache_info["stores"])
        obs.gauge("cache.memory_entries", cache_info["memory_entries"])
        obs.gauge("server.sessions_created", sessions["created"])
        obs.gauge("server.sessions_reused", sessions["reused"])
