"""E8 — Propositions 4/5/6: the static-analysis inter-reductions.

The propositions claim *polynomial* reductions; we measure the actual size
overhead of each transformation across growing inputs and verify the
round-trip semantics on concrete instances.
"""

import pytest

from repro.analysis import (
    containment_to_node_unsat,
    edtd_sat_to_sat,
    node_satisfiable,
    sat_to_edtd_sat,
)
from repro.analysis.reductions import encode_witness_tree
from repro.edtd import DTD, book_edtd
from repro.semantics import evaluate_nodes
from repro.trees import XMLTree
from repro.xpath import parse_node, parse_path
from repro.xpath.measures import size


def chain_pair(n: int):
    alpha = parse_path("/".join(["down[p]"] * n))
    beta = parse_path("/".join(["down"] * n))
    return alpha, beta


class TestProposition4:
    @pytest.mark.parametrize("n", [2, 4, 8])
    def test_reduction_cost(self, benchmark, record, n):
        alpha, beta = chain_pair(n)
        reduction = benchmark(containment_to_node_unsat, alpha, beta)
        record("Prop 4 sizes", {
            "n": n,
            "input_size": size(alpha) + size(beta),
            "formula_size": size(reduction.formula),
        })

    def test_overhead_is_linear(self, benchmark, record):
        ratios = {}
        for n in (2, 4, 8):
            alpha, beta = chain_pair(n)
            reduction = containment_to_node_unsat(alpha, beta)
            ratios[n] = size(reduction.formula) / (size(alpha) + size(beta))
        assert max(ratios.values()) / min(ratios.values()) < 2
        benchmark(lambda: None)
        record("E8 Prop 4 overhead factors", ratios)

    def test_roundtrip(self, benchmark, record):
        alpha, beta = parse_path("down*"), parse_path("down")
        reduction = containment_to_node_unsat(alpha, beta)

        def run():
            return node_satisfiable(reduction.formula, max_nodes=4)

        result = benchmark(run)
        assert result  # not contained → satisfiable
        tree, (d, e) = reduction.decode(result.witness, result.witness_node)
        record("Prop 4 counterexample", {
            "tree": str(tree.to_spec()),
            "pair": (d, e),
        })


class TestProposition5:
    @pytest.mark.parametrize("source", [
        "p and <down[q]>",
        "not <up> and <down*[p]>",
    ])
    def test_reduction_cost(self, benchmark, record, source):
        phi = parse_node(source)
        reduction = benchmark(sat_to_edtd_sat, phi)
        record("Prop 5 sizes", {
            "input_size": size(phi),
            "formula_size": size(reduction.formula),
            "edtd_size": reduction.edtd.size(),
        })


class TestProposition6:
    def test_reduction_cost_book_schema(self, benchmark, record):
        book = book_edtd()
        phi = parse_node("Image and not Paragraph")
        reduction = benchmark(edtd_sat_to_sat, phi, book)
        record("Prop 6 sizes (book schema)", {
            "input_size": size(phi),
            "schema_size": book.size(),
            "formula_size": size(reduction.formula),
        })

    def test_constructive_roundtrip(self, benchmark, record):
        schema = DTD({"recipe": "title step+", "title": "eps", "step": "eps"},
                     root="recipe")
        phi = parse_node("recipe and <down[step]>")
        reduction = edtd_sat_to_sat(phi, schema)
        document = XMLTree.build(("recipe", ["title", "step"]))

        def run():
            encoded = encode_witness_tree(document, schema)
            return 0 in evaluate_nodes(encoded, reduction.formula)

        assert benchmark(run)
        record("Prop 6 roundtrip", {"document": str(document.to_spec())})

    def test_overhead_grows_with_schema(self, benchmark, record):
        phi = parse_node("a")
        sizes = {}
        for width in (1, 2, 3):
            rules = {"a": " ".join(["b"] * width), "b": "eps"}
            schema = DTD(rules, root="a")
            reduction = edtd_sat_to_sat(phi, schema)
            sizes[width] = size(reduction.formula)
        assert sizes[3] > sizes[1]
        benchmark(lambda: None)
        record("E8 Prop 6 formula size vs content-model width", sizes)
