"""E11 — the rewrite pipeline: size reduction, engine deltas, cache hits.

Three claims about :mod:`repro.xpath.passes` measured on Table I-style
scaling families with deliberately redundant surface forms:

* **Node reduction** — the ``full`` pipeline removes ≥ 20 % of interned
  nodes on average on at least two scaling families (duplicated union
  members, stacked filters, towers of closures).
* **Engine parity and time** — for each decision engine (automata,
  expspace, bounded) the verdicts at ``--passes full`` and ``--passes
  none`` are identical on every workload instance, and the time deltas
  are recorded into ``BENCH_obs.json`` (the pipeline's per-pass
  ``rewrite.pass.*`` counters land there too, via the autouse obs
  recording).
* **Cache warming** — syntactic variants of one problem used to miss the
  :class:`~repro.parallel.VerdictCache` cold (their raw fingerprints
  differ); keyed on canonical forms they collide onto one entry, so the
  second variant is a warm hit.
"""

from __future__ import annotations

import statistics
import time

import pytest

from repro.analysis import Problem, ProblemKind, contains, satisfiable
from repro.parallel import VerdictCache
from repro.parallel.cache import problem_fingerprint
from repro.xpath import parse_node, parse_path, passes, size
from repro.xpath.passes import canonical_with_stats

SCALES = (2, 4, 6, 8)

#: name -> (builder of a redundant source at scale n, parser).
FAMILIES = {
    "union-duplicates": (
        lambda n: " union ".join(["down[p]"] * n + ["down"]), parse_path),
    "filter-stacks": (
        lambda n: "down" + "[p]" * n + "/up" + "[q]" * n, parse_path),
    "closure-towers": (
        lambda n: "/".join(["down*"] * n), parse_path),
}


class TestNodeReduction:
    def test_mean_reduction_at_least_20_percent(self, benchmark, record):
        per_family: dict[str, dict] = {}
        means: dict[str, float] = {}
        for family, (build, parser) in FAMILIES.items():
            rows = {}
            reductions = []
            for n in SCALES:
                expr = parser(build(n))
                raw = size(expr)
                result, stats = canonical_with_stats(expr, level="full")
                reduced = size(result)
                reduction = 1.0 - reduced / raw
                reductions.append(reduction)
                rows[f"n={n}"] = {
                    "raw_nodes": raw,
                    "canonical_nodes": reduced,
                    "reduction": round(reduction, 3),
                    "passes_fired": sum(
                        entry["fired"] for entry in stats.per_pass.values()),
                }
            per_family[family] = rows
            means[family] = statistics.mean(reductions)
        # The acceptance bar: ≥ 20 % mean reduction on ≥ 2 families.
        assert sum(mean >= 0.20 for mean in means.values()) >= 2, means
        benchmark(lambda: None)
        record("E11 node reduction", {
            "means": {k: round(v, 3) for k, v in means.items()},
            **per_family,
        })


#: engine -> (kind, workload of redundant instances).  Each instance must
#: be admitted by its engine in raw *and* canonical form.
ENGINE_WORKLOADS = {
    "automata": ("satisfiable", [
        "<down*/down*[p]> and <down*/down*[p]>",
        "<down[p][p]> and not <down[p]>",
        "eq(down/down, down/down) and not <down/down>",
    ]),
    "expspace": ("satisfiable", [
        "<down[p][p] intersect down*/down*>",
        "<down[p] intersect down[q]> and <down[p] intersect down[q]>",
        "<(down[p] union down[p])/down>",
    ]),
    "bounded": ("contains", [
        ("down[p] union down[p] union down", "down"),
        ("down" + "[p]" * 4, "down[p]"),
        ("down*/down*", "down*"),
    ]),
}


def _solve(engine: str, kind: str, instance):
    if kind == "satisfiable":
        return satisfiable(parse_node(instance), method=engine, max_nodes=4)
    alpha, beta = instance
    return contains(parse_path(alpha), parse_path(beta), method=engine,
                    max_nodes=4)


class TestEngineParity:
    @pytest.mark.parametrize("engine", sorted(ENGINE_WORKLOADS))
    def test_identical_verdicts_and_time_delta(self, benchmark, record,
                                               engine):
        kind, workload = ENGINE_WORKLOADS[engine]
        rows = {}
        previous = passes.default_pipeline()
        try:
            for index, instance in enumerate(workload):
                passes.set_default_pipeline("none")
                start = time.perf_counter()
                baseline = _solve(engine, kind, instance)
                time_none = time.perf_counter() - start
                passes.set_default_pipeline("full")
                start = time.perf_counter()
                piped = _solve(engine, kind, instance)
                time_full = time.perf_counter() - start
                assert piped.verdict is baseline.verdict, (engine, instance)
                assert piped.conclusive == baseline.conclusive
                rows[f"case{index}"] = {
                    "verdict": piped.verdict.value,
                    "time_none_s": round(time_none, 6),
                    "time_full_s": round(time_full, 6),
                }
        finally:
            passes.set_default_pipeline(previous)
        benchmark(lambda: None)
        record(f"E11 engine parity: {engine}", rows)


class TestCacheWarming:
    def test_syntactic_variants_share_one_entry(self, benchmark, record,
                                                tmp_path):
        variants = [
            Problem(ProblemKind.SATISFIABILITY,
                    phi=parse_node("<down[p] union down[q]>")),
            Problem(ProblemKind.SATISFIABILITY,
                    phi=parse_node("<down[q] union down[p]>")),
            Problem(ProblemKind.SATISFIABILITY,
                    phi=parse_node("<down[q] union down[p] union down[q]>")),
        ]
        # Raw fingerprints all differ: before canonical keying each variant
        # was a cold miss of its own.
        raw_keys = {problem_fingerprint(problem) for problem in variants}
        assert len(raw_keys) == len(variants)
        canonical_keys = {problem_fingerprint(problem.canonical())
                          for problem in variants}
        assert len(canonical_keys) == 1

        cache = VerdictCache(tmp_path)
        result = satisfiable(variants[0].phi, max_nodes=4)
        assert cache.get(variants[0].canonical()) is None  # cold
        assert cache.put(variants[0].canonical(), result)
        for variant in variants[1:]:
            warm = cache.get(variant.canonical())
            assert warm is not None and warm.verdict is result.verdict
        benchmark(lambda: None)
        record("E11 cache warming", {
            "variants": len(variants),
            "raw_fingerprints": len(raw_keys),
            "canonical_fingerprints": len(canonical_keys),
            **cache.info(),
        })
