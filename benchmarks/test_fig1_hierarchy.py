"""E6 — Figure 1: the expressivity hierarchy, checked constructively.

Each edge of the figure comes with a translation implemented in this
library; the benchmark verifies every translation semantically on a randomized
document corpus and measures its cost:

* ≈ → ∩        (α ≈ β ≡ ⟨α ∩ β⟩)
* ∩ → −        (α ∩ β ≡ α − (α − β))
* − → for      (Theorem 31)
* ∪ → −        (U-relative De Morgan)
* (*, ∩) → (*, ≈)  (Theorem 34 pipeline)
* ⟨α⟩/≈ → loop normal form (§3.1)
"""

import random

import pytest

from repro.automata import (
    FreshLabels,
    NFEvaluator,
    eliminate_skips,
    node_to_let_nf,
    path_to_automaton,
    to_normal_form,
)
from repro.automata.toexpr import letnf_to_expr
from repro.lowerbounds import eliminate_complements
from repro.semantics import evaluate_nodes, evaluate_path
from repro.trees import random_tree
from repro.xpath import parse_node, parse_path
from repro.xpath.ast import Intersect, SomePath, Union
from repro.xpath.rewrite import (
    eq_via_intersect,
    intersect_via_complement,
    union_via_complement,
)


def corpus(seed: int, count: int = 10, max_nodes: int = 8):
    rng = random.Random(seed)
    return [random_tree(rng, max_nodes, ["p", "q"]) for _ in range(count)]


class TestHierarchyEdges:
    def test_eq_to_cap(self, benchmark, record):
        node = parse_node("eq(down*[p], down/down)")
        rewritten = eq_via_intersect(node)
        trees = corpus(601)

        def run():
            return all(
                evaluate_nodes(t, node) == evaluate_nodes(t, rewritten)
                for t in trees
            )

        assert benchmark(run)
        record("edge", {"edge": "≈ → ∩", "verified_on": len(trees)})

    def test_cap_to_minus(self, benchmark, record):
        path = Intersect(parse_path("down*"), parse_path("down/down"))
        rewritten = intersect_via_complement(path)
        trees = corpus(602)

        def run():
            return all(
                evaluate_path(t, path) == evaluate_path(t, rewritten)
                for t in trees
            )

        assert benchmark(run)
        record("edge", {"edge": "∩ → −", "verified_on": len(trees)})

    def test_minus_to_for(self, benchmark, record):
        path = parse_path("down* except down*[p]")
        rewritten = eliminate_complements(path)
        trees = corpus(603)

        def run():
            return all(
                evaluate_path(t, path) == evaluate_path(t, rewritten)
                for t in trees
            )

        assert benchmark(run)
        record("edge", {"edge": "− → for (Thm 31)", "verified_on": len(trees)})

    def test_union_to_minus(self, benchmark, record):
        path = Union(parse_path("down[p]"), parse_path("right*"))
        rewritten = union_via_complement(path)
        trees = corpus(604)

        def run():
            return all(
                evaluate_path(t, path) == evaluate_path(t, rewritten)
                for t in trees
            )

        assert benchmark(run)
        record("edge", {"edge": "∪ → −", "verified_on": len(trees)})

    def test_star_cap_to_star_eq(self, benchmark, record):
        node = parse_node("<(down union right)* intersect down*>")
        rewritten = letnf_to_expr(node_to_let_nf(node, FreshLabels()))
        trees = corpus(605, count=6, max_nodes=6)

        def run():
            return all(
                evaluate_nodes(t, node) == evaluate_nodes(t, rewritten)
                for t in trees
            )

        assert benchmark(run)
        record("edge", {"edge": "(*, ∩) → (*, ≈) (Thm 34)",
                        "verified_on": len(trees)})

    def test_star_eq_to_normal_form(self, benchmark, record):
        node = parse_node("eq(down*[p]/up, .) and not <right*>")
        nf = to_normal_form(node)
        trees = corpus(606)

        def run():
            return all(
                NFEvaluator(t).nodes(nf) == evaluate_nodes(t, node)
                for t in trees
            )

        assert benchmark(run)
        record("edge", {"edge": "(*, ≈) → NFA/loop normal form (§3.1)",
                        "verified_on": len(trees)})
