"""E5 — Table I, row for: non-elementary, inherited from − via Theorem 31.

``α − β ≡ for $i in α return .[¬⟨β[. is $i]⟩]/↓*[. is $i]`` — a linear-size
one-variable encoding.  We measure the rewriting overhead and the evaluation
cost of for-loop semantics (which re-evaluates the body per binding) against
native complementation.
"""

import random

import pytest

from repro.lowerbounds import eliminate_complements, starfree_to_path
from repro.regexes import SFComplement, SFConcat, SFSymbol
from repro.semantics import evaluate_path
from repro.trees import random_tree
from repro.xpath import parse_path
from repro.xpath.measures import operators_used, size

CASES = [
    ("simple", "down* except down[p]"),
    ("nested", "(down* except down) except down[p]"),
    ("mixed", "down*[p] except (down except down[q])"),
]


class TestRewriting:
    @pytest.mark.parametrize("name, source", CASES, ids=[c[0] for c in CASES])
    def test_rewrite_overhead(self, benchmark, record, name, source):
        path = parse_path(source)
        rewritten = benchmark(eliminate_complements, path)
        assert "minus" not in operators_used(rewritten)
        record("Theorem 31 rewrite", {
            "case": name,
            "input_size": size(path),
            "output_size": size(rewritten),
            "overhead": round(size(rewritten) / size(path), 2),
        })

    def test_overhead_is_linear(self, benchmark, record):
        ratios = {}
        for name, source in CASES:
            path = parse_path(source)
            ratios[name] = size(eliminate_complements(path)) / size(path)
        assert max(ratios.values()) < 6  # constant-factor encoding
        benchmark(lambda: None)
        record("E5 rewrite overhead factors", ratios)


class TestEvaluationCost:
    @pytest.mark.parametrize("engine", ["native-minus", "for-loop"])
    def test_evaluation(self, benchmark, record, engine):
        rng = random.Random(555)
        path = parse_path("down* except down*[p]")
        if engine == "for-loop":
            path = eliminate_complements(path)
        trees = [random_tree(rng, 10, ["p", "q"]) for _ in range(6)]

        def run():
            return [len(evaluate_path(tree, path)) for tree in trees]

        counts = benchmark(run)
        record("evaluation", {"engine": engine, "nonempty_sources": counts})

    def test_equivalence_on_theorem30_output(self, benchmark, record):
        """Composing E4 and E5: the star-free reduction expressed entirely
        with for-loops still matches the native − semantics."""
        expr = SFComplement(SFConcat(SFSymbol("a"), SFSymbol("b")))
        native = starfree_to_path(expr)
        via_for = eliminate_complements(native)
        rng = random.Random(556)
        trees = [random_tree(rng, 7, ["a", "b"]) for _ in range(5)]

        def run():
            return all(
                evaluate_path(tree, native) == evaluate_path(tree, via_for)
                for tree in trees
            )

        assert benchmark(run)
        record("E5 × E4 composition", {
            "native_size": size(native),
            "for_size": size(via_for),
        })
