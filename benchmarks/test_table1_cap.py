"""E2 — Table I, row ∩: 2-EXPTIME in general, EXPTIME for bounded
intersection depth.

The complexity gap shows up as the Lemma 16 vs Lemma 17 translation sizes:
nested intersections square the EPA state count per level, while
bounded-depth chains grow only linearly.  We measure both families through
the CoreXPath(*, ∩) → EPA translation.
"""

import pytest

from repro.automata import FreshLabels, path_to_epa
from repro.succinctness import cap_chain, cap_tower
from repro.xpath.measures import intersection_depth, size


class TestBoundedDepthIsPolynomial:
    """Lemma 17: fixed intersection depth → polynomial translation."""

    @pytest.mark.parametrize("length", [1, 2, 4, 8])
    def test_chain_translation(self, benchmark, record, length):
        path = cap_chain(length)
        epa = benchmark(path_to_epa, path, FreshLabels())
        record("bounded-depth series", {
            "length": length,
            "input_size": size(path),
            "depth": intersection_depth(path),
            "epa_states": epa.num_states,
            "epa_size": epa.size(),
        })

    def test_linear_shape(self, benchmark, record):
        states = {
            n: path_to_epa(cap_chain(n), FreshLabels()).num_states
            for n in (2, 4, 8)
        }
        # Linear: doubling the length roughly doubles the state count.
        assert states[8] / states[4] < 3
        assert states[4] / states[2] < 3
        benchmark(lambda: None)
        record("E2 bounded-depth states", states)


class TestNestedDepthIsExponential:
    """Lemma 16: each nesting level multiplies state counts together."""

    @pytest.mark.parametrize("depth", [1, 2])
    def test_tower_translation(self, benchmark, record, depth):
        path = cap_tower(depth)
        epa = benchmark(path_to_epa, path, FreshLabels())
        record("nested-depth series", {
            "depth": depth,
            "input_size": size(path),
            "epa_states": epa.num_states,
            "epa_size": epa.size(),
        })

    def test_squaring_shape(self, benchmark, record):
        states = {
            d: path_to_epa(cap_tower(d), FreshLabels()).num_states
            for d in (1, 2)
        }
        # Squaring: level 2 has at least (level 1)²/4 states, far beyond the
        # linear growth of the bounded-depth family above.
        assert states[2] >= states[1] ** 2 // 4
        benchmark(lambda: None)
        record("E2 nested-depth states (squares per level; depth 3 reaches "
               "~39k states / ~38M size — measured offline)", states)
