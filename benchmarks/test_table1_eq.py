"""E1 — Table I, row ≈ (with *): CoreXPath(*, ≈) is EXPTIME via 2ATAs.

The paper's procedure builds a 2ATA with *polynomially many* states
(Lemma 12) and decides emptiness in EXPTIME.  We measure three stages of
that pipeline: the polynomial shape of the automaton construction across
a growing formula family, the cost of the exact acceptance check (the
parity-game product) on fixed documents, and the full Theorem 10 decision
— Proposition 4 reduction, 2ATA construction, summary-based emptiness
(DESIGN.md §8) — on a containment family that no bounded search could
ever prove.
"""

import random

import pytest

from repro.analysis.reductions import containment_to_node_unsat
from repro.automata import accepts, build_twoata, decide_emptiness
from repro.trees import random_tree
from repro.xpath import parse_node, parse_path, size


def family(n: int):
    """eq(↓ⁿ, ↓*) ∧ ¬⟨↓ⁿ⁺¹[p]⟩ — grows linearly in n."""
    chain = "/".join(["down"] * n)
    longer = "/".join(["down"] * (n + 1))
    return parse_node(f"eq({chain}, down*) and not <{longer}[p]>")


class TestTwoATAConstruction:
    @pytest.mark.parametrize("n", [2, 4, 6, 8])
    def test_construction_scales_polynomially(self, benchmark, record, n):
        phi = family(n)
        ata = benchmark(build_twoata, phi)
        record("2ATA states vs |φ| (poly expected)", {
            "n": n,
            "formula_size": size(phi),
            "states": ata.num_states,
        })

    def test_polynomial_shape_summary(self, record, benchmark):
        sizes = {}
        for n in (2, 4, 8):
            phi = family(n)
            sizes[n] = (size(phi), build_twoata(phi).num_states)
        # Doubling n must scale the state count by a bounded factor (no
        # exponential jump) — the Lemma 12 polynomiality.
        ratio_1 = sizes[4][1] / sizes[2][1]
        ratio_2 = sizes[8][1] / sizes[4][1]
        assert ratio_2 < ratio_1 * 4
        benchmark(lambda: None)
        record("E1 construction series (n -> (|φ|, states))", sizes)


class TestEmptinessDecision:
    """Theorem 10 end-to-end: ``↑ⁿ ⊑ ↑*`` holds on every tree, so the
    Prop. 4 reduction formula is unsatisfiable and only a conclusive
    emptiness check can decide the containment (bounded search would
    exhaust any bound inconclusively).  The series records how the
    automaton, the summary-saturation footprint, and the parity game grow
    with n."""

    @pytest.mark.parametrize("n", [2, 4, 6, 8])
    def test_containment_series(self, benchmark, record, n):
        alpha = parse_path("/".join(["up"] * n))
        beta = parse_path("up*")
        reduction = containment_to_node_unsat(alpha, beta)
        ata = build_twoata(reduction.formula)
        result = benchmark(decide_emptiness, ata)
        assert result.empty  # the containment is proven
        record("E1 emptiness decision (up^n ⊑ up*)", {
            "n": n,
            "states": ata.num_states,
            "entries": result.entries,
            "contexts": result.contexts,
            "game_positions": result.game_positions,
        })

    def test_growth_shape_summary(self, record, benchmark):
        series = {}
        for n in (2, 4, 8):
            alpha = parse_path("/".join(["up"] * n))
            reduction = containment_to_node_unsat(alpha, parse_path("up*"))
            ata = build_twoata(reduction.formula)
            result = decide_emptiness(ata)
            assert result.empty
            series[n] = (ata.num_states, result.entries,
                         result.game_positions)
        # The automaton stays polynomial in n (Lemma 12) even while the
        # summary search's reachable-entry count grows much faster.
        states_ratio = series[8][0] / series[2][0]
        assert states_ratio < 8
        benchmark(lambda: None)
        record("E1 emptiness series (n -> (states, entries, game))", series)


class TestAcceptanceCheck:
    @pytest.mark.parametrize("n", [2, 4])
    def test_acceptance_on_random_documents(self, benchmark, record, n):
        rng = random.Random(1000 + n)
        phi = family(n)
        ata = build_twoata(phi)
        trees = [random_tree(rng, 9, ["p", "q"]) for _ in range(5)]

        def run():
            return [accepts(ata, tree) for tree in trees]

        verdicts = benchmark(run)
        record("acceptance verdicts", {"n": n, "verdicts": verdicts})
