"""E1 — Table I, row ≈ (with *): CoreXPath(*, ≈) is EXPTIME via 2ATAs.

The paper's procedure builds a 2ATA with *polynomially many* states
(Lemma 12) and decides emptiness in EXPTIME.  We measure the polynomial
shape of the automaton construction across a growing formula family and the
cost of the exact acceptance check (the parity-game product) on fixed
documents — the implementable part of the procedure (emptiness itself is
substituted by bounded search; DESIGN.md §2).
"""

import random

import pytest

from repro.automata import accepts, build_twoata
from repro.trees import random_tree
from repro.xpath import parse_node, size


def family(n: int):
    """eq(↓ⁿ, ↓*) ∧ ¬⟨↓ⁿ⁺¹[p]⟩ — grows linearly in n."""
    chain = "/".join(["down"] * n)
    longer = "/".join(["down"] * (n + 1))
    return parse_node(f"eq({chain}, down*) and not <{longer}[p]>")


class TestTwoATAConstruction:
    @pytest.mark.parametrize("n", [2, 4, 6, 8])
    def test_construction_scales_polynomially(self, benchmark, record, n):
        phi = family(n)
        ata = benchmark(build_twoata, phi)
        record("2ATA states vs |φ| (poly expected)", {
            "n": n,
            "formula_size": size(phi),
            "states": ata.num_states,
        })

    def test_polynomial_shape_summary(self, record, benchmark):
        sizes = {}
        for n in (2, 4, 8):
            phi = family(n)
            sizes[n] = (size(phi), build_twoata(phi).num_states)
        # Doubling n must scale the state count by a bounded factor (no
        # exponential jump) — the Lemma 12 polynomiality.
        ratio_1 = sizes[4][1] / sizes[2][1]
        ratio_2 = sizes[8][1] / sizes[4][1]
        assert ratio_2 < ratio_1 * 4
        benchmark(lambda: None)
        record("E1 construction series (n -> (|φ|, states))", sizes)


class TestAcceptanceCheck:
    @pytest.mark.parametrize("n", [2, 4])
    def test_acceptance_on_random_documents(self, benchmark, record, n):
        rng = random.Random(1000 + n)
        phi = family(n)
        ata = build_twoata(phi)
        trees = [random_tree(rng, 9, ["p", "q"]) for _ in range(5)]

        def run():
            return [accepts(ata, tree) for tree in trees]

        verdicts = benchmark(run)
        record("acceptance verdicts", {"n": n, "verdicts": verdicts})
