"""E7 — Figures 3–5 / Theorems 27–29: the ATM hardness encodings.

For each of the three reductions we build the formula for small machines,
encode the machine's actual computation as the figure's tree layout, and
verify the load-bearing equivalence: the formula holds on the encoding iff
the machine accepts.  The measured quantities are formula construction cost,
formula size (polynomial in |w| — that's what makes the reductions
polynomial), and evaluation cost on the encodings.
"""

import pytest

from repro.lowerbounds import (
    all_ones_machine,
    downward_reduction,
    encode_strategy_tree,
    encode_strategy_tree_downward,
    encode_strategy_tree_forward,
    first_symbol_machine,
    forward_reduction,
    parity_machine,
    vertical_reduction,
)
from repro.semantics import holds_at
from repro.xpath.measures import size

REDUCTIONS = {
    "vertical-6.2": (vertical_reduction, encode_strategy_tree),
    "forward-6.3": (forward_reduction, encode_strategy_tree_forward),
    "downward-6.4": (downward_reduction, encode_strategy_tree_downward),
}

MACHINES = {
    "existential": (first_symbol_machine(), ["a", "b"]),
    "deterministic": (parity_machine(), ["10", "11"]),
    "universal": (all_ones_machine(), ["11", "10"]),
}


class TestConstruction:
    @pytest.mark.parametrize("reduction_name", sorted(REDUCTIONS))
    def test_formula_construction(self, benchmark, record, reduction_name):
        build, _ = REDUCTIONS[reduction_name]
        machine, words = MACHINES["deterministic"]

        reduction = benchmark(build, machine, words[0])
        record("construction", {
            "reduction": reduction_name,
            "word": words[0],
            "formula_size": size(reduction.formula),
        })

    @pytest.mark.parametrize("reduction_name", sorted(REDUCTIONS))
    def test_size_is_polynomial_in_word(self, benchmark, record,
                                        reduction_name):
        build, _ = REDUCTIONS[reduction_name]
        machine = parity_machine()
        sizes = {k: size(build(machine, "0" * k).formula) for k in (1, 2, 3)}
        # Polynomial: growth factor does not itself grow fast.
        assert sizes[3] / sizes[2] < (sizes[2] / sizes[1]) * 3
        benchmark(lambda: None)
        record("E7 formula sizes vs |w|", {reduction_name: sizes})


class TestEquivalence:
    @pytest.mark.parametrize("reduction_name", sorted(REDUCTIONS))
    @pytest.mark.parametrize("machine_name", sorted(MACHINES))
    def test_holds_iff_accepts(self, benchmark, record, reduction_name,
                               machine_name):
        build, encode = REDUCTIONS[reduction_name]
        machine, words = MACHINES[machine_name]
        prepared = [
            (word, build(machine, word), encode(machine, word),
             machine.accepts(word, 2 ** len(word)))
            for word in words
        ]

        def run():
            results = []
            for word, reduction, tree, accepts in prepared:
                holds = holds_at(tree, reduction.formula, 0)
                assert holds == accepts, (reduction_name, word)
                results.append((word, accepts))
            return results

        outcome = benchmark(run)
        record("sat ⟺ accept", {
            "reduction": reduction_name,
            "machine": machine_name,
            "cases": outcome,
        })
