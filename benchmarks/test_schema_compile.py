"""E14 — compile-once CompiledSchema amortization (DESIGN.md §13).

Every schema-dependent artifact — content-model NFAs, the Fig. 2 type
frame, the Prop. 4 decorated EDTD, the 2ATA alphabet partition and the
emptiness kernel's memo store — is built once per
:func:`~repro.analysis.session.schema_id_of` and shared through the
:class:`~repro.analysis.session.SchemaSession`.  This experiment measures
what that sharing buys on a same-schema batch: for each family member the
engine's **schema-preparation phase** (everything it does before the
per-problem decision procedure starts) is timed **cold** — the session
registry is reset first, so the schema recompiles from scratch, which is
the pre-refactor per-call behaviour — and **warm** — one precompiled
session serves the whole family, exactly what the batch runner arranges
for its workers.

Two engine families over one schema id each:

* ``expspace`` — containment under a DTD.  Prep is the compiled content
  NFAs, the Prop. 4 decorated EDTD and the Fig. 2 type frame the type
  enumeration runs against.
* ``automata`` — schemaless CoreXPath(*) satisfiability over the
  alphabet ``{p, q}``.  Prep is the schema identity plus the compiled
  2ATA alphabet partition and kernel-memo store.

Gate: family-median warm speedup of the preparation phase of at least
2× per engine, with byte-identical verdicts cold vs warm on every
member.  End-to-end solve times are recorded alongside for context but
deliberately **not** gated: the decision work itself — type enumeration
for ``expspace``, summary saturation for ``automata`` — is per-problem
by construction (it is where the paper's EXPSPACE/EXPTIME lower bounds
live), so no amount of schema sharing can amortize it.  See
EXPERIMENTS.md §E14 for the methodology note.

The ``schema.compile.*`` counters and the ``schema.compile_s``
histogram land in ``BENCH_obs.json`` via the autouse recording; the perf
gate's ``--require-keys`` treats losing the prefix as a build break.
"""

import gc
import statistics
import time

from repro import obs
from repro.analysis.problems import Problem, ProblemKind
from repro.analysis.reductions import containment_to_node_unsat
from repro.analysis.registry import default_registry
from repro.analysis.session import reset_sessions, session_for
from repro.edtd import DTD
from repro.parallel.cache import encode_result
from repro.xpath import parse_node, parse_path

#: A document-ish DTD: enough labels that compiling its NFAs (and the
#: doubled decorated variants) is real work, while the formulas below stay
#: small so the per-problem type enumeration does not drown the compile.
SCHEMA_RULES = {
    "doc": "front sec* back",
    "front": "title author*",
    "sec": "title (par | fig)*",
    "back": "ref*",
    "par": "eps",
    "fig": "cap?",
    "cap": "eps",
    "title": "eps",
    "author": "eps",
    "ref": "eps",
}

#: Downward containments over the schema, both polarities.
EXPSPACE_FAMILY = [
    ("down[front]", "down"),
    ("down/down[title]", "down/down"),
    ("down[sec]/down[par]", "down/down"),
    ("down", "down[sec]"),
]

#: Schemaless CoreXPath(*) satisfiability over one alphabet {p, q}: every
#: member compiles to the same schema id, so one session serves all.
#: Each member stays inside the engine's saturation guards (no declines).
AUTOMATA_FAMILY = [
    "p and <down[q]>",
    "p and not <down*[q]>",
    "p and <down*[q]>",
    "not <down[p and q]>",
]


def _median_runtime(fn, reps: int) -> float:
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        times = []
        for _ in range(reps):
            start = time.perf_counter()
            fn()
            times.append(time.perf_counter() - start)
    finally:
        if was_enabled:
            gc.enable()
    return statistics.median(times)


def _expspace_prep(problem):
    """The ``expspace`` engine's schema phase, verbatim from its ``solve``:
    look up the session, run the Prop. 4 reduction against the compiled
    artifact, and materialize the type frame the enumeration will use."""
    compiled = session_for(problem).compiled
    reduction = containment_to_node_unsat(
        problem.alpha, problem.beta, compiled.edtd, schema=compiled)
    compiled.type_frame(reduction.edtd)


def _automata_prep(problem):
    """The ``automata`` engine's schema phase: session lookup (schema id +
    compile on a cold registry) and the alphabet-partition seed that
    ``build_twoata`` adopts."""
    session = session_for(problem)
    assert session.compiled.partition is not None


def _amortization(engine_name, prep, problems, *, prep_reps, solve_reps):
    """Per-member timings for one engine over a same-schema family.

    Returns ``index -> (prep_cold, prep_warm, solve_cold, solve_warm)``
    in seconds.  Cold resets the session registry first (schema compiles
    from scratch, the pre-refactor per-call behaviour); warm runs against
    the precompiled session.  Verdicts are asserted byte-identical
    between the cold and warm solves of every member.
    """
    engine = default_registry().get(engine_name)
    results = {}
    for index, problem in enumerate(problems):
        def cold_prep(p=problem):
            reset_sessions()
            prep(p)

        def cold_solve(p=problem):
            reset_sessions()
            return engine.solve(p)

        cold_result = cold_solve()
        assert cold_result is not None, (engine_name, index)
        prep_cold = _median_runtime(cold_prep, prep_reps)
        solve_cold = _median_runtime(cold_solve, solve_reps)

        reset_sessions()
        session_for(problem)  # the batch runner's per-worker precompile
        prep(problem)
        warm_result = engine.solve(problem)
        assert encode_result(warm_result) == encode_result(cold_result), \
            (engine_name, index)
        prep_warm = _median_runtime(lambda p=problem: prep(p), prep_reps)
        solve_warm = _median_runtime(
            lambda p=problem: engine.solve(p), solve_reps)
        results[index] = (prep_cold, prep_warm, solve_cold, solve_warm)
    reset_sessions()
    return results


def _series_row(prep_cold, prep_warm, solve_cold, solve_warm):
    return {
        "prep_cold_ms": round(prep_cold * 1000, 3),
        "prep_warm_ms": round(prep_warm * 1000, 3),
        "prep_ratio": round(prep_cold / prep_warm, 1),
        "solve_cold_ms": round(solve_cold * 1000, 2),
        "solve_warm_ms": round(solve_warm * 1000, 2),
        "solve_ratio": round(solve_cold / solve_warm, 2),
    }


class TestCompileAmortization:
    """Cold vs warm per engine: byte-identical verdicts, family-median
    warm speedup of the schema-preparation phase of at least 2×."""

    def test_expspace_family(self, benchmark, record):
        edtd = DTD(SCHEMA_RULES, root="doc")
        problems = [Problem(ProblemKind.CONTAINMENT,
                            alpha=parse_path(alpha), beta=parse_path(beta),
                            edtd=edtd)
                    for alpha, beta in EXPSPACE_FAMILY]
        measured = _amortization("expspace", _expspace_prep, problems,
                                 prep_reps=7, solve_reps=3)
        series = {}
        ratios = []
        for index, row in measured.items():
            alpha, beta = EXPSPACE_FAMILY[index]
            ratios.append(row[0] / row[1])
            series[f"{alpha} <= {beta}"] = _series_row(*row)
        family_median = statistics.median(ratios)
        obs.gauge("schema.compile.amortization.expspace", family_median)
        record("E14 expspace cold vs warm (gate: prep_ratio)", series)
        assert family_median >= 2.0, series
        benchmark(lambda: None)

    def test_automata_family(self, benchmark, record):
        problems = [Problem(ProblemKind.SATISFIABILITY, phi=parse_node(phi))
                    for phi in AUTOMATA_FAMILY]
        measured = _amortization("automata", _automata_prep, problems,
                                 prep_reps=7, solve_reps=3)
        series = {}
        ratios = []
        for index, row in measured.items():
            ratios.append(row[0] / row[1])
            series[AUTOMATA_FAMILY[index]] = _series_row(*row)
        family_median = statistics.median(ratios)
        obs.gauge("schema.compile.amortization.automata", family_median)
        record("E14 automata cold vs warm (gate: prep_ratio)", series)
        assert family_median >= 2.0, series
        benchmark(lambda: None)


class TestCompileOnceAcrossTheFamily:
    """The observability contract E14 rides on: one warm pass over a
    same-schema family compiles exactly once, and the compile duration is
    recorded in the ``schema.compile_s`` histogram."""

    def test_counters(self, benchmark, _obs_recording):
        engine = default_registry().get("automata")
        problems = [Problem(ProblemKind.SATISFIABILITY, phi=parse_node(phi))
                    for phi in AUTOMATA_FAMILY]
        reset_sessions()
        before = dict(_obs_recording.counters)
        for problem in problems:
            assert engine.solve(problem) is not None
        compiles = _obs_recording.counters.get("schema.compile.count", 0) \
            - before.get("schema.compile.count", 0)
        reuses = _obs_recording.counters.get("analysis.session.reused", 0) \
            - before.get("analysis.session.reused", 0)
        assert compiles == 1, _obs_recording.counters
        assert reuses == len(problems) - 1, _obs_recording.counters
        reset_sessions()
        benchmark(lambda: None)
