"""E9 — §8 succinctness: Theorems 34 and 35, measured.

Two curves, as in the paper's argument:

* the CoreXPath(∩) side: ``φ_k`` has size O(k²);
* the automaton side: the minimal DFA for the ``φ_k`` word property grows
  doubly exponentially (≥ 2^{2^k} by Etessami–Vardi–Wilke); we build it
  exactly for k = 1, 2 (and report that k = 3 exceeds the budget).

Plus the Theorem 34 upper-bound pipeline sizes for ∩ → ≈ translation.
"""

import pytest

from repro.succinctness import (
    cap_chain,
    measure_cap_translation,
    minimal_dfa_size_for_phi_k,
    phi_k,
    phi_k_property,
    violation_nfa,
)
from repro.xpath import parse_node
from repro.xpath.measures import size


class TestPhiKFamily:
    @pytest.mark.parametrize("k", [1, 2, 3, 4, 5])
    def test_formula_side_quadratic(self, benchmark, record, k):
        formula = benchmark(phi_k, k)
        record("φ_k formula", {"k": k, "size": size(formula)})

    def test_quadratic_summary(self, benchmark, record):
        sizes = {k: size(phi_k(k)) for k in range(1, 7)}
        # Quadratic growth: size(2k)/size(k) bounded by ~4.
        assert sizes[6] / sizes[3] < 6
        benchmark(lambda: None)
        record("E9 |φ_k| (CoreXPath(∩), O(k²))", sizes)


class TestAutomatonSide:
    @pytest.mark.parametrize("k", [1, 2])
    def test_minimal_dfa(self, benchmark, record, k):
        nfa_states, dfa_states, _ = benchmark(minimal_dfa_size_for_phi_k, k)
        assert dfa_states >= 2 ** (2 ** k) / 2
        record("minimal DFA for the φ_k property", {
            "k": k,
            "violation_nfa_states": nfa_states,
            "min_dfa_states": dfa_states,
            "theory_lower_bound": 2 ** (2 ** k),
        })

    def test_separation_summary(self, benchmark, record):
        rows = {}
        for k in (1, 2):
            formula_size = size(phi_k(k))
            _, dfa_states, _ = minimal_dfa_size_for_phi_k(k)
            rows[k] = {
                "cap_formula": formula_size,
                "min_dfa": dfa_states,
                "ratio": round(dfa_states / formula_size, 2),
            }
        # The separation widens with k — the Theorem 35 shape.
        assert rows[2]["ratio"] > rows[1]["ratio"] * 3
        benchmark(lambda: None)
        record("E9 succinctness separation (k = 3 determinization exceeds "
               "the benchmark budget; NFA alone has "
               f"{violation_nfa(3).num_states} states)", rows)


class TestTheorem34Pipeline:
    @pytest.mark.parametrize("source", [
        "<down intersect down[p]>",
        "not <(down*[p]) intersect (down*[q])>",
    ])
    def test_cap_to_eq_sizes(self, benchmark, record, source):
        phi = parse_node(source)
        report = benchmark(measure_cap_translation, phi)
        record("Theorem 34 pipeline", report)

    def test_exponential_blowup_documented(self, benchmark, record):
        reports = {
            n: measure_cap_translation(
                parse_node(f"<{'/'.join(['down'] * n)} intersect down*>"))
            for n in (1, 2, 3)
        }
        growth = {n: r["output_size"] for n, r in reports.items()}
        assert growth[3] > growth[1]
        benchmark(lambda: None)
        record("E9 ∩→≈ output sizes", growth)
