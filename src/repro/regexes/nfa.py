"""Nondeterministic finite automata over arbitrary hashable symbols.

Used for EDTD content models (Proposition 6 converts each ``P(t)`` to an NFA
"by standard techniques"), for the Figure 2 algorithm's sibling-word checks,
and as the backbone of path automata.  The Thompson construction keeps the
automaton linear in the regex; ε-transitions are supported and can be
eliminated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Iterable, Sequence

from .ast import Alt, Concat, Empty, Epsilon, KleeneStar, Regex, Symbol

__all__ = ["NFA", "thompson_nfa"]

#: Marker for ε-transitions.
EPSILON = None


@dataclass
class NFA:
    """An NFA with integer states.  ``transitions`` maps
    ``(state, symbol)`` to a set of successor states; the symbol ``None``
    denotes ε."""

    num_states: int
    initial: frozenset[int]
    accepting: frozenset[int]
    transitions: dict[tuple[int, Hashable], frozenset[int]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for state in self.initial | self.accepting:
            if not 0 <= state < self.num_states:
                raise ValueError(f"state {state} out of range")

    # ------------------------------------------------------------- accessors

    def successors(self, state: int, symbol: Hashable) -> frozenset[int]:
        return self.transitions.get((state, symbol), frozenset())

    def alphabet(self) -> frozenset:
        """Symbols with at least one transition (ε excluded)."""
        return frozenset(sym for (_, sym) in self.transitions if sym is not EPSILON)

    def epsilon_closure(self, states: Iterable[int]) -> frozenset[int]:
        seen = set(states)
        frontier = list(seen)
        while frontier:
            state = frontier.pop()
            for nxt in self.successors(state, EPSILON):
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        return frozenset(seen)

    # ------------------------------------------------------------ operations

    def accepts(self, word: Sequence[Hashable]) -> bool:
        current = self.epsilon_closure(self.initial)
        for symbol in word:
            step: set[int] = set()
            for state in current:
                step |= self.successors(state, symbol)
            current = self.epsilon_closure(step)
            if not current:
                return False
        return bool(current & self.accepting)

    def is_empty(self) -> bool:
        """True iff the recognized language is empty."""
        seen = set(self.initial)
        frontier = list(seen)
        while frontier:
            state = frontier.pop()
            if state in self.accepting:
                return False
            for (source, _), targets in self.transitions.items():
                if source == state:
                    for target in targets:
                        if target not in seen:
                            seen.add(target)
                            frontier.append(target)
        return not (seen & self.accepting)

    def accepts_epsilon(self) -> bool:
        return bool(self.epsilon_closure(self.initial) & self.accepting)

    def without_epsilon(self) -> "NFA":
        """An equivalent NFA with no ε-transitions."""
        new_transitions: dict[tuple[int, Hashable], set[int]] = {}
        closures = {state: self.epsilon_closure((state,)) for state in range(self.num_states)}
        accepting = set()
        for state in range(self.num_states):
            reach = closures[state]
            if reach & self.accepting:
                accepting.add(state)
            for mid in reach:
                for (source, symbol), targets in self.transitions.items():
                    if source == mid and symbol is not EPSILON:
                        bucket = new_transitions.setdefault((state, symbol), set())
                        for target in targets:
                            bucket |= closures[target]
        return NFA(
            self.num_states,
            self.initial,
            frozenset(accepting),
            {key: frozenset(val) for key, val in new_transitions.items()},
        )

    def reversed(self) -> "NFA":
        """The NFA for the reversed language."""
        transitions: dict[tuple[int, Hashable], set[int]] = {}
        for (source, symbol), targets in self.transitions.items():
            for target in targets:
                transitions.setdefault((target, symbol), set()).add(source)
        return NFA(
            self.num_states,
            self.accepting,
            self.initial,
            {key: frozenset(val) for key, val in transitions.items()},
        )

    def product(self, other: "NFA") -> "NFA":
        """NFA for the intersection of the two languages (on ε-free inputs)."""
        left = self.without_epsilon()
        right = other.without_epsilon()

        def pack(a: int, b: int) -> int:
            return a * right.num_states + b

        transitions: dict[tuple[int, Hashable], set[int]] = {}
        for (ls, symbol), lts in left.transitions.items():
            for rs in range(right.num_states):
                rts = right.successors(rs, symbol)
                if not rts:
                    continue
                bucket = transitions.setdefault((pack(ls, rs), symbol), set())
                bucket.update(pack(lt, rt) for lt in lts for rt in rts)
        initial = frozenset(pack(a, b) for a in left.initial for b in right.initial)
        accepting = frozenset(
            pack(a, b) for a in left.accepting for b in right.accepting
        )
        return NFA(
            left.num_states * right.num_states,
            initial,
            accepting,
            {key: frozenset(val) for key, val in transitions.items()},
        )

    def renumbered(self, offset: int, total: int) -> "NFA":
        """This NFA with all states shifted by ``offset`` in a space of
        ``total`` states (helper for disjoint unions)."""
        return NFA(
            total,
            frozenset(s + offset for s in self.initial),
            frozenset(s + offset for s in self.accepting),
            {
                (source + offset, symbol): frozenset(t + offset for t in targets)
                for (source, symbol), targets in self.transitions.items()
            },
        )


def thompson_nfa(regex: Regex) -> NFA:
    """Thompson's construction: an ε-NFA with one initial and one accepting
    state, linear in the size of ``regex``."""
    transitions: dict[tuple[int, Hashable], set[int]] = {}
    counter = [0]

    def fresh() -> int:
        counter[0] += 1
        return counter[0] - 1

    def add(source: int, symbol: Hashable, target: int) -> None:
        transitions.setdefault((source, symbol), set()).add(target)

    def build(node: Regex) -> tuple[int, int]:
        start, end = fresh(), fresh()
        match node:
            case Empty():
                pass  # no transition: start never reaches end
            case Epsilon():
                add(start, EPSILON, end)
            case Symbol(name=name):
                add(start, name, end)
            case Concat(left=a, right=b):
                a_start, a_end = build(a)
                b_start, b_end = build(b)
                add(start, EPSILON, a_start)
                add(a_end, EPSILON, b_start)
                add(b_end, EPSILON, end)
            case Alt(left=a, right=b):
                a_start, a_end = build(a)
                b_start, b_end = build(b)
                add(start, EPSILON, a_start)
                add(start, EPSILON, b_start)
                add(a_end, EPSILON, end)
                add(b_end, EPSILON, end)
            case KleeneStar(inner=a):
                a_start, a_end = build(a)
                add(start, EPSILON, a_start)
                add(start, EPSILON, end)
                add(a_end, EPSILON, a_start)
                add(a_end, EPSILON, end)
            case _:
                raise TypeError(f"unknown regex {node!r}")
        return start, end

    start, end = build(regex)
    return NFA(
        counter[0],
        frozenset((start,)),
        frozenset((end,)),
        {key: frozenset(val) for key, val in transitions.items()},
    )
