"""Parser and printer for regular expressions over multi-character symbols.

Syntax (loosest-binding first)::

    alt    := concat ('|' concat)*
    concat := postfix postfix*            -- juxtaposition
    postfix := primary ('*' | '+' | '?')*
    primary := SYMBOL | 'eps' | 'empty' | '(' alt ')'

Symbols are identifiers ``[A-Za-z_][A-Za-z0-9_@#]*`` (so EDTD content models
like ``(section | para | image)+`` read naturally); ``eps`` and ``empty``
denote ε and ∅.
"""

from __future__ import annotations

import re

from .ast import (
    Alt,
    Concat,
    Empty,
    Epsilon,
    KleeneStar,
    Regex,
    Symbol,
    optional,
    plus,
)

__all__ = ["parse_regex", "regex_to_source", "RegexSyntaxError"]


class RegexSyntaxError(ValueError):
    """Raised on malformed regular-expression input."""


_TOKEN = re.compile(r"\s*(?:(?P<ident>[A-Za-z_][A-Za-z0-9_@#]*)|(?P<punct>[|*+?()]))")


def _tokenize(text: str) -> list[tuple[str, str]]:
    tokens: list[tuple[str, str]] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN.match(text, pos)
        if not match or match.end() == match.start():
            rest = text[pos:].strip()
            if not rest:
                break
            raise RegexSyntaxError(f"cannot tokenize at: {rest[:20]!r}")
        pos = match.end()
        if match.group("ident"):
            tokens.append(("ident", match.group("ident")))
        else:
            tokens.append(("punct", match.group("punct")))
    return tokens


def parse_regex(text: str) -> Regex:
    """Parse the textual syntax into a :class:`Regex`."""
    tokens = _tokenize(text)
    position = 0

    def peek():
        return tokens[position] if position < len(tokens) else None

    def alt() -> Regex:
        nonlocal position
        result = concat()
        while peek() == ("punct", "|"):
            position += 1
            result = Alt(result, concat())
        return result

    def concat() -> Regex:
        nonlocal position
        parts = [postfix()]
        while True:
            token = peek()
            if token is None or token in (("punct", "|"), ("punct", ")")):
                break
            parts.append(postfix())
        result = parts[0]
        for part in parts[1:]:
            result = Concat(result, part)
        return result

    def postfix() -> Regex:
        nonlocal position
        result = primary()
        while True:
            token = peek()
            if token == ("punct", "*"):
                position += 1
                result = KleeneStar(result)
            elif token == ("punct", "+"):
                position += 1
                result = plus(result)
            elif token == ("punct", "?"):
                position += 1
                result = optional(result)
            else:
                return result

    def primary() -> Regex:
        nonlocal position
        token = peek()
        if token is None:
            raise RegexSyntaxError("unexpected end of input")
        position += 1
        kind, value = token
        if kind == "ident":
            if value == "eps":
                return Epsilon()
            if value == "empty":
                return Empty()
            return Symbol(value)
        if value == "(":
            inner = alt()
            if peek() != ("punct", ")"):
                raise RegexSyntaxError("missing ')'")
            position += 1
            return inner
        raise RegexSyntaxError(f"unexpected token {value!r}")

    result = alt()
    if position != len(tokens):
        raise RegexSyntaxError(f"trailing input: {tokens[position:]!r}")
    return result


def regex_to_source(regex: Regex) -> str:
    """Render a regex in the parseable syntax."""
    # Precedence: alt(0) < concat(1) < postfix(2).
    def go(node: Regex, minimum: int) -> str:
        match node:
            case Empty():
                return "empty"
            case Epsilon():
                return "eps"
            case Symbol(name=n):
                return n
            case Concat(left=a, right=b):
                text = f"{go(a, 1)} {go(b, 2)}"
                return text if minimum <= 1 else f"({text})"
            case Alt(left=a, right=b):
                text = f"{go(a, 0)} | {go(b, 1)}"
                return text if minimum <= 0 else f"({text})"
            case KleeneStar(inner=a):
                return f"{go(a, 3)}*" if isinstance(a, (Symbol, Epsilon, Empty)) \
                    else f"({go(a, 0)})*"
        raise TypeError(f"unknown regex {node!r}")

    return go(regex, 0)
