"""Star-free expressions (proof of Theorem 30).

Star-free expressions are built from symbols by concatenation, union, and
*complement* (relative to Σ*)::

    r, s := a | (r s) | (r ∪ s) | −r

Their nonemptiness problem is non-elementary [Stockmeyer 1974], which is the
source of the paper's non-elementary lower bounds for CoreXPath(−) and
CoreXPath(for).  Language operations are realized via complete DFAs over the
expression's finite alphabet, so every operation is exact; the cost of the
complement chain (one determinization per nesting level) is precisely the
tower growth the benchmark ``test_table1_complement`` measures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from .ast import Symbol as RegexSymbol
from .dfa import DFA, determinize
from .nfa import thompson_nfa

__all__ = [
    "StarFree",
    "SFSymbol",
    "SFConcat",
    "SFUnion",
    "SFComplement",
    "starfree_size",
    "starfree_alphabet",
    "starfree_dfa",
    "starfree_min_dfa",
    "starfree_accepts",
    "starfree_nonempty",
    "starfree_witness",
]


class StarFree:
    """Base class of star-free expressions."""

    __slots__ = ()

    def __add__(self, other: "StarFree") -> "SFConcat":
        return SFConcat(self, other)

    def __or__(self, other: "StarFree") -> "SFUnion":
        return SFUnion(self, other)

    def __neg__(self) -> "SFComplement":
        return SFComplement(self)


@dataclass(frozen=True, slots=True)
class SFSymbol(StarFree):
    name: str


@dataclass(frozen=True, slots=True)
class SFConcat(StarFree):
    left: StarFree
    right: StarFree


@dataclass(frozen=True, slots=True)
class SFUnion(StarFree):
    left: StarFree
    right: StarFree


@dataclass(frozen=True, slots=True)
class SFComplement(StarFree):
    inner: StarFree


def starfree_size(expr: StarFree) -> int:
    match expr:
        case SFSymbol():
            return 1
        case SFConcat(left=a, right=b) | SFUnion(left=a, right=b):
            return 1 + starfree_size(a) + starfree_size(b)
        case SFComplement(inner=a):
            return 1 + starfree_size(a)
    raise TypeError(f"unknown star-free expression {expr!r}")


def starfree_alphabet(expr: StarFree) -> frozenset[str]:
    match expr:
        case SFSymbol(name=n):
            return frozenset({n})
        case SFConcat(left=a, right=b) | SFUnion(left=a, right=b):
            return starfree_alphabet(a) | starfree_alphabet(b)
        case SFComplement(inner=a):
            return starfree_alphabet(a)
    raise TypeError(f"unknown star-free expression {expr!r}")


def starfree_dfa(expr: StarFree, alphabet: frozenset[str] | None = None) -> DFA:
    """A complete DFA for ``expr``'s language over ``alphabet``.

    Complementation is relative to ``alphabet``* (Σ in Theorem 30's proof is
    the expression's own alphabet unless a larger one is supplied).  Each
    complement incurs one determinization — the non-elementary cost center.
    """
    if alphabet is None:
        alphabet = starfree_alphabet(expr)
    if not alphabet:
        raise ValueError("star-free expressions need a nonempty alphabet")

    def build(node: StarFree) -> DFA:
        match node:
            case SFSymbol(name=name):
                return determinize(thompson_nfa(RegexSymbol(name)), alphabet)
            case SFConcat(left=a, right=b):
                return _concat_dfa(build(a), build(b), alphabet)
            case SFUnion(left=a, right=b):
                return build(a).product(build(b), mode="or").minimize()
            case SFComplement(inner=a):
                return build(a).complement().minimize()
        raise TypeError(f"unknown star-free expression {node!r}")

    return build(expr)


def _concat_dfa(left: DFA, right: DFA, alphabet: frozenset[str]) -> DFA:
    """Concatenate two DFA languages (via an NFA, then re-determinize)."""
    from .nfa import EPSILON, NFA

    total = left.num_states + right.num_states
    transitions: dict[tuple[int, object], set[int]] = {}
    for state in range(left.num_states):
        for symbol, target in left.transitions[state].items():
            transitions.setdefault((state, symbol), set()).add(target)
    offset = left.num_states
    for state in range(right.num_states):
        for symbol, target in right.transitions[state].items():
            transitions.setdefault((state + offset, symbol), set()).add(target + offset)
    for state in left.accepting:
        transitions.setdefault((state, EPSILON), set()).add(right.initial + offset)
    nfa = NFA(
        total,
        frozenset((left.initial,)),
        frozenset(s + offset for s in right.accepting),
        {key: frozenset(val) for key, val in transitions.items()},
    )
    return determinize(nfa, alphabet).minimize()


def starfree_min_dfa(expr: StarFree, alphabet: frozenset[str] | None = None) -> DFA:
    """The minimal complete DFA for ``expr`` (size measurements of E4)."""
    return starfree_dfa(expr, alphabet).minimize()


def starfree_accepts(expr: StarFree, word: Sequence[str],
                     alphabet: frozenset[str] | None = None) -> bool:
    if alphabet is None:
        alphabet = starfree_alphabet(expr) | frozenset(word)
    return starfree_dfa(expr, alphabet).accepts(word)


def starfree_nonempty(expr: StarFree, alphabet: frozenset[str] | None = None) -> bool:
    """The (non-elementary) nonemptiness problem of Theorem 30's reduction."""
    return not starfree_dfa(expr, alphabet).is_empty()


def starfree_witness(expr: StarFree,
                     alphabet: frozenset[str] | None = None) -> list[str] | None:
    """A shortest word in the language, or None if empty."""
    return starfree_dfa(expr, alphabet).some_word()
