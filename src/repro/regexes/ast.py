"""Regular expressions over an arbitrary symbol alphabet.

EDTDs (Definition 2) assign a regular expression over abstract labels to each
abstract label, so symbols here are full label strings, not single
characters.  The AST is immutable and hashable; language operations live in
:mod:`repro.regexes.nfa` / :mod:`repro.regexes.dfa`.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "Regex",
    "Empty",
    "Epsilon",
    "Symbol",
    "Concat",
    "Alt",
    "KleeneStar",
    "concat_all",
    "alt_all",
    "plus",
    "optional",
    "regex_size",
    "symbols_of",
]


class Regex:
    """Base class.  Sugar: ``a + b`` concat, ``a | b`` alternation,
    ``a.star()``."""

    __slots__ = ()

    def __add__(self, other: "Regex") -> "Concat":
        return Concat(self, other)

    def __or__(self, other: "Regex") -> "Alt":
        return Alt(self, other)

    def star(self) -> "KleeneStar":
        return KleeneStar(self)


@dataclass(frozen=True, slots=True)
class Empty(Regex):
    """The empty language ∅."""


@dataclass(frozen=True, slots=True)
class Epsilon(Regex):
    """The language {ε}."""


@dataclass(frozen=True, slots=True)
class Symbol(Regex):
    """A single alphabet symbol (a full label string)."""

    name: str


@dataclass(frozen=True, slots=True)
class Concat(Regex):
    left: Regex
    right: Regex


@dataclass(frozen=True, slots=True)
class Alt(Regex):
    left: Regex
    right: Regex


@dataclass(frozen=True, slots=True)
class KleeneStar(Regex):
    inner: Regex


def concat_all(parts) -> Regex:
    """Concatenation of a sequence; empty sequence is ε."""
    parts = list(parts)
    if not parts:
        return Epsilon()
    result = parts[0]
    for part in parts[1:]:
        result = Concat(result, part)
    return result


def alt_all(parts) -> Regex:
    """Alternation of a sequence; empty sequence is ∅."""
    parts = list(parts)
    if not parts:
        return Empty()
    result = parts[0]
    for part in parts[1:]:
        result = Alt(result, part)
    return result


def plus(inner: Regex) -> Regex:
    """``r+ := r r*``."""
    return Concat(inner, KleeneStar(inner))


def optional(inner: Regex) -> Regex:
    """``r? := r | ε``."""
    return Alt(inner, Epsilon())


def regex_size(regex: Regex) -> int:
    """Number of nodes in the syntax tree (§2.3's size measure for EDTDs)."""
    match regex:
        case Empty() | Epsilon() | Symbol():
            return 1
        case Concat(left=a, right=b) | Alt(left=a, right=b):
            return 1 + regex_size(a) + regex_size(b)
        case KleeneStar(inner=a):
            return 1 + regex_size(a)
    raise TypeError(f"unknown regex {regex!r}")


def symbols_of(regex: Regex) -> frozenset[str]:
    """The set of symbols occurring in ``regex``."""
    match regex:
        case Empty() | Epsilon():
            return frozenset()
        case Symbol(name=n):
            return frozenset({n})
        case Concat(left=a, right=b) | Alt(left=a, right=b):
            return symbols_of(a) | symbols_of(b)
        case KleeneStar(inner=a):
            return symbols_of(a)
    raise TypeError(f"unknown regex {regex!r}")
