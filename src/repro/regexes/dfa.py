"""Deterministic finite automata: subset construction, minimization,
complementation, equivalence.

The DFA machinery backs the star-free-expression substrate (Theorem 30 needs
language complementation) and the succinctness measurements of §8 (minimal
DFA sizes witness the doubly-exponential lower bound of Theorem 35).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Sequence

from .nfa import NFA

__all__ = ["DFA", "determinize"]


@dataclass
class DFA:
    """A complete DFA over a fixed finite alphabet.

    ``transitions[state][symbol]`` is always defined (completeness); state 0
    is initial.
    """

    alphabet: frozenset
    num_states: int
    initial: int
    accepting: frozenset[int]
    transitions: dict[int, dict[Hashable, int]]

    def __post_init__(self) -> None:
        for state in range(self.num_states):
            row = self.transitions.get(state)
            if row is None or set(row) != set(self.alphabet):
                raise ValueError(f"DFA is not complete at state {state}")

    # ------------------------------------------------------------ operations

    def accepts(self, word: Sequence[Hashable]) -> bool:
        state = self.initial
        for symbol in word:
            if symbol not in self.alphabet:
                return False
            state = self.transitions[state][symbol]
        return state in self.accepting

    def complement(self) -> "DFA":
        """DFA for Σ* minus this language (alphabet-relative complement)."""
        return DFA(
            self.alphabet,
            self.num_states,
            self.initial,
            frozenset(range(self.num_states)) - self.accepting,
            self.transitions,
        )

    def product(self, other: "DFA", mode: str = "and") -> "DFA":
        """Product DFA; ``mode`` is ``'and'`` (intersection) or ``'or'``."""
        if self.alphabet != other.alphabet:
            raise ValueError("product requires identical alphabets")

        def pack(a: int, b: int) -> int:
            return a * other.num_states + b

        transitions: dict[int, dict[Hashable, int]] = {}
        for a in range(self.num_states):
            for b in range(other.num_states):
                row = {
                    symbol: pack(self.transitions[a][symbol],
                                 other.transitions[b][symbol])
                    for symbol in self.alphabet
                }
                transitions[pack(a, b)] = row
        if mode == "and":
            accepting = frozenset(
                pack(a, b)
                for a in self.accepting for b in other.accepting
            )
        elif mode == "or":
            accepting = frozenset(
                pack(a, b)
                for a in range(self.num_states) for b in range(other.num_states)
                if a in self.accepting or b in other.accepting
            )
        else:
            raise ValueError(f"unknown mode {mode!r}")
        return DFA(
            self.alphabet,
            self.num_states * other.num_states,
            pack(self.initial, other.initial),
            accepting,
            transitions,
        )

    def is_empty(self) -> bool:
        seen = {self.initial}
        frontier = [self.initial]
        while frontier:
            state = frontier.pop()
            if state in self.accepting:
                return False
            for target in self.transitions[state].values():
                if target not in seen:
                    seen.add(target)
                    frontier.append(target)
        return True

    def some_word(self) -> list | None:
        """A shortest accepted word, or None if the language is empty."""
        from collections import deque

        parent: dict[int, tuple[int, Hashable] | None] = {self.initial: None}
        queue = deque([self.initial])
        while queue:
            state = queue.popleft()
            if state in self.accepting:
                word: list = []
                cursor = state
                while parent[cursor] is not None:
                    prev, symbol = parent[cursor]  # type: ignore[misc]
                    word.append(symbol)
                    cursor = prev
                word.reverse()
                return word
            for symbol in sorted(self.alphabet, key=repr):
                target = self.transitions[state][symbol]
                if target not in parent:
                    parent[target] = (state, symbol)
                    queue.append(target)
        return None

    def equivalent(self, other: "DFA") -> bool:
        """Language equality (same alphabet required)."""
        base = self.product(other, mode="and")

        def unpack(packed: int) -> tuple[int, int]:
            return divmod(packed, other.num_states)

        xor_accepting = frozenset(
            packed for packed in range(base.num_states)
            if (unpack(packed)[0] in self.accepting)
            != (unpack(packed)[1] in other.accepting)
        )
        diff = DFA(self.alphabet, base.num_states, base.initial,
                   xor_accepting, base.transitions)
        return diff.is_empty()

    def minimize(self) -> "DFA":
        """Moore's partition-refinement minimization (reachable part only)."""
        # Restrict to reachable states first.
        reachable = {self.initial}
        frontier = [self.initial]
        while frontier:
            state = frontier.pop()
            for target in self.transitions[state].values():
                if target not in reachable:
                    reachable.add(target)
                    frontier.append(target)
        states = sorted(reachable)
        symbols = sorted(self.alphabet, key=repr)

        # Initial partition: accepting vs non-accepting.
        block_of = {
            state: (1 if state in self.accepting else 0) for state in states
        }
        while True:
            signatures: dict[tuple, int] = {}
            new_block_of: dict[int, int] = {}
            for state in states:
                signature = (
                    block_of[state],
                    tuple(block_of[self.transitions[state][symbol]] for symbol in symbols),
                )
                if signature not in signatures:
                    signatures[signature] = len(signatures)
                new_block_of[state] = signatures[signature]
            if len(signatures) == len(set(block_of.values())):
                block_of = new_block_of
                break
            block_of = new_block_of

        num_blocks = len(set(block_of.values()))
        transitions: dict[int, dict[Hashable, int]] = {b: {} for b in range(num_blocks)}
        for state in states:
            block = block_of[state]
            for symbol in symbols:
                transitions[block][symbol] = block_of[self.transitions[state][symbol]]
        accepting = frozenset(
            block_of[state] for state in states if state in self.accepting
        )
        return DFA(self.alphabet, num_blocks, block_of[self.initial],
                   accepting, transitions)


def determinize(nfa: NFA, alphabet: frozenset) -> DFA:
    """Subset construction, producing a complete DFA over ``alphabet``."""
    nfa = nfa.without_epsilon()
    start = frozenset(nfa.initial)
    index: dict[frozenset[int], int] = {start: 0}
    order: list[frozenset[int]] = [start]
    transitions: dict[int, dict[Hashable, int]] = {}
    position = 0
    while position < len(order):
        current = order[position]
        row: dict[Hashable, int] = {}
        for symbol in alphabet:
            step: set[int] = set()
            for state in current:
                step |= nfa.successors(state, symbol)
            target = frozenset(step)
            if target not in index:
                index[target] = len(order)
                order.append(target)
            row[symbol] = index[target]
        transitions[position] = row
        position += 1
    accepting = frozenset(
        idx for subset, idx in index.items() if subset & nfa.accepting
    )
    return DFA(frozenset(alphabet), len(order), 0, accepting, transitions)
