"""NFA → regular expression by state elimination (McNaughton–Yamada).

Lemma 33(2) converts a path automaton into an equivalent CoreXPath(*, ≈)
path expression "by a standard construction ... of size at most 2^{4m+3}"
[McNaughton & Yamada 1960; Ellul et al. 2004].  This module implements that
standard construction generically: it works for NFAs over *any* symbol type,
so :mod:`repro.automata.toexpr` can run it over the path-automaton alphabet
(axes and tests) directly.
"""

from __future__ import annotations

from typing import Hashable

from .ast import Alt, Concat, Empty, Epsilon, KleeneStar, Regex, Symbol
from .nfa import EPSILON, NFA

__all__ = ["nfa_to_regex", "eliminate_states"]


def _simplify_alt(left: Regex, right: Regex) -> Regex:
    if isinstance(left, Empty):
        return right
    if isinstance(right, Empty):
        return left
    if left == right:
        return left
    return Alt(left, right)


def _simplify_concat(left: Regex, right: Regex) -> Regex:
    if isinstance(left, Empty) or isinstance(right, Empty):
        return Empty()
    if isinstance(left, Epsilon):
        return right
    if isinstance(right, Epsilon):
        return left
    return Concat(left, right)


def _simplify_star(inner: Regex) -> Regex:
    if isinstance(inner, (Empty, Epsilon)):
        return Epsilon()
    if isinstance(inner, KleeneStar):
        return inner
    return KleeneStar(inner)


def eliminate_states(
    num_states: int,
    edges: dict[tuple[int, int], Regex],
    initial: int,
    final: int,
) -> Regex:
    """Eliminate all states except ``initial``/``final`` from a generalized
    NFA whose edges carry regexes, returning the regex of the language from
    ``initial`` to ``final``."""

    def edge(a: int, b: int) -> Regex:
        return edges.get((a, b), Empty())

    def set_edge(a: int, b: int, value: Regex) -> None:
        if isinstance(value, Empty):
            edges.pop((a, b), None)
        else:
            edges[(a, b)] = value

    middle = [s for s in range(num_states) if s not in (initial, final)]

    def degree(state: int) -> int:
        return sum(1 for pair in edges if state in pair)

    # Eliminate low-degree states first: keeps intermediate regexes smaller.
    for victim in sorted(middle, key=degree):
        loop = _simplify_star(edge(victim, victim))
        incoming = [(a, r) for (a, b), r in list(edges.items())
                    if b == victim and a != victim]
        outgoing = [(b, r) for (a, b), r in list(edges.items())
                    if a == victim and b != victim]
        for (a, _) in incoming:
            edges.pop((a, victim), None)
        for (b, _) in outgoing:
            edges.pop((victim, b), None)
        edges.pop((victim, victim), None)
        for a, r_in in incoming:
            for b, r_out in outgoing:
                bypass = _simplify_concat(_simplify_concat(r_in, loop), r_out)
                set_edge(a, b, _simplify_alt(edge(a, b), bypass))

    if initial == final:
        return _simplify_star(edge(initial, initial))
    loop_i = _simplify_star(edge(initial, initial))
    loop_f = _simplify_star(edge(final, final))
    forward = edge(initial, final)
    backward = edge(final, initial)
    # L = loop_i forward loop_f (backward loop_i forward loop_f)*
    step = _simplify_concat(_simplify_concat(loop_i, forward), loop_f)
    back = _simplify_concat(_simplify_concat(backward, loop_i),
                            _simplify_concat(forward, loop_f))
    return _simplify_concat(step, _simplify_star(back))


def nfa_to_regex(nfa: NFA) -> Regex:
    """A regular expression for ``nfa``'s language.  Symbols of the NFA must
    be strings (they become :class:`Symbol` leaves); ε-transitions become
    :class:`Epsilon` edges."""
    # Add a fresh initial and final state so elimination is uniform.
    total = nfa.num_states + 2
    new_initial = nfa.num_states
    new_final = nfa.num_states + 1
    edges: dict[tuple[int, int], Regex] = {}

    def join(a: int, b: int, value: Regex) -> None:
        existing = edges.get((a, b), Empty())
        edges[(a, b)] = _simplify_alt(existing, value)

    for (source, symbol), targets in nfa.transitions.items():
        for target in targets:
            if symbol is EPSILON:
                join(source, target, Epsilon())
            else:
                join(source, target, _symbol_leaf(symbol))
    for state in nfa.initial:
        join(new_initial, state, Epsilon())
    for state in nfa.accepting:
        join(state, new_final, Epsilon())
    return eliminate_states(total, edges, new_initial, new_final)


def _symbol_leaf(symbol: Hashable) -> Regex:
    if isinstance(symbol, str):
        return Symbol(symbol)
    raise TypeError(
        f"nfa_to_regex needs string symbols, got {symbol!r}; "
        "use eliminate_states directly for structured alphabets"
    )
