"""Regular-language substrate: regexes, NFAs, DFAs, star-free expressions."""

from .ast import (
    Regex,
    Empty,
    Epsilon,
    Symbol,
    Concat,
    Alt,
    KleeneStar,
    concat_all,
    alt_all,
    plus,
    optional,
    regex_size,
    symbols_of,
)
from .parser import parse_regex, regex_to_source, RegexSyntaxError
from .nfa import NFA, thompson_nfa, EPSILON
from .dfa import DFA, determinize
from .to_regex import nfa_to_regex, eliminate_states
from .starfree import (
    StarFree,
    SFSymbol,
    SFConcat,
    SFUnion,
    SFComplement,
    starfree_size,
    starfree_alphabet,
    starfree_dfa,
    starfree_min_dfa,
    starfree_accepts,
    starfree_nonempty,
    starfree_witness,
)

__all__ = [
    "Regex", "Empty", "Epsilon", "Symbol", "Concat", "Alt", "KleeneStar",
    "concat_all", "alt_all", "plus", "optional", "regex_size", "symbols_of",
    "parse_regex", "regex_to_source", "RegexSyntaxError",
    "NFA", "thompson_nfa", "EPSILON",
    "DFA", "determinize",
    "nfa_to_regex", "eliminate_states",
    "StarFree", "SFSymbol", "SFConcat", "SFUnion", "SFComplement",
    "starfree_size", "starfree_alphabet", "starfree_dfa", "starfree_min_dfa",
    "starfree_accepts", "starfree_nonempty", "starfree_witness",
]
