"""Multi-labeled XML trees and their encoding into standard trees (Lemma 25).

Section 6.1 of the paper generalizes XML trees so that each node carries a
*set* of labels.  Lemma 25 reduces satisfiability over multi-labeled trees to
satisfiability over standard trees: each multi-labeled node becomes an
``x``-marked node with one auxiliary leaf child per label it carries.

The formula-side transformation lives in
:func:`repro.lowerbounds.multilabel.encode_formula`; this module provides the
tree structure and the tree-side encoding/decoding.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from .tree import XMLTree

__all__ = ["MultiLabelTree", "REAL_NODE_MARKER", "encode_multilabel_tree"]

#: Label marking "real" document nodes in the Lemma 25 encoding.
REAL_NODE_MARKER = "x"


class MultiLabelTree:
    """A sibling-ordered tree whose nodes carry a *set* of labels.

    The structure mirrors :class:`~repro.trees.tree.XMLTree` but the labeling
    function maps each node to a frozenset of labels.
    """

    __slots__ = ("_skeleton", "_labelsets")

    def __init__(self, skeleton: XMLTree, labelsets: Sequence[Iterable[str]]):
        """``skeleton`` supplies the shape; ``labelsets[i]`` labels node ``i``.

        The skeleton's own labels are ignored.
        """
        if len(labelsets) != skeleton.size:
            raise ValueError("need exactly one label set per node")
        self._skeleton = skeleton
        self._labelsets = tuple(frozenset(ls) for ls in labelsets)

    @classmethod
    def build(cls, spec) -> "MultiLabelTree":
        """Build from nested ``(labels, [children...])`` where labels is iterable."""
        labelsets: list[frozenset[str]] = []

        def strip(node_spec):
            labels, kids = node_spec
            labelsets.append(frozenset(labels))
            return ("", [strip(kid) for kid in kids])

        skeleton = XMLTree.build(strip(spec))
        return cls(skeleton, labelsets)

    @property
    def skeleton(self) -> XMLTree:
        """The underlying unlabeled tree shape (an XMLTree with empty labels)."""
        return self._skeleton

    @property
    def size(self) -> int:
        return self._skeleton.size

    @property
    def nodes(self) -> range:
        return self._skeleton.nodes

    def labels(self, node: int) -> frozenset[str]:
        return self._labelsets[node]

    def has_label(self, node: int, label: str) -> bool:
        return label in self._labelsets[node]

    def children(self, node: int) -> tuple[int, ...]:
        return self._skeleton.children(node)

    def parent(self, node: int) -> int | None:
        return self._skeleton.parent(node)

    def alphabet(self) -> frozenset[str]:
        result: set[str] = set()
        for labelset in self._labelsets:
            result |= labelset
        return frozenset(result)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MultiLabelTree):
            return NotImplemented
        return self._skeleton == other._skeleton and self._labelsets == other._labelsets

    def __hash__(self) -> int:
        return hash((self._skeleton, self._labelsets))

    def __repr__(self) -> str:
        def spec(node: int):
            return (sorted(self._labelsets[node]),
                    [spec(kid) for kid in self._skeleton.children(node)])

        return f"MultiLabelTree({spec(0)!r})"


def encode_multilabel_tree(tree: MultiLabelTree, marker: str = REAL_NODE_MARKER) -> XMLTree:
    """Encode a multi-labeled tree as a standard XML tree (Lemma 25).

    Every node ``n`` of ``tree`` becomes a node labeled ``marker``; for each
    label ``p ∈ L(n)`` an auxiliary leaf child labeled ``p`` is appended
    after the encodings of ``n``'s real children (so sibling navigation
    among real nodes is undisturbed; cf. the Lemma 25 axioms emitted by
    :func:`repro.lowerbounds.multilabel.encode_formula`).
    """
    if marker in tree.alphabet():
        raise ValueError(f"marker label {marker!r} collides with a document label")

    def spec(node: int):
        aux = [(label, []) for label in sorted(tree.labels(node))]
        kids = [spec(kid) for kid in tree.children(node)]
        return (marker, kids + aux)

    return XMLTree.build(spec(0))
