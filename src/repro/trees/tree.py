"""XML trees: finite, sibling-ordered, node-labeled trees (Definition 1 of the paper).

An :class:`XMLTree` is the structure ``T = (N, R_down, R_right, L)``: a finite
rooted tree with an ordering on siblings and a label for every node.  Nodes
are integers ``0 .. size-1`` assigned in *document order* (preorder), so node
``0`` is always the root.  All navigation relations used by the paper's axes
(``child``, ``parent``, ``next-sibling``, ``previous-sibling``, ``first-child``
and their transitive closures) are answered from precomputed arrays.

Trees are immutable once constructed.  The canonical way to build one is from
a nested ``(label, [children...])`` structure::

    >>> t = XMLTree.build(("book", [("chapter", [("section", [])])]))
    >>> t.label(0), t.label(2)
    ('book', 'section')
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

#: A nested-tuple description of a tree: ``(label, [child, child, ...])``.
TreeSpec = tuple

__all__ = ["XMLTree", "TreeSpec"]


class XMLTree:
    """A finite sibling-ordered labeled tree with integer nodes in preorder.

    Attributes
    ----------
    size:
        Number of nodes.  Nodes are ``range(size)``.
    root:
        Always ``0``.
    """

    __slots__ = (
        "_labels",
        "_parent",
        "_children",
        "_next_sibling",
        "_prev_sibling",
        "_depth",
        "_subtree_end",
        "_hash",
    )

    def __init__(self, labels: Sequence[str], parents: Sequence[int | None]):
        """Construct from parallel arrays of labels and parent pointers.

        ``parents[0]`` must be ``None`` (the root); every other entry must point
        to an earlier node (preorder numbering).  Children of a node are ordered
        by their node id, which preorder numbering makes equal to sibling order.
        """
        if not labels:
            raise ValueError("an XML tree must have at least one node (the root)")
        if len(labels) != len(parents):
            raise ValueError("labels and parents must have the same length")
        if parents[0] is not None:
            raise ValueError("node 0 must be the root (parent None)")
        n = len(labels)
        children: list[list[int]] = [[] for _ in range(n)]
        depth = [0] * n
        for node in range(1, n):
            parent = parents[node]
            if parent is None or not 0 <= parent < node:
                raise ValueError(
                    f"node {node} must have a parent among earlier nodes, got {parent!r}"
                )
            children[parent].append(node)
            depth[node] = depth[parent] + 1
        # Preorder check: children must come in contiguous preorder blocks.  We
        # verify by recomputing the preorder and comparing.
        order: list[int] = []
        stack = [0]
        while stack:
            node = stack.pop()
            order.append(node)
            stack.extend(reversed(children[node]))
        if order != list(range(n)):
            raise ValueError("nodes are not numbered in preorder (document order)")

        next_sibling: list[int | None] = [None] * n
        prev_sibling: list[int | None] = [None] * n
        for kids in children:
            for left, right in zip(kids, kids[1:]):
                next_sibling[left] = right
                prev_sibling[right] = left
        subtree_end = [0] * n  # exclusive end of each node's preorder block
        for node in range(n - 1, -1, -1):
            subtree_end[node] = subtree_end[children[node][-1]] if children[node] else node + 1

        self._labels = tuple(labels)
        self._parent = tuple(parents)
        self._children = tuple(tuple(kids) for kids in children)
        self._next_sibling = tuple(next_sibling)
        self._prev_sibling = tuple(prev_sibling)
        self._depth = tuple(depth)
        self._subtree_end = tuple(subtree_end)
        self._hash = hash((self._labels, self._parent))

    # ------------------------------------------------------------------ build

    @classmethod
    def build(cls, spec: TreeSpec) -> "XMLTree":
        """Build a tree from a nested ``(label, [children...])`` structure.

        A bare label string is accepted as shorthand for a leaf, both at the
        top level and inside child lists.
        """
        labels: list[str] = []
        parents: list[int | None] = []

        def visit(node_spec, parent: int | None) -> None:
            if isinstance(node_spec, str):
                label, kids = node_spec, []
            else:
                label, kids = node_spec
            labels.append(label)
            parents.append(parent)
            me = len(labels) - 1
            for kid in kids:
                visit(kid, me)

        visit(spec, None)
        return cls(labels, parents)

    @classmethod
    def chain(cls, labels: Iterable[str]) -> "XMLTree":
        """Build a unary ("word") tree whose i-th node carries the i-th label."""
        labels = list(labels)
        if not labels:
            raise ValueError("a chain tree needs at least one label")
        parents: list[int | None] = [None] + list(range(len(labels) - 1))
        return cls(labels, parents)

    def to_spec(self, node: int = 0) -> TreeSpec:
        """Return the nested ``(label, [children...])`` structure of a subtree."""
        return (self._labels[node], [self.to_spec(child) for child in self._children[node]])

    # ------------------------------------------------------------- navigation

    @property
    def size(self) -> int:
        return len(self._labels)

    @property
    def root(self) -> int:
        return 0

    @property
    def nodes(self) -> range:
        return range(len(self._labels))

    def label(self, node: int) -> str:
        return self._labels[node]

    @property
    def labels(self) -> tuple[str, ...]:
        """Labels of all nodes, indexed by node id."""
        return self._labels

    def alphabet(self) -> frozenset[str]:
        """The set of labels that occur in this tree."""
        return frozenset(self._labels)

    def parent(self, node: int) -> int | None:
        return self._parent[node]

    def children(self, node: int) -> tuple[int, ...]:
        return self._children[node]

    def first_child(self, node: int) -> int | None:
        kids = self._children[node]
        return kids[0] if kids else None

    def next_sibling(self, node: int) -> int | None:
        return self._next_sibling[node]

    def prev_sibling(self, node: int) -> int | None:
        return self._prev_sibling[node]

    def depth(self, node: int) -> int:
        return self._depth[node]

    def height(self) -> int:
        """Length (in edges) of the longest root-to-leaf path."""
        return max(self._depth)

    def is_leaf(self, node: int) -> bool:
        return not self._children[node]

    def descendants(self, node: int) -> range:
        """All proper descendants of ``node`` (preorder-contiguous)."""
        return range(node + 1, self._subtree_end[node])

    def descendants_or_self(self, node: int) -> range:
        return range(node, self._subtree_end[node])

    def ancestors(self, node: int) -> Iterator[int]:
        """All proper ancestors of ``node``, nearest first."""
        parent = self._parent[node]
        while parent is not None:
            yield parent
            parent = self._parent[parent]

    def is_ancestor(self, ancestor: int, node: int) -> bool:
        """True iff ``ancestor`` is a proper ancestor of ``node``."""
        return ancestor < node < self._subtree_end[ancestor]

    def following_siblings(self, node: int) -> Iterator[int]:
        sibling = self._next_sibling[node]
        while sibling is not None:
            yield sibling
            sibling = self._next_sibling[sibling]

    def preceding_siblings(self, node: int) -> Iterator[int]:
        sibling = self._prev_sibling[node]
        while sibling is not None:
            yield sibling
            sibling = self._prev_sibling[sibling]

    def leaves(self) -> Iterator[int]:
        for node in self.nodes:
            if not self._children[node]:
                yield node

    def nodes_with_label(self, label: str) -> Iterator[int]:
        for node, node_label in enumerate(self._labels):
            if node_label == label:
                yield node

    # ------------------------------------------------------------- modifiers
    # (all return new trees; XMLTree itself is immutable)

    def relabel(self, mapping) -> "XMLTree":
        """Return a copy with each label ``p`` replaced by ``mapping(p)``.

        ``mapping`` may be a dict (labels absent from it are kept) or a callable.
        """
        if isinstance(mapping, dict):
            new_labels = [mapping.get(label, label) for label in self._labels]
        else:
            new_labels = [mapping(label) for label in self._labels]
        return XMLTree(new_labels, self._parent)

    def add_root(self, label: str) -> "XMLTree":
        """Return a new tree with a fresh ``label``-labeled root above this one."""
        labels = [label, *self._labels]
        parents: list[int | None] = [None, 0]
        parents += [p + 1 for p in self._parent[1:]]  # type: ignore[operator]
        return XMLTree(labels, parents)

    def drop_root(self) -> "XMLTree":
        """Inverse of :meth:`add_root`; requires the root to have one child."""
        if len(self._children[0]) != 1:
            raise ValueError("drop_root requires a root with exactly one child")
        labels = list(self._labels[1:])
        parents: list[int | None] = [None]
        parents += [p - 1 for p in self._parent[2:]]  # type: ignore[operator]
        return XMLTree(labels, parents)

    # ---------------------------------------------------------------- dunder

    def __len__(self) -> int:
        return len(self._labels)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, XMLTree):
            return NotImplemented
        return self._labels == other._labels and self._parent == other._parent

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"XMLTree({self.to_spec()!r})"
