"""XML tree substrate: Definition 1 structures, generation, serialization."""

from .tree import XMLTree, TreeSpec
from .multilabel import MultiLabelTree, encode_multilabel_tree, REAL_NODE_MARKER
from .generate import (
    all_tree_shapes,
    all_trees,
    count_trees,
    random_tree,
    random_labeled_chain,
)
from .serialize import to_xml, from_xml, to_indented

__all__ = [
    "XMLTree",
    "TreeSpec",
    "MultiLabelTree",
    "encode_multilabel_tree",
    "REAL_NODE_MARKER",
    "all_tree_shapes",
    "all_trees",
    "count_trees",
    "random_tree",
    "random_labeled_chain",
    "to_xml",
    "from_xml",
    "to_indented",
]
