"""Serialization of XML trees to and from a minimal XML syntax.

The paper abstracts XML documents to labeled sibling-ordered trees; this
module provides just enough XML-flavoured I/O to make examples and test
fixtures readable.  Only tags matter: attributes, text content, comments and
processing instructions are not part of the model and are rejected.
"""

from __future__ import annotations

import re

from .tree import XMLTree

__all__ = ["to_xml", "from_xml", "to_indented"]

_TOKEN = re.compile(r"<\s*(/?)\s*([A-Za-z_][\w.@#+-]*)\s*(/?)\s*>|(\S)")
_NAME_OK = re.compile(r"[A-Za-z_][\w.@#+-]*$")


def to_xml(tree: XMLTree) -> str:
    """Render a tree as a compact one-line XML string."""
    parts: list[str] = []

    def visit(node: int) -> None:
        label = tree.label(node)
        if not _NAME_OK.match(label):
            raise ValueError(f"label {label!r} is not serializable as an XML tag")
        kids = tree.children(node)
        if kids:
            parts.append(f"<{label}>")
            for kid in kids:
                visit(kid)
            parts.append(f"</{label}>")
        else:
            parts.append(f"<{label}/>")

    visit(tree.root)
    return "".join(parts)


def to_indented(tree: XMLTree, indent: str = "  ") -> str:
    """Render a tree as pretty-printed XML, one tag per line."""
    lines: list[str] = []

    def visit(node: int, level: int) -> None:
        label = tree.label(node)
        pad = indent * level
        kids = tree.children(node)
        if kids:
            lines.append(f"{pad}<{label}>")
            for kid in kids:
                visit(kid, level + 1)
            lines.append(f"{pad}</{label}>")
        else:
            lines.append(f"{pad}<{label}/>")

    visit(tree.root, 0)
    return "\n".join(lines)


def from_xml(text: str) -> XMLTree:
    """Parse a tag-only XML string back into an :class:`XMLTree`."""
    labels: list[str] = []
    parents: list[int | None] = []
    stack: list[int] = []
    saw_root = False

    for match in _TOKEN.finditer(text):
        if match.group(4) is not None:
            raise ValueError(f"unexpected character {match.group(4)!r} in XML input")
        closing, name, selfclosing = match.group(1), match.group(2), match.group(3)
        if closing:
            if not stack:
                raise ValueError(f"unmatched closing tag </{name}>")
            opened = stack.pop()
            if labels[opened] != name:
                raise ValueError(
                    f"mismatched tags: <{labels[opened]}> closed by </{name}>"
                )
            continue
        if saw_root and not stack:
            raise ValueError("multiple root elements")
        parent = stack[-1] if stack else None
        labels.append(name)
        parents.append(parent)
        saw_root = True
        if not selfclosing:
            stack.append(len(labels) - 1)

    if stack:
        raise ValueError(f"unclosed tag <{labels[stack[-1]]}>")
    if not labels:
        raise ValueError("empty document")
    return XMLTree(labels, parents)
