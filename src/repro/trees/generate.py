"""Generation and enumeration of XML trees.

Used by the bounded-model-search satisfiability engine
(:mod:`repro.analysis.engines`) and by randomized property tests.  The
exhaustive enumerator yields *every* sibling-ordered labeled tree with at most
``max_nodes`` nodes over a finite alphabet, which makes "unsatisfiable up to
size n" claims exact.
"""

from __future__ import annotations

import random
from typing import Iterator, Sequence

from .tree import XMLTree

__all__ = [
    "all_tree_shapes",
    "all_trees",
    "count_trees",
    "random_tree",
    "random_labeled_chain",
]


def all_tree_shapes(num_nodes: int) -> Iterator[tuple[int | None, ...]]:
    """Yield the parent arrays of all ordered rooted trees with ``num_nodes`` nodes.

    Nodes are numbered in preorder; there are Catalan(num_nodes - 1) shapes.
    """
    if num_nodes < 1:
        return

    def extend(parents: list[int | None], rightmost_path: list[int]) -> Iterator[tuple]:
        if len(parents) == num_nodes:
            yield tuple(parents)
            return
        # In a preorder construction the next node may attach to any node on
        # the rightmost path of the tree built so far.
        for index in range(len(rightmost_path)):
            parent = rightmost_path[index]
            node = len(parents)
            parents.append(parent)
            new_path = rightmost_path[: index + 1] + [node]
            yield from extend(parents, new_path)
            parents.pop()

    yield from extend([None], [0])


def all_trees(max_nodes: int, alphabet: Sequence[str]) -> Iterator[XMLTree]:
    """Yield every XML tree with ``1..max_nodes`` nodes over ``alphabet``.

    Trees are yielded in order of increasing node count, so the first witness
    found by a search over this stream is size-minimal.
    """
    alphabet = list(alphabet)
    if not alphabet:
        raise ValueError("alphabet must be nonempty")
    for num_nodes in range(1, max_nodes + 1):
        for parents in all_tree_shapes(num_nodes):
            yield from _label_all_ways(parents, alphabet)


def _label_all_ways(parents: tuple[int | None, ...], alphabet: list[str]) -> Iterator[XMLTree]:
    num_nodes = len(parents)
    labels = [alphabet[0]] * num_nodes

    def fill(position: int) -> Iterator[XMLTree]:
        if position == num_nodes:
            yield XMLTree(labels, parents)
            return
        for letter in alphabet:
            labels[position] = letter
            yield from fill(position + 1)

    yield from fill(0)


def count_trees(max_nodes: int, alphabet_size: int) -> int:
    """Number of trees :func:`all_trees` yields; useful for budgeting searches."""
    # Catalan(n-1) shapes with n nodes, alphabet_size^n labelings.
    total = 0
    catalan = 1  # Catalan(0)
    for n in range(1, max_nodes + 1):
        total += catalan * (alphabet_size ** n)
        catalan = catalan * 2 * (2 * n - 1) // (n + 1)  # Catalan(n)
    return total


def random_tree(
    rng: random.Random,
    max_nodes: int,
    alphabet: Sequence[str],
    branch_bias: float = 0.6,
) -> XMLTree:
    """Sample a random XML tree with at most ``max_nodes`` nodes.

    The shape is grown in preorder: each new node attaches to a random node on
    the current rightmost path (biased toward deeper attachment points by
    ``branch_bias``); labels are uniform over ``alphabet``.
    """
    alphabet = list(alphabet)
    num_nodes = rng.randint(1, max(1, max_nodes))
    parents: list[int | None] = [None]
    rightmost_path = [0]
    while len(parents) < num_nodes:
        if rng.random() < branch_bias:
            cut = len(rightmost_path)  # attach below the deepest node
        else:
            cut = rng.randint(1, len(rightmost_path))
        parent = rightmost_path[cut - 1]
        node = len(parents)
        parents.append(parent)
        rightmost_path = rightmost_path[:cut] + [node]
    labels = [rng.choice(alphabet) for _ in parents]
    return XMLTree(labels, parents)


def random_labeled_chain(rng: random.Random, length: int, alphabet: Sequence[str]) -> XMLTree:
    """Sample a unary tree ("word") of exactly ``length`` nodes."""
    if length < 1:
        raise ValueError("length must be >= 1")
    return XMLTree.chain(rng.choice(list(alphabet)) for _ in range(length))
