"""Persistent on-disk verdict cache for decision problems.

Repeated benchmark and CI runs re-decide the same containment and
satisfiability instances over and over; the :class:`VerdictCache` lets the
batch runner (and anything else that dispatches :class:`Problem`\\ s) skip
instances that were already solved under the same configuration.

Keys
----

A cache key must identify a problem *structurally* and survive across
processes.  In-process, the structural identity of an expression is its
:func:`repro.xpath.intern.intern_key`; but intern keys are dense integers
assigned in first-seen order, so they are not stable between runs.  The
cache therefore keys on the stable cross-process rendering of the same
identity: :func:`repro.xpath.to_source`, which round-trips through the
parser and is injective on ASTs.  The full key is a SHA-256 over a
canonical JSON payload of

* the problem kind,
* the source rendering of each input expression,
* a schema fingerprint (root type, content models, projection),
* the search bound (``max_nodes``) and the engine preference,
* the active rewrite-pipeline level (a verdict computed at ``--passes
  none`` must not serve a ``--passes full`` session and vice versa), and
* a cache schema version (bump it when verdict semantics change).

Because the key hashes the whole payload, version and pipeline-level
mismatches invalidate by construction: an entry written under another
configuration is simply never looked up.

The registered engine set is *not* part of the key (it was, through
schema v4): a conclusive verdict is a proof and stays valid no matter
which engines exist.  Instead every entry stores the
:func:`engine_set_fingerprint` it was computed under, and ``get`` treats
an entry from a different engine set as a miss only when its verdict is
*inconclusive* — a new engine (say, ``patterns``) may well turn
``no-witness-within-bound`` into a proof, so stale inconclusive answers
must be recomputed, while conclusive ones survive the ladder change.

Since cache schema v3, callers canonicalize problems through the rewrite
pipeline (:meth:`Problem.canonical`) before keying — the batch runner does
it once per problem — so syntactic variants of the same instance (operand
order, duplicated union members, redundant filters) collide onto one
entry instead of each missing cold.

Values
------

Entries store the full result — verdict, witness / counterexample trees
(as tag-only XML), bounds, work counters — so a cache hit reconstructs a
result equal to the one the engines produced.  Run-record ``stats`` are
*not* cached; they describe one concrete run, not the problem.  Each entry
is its own ``<digest>.json`` file written atomically (temp file +
``os.replace``), so concurrent writers — e.g. several batch coordinator
threads, or parallel CI jobs sharing a cache directory — never interleave
partial writes.  Corrupt or unreadable entries are treated as misses.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path

from ..analysis.problems import (
    ContainmentResult,
    Problem,
    ProblemKind,
    SatResult,
    Verdict,
)
from ..edtd import EDTD
from ..trees import from_xml, to_xml
from ..xpath import to_source

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "VerdictCache",
    "default_cache_dir",
    "engine_set_fingerprint",
    "problem_fingerprint",
]

#: Bumped to 2 when the automata (2ATA emptiness) engine landed: auto
#: dispatch verdicts for CoreXPath(*, ≈) instances went from inconclusive
#: bounded-search answers to conclusive ones.  Bumped to 3 when keys moved
#: to rewrite-pipeline canonical forms (syntactic variants of the same
#: problem now collide onto one entry, and the active pipeline level joined
#: the payload).  Bumped to 4 when the compiled-schema id
#: (:func:`repro.analysis.session.schema_id_of`) joined the payload: the
#: bitset kernel's batch-shared sessions key their memos on it, so cached
#: verdicts are pinned to the same compiled-schema identity.  Bumped to 5
#: when the ``patterns`` engine landed and the engine set moved out of the
#: key into the stored entry: conclusive verdicts now survive engine-ladder
#: changes while inconclusive ones are invalidated by comparing the stored
#: :func:`engine_set_fingerprint` at ``get`` time.  Bumped to 6 when the
#: compile-once :class:`~repro.edtd.compiled.CompiledSchema` landed: every
#: engine now consumes the per-schema artifact (partition, type frames,
#: reduction frames, kernel memos) keyed on the same ``schema_session``
#: id, so entries are pinned to verdicts produced under the shared-artifact
#: regime.
CACHE_SCHEMA_VERSION = 6

Result = SatResult | ContainmentResult


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR``, else ``$XDG_CACHE_HOME/repro``, else
    ``~/.cache/repro``."""
    override = os.environ.get("REPRO_CACHE_DIR")
    if override:
        return Path(override)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro"


def _edtd_fingerprint(edtd: EDTD | None) -> dict | None:
    if edtd is None:
        return None
    labels = sorted(edtd.abstract_labels)
    return {
        "root": edtd.root_type,
        # Regex nodes are frozen dataclasses; their reprs are canonical.
        "content": {label: repr(edtd.content[label]) for label in labels},
        "projection": {label: edtd.projection[label] for label in labels},
    }


def engine_set_fingerprint() -> str:
    """The sorted names of all registered engines, comma-joined.

    Stored on every cache entry (not in the key, since schema v5): an
    ``engine="auto"`` verdict that is merely *inconclusive* depends on
    which engines exist — a later, stronger ladder could do better — so
    ``get`` refuses to serve inconclusive entries across an engine-set
    change while conclusive proofs are served unconditionally.
    """
    from ..analysis.registry import default_registry

    return ",".join(default_registry().names())


def problem_fingerprint(problem: Problem) -> str:
    """The stable cache key of ``problem`` (a SHA-256 hex digest).

    The fingerprint hashes the problem *as given* — callers that want
    syntactic variants to collide (the batch runner, the engine registry)
    canonicalize first via :meth:`Problem.canonical`; the active pipeline
    level is part of the payload, so verdicts computed under different
    levels never serve each other.
    """
    from ..analysis.session import schema_id_of
    from ..xpath import passes

    payload = {
        "v": CACHE_SCHEMA_VERSION,
        "kind": problem.kind.value,
        "exprs": [to_source(expr) for expr in problem.expressions()],
        "schema": _edtd_fingerprint(problem.edtd),
        "schema_session": schema_id_of(*problem.expressions(),
                                       edtd=problem.edtd),
        "max_nodes": problem.max_nodes,
        "engine": problem.engine or "auto",
        "passes": passes.default_pipeline(),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


# ------------------------------------------------------- result round-trip


def encode_result(result: Result) -> dict:
    """A JSON-able rendering of a result; raises ``ValueError`` if a witness
    tree carries labels outside the XML-serializable alphabet."""
    data: dict = {
        "verdict": result.verdict.value,
        "explored_up_to": result.explored_up_to,
        "trees_checked": result.trees_checked,
    }
    if isinstance(result, SatResult):
        data["type"] = "sat"
        if result.witness is not None:
            data["witness"] = to_xml(result.witness)
            data["witness_node"] = result.witness_node
        return data
    data["type"] = "containment"
    if result.counterexample is not None:
        data["counterexample"] = to_xml(result.counterexample)
        data["pair"] = list(result.counterexample_pair)
    if result.per_direction is not None:
        data["per_direction"] = [
            encode_result(direction) if direction is not None else None
            for direction in result.per_direction
        ]
    return data


def decode_result(data: dict) -> Result:
    """Inverse of :func:`encode_result`."""
    verdict = Verdict(data["verdict"])
    explored = data.get("explored_up_to")
    checked = data.get("trees_checked", 0)
    if data["type"] == "sat":
        witness = data.get("witness")
        return SatResult(
            verdict,
            witness=from_xml(witness) if witness is not None else None,
            witness_node=data.get("witness_node"),
            explored_up_to=explored,
            trees_checked=checked,
        )
    counterexample = data.get("counterexample")
    pair = data.get("pair")
    per_direction = None
    if data.get("per_direction") is not None:
        decoded = [
            decode_result(direction) if direction is not None else None
            for direction in data["per_direction"]
        ]
        per_direction = (decoded[0], decoded[1])
    assert isinstance(per_direction, tuple) or per_direction is None
    return ContainmentResult(
        verdict,
        counterexample=(from_xml(counterexample)
                        if counterexample is not None else None),
        counterexample_pair=tuple(pair) if pair is not None else None,
        explored_up_to=explored,
        trees_checked=checked,
        per_direction=per_direction,  # type: ignore[arg-type]
    )


# ----------------------------------------------------------------- the cache


class VerdictCache:
    """On-disk verdict store with an in-memory read-through layer.

    Thread-safe for the batch runner's usage pattern: ``get``/``put`` from
    several coordinator threads.  The in-memory dict relies on CPython's
    atomic dict operations; disk writes are atomic renames.
    """

    def __init__(self, directory: str | Path | None = None):
        self.directory = Path(directory) if directory is not None \
            else default_cache_dir()
        self._memory: dict[str, dict] = {}
        self.hits = 0
        self.misses = 0
        self.stores = 0

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    def get(self, problem: Problem) -> Result | None:
        """The cached result of ``problem``, or ``None`` on a miss."""
        key = problem_fingerprint(problem)
        data = self._memory.get(key)
        if data is None:
            try:
                data = json.loads(self._path(key).read_text(encoding="utf-8"))
            except (OSError, ValueError):
                data = None
        if data is None:
            self.misses += 1
            return None
        try:
            result = decode_result(data)
        except (KeyError, TypeError, ValueError, IndexError):
            # Corrupt or incompatible entry: treat as a miss (the next put
            # overwrites it).
            self.misses += 1
            return None
        if result.verdict is Verdict.NO_WITNESS_WITHIN_BOUND \
                and data.get("engines") != engine_set_fingerprint():
            # An inconclusive verdict computed under a different engine
            # ladder: today's ladder might prove it, so recompute.
            # Conclusive entries are proofs and served regardless.
            self.misses += 1
            return None
        self._memory[key] = data
        self.hits += 1
        return result

    def put(self, problem: Problem, result: Result) -> bool:
        """Store ``result`` under ``problem``'s key; returns False when the
        result cannot be serialized (exotic witness labels)."""
        if problem.kind is ProblemKind.SATISFIABILITY \
                and not isinstance(result, SatResult):
            raise TypeError("satisfiability problems cache SatResults")
        key = problem_fingerprint(problem)
        try:
            data = encode_result(result)
        except ValueError:
            return False
        # The engine ladder the verdict was computed under; ``get`` uses it
        # to refuse stale *inconclusive* entries (see module docstring).
        data["engines"] = engine_set_fingerprint()
        self._memory[key] = data
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    json.dump(data, handle, sort_keys=True)
                os.replace(tmp, self._path(key))
            except BaseException:
                os.unlink(tmp)
                raise
        except OSError:
            # A read-only or full cache directory degrades to memory-only.
            return False
        self.stores += 1
        return True

    def info(self) -> dict:
        """Hit/miss/store counters plus the backing directory."""
        return {
            "directory": str(self.directory),
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
        }
