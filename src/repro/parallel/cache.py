"""Persistent verdict cache: a sharded on-disk store behind an LRU tier.

Repeated benchmark, CI, and *server* runs re-decide the same containment
and satisfiability instances over and over; the :class:`VerdictCache` lets
the batch runner, the resident :class:`~repro.parallel.runner
.ExecutorService`, and the ``repro serve`` daemon skip instances that were
already solved under the same configuration.

Keys
----

A cache key must identify a problem *structurally* and survive across
processes.  In-process, the structural identity of an expression is its
:func:`repro.xpath.intern.intern_key`; but intern keys are dense integers
assigned in first-seen order, so they are not stable between runs.  The
cache therefore keys on the stable cross-process rendering of the same
identity: :func:`repro.xpath.to_source`, which round-trips through the
parser and is injective on ASTs.  The full key is a SHA-256 over a
canonical JSON payload of

* the problem kind,
* the source rendering of each input expression,
* a schema fingerprint (root type, content models, projection),
* the search bound (``max_nodes``) and the engine preference,
* the active rewrite-pipeline level (a verdict computed at ``--passes
  none`` must not serve a ``--passes full`` session and vice versa), and
* a cache schema version (bump it when verdict semantics change).

Because the key hashes the whole payload, version and pipeline-level
mismatches invalidate by construction: an entry written under another
configuration is simply never looked up.

The registered engine set is *not* part of the key (it was, through
schema v4): a conclusive verdict is a proof and stays valid no matter
which engines exist.  Instead every entry stores the
:func:`engine_set_fingerprint` it was computed under, and ``get`` treats
an entry from a different engine set as a miss only when its verdict is
*inconclusive* — a new engine (say, ``patterns``) may well turn
``no-witness-within-bound`` into a proof, so stale inconclusive answers
must be recomputed, while conclusive ones survive the ladder change.

Since cache schema v3, callers canonicalize problems through the rewrite
pipeline (:meth:`Problem.canonical`) before keying — the batch runner does
it once per problem — so syntactic variants of the same instance (operand
order, duplicated union members, redundant filters) collide onto one
entry instead of each missing cold.

Tiers
-----

The cache is two tiers deep:

* **Memory** — a bounded LRU dict (``memory_entries``) in front of the
  disk; the hit path of a warm key never touches the filesystem.  This is
  the tier a long-lived daemon serves most requests from.
* **Disk** — entries live in :data:`DEFAULT_SHARDS` subdirectory *shards*
  (``<dir>/<xx>/<digest>.json``, shard = digest prefix mod shard count) so
  concurrent writers spread their directory traffic and per-shard file
  locks (``fcntl.flock`` on ``<shard>/.lock``) serialize writers on the
  same shard without a global lock.  Legacy flat layouts (every
  ``<digest>.json`` directly in the cache directory, PR 3 through PR 9)
  are migrated into shards once, on first disk access.

Probes and stores bump both plain attributes (``mem_hits``,
``disk_hits``, ``misses``, ``stores``, ``evicted``, ``corrupt``) and the
``cache.{mem_hit,disk_hit,miss,evicted,corrupt}`` obs counters (no-ops
outside a recording).

Values
------

Entries store the full result — verdict, witness / counterexample trees
(as tag-only XML), bounds, work counters — so a cache hit reconstructs a
result equal to the one the engines produced.  Run-record ``stats`` are
*not* cached; they describe one concrete run, not the problem.  Each entry
is its own ``<digest>.json`` file written atomically (temp file +
``os.replace``), so concurrent writers — batch coordinator threads,
parallel CI jobs, a daemon and a CLI sharing one cache directory — never
interleave partial writes.  Corrupt or truncated entries (bad JSON, or
JSON that no longer decodes to a result) are counted, deleted, and
treated as misses — the next ``put`` overwrites them; they can never
raise on the hit path.

The disk tier is optionally *bounded*: with ``max_entries`` and/or
``max_bytes`` set, every store garbage-collects oldest-mtime entries
until the cache fits again; ``repro cache gc`` runs the same collection
one-shot from the command line.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import threading
from collections import OrderedDict
from contextlib import contextmanager
from pathlib import Path

try:  # POSIX; the lock degrades to best-effort elsewhere
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]

from .. import obs
from ..analysis.problems import (
    ContainmentResult,
    Problem,
    ProblemKind,
    SatResult,
    Verdict,
)
from ..edtd import EDTD
from ..trees import from_xml, to_xml
from ..xpath import to_source

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "DEFAULT_MEMORY_ENTRIES",
    "DEFAULT_SHARDS",
    "VerdictCache",
    "default_cache_dir",
    "engine_set_fingerprint",
    "problem_fingerprint",
]

#: Bumped to 2 when the automata (2ATA emptiness) engine landed: auto
#: dispatch verdicts for CoreXPath(*, ≈) instances went from inconclusive
#: bounded-search answers to conclusive ones.  Bumped to 3 when keys moved
#: to rewrite-pipeline canonical forms (syntactic variants of the same
#: problem now collide onto one entry, and the active pipeline level joined
#: the payload).  Bumped to 4 when the compiled-schema id
#: (:func:`repro.analysis.session.schema_id_of`) joined the payload: the
#: bitset kernel's batch-shared sessions key their memos on it, so cached
#: verdicts are pinned to the same compiled-schema identity.  Bumped to 5
#: when the ``patterns`` engine landed and the engine set moved out of the
#: key into the stored entry: conclusive verdicts now survive engine-ladder
#: changes while inconclusive ones are invalidated by comparing the stored
#: :func:`engine_set_fingerprint` at ``get`` time.  Bumped to 6 when the
#: compile-once :class:`~repro.edtd.compiled.CompiledSchema` landed: every
#: engine now consumes the per-schema artifact (partition, type frames,
#: reduction frames, kernel memos) keyed on the same ``schema_session``
#: id, so entries are pinned to verdicts produced under the shared-artifact
#: regime.  The sharded disk layout did NOT bump the version: the key
#: scheme is unchanged, only where an entry's file lives moved (and the
#: one-shot migration relocates legacy entries).
CACHE_SCHEMA_VERSION = 6

#: Disk shards: entry files live under ``<dir>/<shard>/``, shard =
#: ``digest prefix mod DEFAULT_SHARDS`` rendered as two hex digits.
DEFAULT_SHARDS = 16

#: Bound of the in-memory LRU tier (entries, not bytes: a decoded entry is
#: a small dict; 4096 of them are a few MB).
DEFAULT_MEMORY_ENTRIES = 4096

Result = SatResult | ContainmentResult


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR``, else ``$XDG_CACHE_HOME/repro``, else
    ``~/.cache/repro``."""
    override = os.environ.get("REPRO_CACHE_DIR")
    if override:
        return Path(override)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro"


def _edtd_fingerprint(edtd: EDTD | None) -> dict | None:
    if edtd is None:
        return None
    labels = sorted(edtd.abstract_labels)
    return {
        "root": edtd.root_type,
        # Regex nodes are frozen dataclasses; their reprs are canonical.
        "content": {label: repr(edtd.content[label]) for label in labels},
        "projection": {label: edtd.projection[label] for label in labels},
    }


def engine_set_fingerprint() -> str:
    """The sorted names of all registered engines, comma-joined.

    Stored on every cache entry (not in the key, since schema v5): an
    ``engine="auto"`` verdict that is merely *inconclusive* depends on
    which engines exist — a later, stronger ladder could do better — so
    ``get`` refuses to serve inconclusive entries across an engine-set
    change while conclusive proofs are served unconditionally.
    """
    from ..analysis.registry import default_registry

    return ",".join(default_registry().names())


def problem_fingerprint(problem: Problem) -> str:
    """The stable cache key of ``problem`` (a SHA-256 hex digest).

    The fingerprint hashes the problem *as given* — callers that want
    syntactic variants to collide (the batch runner, the engine registry)
    canonicalize first via :meth:`Problem.canonical`; the active pipeline
    level is part of the payload, so verdicts computed under different
    levels never serve each other.
    """
    from ..analysis.session import schema_id_of
    from ..xpath import passes

    payload = {
        "v": CACHE_SCHEMA_VERSION,
        "kind": problem.kind.value,
        "exprs": [to_source(expr) for expr in problem.expressions()],
        "schema": _edtd_fingerprint(problem.edtd),
        "schema_session": schema_id_of(*problem.expressions(),
                                       edtd=problem.edtd),
        "max_nodes": problem.max_nodes,
        "engine": problem.engine or "auto",
        "passes": passes.default_pipeline(),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


# ------------------------------------------------------- result round-trip


def encode_result(result: Result) -> dict:
    """A JSON-able rendering of a result; raises ``ValueError`` if a witness
    tree carries labels outside the XML-serializable alphabet."""
    data: dict = {
        "verdict": result.verdict.value,
        "explored_up_to": result.explored_up_to,
        "trees_checked": result.trees_checked,
    }
    if isinstance(result, SatResult):
        data["type"] = "sat"
        if result.witness is not None:
            data["witness"] = to_xml(result.witness)
            data["witness_node"] = result.witness_node
        return data
    data["type"] = "containment"
    if result.counterexample is not None:
        data["counterexample"] = to_xml(result.counterexample)
        data["pair"] = list(result.counterexample_pair)
    if result.per_direction is not None:
        data["per_direction"] = [
            encode_result(direction) if direction is not None else None
            for direction in result.per_direction
        ]
    return data


def decode_result(data: dict) -> Result:
    """Inverse of :func:`encode_result`."""
    verdict = Verdict(data["verdict"])
    explored = data.get("explored_up_to")
    checked = data.get("trees_checked", 0)
    if data["type"] == "sat":
        witness = data.get("witness")
        return SatResult(
            verdict,
            witness=from_xml(witness) if witness is not None else None,
            witness_node=data.get("witness_node"),
            explored_up_to=explored,
            trees_checked=checked,
        )
    counterexample = data.get("counterexample")
    pair = data.get("pair")
    per_direction = None
    if data.get("per_direction") is not None:
        decoded = [
            decode_result(direction) if direction is not None else None
            for direction in data["per_direction"]
        ]
        per_direction = (decoded[0], decoded[1])
    assert isinstance(per_direction, tuple) or per_direction is None
    return ContainmentResult(
        verdict,
        counterexample=(from_xml(counterexample)
                        if counterexample is not None else None),
        counterexample_pair=tuple(pair) if pair is not None else None,
        explored_up_to=explored,
        trees_checked=checked,
        per_direction=per_direction,  # type: ignore[arg-type]
    )


# ----------------------------------------------------------------- the cache


class VerdictCache:
    """Two-tier verdict store: bounded LRU memory in front of sharded disk.

    Thread-safe for every in-process usage pattern (batch coordinator
    threads, the daemon's request threads) and process-safe for shared
    cache directories (atomic renames + per-shard ``flock``).

    Parameters:

    * ``directory`` — disk tier root (default: :func:`default_cache_dir`).
    * ``shards`` — subdirectory shard count (default
      :data:`DEFAULT_SHARDS`); existing directories may be opened with any
      count, keys land in different shards but lookups stay correct
      because the shard of a key is recomputed, never stored.
    * ``memory_entries`` — LRU memory-tier bound (0 disables the tier).
    * ``max_entries`` / ``max_bytes`` — disk-tier bounds; when set, every
      store garbage-collects oldest-mtime entries until the bound holds
      (see :meth:`gc`).  ``None`` (the default) leaves the disk unbounded.
    """

    def __init__(self, directory: str | Path | None = None, *,
                 shards: int = DEFAULT_SHARDS,
                 memory_entries: int = DEFAULT_MEMORY_ENTRIES,
                 max_entries: int | None = None,
                 max_bytes: int | None = None):
        if shards < 1:
            raise ValueError("shards must be >= 1")
        if memory_entries < 0:
            raise ValueError("memory_entries must be >= 0")
        self.directory = Path(directory) if directory is not None \
            else default_cache_dir()
        self.shards = shards
        self.memory_entries = memory_entries
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self._memory: "OrderedDict[str, dict]" = OrderedDict()
        self._lock = threading.Lock()
        self._migrated = False
        self.mem_hits = 0
        self.disk_hits = 0
        self.misses = 0
        self.stores = 0
        self.evicted = 0
        self.corrupt = 0
        self.gc_removed = 0

    # ------------------------------------------------------------- layout

    @property
    def hits(self) -> int:
        """Total hits across both tiers (memory + disk)."""
        return self.mem_hits + self.disk_hits

    def _shard_dir(self, key: str) -> Path:
        return self.directory / f"{int(key[:8], 16) % self.shards:02x}"

    def _path(self, key: str) -> Path:
        return self._shard_dir(key) / f"{key}.json"

    @contextmanager
    def _shard_lock(self, shard_dir: Path):
        """Exclusive advisory lock on one shard (held for writes, GC, and
        migration; reads need no lock — entry files appear atomically)."""
        shard_dir.mkdir(parents=True, exist_ok=True)
        if fcntl is None:  # pragma: no cover - non-POSIX platforms
            yield
            return
        with open(shard_dir / ".lock", "a+b") as handle:
            fcntl.flock(handle, fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(handle, fcntl.LOCK_UN)

    def _ensure_migrated(self) -> None:
        """One-shot migration of a legacy flat layout (PR 3 … PR 9 wrote
        ``<digest>.json`` directly into the cache directory) into shards.

        Runs at most once per cache instance, before the first disk
        access; racing processes are safe because each file moves by
        ``os.replace`` under its target shard's lock and a loser's missing
        source is simply skipped.
        """
        if self._migrated:
            return
        with self._lock:
            if self._migrated:
                return
            self._migrated = True
        try:
            legacy = [path for path in self.directory.glob("*.json")
                      if path.is_file()]
        except OSError:
            return
        moved = 0
        for path in legacy:
            key = path.stem
            try:
                int(key[:8], 16)
            except ValueError:
                continue  # not a digest-named entry; leave it alone
            shard_dir = self._shard_dir(key)
            try:
                with self._shard_lock(shard_dir):
                    if path.exists():
                        os.replace(path, shard_dir / path.name)
                        moved += 1
            except OSError:
                continue  # read-only directory, racing unlink, ...
        if moved:
            obs.count("cache.migrated", moved)

    # ------------------------------------------------------------- probes

    def _memory_get(self, key: str) -> dict | None:
        if self.memory_entries == 0:
            return None
        with self._lock:
            data = self._memory.get(key)
            if data is not None:
                self._memory.move_to_end(key)
            return data

    def _memory_put(self, key: str, data: dict) -> None:
        if self.memory_entries == 0:
            return
        with self._lock:
            self._memory[key] = data
            self._memory.move_to_end(key)
            while len(self._memory) > self.memory_entries:
                self._memory.popitem(last=False)
                self.evicted += 1
                obs.count("cache.evicted")

    def _memory_drop(self, key: str) -> None:
        with self._lock:
            self._memory.pop(key, None)

    def _served(self, data: dict, key: str) -> Result | None:
        """Decode + engine-set-validate one entry; ``None`` refuses it."""
        try:
            result = decode_result(data)
        except (KeyError, TypeError, ValueError, IndexError):
            # Truncated or schema-incompatible entry: count it, drop it
            # from both tiers, and let the next put overwrite the file.
            self.corrupt += 1
            obs.count("cache.corrupt")
            self._memory_drop(key)
            try:
                self._path(key).unlink()
            except OSError:
                pass
            return None
        if result.verdict is Verdict.NO_WITNESS_WITHIN_BOUND \
                and data.get("engines") != engine_set_fingerprint():
            # An inconclusive verdict computed under a different engine
            # ladder: today's ladder might prove it, so recompute.
            # Conclusive entries are proofs and served regardless.
            self._memory_drop(key)
            return None
        return result

    def get(self, problem: Problem) -> Result | None:
        """The cached result of ``problem``, or ``None`` on a miss."""
        key = problem_fingerprint(problem)
        data = self._memory_get(key)
        if data is not None:
            result = self._served(data, key)
            if result is not None:
                self.mem_hits += 1
                obs.count("cache.mem_hit")
                return result
            self.misses += 1
            obs.count("cache.miss")
            return None
        self._ensure_migrated()
        try:
            text = self._path(key).read_text(encoding="utf-8")
        except OSError:
            self.misses += 1
            obs.count("cache.miss")
            return None
        try:
            data = json.loads(text)
            if not isinstance(data, dict):
                raise ValueError("entry is not a JSON object")
        except ValueError:
            # Bad JSON on disk (truncated write from a pre-atomic-rename
            # era, disk corruption, a stray hand-edited file).
            self.corrupt += 1
            obs.count("cache.corrupt")
            try:
                self._path(key).unlink()
            except OSError:
                pass
            self.misses += 1
            obs.count("cache.miss")
            return None
        result = self._served(data, key)
        if result is None:
            self.misses += 1
            obs.count("cache.miss")
            return None
        self._memory_put(key, data)
        self.disk_hits += 1
        obs.count("cache.disk_hit")
        return result

    # ------------------------------------------------------------- stores

    def put(self, problem: Problem, result: Result) -> bool:
        """Store ``result`` under ``problem``'s key; returns False when the
        result cannot be serialized (exotic witness labels) or the disk
        tier is unwritable (the memory tier still serves it)."""
        if problem.kind is ProblemKind.SATISFIABILITY \
                and not isinstance(result, SatResult):
            raise TypeError("satisfiability problems cache SatResults")
        key = problem_fingerprint(problem)
        try:
            data = encode_result(result)
        except ValueError:
            return False
        # The engine ladder the verdict was computed under; ``get`` uses it
        # to refuse stale *inconclusive* entries (see module docstring).
        data["engines"] = engine_set_fingerprint()
        self._memory_put(key, data)
        self._ensure_migrated()
        shard_dir = self._shard_dir(key)
        try:
            with self._shard_lock(shard_dir):
                fd, tmp = tempfile.mkstemp(dir=shard_dir, suffix=".tmp")
                try:
                    with os.fdopen(fd, "w", encoding="utf-8") as handle:
                        json.dump(data, handle, sort_keys=True)
                    os.replace(tmp, self._path(key))
                except BaseException:
                    os.unlink(tmp)
                    raise
        except OSError:
            # A read-only or full cache directory degrades to memory-only.
            return False
        self.stores += 1
        obs.count("cache.store")
        if self.max_entries is not None or self.max_bytes is not None:
            self.gc()
        return True

    # ----------------------------------------------------------------- gc

    def _disk_entries(self) -> list[tuple[float, int, Path]]:
        """Every entry file on disk as ``(mtime, size, path)`` — shards
        plus any not-yet-migrated flat stragglers."""
        entries: list[tuple[float, int, Path]] = []
        roots = [self.directory]
        try:
            roots.extend(child for child in self.directory.iterdir()
                         if child.is_dir())
        except OSError:
            return entries
        for root in roots:
            try:
                for path in root.glob("*.json"):
                    try:
                        stat = path.stat()
                    except OSError:
                        continue
                    entries.append((stat.st_mtime, stat.st_size, path))
            except OSError:
                continue
        return entries

    def gc(self, max_entries: int | None = None,
           max_bytes: int | None = None) -> dict:
        """Garbage-collect the disk tier down to the given bounds
        (defaulting to the cache's own ``max_entries``/``max_bytes``):
        oldest-mtime entries are deleted first until both bounds hold.

        Returns a summary dict (``scanned``/``removed``/``bytes_removed``/
        ``entries``/``bytes``).  A cache with no bounds at all is a no-op
        scan.  Deletions take the owning shard's lock; a concurrently
        re-written entry whose file vanished under us is skipped.
        """
        if max_entries is None:
            max_entries = self.max_entries
        if max_bytes is None:
            max_bytes = self.max_bytes
        self._ensure_migrated()
        entries = self._disk_entries()
        total_bytes = sum(size for _, size, _ in entries)
        removed = 0
        bytes_removed = 0
        if max_entries is not None or max_bytes is not None:
            entries.sort()  # oldest mtime first
            index = 0
            while index < len(entries) and (
                    (max_entries is not None
                     and len(entries) - removed > max_entries)
                    or (max_bytes is not None
                        and total_bytes - bytes_removed > max_bytes)):
                _, size, path = entries[index]
                index += 1
                try:
                    with self._shard_lock(path.parent):
                        path.unlink()
                except OSError:
                    continue
                removed += 1
                bytes_removed += size
        if removed:
            self.gc_removed += removed
            obs.count("cache.gc_removed", removed)
        return {
            "scanned": len(entries),
            "removed": removed,
            "bytes_removed": bytes_removed,
            "entries": len(entries) - removed,
            "bytes": total_bytes - bytes_removed,
        }

    # -------------------------------------------------------------- info

    def info(self) -> dict:
        """Tiered hit/miss/store counters plus the backing directory."""
        with self._lock:
            memory_len = len(self._memory)
        return {
            "directory": str(self.directory),
            "shards": self.shards,
            "hits": self.hits,
            "mem_hits": self.mem_hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "stores": self.stores,
            "evicted": self.evicted,
            "corrupt": self.corrupt,
            "gc_removed": self.gc_removed,
            "memory_entries": memory_len,
            "memory_limit": self.memory_entries,
        }
