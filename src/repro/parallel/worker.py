"""Child-process side of the batch runner.

One worker process decides one problem (or, under racing, one engine's
attempt at one problem) and streams progress back to the parent over a
pipe.  The parent never trusts a worker to stay healthy: an engine that
raises is converted into a structured :class:`WorkerFailure` message, an
engine that declines is reported and the ladder moves on, and a worker
that hangs is terminated by the parent's per-attempt timeout — none of
these poison the pool or leak into other problems' verdicts.

Message protocol (child → parent), in order:

* ``("trying", engine)`` — a new engine attempt begins.  The parent resets
  its per-attempt timeout clock on this message, so each engine gets the
  full budget.
* ``("declined", engine, reason)`` — the engine declined at runtime (its
  ``solve`` returned ``None``, e.g. the EXPSPACE memory guard).
* ``("failed", engine, failure_dict)`` — the engine raised; the exception
  is re-raised *as data* (a :class:`WorkerFailure` rendering), never as a
  live exception crossing the process boundary.
* ``("result", engine, result, run_record_or_None)`` — a verdict.
* ``("exhausted", run_record_or_None)`` — every eligible engine declined
  or failed; the run record (``collect_stats=True`` only) still ships so
  the trace shows what the worker tried.

With ``collect_stats=True`` the worker wraps its whole ladder walk in an
obs recording whose run record — span tree with wall-clock anchors, the
worker's ``pid`` in ``meta`` — rides back on the final message.  The
parent merges these per-process records into one Chrome trace timeline
(:func:`repro.obs.traceout.batch_trace`).

The engine ladder mirrors :meth:`EngineRegistry.plan_and_run`: admitted
engines cheapest-first, runtime declines and exceptions fall through.  It
is re-entrant across worker restarts — the parent passes the set of
engines already tried (timed out, declined, or failed) as ``exclude`` so a
respawned worker resumes at the next-cheapest engine.
"""

from __future__ import annotations

import os
import traceback
from dataclasses import asdict, dataclass

from .. import obs
from ..analysis.problems import Problem, ProblemKind
from ..analysis.registry import Engine, default_registry

__all__ = ["WorkerFailure", "solve_in_child"]


@dataclass(frozen=True)
class WorkerFailure:
    """A structured record of an engine exception inside a worker."""

    engine: str
    error_type: str
    message: str
    traceback: str

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_exception(cls, engine: str, error: BaseException) -> "WorkerFailure":
        return cls(
            engine=engine,
            error_type=type(error).__name__,
            message=str(error),
            traceback="".join(traceback.format_exception(error)),
        )


def _ladder(problem: Problem, exclude: frozenset[str],
            only_engine: str | None) -> list[Engine]:
    """The engines this worker may try, in dispatch order."""
    registry = default_registry()
    if only_engine is not None:
        return [registry.get(only_engine)]
    forced = problem.engine
    if forced is not None and problem.kind is not ProblemKind.EQUIVALENCE:
        # A forced engine is the whole ladder (equivalence forwards the
        # preference to its per-direction subproblems instead).
        return [] if forced in exclude else [registry.get(forced)]
    return [engine for engine in registry.candidates(problem)
            if engine.name not in exclude]


def solve_in_child(conn, problem: Problem, exclude: frozenset[str],
                   collect_stats: bool, only_engine: str | None = None) -> None:
    """Process entry point: walk the engine ladder, streaming messages.

    Never raises: every failure mode becomes a message (or, at worst, a
    closed pipe the parent observes as a dead worker).
    """
    from ..analysis.session import discard_incomplete_sessions, session_for

    # Fork hygiene, belt-and-braces with the session module's
    # ``os.register_at_fork`` hook: a session whose compile was in flight
    # in the parent at fork time must never be observed here.  (Under
    # ``spawn`` the registry starts empty and this is a no-op.)
    discard_incomplete_sessions()
    recording = None
    if collect_stats:
        recording = obs.record("batch.worker").start()
        recording.note("pid", os.getpid())

    def finish_recording() -> dict | None:
        nonlocal recording
        if recording is None:
            return None
        recording.stop()
        stats = recording.to_run_record().to_dict()
        recording = None
        return stats

    try:
        try:
            engines = _ladder(problem, exclude, only_engine)
        except ValueError as error:  # unknown engine name
            conn.send(("failed", only_engine or problem.engine or "?",
                       WorkerFailure.from_exception("?", error).to_dict()))
            conn.send(("exhausted", finish_recording()))
            return
        for engine in engines:
            try:
                admitted = engine.admits(problem)
            except Exception as error:
                conn.send(("failed", engine.name,
                           WorkerFailure.from_exception(engine.name,
                                                        error).to_dict()))
                continue
            if not admitted:
                continue
            conn.send(("trying", engine.name))
            engine_span = obs.span(f"engine.{engine.name}").start()
            try:
                # One session per problem, shared down the ladder; under
                # the default fork start method the parent precompiled it,
                # so this is a registry hit, not a compile.
                result = engine.solve(problem, session_for(problem))
            except Exception as error:
                engine_span.annotate(status="failed")
                engine_span.finish()
                conn.send(("failed", engine.name,
                           WorkerFailure.from_exception(engine.name,
                                                        error).to_dict()))
                continue
            if result is None:
                engine_span.annotate(status="declined")
                engine_span.finish()
                conn.send(("declined", engine.name, "declined at runtime"))
                continue
            engine_span.annotate(status="result")
            engine_span.finish()
            if recording is not None:
                recording.note("engine", engine.name)
                recording.note("verdict", result.verdict.value)
            conn.send(("result", engine.name, result, finish_recording()))
            return
        conn.send(("exhausted", finish_recording()))
    except (BrokenPipeError, OSError):
        pass  # parent went away (timeout terminate racing with a send)
    finally:
        if recording is not None:
            recording.stop()
        try:
            conn.close()
        except OSError:
            pass
