"""Parallel batch execution of decision problems.

The sequential analysis API (:func:`repro.analysis.contains` and friends)
decides one problem at a time in-process.  This package scales that to
*batches*: a :class:`BatchRunner` executes many
:class:`~repro.analysis.problems.Problem`\\ s on a pool of worker
processes, with per-engine wall-clock timeouts that degrade gracefully to
the next-cheapest admitted engine, optional engine *racing* (all
conclusive admitted engines run concurrently, the first conclusive verdict
wins, losers are terminated), and a persistent on-disk
:class:`VerdictCache` so repeated benchmark/CI runs skip solved instances.

Quickstart::

    from repro import parse_path, contains_many
    pairs = [(parse_path("down/down[p]"), parse_path("down/down"))]
    results = contains_many(pairs, workers=4)

The CLI front-end is ``python -m repro batch`` (JSONL in, JSONL out).
"""

from .cache import (
    VerdictCache,
    default_cache_dir,
    engine_set_fingerprint,
    problem_fingerprint,
)
from .runner import (
    BatchError,
    BatchOutcome,
    BatchReport,
    BatchRunner,
    ExecutorService,
    contains_many,
    run_batch,
    satisfiable_many,
)
from .worker import WorkerFailure

__all__ = [
    "BatchError",
    "BatchOutcome",
    "BatchReport",
    "BatchRunner",
    "ExecutorService",
    "VerdictCache",
    "WorkerFailure",
    "contains_many",
    "default_cache_dir",
    "engine_set_fingerprint",
    "problem_fingerprint",
    "run_batch",
    "satisfiable_many",
]
