"""The execution backend: many decision problems, one resident worker pool.

:class:`ExecutorService` is the long-lived heart of this module: a pool of
coordinator threads — one per worker slot — that stays resident across
submissions and drives the lifecycle of each
:class:`~repro.analysis.problems.Problem` it is handed, whether problems
arrive one at a time (:meth:`ExecutorService.submit`, used by the ``repro
serve`` daemon) or as whole batches (:meth:`ExecutorService.run`).  Worker
*processes* are forked per engine attempt (decision procedures are
CPU-bound; threads would serialize on the GIL):

1. **Cache.** With a :class:`~repro.parallel.cache.VerdictCache` attached,
   a hit returns the stored result without spawning a worker (and, warm,
   without touching disk — see the cache's memory tier).
2. **Race** (``race=True``).  All *conclusive* admitted engines start
   concurrently, one worker process each; the first conclusive verdict
   wins and the losers are terminated.  With fewer than two conclusive
   contenders the race degenerates to the ladder.
3. **Ladder.**  One worker walks the admitted engines cheapest-first
   (exactly the :meth:`EngineRegistry.plan_and_run` order), falling
   through on runtime declines and engine exceptions.  The parent imposes
   a per-engine wall-clock ``timeout`` (overridable per submission): on
   expiry the worker is terminated and a fresh worker resumes at the
   next-cheapest engine — a timeout degrades the answer, never the batch.

Sessions: the coordinator warms the problem's
:class:`~repro.analysis.session.SchemaSession` in the parent *before* any
worker forks, so children inherit the finished
:class:`~repro.edtd.compiled.CompiledSchema` artifact instead of
rebuilding it per process.  Because the service is resident, sessions stay
warm across submissions — the compile-once machinery amortizes over a
request stream, not a single batch.  The service never resets the session
registry; callers that want per-run hygiene (the one-shot
:class:`BatchRunner`, pool shutdown) call
:func:`~repro.analysis.session.reset_sessions` themselves, and
:meth:`ExecutorService.close` does so on the way out.

Every problem yields a :class:`BatchOutcome` with the result (or a
structured error), the engine that produced it, cache/timing/attempt
metadata, and any :class:`~repro.parallel.worker.WorkerFailure` records.
Failures are data: a raising or hanging engine cannot poison the pool or
perturb any other problem's verdict.

Workers are forked (configurable via ``mp_context``), so engines
registered at runtime — including test doubles — are visible to workers
without pickling.  Only results cross the process boundary.

:class:`BatchRunner` is the historical one-shot front-end: same
constructor, same :meth:`BatchRunner.run` contract, now a thin wrapper
that runs the batch on a private :class:`ExecutorService` and resets the
session registry afterwards.  :func:`contains_many` and
:func:`satisfiable_many` are the list-in, list-out conveniences mirroring
:func:`repro.analysis.contains` and :func:`repro.analysis.satisfiable`.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field
from multiprocessing.connection import wait as _conn_wait
from pathlib import Path
from typing import Iterable, Sequence

from .. import obs
from ..analysis.problems import (
    DEFAULT_MAX_NODES,
    ContainmentResult,
    Problem,
    ProblemKind,
    SatResult,
)
from ..analysis.registry import default_registry
from ..edtd import EDTD
from ..xpath.ast import NodeExpr, PathExpr
from .cache import VerdictCache
from .worker import WorkerFailure, solve_in_child

__all__ = [
    "BatchError",
    "BatchOutcome",
    "BatchReport",
    "BatchRunner",
    "ExecutorService",
    "contains_many",
    "run_batch",
    "satisfiable_many",
]

Result = SatResult | ContainmentResult

#: Poll granularity while waiting without a timeout (also the heartbeat for
#: detecting a worker that died without a final message).
_POLL_S = 0.2

#: Sentinel distinguishing "use the service default timeout" from an
#: explicit ``timeout=None`` (no timeout) on :meth:`ExecutorService.submit`.
_DEFAULT_TIMEOUT = object()


class BatchError(RuntimeError):
    """Raised by the ``*_many`` conveniences when some problem produced no
    result at all; carries the failing outcomes."""

    def __init__(self, message: str, outcomes: "list[BatchOutcome]"):
        super().__init__(message)
        self.outcomes = outcomes


@dataclass
class BatchOutcome:
    """Everything the runner learned about one problem."""

    index: int
    problem: Problem
    result: Result | None = None
    engine: str | None = None
    cache_hit: bool = False
    queue_wait_s: float = 0.0
    worker_time_s: float = 0.0
    #: Wall-clock cost of the verdict-cache probe (hit or miss).
    cache_probe_s: float = 0.0
    #: One dict per engine attempt: ``{"engine", "status"}`` with status in
    #: ``result | declined | failed | timeout | died | lost-race``.
    attempts: list[dict] = field(default_factory=list)
    failures: list[WorkerFailure] = field(default_factory=list)
    race_winner: str | None = None
    #: Set when no engine produced a result.
    error: str | None = None
    #: The run record behind the verdict: the winning worker's own record,
    #: or — on a cache hit — a minimal synthesized record annotating the
    #: ``cache.hit`` provenance and probe latency (``collect_stats=True``).
    stats: dict | None = None
    #: Every worker run record shipped for this problem (racing losers that
    #: declined, exhausted ladder walks, the winner) — the trace writer
    #: renders one process lane per record (``collect_stats=True`` only).
    worker_records: list[dict] = field(default_factory=list)
    #: The coordinator thread's own recording of this problem's lifecycle:
    #: cache probe, attempts, race bookkeeping (``collect_stats=True``).
    coord_stats: dict | None = None


@dataclass
class BatchReport:
    """A finished batch: per-problem outcomes plus aggregate figures."""

    outcomes: list[BatchOutcome]
    wall_s: float
    workers: int
    race: bool
    cache_info: dict | None = None
    stats: dict | None = None
    #: One entry per distinct compiled schema in the batch: ``{"schema_id",
    #: "problems", "compile_s", "cache_hits", "session_reuse"}`` —
    #: ``session_reuse`` is the measured warm-session hit rate when worker
    #: stats were collected, else ``None``.
    schemas: list[dict] = field(default_factory=list)

    def results(self) -> list[Result | None]:
        return [outcome.result for outcome in self.outcomes]

    @property
    def cache_hits(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome.cache_hit)

    @property
    def failed(self) -> list[BatchOutcome]:
        return [outcome for outcome in self.outcomes
                if outcome.result is None]

    def summary(self) -> dict:
        timeouts = sum(1 for outcome in self.outcomes
                       for attempt in outcome.attempts
                       if attempt["status"] == "timeout")
        return {
            "problems": len(self.outcomes),
            "wall_s": self.wall_s,
            "workers": self.workers,
            "race": self.race,
            "cache_hits": self.cache_hits,
            "timeouts": timeouts,
            "worker_failures": sum(len(outcome.failures)
                                   for outcome in self.outcomes),
            "unsolved": len(self.failed),
        }


class ExecutorService:
    """See the module docstring.

    Parameters:

    * ``workers`` — coordinator-thread / worker-slot count (default:
      ``os.cpu_count()``, ≤ 8).
    * ``timeout`` — default per-engine-attempt wall-clock seconds
      (``None`` = no timeout); overridable per :meth:`submit`.
    * ``race`` — race conclusive admitted engines per problem.
    * ``cache`` — a :class:`VerdictCache`, a directory for one, or ``None``
      to disable caching.
    * ``collect_stats`` — ship each worker's own obs run record back with
      its result (attached to ``BatchOutcome.stats``).
    * ``mp_context`` — a multiprocessing start-method name or context;
      defaults to ``fork`` where available (registered engines are then
      inherited by workers without pickling).
    """

    def __init__(
        self,
        workers: int | None = None,
        timeout: float | None = None,
        race: bool = False,
        cache: VerdictCache | str | Path | None = None,
        collect_stats: bool = False,
        mp_context: str | multiprocessing.context.BaseContext | None = None,
    ):
        self.workers = workers if workers is not None \
            else min(8, os.cpu_count() or 1)
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        self.timeout = timeout
        self.race = race
        if cache is None or isinstance(cache, VerdictCache):
            self.cache = cache
        else:
            self.cache = VerdictCache(cache)
        self.collect_stats = collect_stats
        if isinstance(mp_context, multiprocessing.context.BaseContext):
            self._ctx = mp_context
        else:
            method = mp_context
            if method is None:
                method = "fork" if "fork" in \
                    multiprocessing.get_all_start_methods() else "spawn"
            self._ctx = multiprocessing.get_context(method)
        self._pool: ThreadPoolExecutor | None = None
        self._pool_lock = threading.Lock()
        self._state_lock = threading.Lock()
        self._closed = False
        self._next_index = 0
        self.submitted = 0
        self.completed = 0

    # --------------------------------------------------------- lifecycle

    def _ensure_pool(self) -> ThreadPoolExecutor:
        with self._pool_lock:
            if self._closed:
                raise RuntimeError("ExecutorService is closed")
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.workers, thread_name_prefix="exec")
            return self._pool

    def release(self, wait: bool = True) -> None:
        """Shut down the coordinator threads but keep the service usable —
        the pool is recreated lazily on the next submission.  The one-shot
        :class:`BatchRunner` calls this after every run so idle threads
        never outlive a batch."""
        with self._pool_lock:
            pool = self._pool
            self._pool = None
        if pool is not None:
            pool.shutdown(wait=wait)

    def close(self, wait: bool = True) -> None:
        """Shut the coordinator pool down and drop the (now orphaned)
        warm sessions.  Idempotent; the service is unusable afterwards."""
        with self._pool_lock:
            if self._closed:
                return
            self._closed = True
            pool = self._pool
            self._pool = None
        if pool is not None:
            pool.shutdown(wait=wait)
        from ..analysis.session import reset_sessions

        reset_sessions()

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "ExecutorService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def stats(self) -> dict:
        """Live service gauges: slots, lifetime submissions, in-flight."""
        with self._state_lock:
            submitted, completed = self.submitted, self.completed
        return {
            "workers": self.workers,
            "race": self.race,
            "timeout_s": self.timeout,
            "submitted": submitted,
            "completed": completed,
            "inflight": submitted - completed,
        }

    # ------------------------------------------------------- submissions

    def submit(self, problem: Problem, *,
               timeout=_DEFAULT_TIMEOUT) -> "Future[BatchOutcome]":
        """Enqueue one problem; returns a future resolving to its
        :class:`BatchOutcome`.  Safe to call from concurrent threads; the
        per-engine ``timeout`` (default: the service's) applies to this
        submission only.  The future never raises from a solver failure —
        errors are data on the outcome — only from a closed service."""
        pool = self._ensure_pool()
        with self._state_lock:
            index = self._next_index
            self._next_index += 1
            self.submitted += 1
        per_attempt = self.timeout if timeout is _DEFAULT_TIMEOUT else timeout
        submitted_at = time.perf_counter()
        future = pool.submit(self._run_one, index, problem, submitted_at,
                             per_attempt)
        future.add_done_callback(self._on_done)
        return future

    def _on_done(self, future) -> None:
        with self._state_lock:
            self.completed += 1

    def map(self, problems: Iterable[Problem]) -> list[BatchOutcome]:
        """Submit every problem and wait; outcomes in input order."""
        futures = [self.submit(problem) for problem in problems]
        return [future.result() for future in futures]

    # ---------------------------------------------------------------- run

    def run(self, problems: Iterable[Problem]) -> BatchReport:
        """Decide a whole batch; outcomes come back in input order.

        Groups the batch by compiled schema up front and compiles each
        distinct schema ONCE in this thread, before any worker forks: the
        gauge tells a profile reader how much schema-session sharing the
        conclusive engines can expect, fork-started workers inherit the
        finished CompiledSchema artifacts instead of rebuilding them per
        process, and the ``schema.compile.*`` counters land in the
        caller's (batch-level) recording where the compile-once property
        is assertable.  Unlike :meth:`submit`, ``run`` also emits the
        batch-level obs metrics; it does NOT reset sessions — the one-shot
        :class:`BatchRunner` wrapper does that.
        """
        items = list(problems)
        outcomes: list[BatchOutcome | None] = [None] * len(items)
        by_schema: dict[str, list[Problem]] = {}
        sessions: dict[str, "SchemaSession"] = {}
        if items:
            from ..analysis.session import schema_id_of

            for problem in items:
                canonical = problem.canonical()
                schema_id = schema_id_of(*canonical.expressions(),
                                         edtd=canonical.edtd)
                by_schema.setdefault(schema_id, []).append(canonical)
            obs.gauge("batch.schemas", len(by_schema))
        started = time.perf_counter()
        schema_summary: list[dict] = []
        with obs.span("batch.run", problems=len(items),
                      workers=self.workers, race=self.race):
            if items:
                from ..analysis.session import session_for

                with obs.span("batch.precompile", schemas=len(by_schema)):
                    for schema_id, group in by_schema.items():
                        sessions[schema_id] = session_for(group[0])
                futures = [self.submit(problem) for problem in items]
                for index, future in enumerate(futures):
                    outcomes[index] = future.result()
        schema_summary = self._schema_summary(by_schema, sessions, outcomes)
        wall = time.perf_counter() - started
        done = [outcome for outcome in outcomes if outcome is not None]
        assert len(done) == len(items)
        report = BatchReport(
            outcomes=done, wall_s=wall, workers=self.workers, race=self.race,
            cache_info=self.cache.info() if self.cache is not None else None,
            schemas=schema_summary,
        )
        self._emit_metrics(report)
        return report

    @staticmethod
    def _schema_summary(by_schema: dict[str, list[Problem]],
                        sessions: dict, outcomes: list) -> list[dict]:
        """Per-schema batch figures, collected while the sessions are
        still resident: problem count, parent compile time, verdict-cache
        hits, and the measured warm-session reuse rate (worker records
        only)."""
        from ..analysis.session import schema_id_of

        per_outcome: dict[str, list] = {}
        for outcome in outcomes:
            if outcome is None:
                continue
            schema_id = schema_id_of(*outcome.problem.expressions(),
                                     edtd=outcome.problem.edtd)
            per_outcome.setdefault(schema_id, []).append(outcome)
        summary = []
        for schema_id, group in by_schema.items():
            rows = per_outcome.get(schema_id, [])
            reused = compiles = observed = 0
            for outcome in rows:
                for record in outcome.worker_records:
                    counters = record.get("counters") or {}
                    observed += 1
                    reused += counters.get("analysis.session.reused", 0)
                    compiles += counters.get("schema.compile.count", 0)
            session = sessions.get(schema_id)
            summary.append({
                "schema_id": schema_id,
                "problems": len(group),
                "compile_s": session.compiled.compile_s if session else 0.0,
                "cache_hits": sum(1 for outcome in rows
                                  if outcome.cache_hit),
                "session_reuse": (reused / max(reused + compiles, 1))
                if observed else None,
            })
        return summary

    # ---------------------------------------------------- one problem slot

    def _run_one(self, index: int, problem: Problem, submitted: float,
                 timeout: float | None) -> BatchOutcome:
        if not self.collect_stats:
            return self._solve_one(index, problem, submitted, timeout)
        # Each coordinator thread records its problem's lifecycle — cache
        # probe, attempts, race bookkeeping — in its own thread-local
        # recording; the trace writer renders these as per-problem lanes
        # under the coordinator process.
        with obs.record(f"problem[{index}]") as recording:
            recording.note("index", index)
            outcome = self._solve_one(index, problem, submitted, timeout)
            recording.note("engine", outcome.engine)
            recording.note("cache", "hit" if outcome.cache_hit else "miss")
        outcome.coord_stats = recording.to_run_record().to_dict()
        return outcome

    def _solve_one(self, index: int, problem: Problem, submitted: float,
                   timeout: float | None) -> BatchOutcome:
        # Canonicalize once, before the cache probe: cache keys, worker
        # dispatch and engine admission all see the rewrite-pipeline
        # canonical form, so syntactic variants of one instance share a
        # cache entry (and the workers solve the smaller expressions).
        problem = problem.canonical()
        outcome = BatchOutcome(index=index, problem=problem)
        outcome.queue_wait_s = time.perf_counter() - submitted
        if self.cache is not None:
            with obs.span("cache.probe") as probe_span:
                probe_started = time.perf_counter()
                cached = self.cache.get(problem)
                outcome.cache_probe_s = time.perf_counter() - probe_started
                probe_span.annotate(hit=cached is not None)
            if cached is not None:
                hit_record = self._cache_hit_record(outcome)
                # Serve provenance-annotated stats, never a stale record
                # from whichever worker originally computed the verdict.
                outcome.result = cached.with_stats(hit_record) \
                    if self.collect_stats else cached
                outcome.engine = "cache"
                outcome.cache_hit = True
                outcome.stats = hit_record
                return outcome
        solve_started = time.perf_counter()
        try:
            # Warm the schema session in the parent before any worker
            # forks: children inherit the finished CompiledSchema, and a
            # resident service keeps it hot for later submissions of the
            # same schema.  (Batch runs already precompiled it — this is a
            # registry hit; single submissions compile here, once.)
            self._warm_session(problem)
            with obs.span("solve"):
                if self.race:
                    self._run_race(problem, outcome, timeout)
                if outcome.result is None and outcome.error is None:
                    self._run_ladder(problem, outcome, timeout)
        except Exception as error:  # coordinator bug — never kill the batch
            outcome.error = f"{type(error).__name__}: {error}"
        outcome.worker_time_s = time.perf_counter() - solve_started
        if outcome.result is not None and self.cache is not None:
            self.cache.put(problem, outcome.result)
        return outcome

    @staticmethod
    def _warm_session(problem: Problem) -> None:
        from ..analysis.session import session_for

        try:
            session_for(problem)
        except Exception:
            # A schema the compiler chokes on is the engines' problem to
            # report (as a structured failure), not the coordinator's.
            pass

    @staticmethod
    def _cache_hit_record(outcome: BatchOutcome) -> dict:
        """A minimal RunRecord annotating a verdict served from the cache:
        ``cache.hit`` provenance plus the probe latency — never the stats
        of the worker run that originally produced the verdict."""
        from ..obs import RunRecord

        probe_s = outcome.cache_probe_s
        return RunRecord(
            name="cache.hit",
            duration_s=probe_s,
            meta={"engine": "cache", "cache": "hit",
                  "problem": outcome.index},
            # Zero-valued saturation counters: a warm verdict did no
            # summary search this run, but reports that require the
            # ``twoata.emptiness.`` instrumentation prefix must still
            # find it on cache-hit records instead of misfiring.
            counters={"cache.hit": 1,
                      "twoata.emptiness.rounds": 0,
                      "twoata.emptiness.evals": 0},
            gauges={"cache.probe_s": probe_s},
            # A minimal root span (anchored at probe start) so the trace
            # writer renders the hit on its synthetic cache lane.
            spans={"name": "cache.hit", "duration_s": probe_s, "id": 0,
                   "parent": None, "start_ts": time.time() - probe_s},
        ).to_dict()

    # ------------------------------------------------------------- ladder

    def _run_ladder(self, problem: Problem, outcome: BatchOutcome,
                    timeout: float | None) -> None:
        """Worker-backed engine ladder with parent-enforced timeouts."""
        exclude: set[str] = {attempt["engine"] for attempt in outcome.attempts}
        while True:
            status, engine = self._attempt(problem, frozenset(exclude),
                                           None, outcome, timeout)
            if status == "result":
                return
            if status == "exhausted":
                if outcome.error is None:
                    outcome.error = self._exhausted_message(outcome)
                return
            # timeout / died: exclude the engine that was running and
            # resume the ladder in a fresh worker.
            if engine is None:
                outcome.error = f"worker {status} before choosing an engine"
                return
            exclude.add(engine)
            # Engines that declined or failed inside the dead worker must
            # not be retried by its successor.
            exclude.update(
                attempt["engine"] for attempt in outcome.attempts
                if attempt["status"] in ("declined", "failed"))

    def _exhausted_message(self, outcome: BatchOutcome) -> str:
        if outcome.failures:
            failure = outcome.failures[-1]
            return (f"no engine produced a result; last failure: "
                    f"{failure.engine}: {failure.error_type}: "
                    f"{failure.message}")
        return "no registered engine admitted or solved the problem"

    def _attempt(self, problem: Problem, exclude: frozenset[str],
                 only_engine: str | None, outcome: BatchOutcome,
                 timeout: float | None) -> tuple[str, str | None]:
        """One worker process; returns ``(status, engine)`` where status is
        ``result | exhausted | timeout | died``."""
        parent_conn, child_conn = self._ctx.Pipe(duplex=False)
        process = self._ctx.Process(
            target=solve_in_child,
            args=(child_conn, problem, exclude, self.collect_stats,
                  only_engine),
            daemon=True,
        )
        process.start()
        child_conn.close()
        attempt_span = obs.span("worker.attempt").start()
        current: dict | None = None
        deadline = None if timeout is None \
            else time.perf_counter() + timeout
        try:
            while True:
                if deadline is not None:
                    remaining = deadline - time.perf_counter()
                    if remaining <= 0 or not parent_conn.poll(remaining):
                        if parent_conn.poll(0):
                            pass  # a message raced the deadline; drain it
                        else:
                            if current is not None:
                                current["status"] = "timeout"
                            attempt_span.annotate(status="timeout")
                            return ("timeout",
                                    current["engine"] if current else None)
                elif not parent_conn.poll(_POLL_S):
                    if process.is_alive() or parent_conn.poll(0):
                        continue
                    if current is not None:
                        current["status"] = "died"
                    self._record_death(outcome, current)
                    attempt_span.annotate(status="died")
                    return ("died", current["engine"] if current else None)
                try:
                    message = parent_conn.recv()
                except EOFError:
                    if current is not None:
                        current["status"] = "died"
                    self._record_death(outcome, current)
                    attempt_span.annotate(status="died")
                    return ("died", current["engine"] if current else None)
                kind = message[0]
                if kind == "trying":
                    current = {"engine": message[1], "status": "running"}
                    outcome.attempts.append(current)
                    if timeout is not None:
                        deadline = time.perf_counter() + timeout
                elif kind == "declined":
                    if current is not None and current["engine"] == message[1]:
                        current["status"] = "declined"
                    else:
                        outcome.attempts.append(
                            {"engine": message[1], "status": "declined"})
                    current = None
                elif kind == "failed":
                    failure = WorkerFailure(**message[2])
                    outcome.failures.append(failure)
                    if current is not None and current["engine"] == message[1]:
                        current["status"] = "failed"
                    else:
                        outcome.attempts.append(
                            {"engine": message[1], "status": "failed"})
                    current = None
                elif kind == "result":
                    _, engine, result, stats = message
                    if current is not None and current["engine"] == engine:
                        current["status"] = "result"
                    outcome.result = result
                    outcome.engine = engine
                    if stats is not None:
                        outcome.stats = stats
                        outcome.worker_records.append(stats)
                    attempt_span.annotate(engine=engine, status="result")
                    return ("result", engine)
                elif kind == "exhausted":
                    stats = message[1] if len(message) > 1 else None
                    if stats is not None:
                        outcome.worker_records.append(stats)
                    attempt_span.annotate(status="exhausted")
                    return ("exhausted", None)
        finally:
            attempt_span.finish()
            parent_conn.close()
            self._reap(process)

    @staticmethod
    def _record_death(outcome: BatchOutcome, current: dict | None) -> None:
        engine = current["engine"] if current else "?"
        outcome.failures.append(WorkerFailure(
            engine=engine, error_type="WorkerDied",
            message="worker process exited without reporting a result",
            traceback="",
        ))

    @staticmethod
    def _reap(process) -> None:
        if process.is_alive():
            process.terminate()
        process.join(timeout=5)
        if process.is_alive():  # pragma: no cover - stuck in uninterruptible IO
            process.kill()
            process.join(timeout=5)

    # --------------------------------------------------------------- race

    def _run_race(self, problem: Problem, outcome: BatchOutcome,
                  timeout: float | None) -> None:
        """Race all conclusive admitted engines; first conclusive verdict
        wins, losers are terminated.  Leaves ``outcome.result`` unset when
        the race is not applicable or produced no conclusive verdict — the
        ladder then takes over (excluding engines the race already ran) —
        except that a race's *inconclusive* result is kept as a fallback if
        the ladder also comes up empty."""
        if problem.engine is not None:
            return
        registry = default_registry()
        try:
            contenders = [engine.name
                          for engine in registry.candidates(problem)
                          if engine.conclusive and engine.admits(problem)]
        except Exception:
            return  # admits() raised; let the ladder sort it out
        if len(contenders) < 2:
            return
        race_span = obs.span("race", contenders=len(contenders)).start()
        entries = []  # (engine, process, conn, attempt_dict)
        for name in contenders:
            parent_conn, child_conn = self._ctx.Pipe(duplex=False)
            process = self._ctx.Process(
                target=solve_in_child,
                args=(child_conn, problem, frozenset(), self.collect_stats,
                      name),
                daemon=True,
            )
            process.start()
            child_conn.close()
            attempt = {"engine": name, "status": "racing"}
            outcome.attempts.append(attempt)
            entries.append((name, process, parent_conn, attempt))
        by_conn = {conn: (name, process, attempt)
                   for name, process, conn, attempt in entries}
        deadline = None if timeout is None \
            else time.perf_counter() + timeout
        stash: tuple[Result, str, dict | None] | None = None
        try:
            pending = set(by_conn)
            while pending:
                if deadline is None:
                    ready = _conn_wait(list(pending), timeout=_POLL_S)
                else:
                    remaining = deadline - time.perf_counter()
                    if remaining <= 0:
                        break
                    ready = _conn_wait(list(pending), timeout=remaining)
                if not ready:
                    if deadline is not None:
                        break  # race timed out
                    if not any(process.is_alive()
                               for _, process, _ in
                               (by_conn[conn] for conn in pending)):
                        break
                    continue
                for conn in ready:
                    name, process, attempt = by_conn[conn]
                    try:
                        message = conn.recv()
                    except EOFError:
                        pending.discard(conn)
                        attempt["status"] = "died"
                        self._record_death(outcome, attempt)
                        continue
                    kind = message[0]
                    if kind == "trying":
                        continue
                    if kind == "declined":
                        attempt["status"] = "declined"
                        pending.discard(conn)
                    elif kind == "failed":
                        attempt["status"] = "failed"
                        outcome.failures.append(WorkerFailure(**message[2]))
                        pending.discard(conn)
                    elif kind == "exhausted":
                        stats = message[1] if len(message) > 1 else None
                        if stats is not None:
                            outcome.worker_records.append(stats)
                        pending.discard(conn)
                    elif kind == "result":
                        _, engine, result, stats = message
                        if stats is not None:
                            outcome.worker_records.append(stats)
                        if result.conclusive:
                            attempt["status"] = "result"
                            for other in pending:
                                if other is not conn:
                                    by_conn[other][2]["status"] = "lost-race"
                            outcome.result = result
                            outcome.engine = engine
                            outcome.race_winner = engine
                            if stats is not None:
                                outcome.stats = stats
                            race_span.annotate(winner=engine)
                            return
                        attempt["status"] = "inconclusive"
                        if stash is None:
                            stash = (result, engine, stats)
                        pending.discard(conn)
        finally:
            for _, process, conn, attempt in entries:
                if attempt["status"] == "racing":
                    attempt["status"] = "timeout" if deadline is not None \
                        else "lost-race"
                try:
                    conn.close()
                except OSError:
                    pass
                self._reap(process)
            race_span.finish()
        if stash is not None and outcome.result is None:
            # No conclusive winner; remember the inconclusive verdict in
            # case the ladder cannot do better.
            outcome.attempts.append(
                {"engine": stash[1], "status": "race-fallback"})
            result, engine, stats = stash
            outcome.result = result
            outcome.engine = engine
            if stats is not None:
                outcome.stats = stats

    # ------------------------------------------------------------ metrics

    def _emit_metrics(self, report: BatchReport) -> None:
        """Fold the report into the active obs recording (main thread) —
        coordinator threads never touch the thread-local recording."""
        if obs.active() is None:
            return
        obs.count("batch.problems", len(report.outcomes))
        queue_wait = 0.0
        worker_time = 0.0
        for outcome in report.outcomes:
            queue_wait += outcome.queue_wait_s
            worker_time += outcome.worker_time_s
            obs.observe("batch.queue_wait_s", outcome.queue_wait_s)
            if not outcome.cache_hit:
                obs.observe("batch.problem_s", outcome.worker_time_s)
            if self.cache is not None:
                obs.observe("batch.cache.probe_s", outcome.cache_probe_s)
                obs.count("batch.cache.hit" if outcome.cache_hit
                          else "batch.cache.miss")
            if outcome.result is None:
                obs.count("batch.unsolved")
            if outcome.failures:
                obs.count("batch.worker_failures", len(outcome.failures))
            if outcome.race_winner is not None:
                obs.count("batch.race.races")
                obs.count(f"batch.race.win.{outcome.race_winner}")
            for attempt in outcome.attempts:
                if attempt["status"] == "timeout":
                    obs.count("batch.timeouts")
            retries = sum(1 for attempt in outcome.attempts
                          if attempt["status"] in ("timeout", "died")) \
                if not outcome.cache_hit else 0
            if retries:
                obs.count("batch.retries", retries)
        obs.gauge("batch.queue_wait_s", queue_wait)
        obs.gauge("batch.worker_time_s", worker_time)
        obs.gauge("batch.wall_s", report.wall_s)
        obs.note("batch", report.summary())


class BatchRunner:
    """One-shot batch front-end over a private :class:`ExecutorService`.

    Historically this class owned the whole coordinator machinery; the
    resident :class:`ExecutorService` now does, and ``BatchRunner`` keeps
    the original contract for existing callers: same constructor, and
    :meth:`run` decides a batch then resets the worker-local session
    registry so a later batch — or a sequential caller after a terminated
    worker round — can never observe this batch's sessions.
    """

    def __init__(
        self,
        workers: int | None = None,
        timeout: float | None = None,
        race: bool = False,
        cache: VerdictCache | str | Path | None = None,
        collect_stats: bool = False,
        mp_context: str | multiprocessing.context.BaseContext | None = None,
    ):
        self.service = ExecutorService(
            workers=workers, timeout=timeout, race=race, cache=cache,
            collect_stats=collect_stats, mp_context=mp_context)

    @property
    def workers(self) -> int:
        return self.service.workers

    @property
    def timeout(self) -> float | None:
        return self.service.timeout

    @property
    def race(self) -> bool:
        return self.service.race

    @property
    def cache(self) -> VerdictCache | None:
        return self.service.cache

    @property
    def collect_stats(self) -> bool:
        return self.service.collect_stats

    def run(self, problems: Iterable[Problem]) -> BatchReport:
        """Decide every problem; outcomes come back in input order."""
        try:
            return self.service.run(problems)
        finally:
            # Pool-shutdown hygiene, preserved from the pre-service
            # runner: one-shot batches leave neither warm sessions nor
            # idle coordinator threads behind.
            self.service.release()
            from ..analysis.session import reset_sessions

            reset_sessions()


# ------------------------------------------------------------- conveniences


def run_batch(
    problems: Iterable[Problem],
    *,
    workers: int | None = None,
    timeout: float | None = None,
    race: bool = False,
    cache: VerdictCache | str | Path | None = None,
    collect_stats: bool = False,
    stats: bool = False,
    mp_context=None,
) -> BatchReport:
    """Run ``problems`` through a fresh :class:`BatchRunner`.  With
    ``stats=True`` the whole batch runs inside an obs recording whose run
    record lands on ``BatchReport.stats``."""
    runner = BatchRunner(workers=workers, timeout=timeout, race=race,
                         cache=cache, collect_stats=collect_stats,
                         mp_context=mp_context)
    if not stats:
        return runner.run(problems)
    with obs.record("batch") as recording:
        report = runner.run(problems)
    report.stats = recording.to_run_record().to_dict()
    return report


def _engine_preference(method: str) -> str | None:
    if method == "auto":
        return None
    registry = default_registry()
    if method not in registry.names():
        raise ValueError(
            f"unknown method {method!r} (expected 'auto' or one of: "
            f"{', '.join(registry.names())})"
        )
    return method


def _checked_results(report: BatchReport, what: str) -> list[Result]:
    failed = report.failed
    if failed:
        first = failed[0]
        raise BatchError(
            f"{len(failed)} of {len(report.outcomes)} {what} problems "
            f"produced no result (first: #{first.index}: {first.error})",
            failed,
        )
    results = report.results()
    assert all(result is not None for result in results)
    return results  # type: ignore[return-value]


def contains_many(
    pairs: Sequence[tuple[PathExpr, PathExpr]],
    *,
    edtd: EDTD | None = None,
    method: str = "auto",
    max_nodes: int = DEFAULT_MAX_NODES,
    workers: int | None = None,
    timeout: float | None = None,
    race: bool = False,
    cache: VerdictCache | str | Path | None = None,
    mp_context=None,
) -> list[ContainmentResult]:
    """Decide ``α ⊑ β`` for every pair on a worker pool; results come back
    in input order and agree with sequential :func:`repro.analysis.contains`
    under the same configuration.  Raises :class:`BatchError` if some
    problem could not be decided by any engine."""
    engine = _engine_preference(method)
    problems = [
        Problem(ProblemKind.CONTAINMENT, alpha=alpha, beta=beta, edtd=edtd,
                max_nodes=max_nodes, engine=engine)
        for alpha, beta in pairs
    ]
    report = run_batch(problems, workers=workers, timeout=timeout, race=race,
                       cache=cache, mp_context=mp_context)
    results = _checked_results(report, "containment")
    assert all(isinstance(result, ContainmentResult) for result in results)
    return results  # type: ignore[return-value]


def satisfiable_many(
    exprs: Sequence[NodeExpr],
    *,
    edtd: EDTD | None = None,
    method: str = "auto",
    max_nodes: int = DEFAULT_MAX_NODES,
    workers: int | None = None,
    timeout: float | None = None,
    race: bool = False,
    cache: VerdictCache | str | Path | None = None,
    mp_context=None,
) -> list[SatResult]:
    """Batch node satisfiability; see :func:`contains_many`."""
    engine = _engine_preference(method)
    problems = [
        Problem(ProblemKind.SATISFIABILITY, phi=phi, edtd=edtd,
                max_nodes=max_nodes, engine=engine)
        for phi in exprs
    ]
    report = run_batch(problems, workers=workers, timeout=timeout, race=race,
                       cache=cache, mp_context=mp_context)
    results = _checked_results(report, "satisfiability")
    assert all(isinstance(result, SatResult) for result in results)
    return results  # type: ignore[return-value]
