"""Generation of trees conforming to an EDTD.

Used to produce schema-respecting workloads for the benchmarks and for
randomized conformance tests (everything we generate must validate, and
mutations of it usually must not).
"""

from __future__ import annotations

import random

from ..regexes import NFA
from ..trees import XMLTree
from .edtd import EDTD

__all__ = ["random_conforming_tree", "GenerationBudgetExceeded"]


class GenerationBudgetExceeded(RuntimeError):
    """The sampler could not produce a conforming tree within its budget."""


def random_conforming_tree(
    edtd: EDTD,
    rng: random.Random,
    max_nodes: int = 60,
    prefer_short: float = 0.5,
) -> XMLTree:
    """Sample a tree conforming to ``edtd`` with at most ``max_nodes`` nodes.

    Children words are sampled by random walks on the content-model NFAs,
    biased toward accepting states by ``prefer_short`` so generation
    terminates; if the budget is exhausted, sampling restarts (a bounded
    number of times) before giving up.
    """
    for _ in range(64):
        result = _try_generate(edtd, rng, max_nodes, prefer_short)
        if result is not None:
            return result
    raise GenerationBudgetExceeded(
        f"could not sample a conforming tree with <= {max_nodes} nodes"
    )


def _try_generate(edtd: EDTD, rng: random.Random, max_nodes: int,
                  prefer_short: float) -> XMLTree | None:
    labels: list[str] = []
    parents: list[int | None] = []

    def emit(abstract: str, parent: int | None) -> bool:
        if len(labels) >= max_nodes:
            return False
        labels.append(edtd.projection[abstract])
        parents.append(parent)
        me = len(labels) - 1
        word = _random_accepted_word(
            edtd.content_nfa(abstract), rng, max_nodes - len(labels), prefer_short
        )
        if word is None:
            return False
        for child_abstract in word:
            if not emit(child_abstract, me):
                return False
        return True

    if emit(edtd.root_type, None):
        return XMLTree(labels, parents)
    return None


def _random_accepted_word(nfa: NFA, rng: random.Random, budget: int,
                          prefer_short: float) -> list[str] | None:
    """A random word accepted by ``nfa`` with length at most ``budget``."""
    word: list[str] = []
    states = frozenset(nfa.initial)
    for _ in range(budget + 1):
        can_stop = bool(states & nfa.accepting)
        moves = [
            (symbol, target)
            for state in states
            for (source, symbol), targets in nfa.transitions.items()
            if source == state
            for target in targets
        ]
        if can_stop and (not moves or rng.random() < prefer_short):
            return word
        if not moves:
            return None
        symbol, _ = rng.choice(moves)
        step = {t for s in states for t in nfa.successors(s, symbol)}
        states = frozenset(step)
        word.append(symbol)
    return None
