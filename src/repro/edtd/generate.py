"""Generation of trees conforming to an EDTD.

Two generators: :func:`random_conforming_tree` samples schema-respecting
workloads for the benchmarks and randomized conformance tests, and
:func:`all_conforming_trees` enumerates *every* conforming tree up to a
size bound in increasing size order — the bounded engines drive it
directly instead of enumerating all trees over the schema's alphabet and
filtering by conformance, which discards the overwhelming majority of
candidates.
"""

from __future__ import annotations

import itertools
import random
from typing import Iterator

from ..regexes import NFA
from ..trees import XMLTree
from .edtd import EDTD

__all__ = [
    "random_conforming_tree",
    "all_conforming_trees",
    "GenerationBudgetExceeded",
]


class GenerationBudgetExceeded(RuntimeError):
    """The sampler could not produce a conforming tree within its budget."""


def random_conforming_tree(
    edtd: EDTD,
    rng: random.Random,
    max_nodes: int = 60,
    prefer_short: float = 0.5,
) -> XMLTree:
    """Sample a tree conforming to ``edtd`` with at most ``max_nodes`` nodes.

    Children words are sampled by random walks on the content-model NFAs,
    biased toward accepting states by ``prefer_short`` so generation
    terminates; if the budget is exhausted, sampling restarts (a bounded
    number of times) before giving up.
    """
    for _ in range(64):
        result = _try_generate(edtd, rng, max_nodes, prefer_short)
        if result is not None:
            return result
    raise GenerationBudgetExceeded(
        f"could not sample a conforming tree with <= {max_nodes} nodes"
    )


def _try_generate(edtd: EDTD, rng: random.Random, max_nodes: int,
                  prefer_short: float) -> XMLTree | None:
    labels: list[str] = []
    parents: list[int | None] = []

    def emit(abstract: str, parent: int | None) -> bool:
        if len(labels) >= max_nodes:
            return False
        labels.append(edtd.projection[abstract])
        parents.append(parent)
        me = len(labels) - 1
        word = _random_accepted_word(
            edtd.content_nfa(abstract), rng, max_nodes - len(labels), prefer_short
        )
        if word is None:
            return False
        for child_abstract in word:
            if not emit(child_abstract, me):
                return False
        return True

    if emit(edtd.root_type, None):
        return XMLTree(labels, parents)
    return None


def _random_accepted_word(nfa: NFA, rng: random.Random, budget: int,
                          prefer_short: float) -> list[str] | None:
    """A random word accepted by ``nfa`` with length at most ``budget``."""
    word: list[str] = []
    states = frozenset(nfa.initial)
    for _ in range(budget + 1):
        can_stop = bool(states & nfa.accepting)
        moves = [
            (symbol, target)
            for state in states
            for (source, symbol), targets in nfa.transitions.items()
            if source == state
            for target in targets
        ]
        if can_stop and (not moves or rng.random() < prefer_short):
            return word
        if not moves:
            return None
        symbol, _ = rng.choice(moves)
        step = {t for s in states for t in nfa.successors(s, symbol)}
        states = frozenset(step)
        word.append(symbol)
    return None


# ------------------------------------------------------- exhaustive generation

#: A concrete subtree as nested hashable tuples: (label, (children...)).
_Spec = tuple


def all_conforming_trees(edtd: EDTD, max_nodes: int) -> Iterator[XMLTree]:
    """Every tree conforming to ``edtd`` with at most ``max_nodes`` nodes,
    in order of (weakly) increasing size — so the first tree satisfying a
    property is a minimal witness, matching
    :func:`repro.trees.generate.all_trees`.

    Trees are generated *from* the schema: children words are enumerated
    from the content-model NFAs, so no conformance filtering is needed.
    Distinct abstract typings that project to the same concrete tree are
    deduplicated.
    """
    words_memo: dict[tuple[str, int], list[tuple[str, ...]]] = {}
    subtree_memo: dict[tuple[str, int], list[_Spec]] = {}

    def accepted_words(abstract: str, max_len: int) -> list[tuple[str, ...]]:
        """Children-type words of length ≤ max_len accepted by P(abstract)."""
        memo_key = (abstract, max_len)
        cached = words_memo.get(memo_key)
        if cached is not None:
            return cached
        nfa = edtd.content_nfa(abstract)  # ε-free by construction
        symbols = sorted(nfa.alphabet(), key=str)
        accepted: list[tuple[str, ...]] = []
        frontier: list[tuple[tuple[str, ...], frozenset[int]]] = [
            ((), frozenset(nfa.initial))
        ]
        if nfa.initial & nfa.accepting:
            accepted.append(())
        for _ in range(max_len):
            grown: list[tuple[tuple[str, ...], frozenset[int]]] = []
            for word, states in frontier:
                for symbol in symbols:
                    step = frozenset(
                        target for state in states
                        for target in nfa.successors(state, symbol)
                    )
                    if step:
                        longer = word + (symbol,)
                        grown.append((longer, step))
                        if step & nfa.accepting:
                            accepted.append(longer)
            frontier = grown
            if not frontier:
                break
        words_memo[memo_key] = accepted
        return accepted

    def subtrees(abstract: str, n: int) -> list[_Spec]:
        """Concrete specs of conforming subtrees of type ``abstract`` with
        exactly ``n`` nodes."""
        memo_key = (abstract, n)
        cached = subtree_memo.get(memo_key)
        if cached is not None:
            return cached
        label = edtd.projection[abstract]
        specs: list[_Spec] = []
        budget = n - 1  # nodes available for children
        for word in accepted_words(abstract, budget):
            if len(word) == 0:
                if budget == 0:
                    specs.append((label, ()))
                continue
            if len(word) > budget:
                continue
            for sizes in _compositions(budget, len(word)):
                child_choices = [
                    subtrees(child_type, child_size)
                    for child_type, child_size in zip(word, sizes)
                ]
                if all(child_choices):
                    for children in itertools.product(*child_choices):
                        specs.append((label, children))
        subtree_memo[memo_key] = specs
        return specs

    seen: set[_Spec] = set()
    for n in range(1, max_nodes + 1):
        for spec in subtrees(edtd.root_type, n):
            if spec not in seen:
                seen.add(spec)
                yield _spec_to_tree(spec)


def _compositions(total: int, parts: int) -> Iterator[tuple[int, ...]]:
    """All ways to write ``total`` as an ordered sum of ``parts`` positive
    integers."""
    if parts == 1:
        if total >= 1:
            yield (total,)
        return
    for head in range(1, total - parts + 2):
        for rest in _compositions(total - head, parts - 1):
            yield (head,) + rest


def _spec_to_tree(spec: _Spec) -> XMLTree:
    labels: list[str] = []
    parents: list[int | None] = []

    def emit(node: _Spec, parent: int | None) -> None:
        labels.append(node[0])
        parents.append(parent)
        me = len(labels) - 1
        for child in node[1]:
            emit(child, me)

    emit(spec, None)
    return XMLTree(labels, parents)
