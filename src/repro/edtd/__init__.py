"""Extended DTDs (Definition 2): schemas, conformance, generation."""

from .edtd import EDTD, DTD, ConformanceError
from .compiled import CompiledSchema, SchemaTables, TypeFrame, compile_schema
from .examples import book_edtd, nested_sections_edtd, book_sample_rules
from .generate import (
    random_conforming_tree,
    all_conforming_trees,
    GenerationBudgetExceeded,
)
from .encode import dtd_to_corexpath_star, content_model_to_path

__all__ = [
    "EDTD",
    "DTD",
    "ConformanceError",
    "CompiledSchema",
    "SchemaTables",
    "TypeFrame",
    "compile_schema",
    "book_edtd",
    "nested_sections_edtd",
    "book_sample_rules",
    "random_conforming_tree",
    "all_conforming_trees",
    "GenerationBudgetExceeded",
    "dtd_to_corexpath_star",
    "content_model_to_path",
]
