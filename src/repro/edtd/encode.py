"""Expressing schemas inside the query language.

The paper notes (after Table I) that "DTDs can be expressed in CoreXPath(*)
with only a linear blowup in size" [Marx 2004] — which is why its upper
bounds are proved without schemas for the fragments containing ``*``.  This
module implements that encoding: :func:`dtd_to_corexpath_star` produces a
CoreXPath(*) node expression that holds at the root of a tree iff the tree
conforms to the (plain) DTD.

The idea: a node's children conform to the content model ``P(p)`` iff,
starting *before* the first child, one can walk the sibling sequence along a
path automaton for ``P(p)`` and fall off the right end in an accepting
state.  With general transitive closure the regex translates structurally:
symbols become ``→[q]``-style steps (the first step enters via the first
child), and ``*`` becomes the closure of the compiled sub-path.

For *extended* DTDs the same trick does not suffice (abstract labels are not
observable); use :func:`repro.analysis.reductions.edtd_sat_to_sat` instead.
"""

from __future__ import annotations

from ..regexes.ast import Alt, Concat, Empty, Epsilon, KleeneStar, Regex, Symbol
from ..xpath.ast import (
    AxisStep,
    Axis,
    Filter,
    Label,
    NodeExpr,
    Not,
    PathExpr,
    Self,
    Seq,
    SomePath,
    Star,
    Top,
    Union,
)
from ..xpath.builders import and_all, down_star, every, or_all
from .edtd import EDTD

__all__ = ["dtd_to_corexpath_star", "content_model_to_path"]

_RIGHT = AxisStep(Axis.RIGHT)
_DOWN = AxisStep(Axis.DOWN)
_EMPTY_PATH: PathExpr = Filter(Self(), Not(Top()))


def content_model_to_path(regex: Regex, step: PathExpr = _RIGHT) -> PathExpr:
    """A path expression reading one ``step`` per regex symbol, with the
    endpoint carrying the *last* symbol read.  ``ε`` is the identity."""
    match regex:
        case Empty():
            return _EMPTY_PATH
        case Epsilon():
            return Self()
        case Symbol(name=name):
            return Filter(step, Label(name))
        case Concat(left=a, right=b):
            return Seq(content_model_to_path(a, step),
                       content_model_to_path(b, step))
        case Alt(left=a, right=b):
            return Union(content_model_to_path(a, step),
                         content_model_to_path(b, step))
        case KleeneStar(inner=a):
            return Star(content_model_to_path(a, step))
    raise TypeError(f"unknown regex {regex!r}")


def dtd_to_corexpath_star(dtd: EDTD) -> NodeExpr:
    """A CoreXPath(*) node expression true at the root of ``T`` iff ``T``
    conforms to the plain DTD ``dtd``.  Linear in the DTD's size.

    Construction, per label ``p`` with content model ``r = P(p)``: every
    ``p``-node's child sequence must be a word of ``L(r)``.  We check this
    as: *either* ``ε ∈ L(r)`` and the node is a leaf, *or* the node's first
    child starts a walk ``w`` along ``r`` that ends on a child with no right
    sibling.  The first regex symbol consumes the ``↓[¬⟨←⟩]`` entry step;
    the rest consume ``→`` steps.
    """
    if not dtd.is_dtd:
        raise ValueError(
            "only plain DTDs are expressible this way; EDTD abstract labels "
            "are not observable in the tree (use Prop. 6 instead)"
        )

    first_child: PathExpr = Filter(_DOWN, Not(SomePath(AxisStep(Axis.LEFT))))
    conjuncts: list[NodeExpr] = []
    for label in sorted(dtd.abstract_labels):
        regex = dtd.content[label]
        walk = content_model_to_path(regex, _RIGHT)
        # Entry: position "before the first child" is simulated by letting
        # the walk's first step be the first-child edge: we rewrite the walk
        # as first_child-prefixed via a one-step shift — compose the entry
        # step with a version of the walk whose *first* symbol is consumed
        # by the entry itself.  Structurally: ⟨entry ∘ shift(r)⟩ where
        # shift is realized by reading r against the pair (entry, →).
        full_walk = _shifted_walk(regex, first_child)
        ok_nonempty = SomePath(Filter(full_walk, Not(SomePath(_RIGHT))))
        accepts_empty = dtd.content_nfa(label).accepts_epsilon()
        if accepts_empty:
            leaf_ok: NodeExpr = Not(SomePath(_DOWN))
            body = or_all([leaf_ok, ok_nonempty])
        else:
            body = ok_nonempty
        conjuncts.append(every(Filter(down_star, Label(label)), body))
    # The root itself carries the root label.
    conjuncts.append(Label(dtd.root_type))
    # Every node's label is one the DTD knows.
    known = or_all([Label(p) for p in sorted(dtd.abstract_labels)])
    conjuncts.append(every(down_star, known))
    return and_all(conjuncts)


def _shifted_walk(regex: Regex, entry: PathExpr) -> PathExpr:
    """The walk for ``regex`` where the first symbol is consumed by the
    ``entry`` step and subsequent symbols by ``→`` steps.

    Implemented via the derivative-style decomposition
    ``first(r) = {(a, r_a)}``: for each leading symbol ``a`` with residual
    language, branch ``entry[a] / walk(residual)``.  To stay linear we
    instead compile ``r`` over a two-phase step: a fresh structural trick is
    unnecessary because ``entry`` differs from ``→`` only in the first
    position — we recurse with a flag.
    """
    return _walk_first(regex, entry)


def _walk_first(regex: Regex, entry: PathExpr) -> PathExpr:
    """Path for nonempty words of ``L(regex)``: first symbol via ``entry``,
    the rest via ``→``."""
    match regex:
        case Empty() | Epsilon():
            return _EMPTY_PATH  # no nonempty word
        case Symbol(name=name):
            return Filter(entry, Label(name))
        case Concat(left=a, right=b):
            options: list[PathExpr] = []
            # Either a contributes the first symbol ...
            a_first = _walk_first(a, entry)
            b_rest = content_model_to_path(b, _RIGHT)
            if a_first is not _EMPTY_PATH:
                options.append(Seq(a_first, b_rest))
            # ... or a is empty-capable and b starts the word.
            if _nullable(a):
                options.append(_walk_first(b, entry))
            return _union_all(options)
        case Alt(left=a, right=b):
            return Union(_walk_first(a, entry), _walk_first(b, entry))
        case KleeneStar(inner=a):
            # One or more rounds of `a`, the very first symbol via entry.
            first = _walk_first(a, entry)
            rest = Star(content_model_to_path(a, _RIGHT))
            return Seq(first, rest)
    raise TypeError(f"unknown regex {regex!r}")


def _nullable(regex: Regex) -> bool:
    match regex:
        case Epsilon():
            return True
        case Empty() | Symbol():
            return False
        case Concat(left=a, right=b):
            return _nullable(a) and _nullable(b)
        case Alt(left=a, right=b):
            return _nullable(a) or _nullable(b)
        case KleeneStar():
            return True
    raise TypeError(f"unknown regex {regex!r}")


def _union_all(paths: list[PathExpr]) -> PathExpr:
    if not paths:
        return _EMPTY_PATH
    result = paths[0]
    for path in paths[1:]:
        result = Union(result, path)
    return result
