"""The paper's running EDTD examples (§2.1 and §2.2)."""

from __future__ import annotations

from .edtd import DTD, EDTD

__all__ = ["book_edtd", "nested_sections_edtd", "book_sample_rules"]

#: Content models of the §2.2 book schema.
book_sample_rules = {
    "Book": "Chapter+",
    "Chapter": "Section+",
    "Section": "(Section | Paragraph | Image)+",
    "Paragraph": "eps",
    "Image": "eps",
}


def book_edtd() -> EDTD:
    """The §2.2 example: books of chapters of (arbitrarily nested) sections
    whose leaves are paragraphs and images.  This one is a plain DTD."""
    return DTD(book_sample_rules, root="Book")


def nested_sections_edtd(max_depth: int = 3) -> EDTD:
    """The §2.1 example EDTD not expressible as a DTD: section nesting of
    depth at most ``max_depth``.  Abstract labels ``s1 … s_max_depth`` all
    project to the concrete label ``s``."""
    if max_depth < 1:
        raise ValueError("max_depth must be >= 1")
    rules = {}
    for level in range(1, max_depth):
        rules[f"s{level}"] = f"s{level + 1}?"
    rules[f"s{max_depth}"] = "eps"
    projection = {f"s{level}": "s" for level in range(1, max_depth + 1)}
    return EDTD.from_rules(rules, root_type="s1", projection=projection)
