"""Extended DTDs (Definition 2) and conformance checking.

An EDTD is ``(Δ, P, r, μ)``: a finite set of abstract labels, a content model
``P(t)`` (a regular expression over Δ) per abstract label, a root type, and a
projection ``μ : Δ → Σ`` to concrete labels.  Standard DTDs are the special
case with ``Δ = Σ`` and ``μ`` the identity.  EDTDs capture exactly the
regular tree languages [Papakonstantinou & Vianu 2000].

Conformance of a tree is decided by searching for the witnessing typing
``L' : N → Δ`` bottom-up: for each node we compute the set of abstract types
it can take, by checking the children's type-word against each candidate
content-model NFA (a product-style subset search).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from ..regexes import NFA, Regex, parse_regex, regex_size, symbols_of, thompson_nfa
from ..trees import XMLTree

__all__ = ["EDTD", "DTD", "ConformanceError"]


class ConformanceError(ValueError):
    """Raised by :meth:`EDTD.validate` with an explanation of the failure."""


@dataclass(frozen=True, eq=False)
class EDTD:
    """An extended DTD ``(Δ, P, r, μ)``.

    ``content`` maps each abstract label to its content-model regex over
    abstract labels; ``projection`` maps abstract labels to concrete ones.
    """

    abstract_labels: frozenset[str]
    content: Mapping[str, Regex]
    root_type: str
    projection: Mapping[str, str]
    _nfas: dict[str, NFA] = field(default_factory=dict, compare=False, hash=False)

    def __post_init__(self) -> None:
        if self.root_type not in self.abstract_labels:
            raise ValueError(f"root type {self.root_type!r} not among abstract labels")
        for label in self.abstract_labels:
            if label not in self.content:
                raise ValueError(f"no content model for abstract label {label!r}")
            if label not in self.projection:
                raise ValueError(f"no projection for abstract label {label!r}")
            stray = symbols_of(self.content[label]) - self.abstract_labels
            if stray:
                raise ValueError(
                    f"content model of {label!r} mentions unknown labels {sorted(stray)}"
                )

    # ------------------------------------------------------------- factories

    @classmethod
    def from_rules(cls, rules: Mapping[str, str], root_type: str,
                   projection: Mapping[str, str] | None = None) -> "EDTD":
        """Build from textual content models, e.g.
        ``{"book": "chapter+", "chapter": "section+", ...}``.

        Labels missing from ``rules`` but used in content models get the empty
        content model ε.  ``projection`` defaults to the identity (a DTD).
        """
        content: dict[str, Regex] = {
            label: parse_regex(body) for label, body in rules.items()
        }
        mentioned: set[str] = set(content)
        for regex in content.values():
            mentioned |= symbols_of(regex)
        mentioned.add(root_type)
        for label in mentioned:
            content.setdefault(label, parse_regex("eps"))
        abstract = frozenset(content)
        if projection is None:
            projection = {label: label for label in abstract}
        return cls(abstract, content, root_type, dict(projection))

    # ------------------------------------------------------------------ size

    def size(self) -> int:
        """§2.3: the sum of the content-model regex sizes."""
        return sum(regex_size(regex) for regex in self.content.values())

    def concrete_labels(self) -> frozenset[str]:
        """The image of μ."""
        return frozenset(self.projection.values())

    @property
    def is_dtd(self) -> bool:
        """True iff this is a plain DTD (identity projection)."""
        return all(key == value for key, value in self.projection.items())

    def content_nfa(self, abstract_label: str) -> NFA:
        """The (cached) NFA of ``P(abstract_label)``."""
        nfa = self._nfas.get(abstract_label)
        if nfa is None:
            nfa = thompson_nfa(self.content[abstract_label]).without_epsilon()
            self._nfas[abstract_label] = nfa
        return nfa

    def max_nfa_states(self) -> int:
        """``|D|`` as used by the Figure 2 algorithm: the maximum number of
        states of any content-model NFA."""
        return max(
            self.content_nfa(label).num_states for label in self.abstract_labels
        )

    # ----------------------------------------------------------- conformance

    def typing_candidates(self, tree: XMLTree) -> list[frozenset[str]]:
        """For each node, the abstract labels it can take in *some* witnessing
        typing ``L'`` (bottom-up fixpoint).  Node conformance holds iff the
        root's set contains the root type."""
        candidates: list[frozenset[str]] = [frozenset()] * tree.size
        for node in range(tree.size - 1, -1, -1):
            kids = tree.children(node)
            options: set[str] = set()
            for abstract in self.abstract_labels:
                if self.projection[abstract] != tree.label(node):
                    continue
                if self._children_word_accepted(self.content_nfa(abstract),
                                                [candidates[kid] for kid in kids]):
                    options.add(abstract)
            candidates[node] = frozenset(options)
        return candidates

    @staticmethod
    def _children_word_accepted(nfa: NFA, child_options: list[frozenset[str]]) -> bool:
        """Is some word ``w_1 … w_k`` with ``w_i ∈ child_options[i]`` accepted?"""
        current = set(nfa.initial)
        for options in child_options:
            step: set[int] = set()
            for state in current:
                for symbol in options:
                    step |= nfa.successors(state, symbol)
            current = step
            if not current:
                return False
        return bool(current & nfa.accepting)

    def conforms(self, tree: XMLTree) -> bool:
        """True iff ``tree`` conforms to this EDTD (Definition 2)."""
        return self.root_type in self.typing_candidates(tree)[tree.root]

    def validate(self, tree: XMLTree) -> None:
        """Like :meth:`conforms` but raises a :class:`ConformanceError`
        naming the shallowest node whose subtree admits no typing."""
        candidates = self.typing_candidates(tree)
        if self.root_type in candidates[tree.root]:
            return
        for node in tree.nodes:
            if not candidates[node]:
                raise ConformanceError(
                    f"node {node} (label {tree.label(node)!r}, depth "
                    f"{tree.depth(node)}) admits no abstract type"
                )
        raise ConformanceError(
            f"root admits types {sorted(candidates[tree.root])} but not the "
            f"root type {self.root_type!r}"
        )

    def witness_typing(self, tree: XMLTree) -> list[str] | None:
        """A concrete witnessing typing ``L'`` (one abstract label per node),
        or None if the tree does not conform."""
        candidates = self.typing_candidates(tree)
        if self.root_type not in candidates[tree.root]:
            return None
        typing = [""] * tree.size

        def assign(node: int, abstract: str) -> None:
            typing[node] = abstract
            kids = tree.children(node)
            word = self._find_children_word(
                self.content_nfa(abstract), [candidates[kid] for kid in kids]
            )
            assert word is not None
            for kid, kid_abstract in zip(kids, word):
                assign(kid, kid_abstract)

        assign(tree.root, self.root_type)
        return typing

    @staticmethod
    def _find_children_word(nfa: NFA,
                            child_options: list[frozenset[str]]) -> list[str] | None:
        """A concrete accepted word with the i-th letter from
        ``child_options[i]``, via backtracking over NFA state sets."""
        k = len(child_options)

        def search(position: int, states: frozenset[int]) -> list[str] | None:
            if position == k:
                return [] if states & nfa.accepting else None
            for symbol in sorted(child_options[position]):
                step: set[int] = set()
                for state in states:
                    step |= nfa.successors(state, symbol)
                if step:
                    rest = search(position + 1, frozenset(step))
                    if rest is not None:
                        return [symbol, *rest]
            return None

        return search(0, frozenset(nfa.initial))


def DTD(rules: Mapping[str, str], root: str) -> EDTD:
    """A standard DTD: abstract labels coincide with concrete ones."""
    return EDTD.from_rules(rules, root)
