"""Compile-once per-schema artifacts: the :class:`CompiledSchema` pipeline.

The paper's schema-aware results all factor into a *per-schema* part and a
*per-query* part: the Fig. 2 EXPSPACE construction enumerates types over
the schema's content-model NFAs, the Prop. 4/5 reductions decorate the
schema once per joint label alphabet, the ``patterns`` engine's cover
search runs over per-schema realizability fixpoints, and the 2ATA
emptiness kernel keys its memos on a per-schema alphabet partition.  Yet
historically each engine rebuilt its schema half on every call.

This module owns that schema half, built **once** per
:func:`repro.analysis.session.schema_id_of` and cached on the
:class:`~repro.analysis.session.SchemaSession`:

* the relevant label ``alphabet`` and the mentioned-label
  :class:`~repro.automata.core.AlphabetPartition` (the 2ATA alphabet
  seed),
* a fresh :class:`~repro.automata.core.KernelCache` (the emptiness
  kernel's cross-problem memo store),
* the content-model NFAs of the EDTD (compiled eagerly, so batch problem
  #2 never pays the Thompson construction again),
* :class:`SchemaTables` — the minimal-realizable-subtree and reachability
  fixpoints the ``patterns`` engine's cover search runs on (previously
  private to :mod:`repro.analysis.patterns`),
* lazily derived, memoized artifacts: the Prop. 5 permissive EDTD and the
  Prop. 4 decorated EDTD per joint label alphabet ``γ``, the decorated
  alphabet partition, and the Fig. 2 :class:`TypeFrame` (sorted abstract
  labels + precompiled NFAs) per (possibly derived) EDTD.

The artifact is *immutable in interface*: its identity fields never change
after :func:`compile_schema` returns, and the derived-artifact memo only
grows monotonically with values that are pure functions of the identity
fields — so sharing one instance across every engine and (forked) worker
that sees the same ``schema_id`` is sound by construction.

Observability: ``schema.compile.count`` counts eager compiles (a batch
over N problems and one schema must show exactly one), ``schema.compile_s``
records their durations, ``schema.compile.nfas`` the content NFAs
compiled, and ``schema.compile.tables`` / ``schema.compile.reductions`` /
``schema.compile.frames`` the lazily derived pieces (each at most once per
schema and kind); ``schema.compile.derived_hit`` counts derived-memo hits
and ``schema.compile.derived_s`` their build durations.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from .. import obs
from .edtd import EDTD

if TYPE_CHECKING:  # avoid importing the automata stack at module load
    from ..automata.core import AlphabetPartition, KernelCache

__all__ = ["CompiledSchema", "SchemaTables", "TypeFrame", "compile_schema"]


#: ``(label, [child specs...])`` as accepted by :meth:`XMLTree.build`.
_Spec = tuple


class SchemaTables:
    """Per-EDTD realizability and reachability fixpoints.

    ``minimal[t]`` is a smallest-effort conforming subtree spec for
    abstract type ``t`` (absent iff ``t`` is unrealizable); ``reach[t]``
    records how a realizable ``t``-node is reached from the root type —
    ``None`` for the root itself, else ``(parent type, content word)``
    with ``t`` a letter of the word.

    Pure functions of the EDTD alone, so one instance serves every pattern
    (and every problem) over the schema; :meth:`CompiledSchema
    .schema_tables` builds it once per compiled schema.
    """

    def __init__(self, edtd: EDTD):
        self.edtd = edtd
        self.minimal: dict[str, _Spec] = {}
        changed = True
        while changed:
            changed = False
            for t in sorted(edtd.abstract_labels - set(self.minimal)):
                word = self._shortest_word(t, required=None)
                if word is not None:
                    self.minimal[t] = (edtd.projection[t],
                                       [self.minimal[x] for x in word])
                    changed = True
        self.reach: dict[str, tuple[str, tuple[str, ...]] | None] = {}
        if edtd.root_type in self.minimal:
            self.reach[edtd.root_type] = None
            frontier = [edtd.root_type]
            while frontier:
                t = frontier.pop()
                for t2 in sorted(set(self.minimal) - set(self.reach)):
                    word = self._shortest_word(t, required=t2)
                    if word is not None:
                        self.reach[t2] = (t, word)
                        frontier.append(t2)

    def _shortest_word(self, t: str,
                       required: str | None) -> tuple[str, ...] | None:
        """A shortest word of realizable letters accepted by ``P(t)``,
        containing ``required`` when given; ``None`` if there is none."""
        nfa = self.edtd.content_nfa(t)
        letters = sorted(self.minimal)
        start = (frozenset(nfa.initial), required is None)
        parents: dict[tuple, tuple | None] = {start: None}
        queue = [start]
        while queue:
            state = queue.pop(0)
            states, satisfied = state
            if satisfied and states & nfa.accepting:
                word: list[str] = []
                cur: tuple | None = parents[state]
                node = state
                while cur is not None:
                    word.append(cur[1])
                    node = cur[0]
                    cur = parents[node]
                return tuple(reversed(word))
            for letter in letters:
                step = frozenset().union(
                    *(nfa.successors(q, letter) for q in states))
                if not step:
                    continue
                nxt = (step, satisfied or letter == required)
                if nxt not in parents:
                    parents[nxt] = (state, letter)
                    queue.append(nxt)
        return None

    def context(self, t: str, spec: _Spec) -> tuple[_Spec, list[int]]:
        """Wrap ``spec`` (a conforming ``t``-subtree) into a full conforming
        document; returns the document spec and the child-index path from
        the root down to the planted subtree."""
        path: list[int] = []
        while self.reach[t] is not None:
            parent, word = self.reach[t]  # type: ignore[misc]
            index = word.index(t)
            children = [self.minimal[x] for x in word]
            children[index] = spec
            spec = (self.edtd.projection[parent], children)
            path.append(index)
            t = parent
        path.reverse()
        return spec, path


@dataclass(frozen=True)
class TypeFrame:
    """The per-schema half of the Fig. 2 type machinery: the sorted
    abstract-label order the type enumeration iterates in, with every
    content-model NFA compiled up front (``|D|`` is their max state
    count).  One frame per (possibly reduction-derived) EDTD."""

    edtd: EDTD
    labels: tuple[str, ...]
    max_states: int

    @classmethod
    def build(cls, edtd: EDTD) -> "TypeFrame":
        labels = tuple(sorted(edtd.abstract_labels))
        for label in labels:
            edtd.content_nfa(label)
        return cls(edtd, labels, edtd.max_nfa_states())

    def nfa(self, label: str):
        return self.edtd.content_nfa(label)


@dataclass(eq=False)
class CompiledSchema:
    """The compile-once artifact for one ``schema_id`` (see module doc)."""

    schema_id: str
    edtd: EDTD | None
    #: The relevant label alphabet (mentioned labels plus one fresh label
    #: without a schema; the schema's concrete labels with one).
    alphabet: tuple[str, ...]
    #: Labels the problems actually mention (no fresh label): the 2ATA
    #: alphabet seed.
    partition: "AlphabetPartition"
    #: The emptiness kernel's cross-problem memo store for this schema.
    kernel_cache: "KernelCache"
    #: Wall-clock seconds the eager compile took (set by
    #: :func:`compile_schema`).
    compile_s: float = 0.0
    _derived: dict = field(default_factory=dict, repr=False)

    # ------------------------------------------------------- derived memos

    def _memo(self, key: tuple, counter: str, build: Callable):
        value = self._derived.get(key)
        if value is not None:
            obs.count("schema.compile.derived_hit")
            return value
        started = time.perf_counter()
        value = build()
        obs.observe("schema.compile.derived_s",
                    time.perf_counter() - started)
        obs.count(f"schema.compile.{counter}")
        self._derived[key] = value
        return value

    def schema_tables(self) -> SchemaTables:
        """The realizability/reachability fixpoints (``patterns`` engine);
        built at most once per schema."""
        if self.edtd is None:
            raise ValueError("schema_tables() needs an EDTD")
        return self._memo(("tables",), "tables",
                          lambda: SchemaTables(self.edtd))

    def type_frame(self, edtd: EDTD | None = None) -> TypeFrame:
        """The Fig. 2 :class:`TypeFrame` for ``edtd`` (default: the
        schema's own EDTD).  Reduction-derived EDTDs obtained from
        :meth:`permissive_frame` / :meth:`decorated_frame` are cached here,
        so their frames are id-stable and built once."""
        target = edtd if edtd is not None else self.edtd
        if target is None:
            raise ValueError("type_frame() needs an EDTD")
        key = ("frame", id(target))
        frame = self._derived.get(key)
        if frame is not None and frame.edtd is target:
            obs.count("schema.compile.derived_hit")
            return frame
        started = time.perf_counter()
        frame = TypeFrame.build(target)
        obs.observe("schema.compile.derived_s",
                    time.perf_counter() - started)
        obs.count("schema.compile.frames")
        self._derived[key] = frame
        return frame

    def permissive_frame(self, gamma: tuple[str, ...]) -> tuple[EDTD, str]:
        """The Prop. 5 maximally permissive EDTD (plus super-root) over the
        joint label alphabet ``gamma`` — a pure function of ``gamma``, so
        every schemaless satisfiability over this session's alphabet
        reuses one instance (with warm content NFAs)."""
        from ..analysis.reductions import permissive_frame

        return self._memo(("prop5", gamma), "reductions",
                          lambda: permissive_frame(gamma))

    def decorated_frame(self, edtd: EDTD,
                        gamma: tuple[str, ...]) -> tuple[str, EDTD]:
        """The Prop. 4 decorated EDTD ``D̄`` (plus super-root) for this
        schema and the joint label alphabet ``gamma`` of one containment
        family.  Callers must pass this schema's own EDTD."""
        from ..analysis.reductions import decorated_frame

        return self._memo(("prop4", gamma), "reductions",
                          lambda: decorated_frame(edtd, gamma))

    def decorated_partition(self) -> "AlphabetPartition":
        """The alphabet partition a schemaless Prop. 4 reduction formula
        over this schema's labels mentions: both decorated variants
        ``p#0, p#1`` of every occurring label, plus the *marked* variant of
        the reduction's fresh label (its unmarked twin never occurs —
        ``γ``'s fresh member only appears in the exactly-one-mark
        disjunction).  Matches the reduction 2ATA's own partition exactly,
        which is the sharing precondition in :class:`repro.automata
        .twoata.TwoATA`."""

        def build():
            from ..analysis.reductions import (
                MARKED,
                UNMARKED,
                decorate,
                fresh_label,
            )
            from ..automata.core import AlphabetPartition

            mentioned = self.partition.labels
            fresh = fresh_label(frozenset(mentioned))
            labels = [decorate(label, mark)
                      for label in mentioned
                      for mark in (UNMARKED, MARKED)]
            labels.append(decorate(fresh, MARKED))
            return AlphabetPartition(labels)

        return self._memo(("prop4_partition",), "reductions", build)

    def stats(self) -> dict:
        """Sizes of the compiled artifact (for session stats / reports)."""
        return {
            "alphabet": len(self.alphabet),
            "derived": len(self._derived),
            "compile_s": self.compile_s,
            **self.kernel_cache.stats(),
        }


def compile_schema(schema_id: str, exprs: tuple = (),
                   edtd: EDTD | None = None, *,
                   alphabet: tuple[str, ...] | None = None) -> CompiledSchema:
    """Build the :class:`CompiledSchema` for ``schema_id``: the eager part
    (alphabet, partition, kernel cache, content NFAs) now, the derived
    reduction/table/frame artifacts lazily on first use.

    ``alphabet`` may be passed by callers that already computed the
    relevant alphabet (the session registry does, as a byproduct of the
    schema id); otherwise it is derived from ``exprs``/``edtd``.
    """
    from ..automata.core import AlphabetPartition, KernelCache
    from ..xpath.measures import labels_used

    started = time.perf_counter()
    with obs.span("schema.compile", schema=schema_id[:12]) as span:
        if alphabet is None:
            from ..analysis.engines import relevant_alphabet

            alphabet = tuple(relevant_alphabet(*exprs, edtd=edtd))
        if edtd is not None:
            mentioned: list[str] = sorted(edtd.concrete_labels())
        else:
            used: set[str] = set()
            for expr in exprs:
                used |= labels_used(expr)
            mentioned = sorted(used)
        compiled = CompiledSchema(
            schema_id=schema_id,
            edtd=edtd,
            alphabet=tuple(alphabet),
            partition=AlphabetPartition(mentioned),
            kernel_cache=KernelCache(),
        )
        if edtd is not None:
            frame = compiled.type_frame()
            obs.count("schema.compile.nfas", len(frame.labels))
        span.annotate(alphabet=len(alphabet))
    compiled.compile_s = time.perf_counter() - started
    obs.count("schema.compile.count")
    obs.observe("schema.compile_s", compiled.compile_s)
    return compiled
