"""RunRecord: the JSON-serializable account of one decision-procedure run.

Schema (version 2)::

    {
      "schema_version": 2,
      "name": "contains",                 # recording name
      "trace_id": "a1b2-3",               # recording identity (pid-seq)
      "duration_s": 0.0123,
      "meta": {                           # run-level facts (free-form keys)
        "command": "contains",
        "engine": "bounded" | "expspace",
        "verdict": "satisfiable" | "unsatisfiable" | "no-witness-within-bound",
        "inputs": {"size": 5, "fragment": "...", ...}
      },
      "counters": {"trees.enumerated": 123, ...},   # monotone ints
      "gauges": {"expspace.modal_atoms": 4, ...},   # last-value floats
      "histograms": {                     # latency/size distributions
        "batch.problem_s": {"count": 10, "sum": 0.4, "min": ..., "max": ...,
                            "mean": ..., "p50": ..., "p90": ..., "p99": ...,
                            "buckets": [[upper_bound, count], ...]}
      },
      "spans": {                          # nested span tree, root first
        "name": "contains", "duration_s": 0.0123,
        "id": 0, "parent": null,          # dense span ids, parent links
        "start_ts": 1754640000.123,       # wall clock (cross-process merge)
        "attrs": {...}, "children": [ ... same shape ... ]
      }
    }

Version 1 records (no histograms, no trace/span ids) still load — the new
fields default to empty.  The record is a plain-data object:
``to_dict``/``from_dict`` round-trip exactly, and ``summary()`` renders
the human-readable report behind the CLI's ``--stats`` flag.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Iterator

__all__ = ["RunRecord", "SCHEMA_VERSION"]

SCHEMA_VERSION = 2

#: Versions ``from_dict`` accepts; older ones upgrade in place (missing
#: fields default), newer ones are rejected.
_READABLE_VERSIONS = frozenset({1, 2})


def _format_duration(seconds: float | None) -> str:
    if seconds is None:
        return "unfinished"
    if seconds >= 1.0:
        return f"{seconds:.3f} s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.3f} ms"
    return f"{seconds * 1e6:.1f} µs"


@dataclass
class RunRecord:
    """One decision-procedure invocation, frozen for export."""

    name: str
    duration_s: float
    meta: dict = field(default_factory=dict)
    counters: dict = field(default_factory=dict)
    gauges: dict = field(default_factory=dict)
    histograms: dict = field(default_factory=dict)
    spans: dict = field(default_factory=dict)
    trace_id: str = ""

    # -------------------------------------------------------- serialization

    def to_dict(self) -> dict:
        return {
            "schema_version": SCHEMA_VERSION,
            "name": self.name,
            "trace_id": self.trace_id,
            "duration_s": self.duration_s,
            "meta": self.meta,
            "counters": self.counters,
            "gauges": self.gauges,
            "histograms": self.histograms,
            "spans": self.spans,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RunRecord":
        version = data.get("schema_version", SCHEMA_VERSION)
        if version not in _READABLE_VERSIONS:
            raise ValueError(f"unsupported RunRecord schema version {version}")
        return cls(
            name=data["name"],
            duration_s=data["duration_s"],
            meta=dict(data.get("meta", {})),
            counters=dict(data.get("counters", {})),
            gauges=dict(data.get("gauges", {})),
            histograms=dict(data.get("histograms", {})),
            spans=dict(data.get("spans", {})),
            trace_id=data.get("trace_id", ""),
        )

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "RunRecord":
        return cls.from_dict(json.loads(text))

    # ------------------------------------------------------------ traversal

    def iter_spans(self) -> Iterator[dict]:
        """All span dicts, depth-first from the root."""

        def walk(node: dict) -> Iterator[dict]:
            if node:
                yield node
                for child in node.get("children", ()):
                    yield from walk(child)

        yield from walk(self.spans)

    # -------------------------------------------------------------- display

    def summary(self) -> str:
        """The human-readable report printed by the CLI's ``--stats``."""
        lines = [f"== run: {self.name} =="]
        headline = [
            f"{key}: {self.meta[key]}"
            for key in ("engine", "verdict", "method")
            if key in self.meta
        ]
        headline.append(f"duration: {_format_duration(self.duration_s)}")
        lines.append("  " + "   ".join(headline))
        inputs = self.meta.get("inputs")
        if inputs:
            rendered = ", ".join(f"{k}={v}" for k, v in sorted(inputs.items()))
            lines.append(f"  inputs: {rendered}")
        if self.spans:
            lines.append("spans:")

            def walk(node: dict, depth: int) -> None:
                pad = "  " * (depth + 1)
                label = node.get("name", "?")
                attrs = node.get("attrs")
                if attrs:
                    rendered_attrs = ", ".join(
                        f"{k}={v}" for k, v in sorted(attrs.items())
                    )
                    label = f"{label} [{rendered_attrs}]"
                duration = _format_duration(node.get("duration_s"))
                lines.append(f"{pad}{label:<48} {duration:>12}")
                for child in node.get("children", ()):
                    walk(child, depth + 1)

            walk(self.spans, 0)
        if self.counters:
            lines.append("counters:")
            for key in sorted(self.counters):
                lines.append(f"  {key}: {self.counters[key]}")
        if self.gauges:
            lines.append("gauges:")
            for key in sorted(self.gauges):
                lines.append(f"  {key}: {self.gauges[key]}")
        if self.histograms:
            lines.append("histograms:")
            for key in sorted(self.histograms):
                data = self.histograms[key]
                if not data.get("count"):
                    lines.append(f"  {key}: empty")
                    continue
                # Latency histograms (``*_s``) render as durations; others
                # (sizes, counts per round) as plain numbers.
                fmt = _format_duration if key.endswith("_s") \
                    else lambda value: f"{value:g}"
                lines.append(
                    f"  {key}: n={data['count']} "
                    f"mean={fmt(data['mean'])} p50={fmt(data['p50'])} "
                    f"p90={fmt(data['p90'])} p99={fmt(data['p99'])} "
                    f"max={fmt(data['max'])}"
                )
        return "\n".join(lines)
