"""Perf reporting over ``BENCH_obs.json``: tables, baselines, regressions.

The benchmark harness (``benchmarks/conftest.py``) merges every session's
per-test obs records into ``BENCH_obs.json`` — one entry per test nodeid
with wall duration, counters, gauges and histogram summaries.  This module
is the read side: it renders that artifact as a per-test table
(``repro report FILE``) and diffs it against a committed baseline
(``repro report FILE --compare BASELINE``), which is what the CI
perf-regression gate runs.

Comparison semantics (deliberately asymmetric):

* **Durations fail the gate.**  A test whose wall time grew more than
  ``fail_pct`` percent over the baseline — and by more than an absolute
  noise floor (``min_duration_s``, so microsecond-scale tests cannot trip
  the gate on scheduler jitter) — is a regression.
* **Counters warn only.**  Counter drift (more evaluations, fewer cache
  hits) is evidence worth printing, not proof of a regression: many
  counters legitimately move when algorithms change.  The gate reports
  them but they never affect the exit code.
* **Missing instrumentation fails.**  ``required_keys`` prefixes (e.g.
  ``twoata.emptiness.`` or a histogram name) must each match at least one
  counter/gauge/histogram key somewhere in the current payload.  A refactor
  that silently drops instrumentation is exactly the failure mode this
  catches — perf numbers from an uninstrumented run would be meaningless.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

__all__ = [
    "Comparison",
    "Regression",
    "compare",
    "load_bench",
    "missing_keys",
    "render_report",
    "render_table",
]


def load_bench(path: str | Path) -> dict:
    """Load and shape-check a ``BENCH_obs.json`` payload.

    Raises :class:`ValueError` on malformed content — the CLI maps that to
    exit code 2 (error), distinct from exit 1 (regression found).
    """
    try:
        data = json.loads(Path(path).read_text(encoding="utf-8"))
    except OSError as error:
        raise ValueError(f"cannot read {path}: {error}") from error
    except json.JSONDecodeError as error:
        raise ValueError(f"{path} is not valid JSON: {error}") from error
    if not isinstance(data, dict) or not isinstance(data.get("runs"), dict):
        raise ValueError(f"{path} is not a BENCH_obs.json payload "
                         "(expected an object with a 'runs' mapping)")
    for nodeid, record in data["runs"].items():
        if not isinstance(record, dict):
            raise ValueError(f"{path}: run {nodeid!r} is not an object")
    return data


def _short_id(nodeid: str) -> str:
    """``benchmarks/test_x.py::test_y[case]`` -> ``test_x.py::test_y[case]``."""
    return nodeid.rsplit("/", 1)[-1]


def _format_s(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.3f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds * 1e6:.0f}µs"


def render_table(payload: Mapping[str, Any], *, counters: int = 3) -> str:
    """The per-test table behind ``repro report FILE``.

    One row per test: wall duration, histogram p50/p99 summaries (latency
    histograms only), and the ``counters`` largest counters.
    """
    runs = payload.get("runs", {})
    lines = [f"{'test':<58} {'duration':>10}  detail"]
    for nodeid in sorted(runs):
        record = runs[nodeid]
        duration = record.get("duration_s", 0.0)
        details: list[str] = []
        for name, data in sorted(record.get("histograms", {}).items()):
            if name.endswith("_s") and data.get("count"):
                details.append(f"{name} p50={_format_s(data['p50'])} "
                               f"p99={_format_s(data['p99'])}")
        top = sorted(record.get("counters", {}).items(),
                     key=lambda item: -abs(item[1]))[:counters]
        details.extend(f"{name}={value}" for name, value in top)
        lines.append(f"{_short_id(nodeid):<58} {_format_s(duration):>10}  "
                     + "  ".join(details))
    lines.append(f"{len(runs)} test(s)")
    return "\n".join(lines)


@dataclass(frozen=True)
class Regression:
    """One gate-failing finding of :func:`compare`."""

    nodeid: str
    kind: str  # "duration" | "missing-key"
    detail: str


@dataclass
class Comparison:
    """Everything :func:`compare` found; ``ok`` iff the gate passes."""

    regressions: list[Regression] = field(default_factory=list)
    warnings: list[str] = field(default_factory=list)
    improved: list[str] = field(default_factory=list)
    missing_tests: list[str] = field(default_factory=list)
    new_tests: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.regressions


def compare(current: Mapping[str, Any], baseline: Mapping[str, Any], *,
            fail_pct: float = 50.0, min_duration_s: float = 0.05,
            counter_warn_pct: float = 25.0) -> Comparison:
    """Diff two BENCH_obs payloads; see the module docstring for semantics.

    ``fail_pct`` — relative duration growth that fails the gate;
    ``min_duration_s`` — absolute noise floor: both sides must exceed it
    for a duration diff to count either way; ``counter_warn_pct`` —
    relative counter drift worth a warning line.
    """
    result = Comparison()
    current_runs = current.get("runs", {})
    baseline_runs = baseline.get("runs", {})
    result.missing_tests = sorted(set(baseline_runs) - set(current_runs))
    result.new_tests = sorted(set(current_runs) - set(baseline_runs))
    for nodeid in sorted(set(current_runs) & set(baseline_runs)):
        now = current_runs[nodeid]
        then = baseline_runs[nodeid]
        short = _short_id(nodeid)

        now_s = now.get("duration_s", 0.0)
        then_s = then.get("duration_s", 0.0)
        if then_s > min_duration_s and now_s > min_duration_s:
            pct = (now_s - then_s) / then_s * 100.0
            if pct > fail_pct:
                result.regressions.append(Regression(
                    nodeid, "duration",
                    f"{short}: {_format_s(then_s)} -> {_format_s(now_s)} "
                    f"(+{pct:.0f}%, gate {fail_pct:g}%)"))
            elif pct < -fail_pct:
                result.improved.append(
                    f"{short}: {_format_s(then_s)} -> {_format_s(now_s)} "
                    f"({pct:.0f}%)")

        now_counters = now.get("counters", {})
        then_counters = then.get("counters", {})
        for name in sorted(set(now_counters) & set(then_counters)):
            old = then_counters[name]
            new = now_counters[name]
            if old and abs(new - old) / abs(old) * 100.0 > counter_warn_pct:
                result.warnings.append(
                    f"{short}: counter {name} {old} -> {new}")
        for name in sorted(set(then_counters) - set(now_counters)):
            result.warnings.append(
                f"{short}: counter {name} disappeared (was "
                f"{then_counters[name]})")
    return result


def _instrument_keys(payload: Mapping[str, Any]) -> set[str]:
    keys: set[str] = set()
    for record in payload.get("runs", {}).values():
        keys.update(record.get("counters", {}))
        keys.update(record.get("gauges", {}))
        keys.update(record.get("histograms", {}))
    return keys


def missing_keys(payload: Mapping[str, Any],
                 required: list[str]) -> list[str]:
    """The ``required`` prefixes matching no counter/gauge/histogram key
    anywhere in the payload (each unmatched prefix fails the gate)."""
    present = _instrument_keys(payload)
    return [prefix for prefix in required
            if not any(key.startswith(prefix) for key in present)]


def render_report(comparison: Comparison,
                  missing: list[str] | None = None) -> str:
    """The human-readable gate report (diagnostics stream)."""
    lines: list[str] = []
    missing = missing or []
    for prefix in missing:
        lines.append(f"FAIL missing instrumentation: no key matches "
                     f"{prefix!r}")
    for regression in comparison.regressions:
        lines.append(f"FAIL {regression.kind}: {regression.detail}")
    for warning in comparison.warnings:
        lines.append(f"warn {warning}")
    for improvement in comparison.improved:
        lines.append(f"ok improved {improvement}")
    for nodeid in comparison.missing_tests:
        lines.append(f"note baseline test absent from current run: "
                     f"{_short_id(nodeid)}")
    for nodeid in comparison.new_tests:
        lines.append(f"note new test (no baseline): {_short_id(nodeid)}")
    verdict = "PASS" if comparison.ok and not missing else "FAIL"
    lines.append(
        f"{verdict}: {len(comparison.regressions)} regression(s), "
        f"{len(missing)} missing instrumentation key(s), "
        f"{len(comparison.warnings)} counter warning(s)")
    return "\n".join(lines)
