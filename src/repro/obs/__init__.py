"""repro.obs — dependency-free observability for the decision procedures.

Four layers, all zero-cost when disabled (see DESIGN.md's perf notes):

* **Spans** (:func:`span`): context-managed wall-clock timers with nesting,
  trace/span/parent ids and epoch anchors, attached to the innermost active
  :class:`Recording` of the current thread.
* **Metrics** (:func:`count`, :func:`gauge`, :func:`observe`): named
  monotone counters, last-value gauges, and fixed-bucket latency/size
  :class:`Histogram`\\ s with p50/p90/p99 summaries, scoped to the active
  recording so successive runs start from a clean slate.
* **Run records** (:class:`RunRecord`): a JSON-serializable account of one
  whole decision-procedure invocation — inputs, engine, verdict, the span
  tree, and all metrics — produced by :meth:`Recording.to_run_record`.
* **Trace export** (:mod:`repro.obs.traceout`): run records — including
  worker records shipped across process boundaries by the batch runner —
  rendered as Chrome trace-event JSON, loadable in Perfetto.

Instrumentation points throughout the library call :func:`span` /
:func:`count` / :func:`observe` unconditionally; with no recording active
these are no-ops behind a single module-flag check, so the tier-1 test
suite pays nothing.  Enable ambient collection with
:func:`enable`/:func:`disable` (used by the benchmark harness) or scope it
with ``with record("name") as rec: ...``.
"""

from .core import (
    NULL_SPAN,
    Recording,
    Span,
    active,
    count,
    disable,
    enable,
    gauge,
    is_enabled,
    note,
    observe,
    record,
    span,
)
from .histogram import Histogram
from .runrecord import RunRecord

__all__ = [
    "NULL_SPAN",
    "Histogram",
    "Recording",
    "RunRecord",
    "Span",
    "active",
    "count",
    "disable",
    "enable",
    "gauge",
    "is_enabled",
    "note",
    "observe",
    "record",
    "span",
]
