"""Fixed-bucket histograms for the observability layer.

``obs.observe(name, value)`` feeds one of these per metric name on the
active recording.  The design goals, in order:

1. **Cheap updates.**  ``observe`` is called from hot loops (one
   observation per saturation round, per problem, per cache probe), so an
   update is a bisect plus three arithmetic ops — no per-observation
   allocation, no exact-value retention.
2. **Stable buckets.**  Every histogram shares one fixed log-spaced bucket
   ladder (a 1–2–5 decade pattern from 1e-7 to 1e4), so histograms from
   different runs, processes, and sessions can be compared and merged
   bucket-by-bucket without rebinning.  The ladder comfortably spans
   microsecond-scale cache probes to multi-second saturation phases, and
   doubles for dimensionless counts (evals per round, nodes lifted).
3. **Quantiles without samples.**  p50/p90/p99 are read off the bucket
   counts by linear interpolation inside the crossing bucket, clamped to
   the exact observed ``min``/``max`` — the classic Prometheus-style
   estimate, accurate to bucket resolution (±25% worst case on this
   ladder, far tighter near the recorded extremes).

Summaries serialize into :class:`~repro.obs.RunRecord` as plain dicts
(see :meth:`Histogram.to_dict`) and round-trip through
:meth:`Histogram.from_dict`.
"""

from __future__ import annotations

from bisect import bisect_left

__all__ = ["DEFAULT_BOUNDS", "Histogram"]


def _build_bounds() -> tuple[float, ...]:
    bounds: list[float] = []
    for decade in range(-7, 5):
        for mantissa in (1.0, 2.0, 5.0):
            bounds.append(mantissa * 10.0 ** decade)
    return tuple(bounds)


#: Upper bucket bounds (inclusive), shared by every histogram: a 1–2–5
#: ladder over 1e-7 … 5e4.  Values above the last bound land in a final
#: overflow bucket.
DEFAULT_BOUNDS: tuple[float, ...] = _build_bounds()


class Histogram:
    """One metric's distribution: fixed log buckets + exact extremes."""

    __slots__ = ("bounds", "counts", "count", "total", "min", "max")

    def __init__(self, bounds: tuple[float, ...] = DEFAULT_BOUNDS):
        self.bounds = bounds
        #: ``counts[i]`` observations with ``value <= bounds[i]``;
        #: ``counts[len(bounds)]`` is the overflow bucket.
        self.counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        value = float(value)
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    # ------------------------------------------------------------ quantiles

    def quantile(self, q: float) -> float:
        """The estimated ``q``-quantile (``0 <= q <= 1``); exact when all
        observations share a bucket, else interpolated within the crossing
        bucket and clamped to the observed ``[min, max]``."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile fraction must be in [0, 1], got {q}")
        if self.count == 0:
            raise ValueError("quantile of an empty histogram")
        if self.count == 1:
            # Every quantile of a single observation *is* that observation.
            # The clamp below usually lands there too, but make it
            # structural rather than an artifact of ``min == max``: bucket
            # interpolation has nothing to say about one sample.
            return self.min
        target = q * self.count
        cumulative = 0
        for index, bucket_count in enumerate(self.counts):
            if bucket_count == 0:
                continue
            if cumulative + bucket_count >= target:
                lower = self.bounds[index - 1] if index > 0 else 0.0
                upper = self.bounds[index] if index < len(self.bounds) \
                    else self.max
                fraction = (target - cumulative) / bucket_count
                estimate = lower + (upper - lower) * max(0.0, fraction)
                return min(max(estimate, self.min), self.max)
            cumulative += bucket_count
        return self.max  # pragma: no cover - guarded by count above

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    # -------------------------------------------------------- serialization

    def to_dict(self) -> dict:
        """Summary + sparse buckets, the shape stored in run records."""
        data: dict = {
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "mean": self.mean,
        }
        data["p50"] = self.quantile(0.50) if self.count else None
        data["p90"] = self.quantile(0.90) if self.count else None
        data["p99"] = self.quantile(0.99) if self.count else None
        data["buckets"] = [
            [self.bounds[i] if i < len(self.bounds) else None, n]
            for i, n in enumerate(self.counts) if n
        ]
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "Histogram":
        histogram = cls()
        histogram.count = data["count"]
        histogram.total = data["sum"]
        histogram.min = data["min"] if data["min"] is not None \
            else float("inf")
        histogram.max = data["max"] if data["max"] is not None \
            else float("-inf")
        bound_index = {bound: i for i, bound in enumerate(histogram.bounds)}
        for bound, n in data.get("buckets", ()):
            index = bound_index[bound] if bound is not None \
                else len(histogram.bounds)
            histogram.counts[index] = n
        return histogram

    def merge(self, other: "Histogram") -> "Histogram":
        """Fold ``other`` into this histogram (same bucket ladder)."""
        if other.bounds != self.bounds:
            raise ValueError("cannot merge histograms with different buckets")
        for index, n in enumerate(other.counts):
            self.counts[index] += n
        self.count += other.count
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if not self.count:
            return "Histogram(empty)"
        return (f"Histogram(count={self.count}, mean={self.mean:.4g}, "
                f"p50={self.quantile(0.5):.4g}, max={self.max:.4g})")
