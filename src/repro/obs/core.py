"""Spans, counters, gauges, histograms, and the recording stack.

A :class:`Recording` owns one span tree plus counter/gauge/histogram
tables.  Recordings nest (a stats-collecting ``equivalent`` drives two
``contains`` calls whose spans all land in the outer recording) and are
thread-local, so concurrent recordings never interleave.  The
module-global ``_ENABLED`` flag short-circuits every instrumentation call
when no recording exists anywhere — the "no-op fast path" that keeps
instrumented hot loops at full speed in ordinary test runs.

Trace identity (second-generation layer): every recording carries a
``trace_id`` and allocates dense ``span_id``\\ s; each span records its
``parent_id`` and a wall-clock ``start_ts`` (epoch seconds) next to its
monotonic duration.  Wall-clock anchoring is what lets
:mod:`repro.obs.traceout` merge span trees from *different processes*
(batch coordinator + forked workers share the system clock) onto one
Chrome trace-event timeline.
"""

from __future__ import annotations

import os
import threading
import time

from .histogram import Histogram

__all__ = [
    "NULL_SPAN",
    "Recording",
    "Span",
    "active",
    "count",
    "disable",
    "enable",
    "gauge",
    "is_enabled",
    "note",
    "observe",
    "record",
    "span",
]

_ENABLED = False  # True iff at least one Recording is live (any thread).
_live_recordings = 0
_lock = threading.Lock()
_local = threading.local()


def _thread_stack() -> list["Recording"]:
    stack = getattr(_local, "stack", None)
    if stack is None:
        stack = []
        _local.stack = stack
    return stack


def is_enabled() -> bool:
    """True iff some recording is live (instrumentation is not a no-op)."""
    return _ENABLED


def active() -> "Recording | None":
    """The innermost recording of the current thread, or None."""
    if not _ENABLED:
        return None
    stack = getattr(_local, "stack", None)
    return stack[-1] if stack else None


class Span:
    """One timed section.  Use as a context manager, or drive
    :meth:`start`/:meth:`finish` manually for loop-carried spans (the
    bounded engine opens one span per candidate-tree size this way)."""

    __slots__ = ("name", "attrs", "children", "duration_s", "span_id",
                 "parent_id", "start_ts", "_recording", "_t0")

    def __init__(self, recording: "Recording", name: str, attrs: dict):
        self.name = name
        self.attrs = attrs
        self.children: list[Span] = []
        self.duration_s: float | None = None
        self.span_id = recording._alloc_span_id()
        self.parent_id: int | None = None
        self.start_ts: float | None = None
        self._recording = recording
        self._t0: float | None = None

    def start(self) -> "Span":
        stack = self._recording._span_stack
        if stack:
            parent = stack[-1]
            parent.children.append(self)
            self.parent_id = parent.span_id
            stack.append(self)
        self.start_ts = time.time()
        self._t0 = time.perf_counter()
        return self

    def finish(self) -> None:
        if self._t0 is None or self.duration_s is not None:
            return
        self.duration_s = time.perf_counter() - self._t0
        stack = self._recording._span_stack
        if self not in stack:
            # Already unwound — an exception escaped an enclosing span, whose
            # exit popped this one as "abandoned".  A late finish() (typical
            # for loop-carried spans closed from a generator's ``finally``)
            # must leave the stack alone: popping here would evict *live*
            # spans and corrupt the timings of every later span in this
            # recording.
            return
        while len(stack) > 1 and stack.pop() is not self:
            pass  # unwind spans abandoned by an exception

    def annotate(self, **attrs) -> None:
        """Attach attributes discovered mid-span (e.g. items processed)."""
        self.attrs.update(attrs)

    def __enter__(self) -> "Span":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.finish()

    def to_dict(self) -> dict:
        data: dict = {"name": self.name, "duration_s": self.duration_s,
                      "id": self.span_id, "parent": self.parent_id}
        if self.start_ts is not None:
            data["start_ts"] = self.start_ts
        if self.attrs:
            data["attrs"] = dict(self.attrs)
        if self.children:
            data["children"] = [child.to_dict() for child in self.children]
        return data


class _NullSpan:
    """Shared do-nothing span handed out while instrumentation is off."""

    __slots__ = ()

    def start(self) -> "_NullSpan":
        return self

    def finish(self) -> None:
        return None

    def annotate(self, **attrs) -> None:
        return None

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None


NULL_SPAN = _NullSpan()


class Recording:
    """Collects one run's spans and metrics; usable as a context manager.

    The recording's lifetime brackets a *root span* named after it; spans,
    counters, gauges, and notes issued anywhere down the call stack (same
    thread) accumulate here until :meth:`stop`.
    """

    _trace_seq = 0
    _trace_lock = threading.Lock()

    def __init__(self, name: str, **meta):
        self.name = name
        self.meta: dict = dict(meta)
        self.counters: dict[str, int] = {}
        self.gauges: dict[str, float] = {}
        self.histograms: dict[str, Histogram] = {}
        with Recording._trace_lock:
            Recording._trace_seq += 1
            sequence = Recording._trace_seq
        #: Stable-ish trace identity: unique within a process run, and
        #: distinguishable across processes (forked workers embed their pid).
        self.trace_id = f"{os.getpid():x}-{sequence:x}"
        self._span_seq = 0
        self.root = Span(self, name, {})
        self._span_stack: list[Span] = []
        self._live = False

    def _alloc_span_id(self) -> int:
        span_id = self._span_seq
        self._span_seq += 1
        return span_id

    # ------------------------------------------------------------ lifecycle

    def start(self) -> "Recording":
        global _ENABLED, _live_recordings
        if self._live:
            raise RuntimeError(f"recording {self.name!r} already started")
        self._live = True
        _thread_stack().append(self)
        with _lock:
            _live_recordings += 1
            _ENABLED = True
        # Root span bypasses Span.start: there is no parent to attach to.
        self._span_stack.append(self.root)
        self.root.start_ts = time.time()
        self.root._t0 = time.perf_counter()
        return self

    def stop(self) -> "Recording":
        global _ENABLED, _live_recordings
        if not self._live:
            return self
        while len(self._span_stack) > 1:
            self._span_stack[-1].finish()
        self.root.duration_s = time.perf_counter() - self.root._t0
        self._span_stack.clear()
        self._live = False
        stack = _thread_stack()
        if self in stack:
            stack.remove(self)
        with _lock:
            _live_recordings -= 1
            _ENABLED = _live_recordings > 0
        return self

    def __enter__(self) -> "Recording":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------- metrics

    def note(self, key: str, value) -> None:
        """Record a run-level fact (engine chosen, verdict, input sizes)."""
        self.meta[key] = value

    def observe(self, name: str, value: float) -> None:
        """Add one observation to the named histogram."""
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = Histogram()
        histogram.observe(value)

    def to_run_record(self):
        """Freeze this recording into a :class:`~repro.obs.RunRecord`."""
        from .runrecord import RunRecord

        duration = self.root.duration_s
        if duration is None and self.root._t0 is not None:
            duration = time.perf_counter() - self.root._t0
        return RunRecord(
            name=self.name,
            duration_s=duration if duration is not None else 0.0,
            meta=dict(self.meta),
            counters=dict(self.counters),
            gauges=dict(self.gauges),
            histograms={name: histogram.to_dict()
                        for name, histogram in self.histograms.items()},
            spans=self.root.to_dict(),
            trace_id=self.trace_id,
        )


# --------------------------------------------------------------- module API


def record(name: str, **meta) -> Recording:
    """A fresh recording, ready for ``with record("satisfiable") as rec:``."""
    return Recording(name, **meta)


def span(name: str, **attrs):
    """A timed span under the active recording; NULL_SPAN when disabled."""
    if not _ENABLED:
        return NULL_SPAN
    recording = active()
    if recording is None:
        return NULL_SPAN
    return Span(recording, name, attrs)


def count(name: str, amount: int = 1) -> None:
    """Increment a named counter on the active recording (no-op otherwise)."""
    if not _ENABLED:
        return
    recording = active()
    if recording is not None:
        counters = recording.counters
        counters[name] = counters.get(name, 0) + amount


def gauge(name: str, value: float) -> None:
    """Set a named gauge on the active recording (last write wins)."""
    if not _ENABLED:
        return
    recording = active()
    if recording is not None:
        recording.gauges[name] = value


def note(key: str, value) -> None:
    """Attach a run-level fact to the active recording (no-op otherwise)."""
    if not _ENABLED:
        return
    recording = active()
    if recording is not None:
        recording.meta[key] = value


def observe(name: str, value: float) -> None:
    """Add one observation to the named histogram on the active recording
    (no-op otherwise).  Use for latency/size distributions — per-problem
    wall time, queue waits, saturation-round cost — where a counter's sum
    or a gauge's last value would hide the tail."""
    if not _ENABLED:
        return
    recording = active()
    if recording is not None:
        recording.observe(name, value)


_ambient: Recording | None = None


def enable(name: str = "ambient") -> Recording:
    """Start an ambient recording on this thread (idempotent).  Used by
    harnesses that want metrics without scoping every call site."""
    global _ambient
    if _ambient is None:
        _ambient = Recording(name).start()
    return _ambient


def disable() -> "Recording | None":
    """Stop the ambient recording (if any) and return it."""
    global _ambient
    recording = _ambient
    if recording is not None:
        recording.stop()
        _ambient = None
    return recording
