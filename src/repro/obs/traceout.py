"""Chrome trace-event export: one timeline across processes.

Run records carry span trees with wall-clock anchors (``start_ts``) and
dense ``id``/``parent`` links (:mod:`repro.obs.core`).  This module turns
them into the Chrome trace-event JSON format — loadable by Perfetto
(https://ui.perfetto.dev) and ``chrome://tracing`` — and, for the batch
runner, *merges* the coordinator's recording with the per-problem
coordinator-thread recordings and every worker process's shipped record
into a single file with one lane per process/thread.

Layout of a batch trace:

* pid 0 / "coordinator" — the main-thread batch recording (pool setup,
  aggregate metrics) plus one tid lane per coordinator thread showing the
  per-problem lifecycle: cache probes, engine attempts, races.
* one pid per worker process — the span tree the worker recorded while
  solving (engine spans, saturation phases, parity solving), shipped back
  over the result pipe.

All events use the wall clock (epoch microseconds), so lanes from forked
workers line up with the coordinator without clock translation.  Workers
that died or timed out shipped no record; their lanes are simply absent —
the coordinator lane still shows the attempt and its fate.

The produced payload is the object form::

    {"traceEvents": [...], "displayTimeUnit": "ms",
     "otherData": {"format": "...", "runs": [full run records ...]}}

``otherData.runs`` carries the complete :class:`~repro.obs.RunRecord`
dicts the trace was rendered from, so a single ``--trace`` file is both a
Perfetto timeline *and* the machine-readable stats payload (counters,
gauges, histograms, engine decisions).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Mapping

from .runrecord import RunRecord

__all__ = [
    "TRACE_FORMAT",
    "batch_trace",
    "events_by_lane",
    "single_trace",
    "span_events",
    "span_parents",
    "validate_trace",
    "worker_pids",
    "write_trace",
]

#: Stamped into ``otherData.format``; bump when the lane layout changes.
TRACE_FORMAT = "repro-trace-1"


def _as_record_dict(record: RunRecord | Mapping[str, Any]) -> dict:
    if isinstance(record, RunRecord):
        return record.to_dict()
    return dict(record)


def span_parents(record: RunRecord | Mapping[str, Any]) -> dict[int, int | None]:
    """``{span_id: parent_id}`` over a record's span tree.

    The tree is well-formed iff exactly one span has ``parent is None``
    (the root) and every other ``parent`` names another span in the tree —
    the invariant the trace tests assert.
    """
    data = _as_record_dict(record)
    parents: dict[int, int | None] = {}

    def walk(node: Mapping[str, Any]) -> None:
        if not node:
            return
        parents[node["id"]] = node.get("parent")
        for child in node.get("children", ()):
            walk(child)

    walk(data.get("spans", {}))
    return parents


def span_events(record: RunRecord | Mapping[str, Any], *, pid: int,
                tid: int | str, category: str = "repro") -> list[dict]:
    """Flatten a record's span tree into Chrome "complete" (``ph: X``)
    events on the given pid/tid lane.

    Spans without a wall-clock anchor (never started, or written by the
    schema-v1 layer) inherit their parent's anchor so the tree still
    renders; unfinished spans get zero duration.
    """
    data = _as_record_dict(record)
    trace_id = data.get("trace_id", "")
    events: list[dict] = []

    def walk(node: Mapping[str, Any], inherited_ts: float) -> None:
        if not node:
            return
        start_ts = node.get("start_ts", inherited_ts)
        duration = node.get("duration_s") or 0.0
        args: dict = {"span_id": node.get("id")}
        if trace_id:
            args["trace_id"] = trace_id
        if node.get("parent") is not None:
            args["parent_id"] = node["parent"]
        attrs = node.get("attrs")
        if attrs:
            args.update(attrs)
        events.append({
            "name": node.get("name", "?"),
            "cat": category,
            "ph": "X",
            "ts": start_ts * 1e6,
            "dur": duration * 1e6,
            "pid": pid,
            "tid": tid,
            "args": args,
        })
        for child in node.get("children", ()):
            walk(child, start_ts)

    walk(data.get("spans", {}), 0.0)
    return events


def _metadata_event(kind: str, pid: int, name: str,
                    tid: int | str = 0) -> dict:
    return {"name": kind, "ph": "M", "pid": pid, "tid": tid,
            "args": {"name": name}}


def _payload(events: list[dict], runs: list[dict]) -> dict:
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"format": TRACE_FORMAT, "runs": runs},
    }


def single_trace(record: RunRecord | Mapping[str, Any], *,
                 process_name: str = "repro") -> dict:
    """A one-process trace payload for a single run record (the CLI's
    ``satisfiable``/``contains`` ``--trace``)."""
    data = _as_record_dict(record)
    events = [_metadata_event("process_name", 0, process_name)]
    events.extend(span_events(data, pid=0, tid=0))
    return _payload(events, [data])


def batch_trace(report, coordinator: RunRecord | Mapping[str, Any] | None = None,
                ) -> dict:
    """The merged cross-process trace of a finished batch.

    ``report`` is a :class:`~repro.parallel.runner.BatchReport`;
    ``coordinator`` the main-thread batch recording (``report.stats`` is
    used when omitted).  Worker lanes come from each outcome's shipped
    ``stats`` record (keyed by the worker's real pid); coordinator-thread
    lanes from ``outcome.coord_stats``.
    """
    events: list[dict] = [_metadata_event("process_name", 0, "coordinator")]
    runs: list[dict] = []
    if coordinator is None:
        coordinator = getattr(report, "stats", None)
    if coordinator is not None:
        data = _as_record_dict(coordinator)
        events.extend(span_events(data, pid=0, tid=0))
        runs.append(data)
    worker_pids: dict[int, int] = {}
    for outcome in report.outcomes:
        coord = getattr(outcome, "coord_stats", None)
        if coord:
            tid = f"problem[{outcome.index}]"
            events.append(_metadata_event("thread_name", 0,
                                          coord.get("name", tid), tid))
            events.extend(span_events(coord, pid=0, tid=tid))
            runs.append(dict(coord))
        stats = outcome.stats
        if not stats:
            continue  # timed-out / died workers shipped nothing
        meta = stats.get("meta", {})
        pid = meta.get("pid")
        if pid is None:
            # Cache hits and schema-v1 records have no worker pid; render
            # them on a shared synthetic lane.
            pid = -1
        if pid not in worker_pids:
            worker_pids[pid] = pid
            label = "cache" if pid == -1 else f"worker pid={pid}"
            events.append(_metadata_event("process_name", pid, label))
        events.extend(span_events(stats, pid=pid,
                                  tid=meta.get("problem", outcome.index)))
        runs.append(dict(stats))
    return _payload(events, runs)


def write_trace(path: str | Path, payload: Mapping[str, Any]) -> None:
    """Write a trace payload as JSON (atomic enough for CI artifacts)."""
    Path(path).write_text(json.dumps(payload, sort_keys=True) + "\n",
                          encoding="utf-8")


def validate_trace(payload: Mapping[str, Any]) -> list[str]:
    """Structural lint of a trace payload; returns problem descriptions
    (empty = valid).  Used by tests and the CI smoke gate."""
    problems: list[str] = []
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]
    for index, event in enumerate(events):
        for key in ("name", "ph", "pid", "tid"):
            if key not in event:
                problems.append(f"event #{index} missing {key!r}")
        if event.get("ph") == "X":
            if not isinstance(event.get("ts"), (int, float)):
                problems.append(f"event #{index} has no numeric ts")
            if event.get("dur", 0) < 0:
                problems.append(f"event #{index} has negative dur")
    other = payload.get("otherData", {})
    if other.get("format") != TRACE_FORMAT:
        problems.append("otherData.format missing or unknown")
    return problems


def worker_pids(payload: Mapping[str, Any]) -> set[int]:
    """The distinct worker-process pids present in a trace payload."""
    return {
        event["pid"] for event in payload.get("traceEvents", ())
        if isinstance(event.get("pid"), int) and event["pid"] > 0
    }


def events_by_lane(payload: Mapping[str, Any]) -> dict[tuple, list[dict]]:
    """Group span events by ``(pid, tid)`` lane, ordered by timestamp."""
    lanes: dict[tuple, list[dict]] = {}
    for event in payload.get("traceEvents", ()):
        if event.get("ph") != "X":
            continue
        lanes.setdefault((event["pid"], event["tid"]), []).append(event)
    for lane in lanes.values():
        lane.sort(key=lambda event: event["ts"])
    return lanes
