"""Translating automata back to path expressions (Lemma 33).

* :func:`automaton_to_path` — a ``CoreXPath(*, ≈)`` path expression
  equivalent to a path automaton, by McNaughton–Yamada state elimination over
  the path-expression algebra (``∪`` for edge joins, ``/`` for concatenation,
  ``(·)*`` for loops).  Basic steps are expressed exactly as in §3.1:
  ``↓₁ = ↓[¬⟨←⟩]`` and ``↑₁ = .[¬⟨←⟩]/↑``.
* :func:`nf_to_expr` — a node expression for a normal-form expression, using
  ``loop(π) = π ≈ .``.
* :func:`letnf_to_expr` / :func:`epa_to_path` — Lemma 33(3): expand the
  ``let`` environment at the expression level (exponential in general).

Composed with the Lemma 16 translation this yields the Theorem 34 pipeline
``CoreXPath(*, ∩) → CoreXPath(*, ≈)`` whose size growth the succinctness
benchmark measures.
"""

from __future__ import annotations

from ..xpath.ast import (
    And,
    Axis,
    AxisStep,
    Filter,
    Label,
    NodeExpr,
    Not,
    PathEquality,
    PathExpr,
    Self,
    Seq,
    SomePath,
    Star,
    Top,
    Union,
)
from ..xpath.rewrite import substitute_label
from .epa import EPA, LetNF
from .nf import NFAnd, NFExpr, NFLabel, NFLoop, NFNot, NFTop, PathAutomaton, Step

__all__ = ["automaton_to_path", "nf_to_expr", "letnf_to_expr", "epa_to_path"]

#: Marker for the empty relation in the elimination tables.
_EMPTY = None

_FIRST_CHILD_PATH: PathExpr = Filter(
    AxisStep(Axis.DOWN), Not(SomePath(AxisStep(Axis.LEFT)))
)
_PARENT_OF_FIRST_PATH: PathExpr = Seq(
    Filter(Self(), Not(SomePath(AxisStep(Axis.LEFT)))), AxisStep(Axis.UP)
)


def _step_path(step: Step) -> PathExpr:
    if step is Step.FIRST_CHILD:
        return _FIRST_CHILD_PATH
    if step is Step.PARENT_OF_FIRST:
        return _PARENT_OF_FIRST_PATH
    if step is Step.RIGHT:
        return AxisStep(Axis.RIGHT)
    return AxisStep(Axis.LEFT)


def _join(left, right):
    """Union in the elimination algebra (None = empty relation)."""
    if left is _EMPTY:
        return right
    if right is _EMPTY:
        return left
    if left == right:
        return left
    return Union(left, right)


def _chain(left, right):
    """Concatenation in the elimination algebra."""
    if left is _EMPTY or right is _EMPTY:
        return _EMPTY
    if isinstance(left, Self):
        return right
    if isinstance(right, Self):
        return left
    return Seq(left, right)


def _loop(inner):
    """Reflexive-transitive closure in the elimination algebra."""
    if inner is _EMPTY or isinstance(inner, Self):
        return Self()
    if isinstance(inner, Star):
        return inner
    return Star(inner)


def automaton_to_path(auto: PathAutomaton) -> PathExpr:
    """A CoreXPath(*, ≈) path expression equivalent to ``auto``."""
    edges: dict[tuple[int, int], PathExpr] = {}

    def add_edge(source: int, target: int, path: PathExpr) -> None:
        edges[(source, target)] = _join(edges.get((source, target), _EMPTY), path)

    for source, symbol, target in auto.transitions:
        if isinstance(symbol, Step):
            add_edge(source, target, _step_path(symbol))
        elif isinstance(symbol, NFTop):
            add_edge(source, target, Self())
        else:
            add_edge(source, target, Filter(Self(), nf_to_expr(symbol)))

    initial, final = auto.initial, auto.final

    def edge(a: int, b: int):
        return edges.get((a, b), _EMPTY)

    middle = [s for s in range(auto.num_states) if s not in (initial, final)]

    def degree(state: int) -> int:
        return sum(1 for pair in edges if state in pair)

    for victim in sorted(middle, key=degree):
        self_loop = _loop(edge(victim, victim))
        incoming = [(a, path) for (a, b), path in list(edges.items())
                    if b == victim and a != victim]
        outgoing = [(b, path) for (a, b), path in list(edges.items())
                    if a == victim and b != victim]
        for (a, _) in incoming:
            edges.pop((a, victim), None)
        for (b, _) in outgoing:
            edges.pop((victim, b), None)
        edges.pop((victim, victim), None)
        for a, into in incoming:
            for b, out in outgoing:
                bypass = _chain(_chain(into, self_loop), out)
                if bypass is not _EMPTY:
                    edges[(a, b)] = _join(edge(a, b), bypass)

    if initial == final:
        return _loop(edge(initial, initial))
    loop_i = _loop(edge(initial, initial))
    loop_f = _loop(edge(final, final))
    forward = edge(initial, final)
    if forward is _EMPTY:
        return Filter(Self(), Not(Top()))  # the empty relation
    backward = edge(final, initial)
    step = _chain(_chain(loop_i, forward), loop_f)
    if backward is _EMPTY:
        return step if step is not _EMPTY else Filter(Self(), Not(Top()))
    back = _chain(_chain(backward, loop_i), _chain(forward, loop_f))
    return _chain(step, _loop(back))


def nf_to_expr(expr: NFExpr) -> NodeExpr:
    """A CoreXPath(*, ≈) node expression equivalent to a normal-form
    expression; ``loop(π)`` becomes ``π-expression ≈ .``."""
    match expr:
        case NFLabel(name=name):
            return Label(name)
        case NFTop():
            return Top()
        case NFNot(child=c):
            return Not(nf_to_expr(c))
        case NFAnd(left=a, right=b):
            return And(nf_to_expr(a), nf_to_expr(b))
        case NFLoop(automaton=auto):
            return PathEquality(automaton_to_path(auto), Self())
    raise TypeError(f"unknown normal-form expression {expr!r}")


def letnf_to_expr(let_expr: LetNF) -> NodeExpr:
    """Lemma 33(3): translate core and definitions, then substitute the
    definitions front-to-back at the expression level."""
    result = nf_to_expr(let_expr.core)
    remaining = [(name, nf_to_expr(defn)) for name, defn in let_expr.environment]
    while remaining:
        name, defn = remaining.pop(0)
        result = substitute_label(result, name, defn)
        remaining = [
            (other, substitute_label(other_defn, name, defn))
            for other, other_defn in remaining
        ]
    return result


def epa_to_path(epa: EPA) -> PathExpr:
    """A CoreXPath(*, ≈) path expression for an extended path automaton."""
    result = automaton_to_path(epa.automaton)
    remaining = [(name, nf_to_expr(defn)) for name, defn in epa.environment]
    while remaining:
        name, defn = remaining.pop(0)
        result = substitute_label(result, name, defn)
        remaining = [
            (other, substitute_label(other_defn, name, defn))
            for other, other_defn in remaining
        ]
    return result
