"""Emptiness of the Table III 2ATAs (Theorem 10) over the first-child /
next-sibling encoding.

:func:`decide_emptiness` takes the 2ATA ``A_φ`` of :func:`build_twoata`
and decides whether *some finite XML tree* satisfies ``φ`` somewhere —
i.e. whether ``L(A_φ)`` is nonempty — returning a concrete witness tree
when it is.  Together with Prop. 4 this is the paper's conclusive decision
procedure for CoreXPath(*, ≈) containment; the ``automata`` engine
(:mod:`repro.analysis.automata_engine`) wires it into the registry.

The reduction, in the shape the symbolic solvers of Genevès et al. use
(PAPERS.md): an on-the-fly fixpoint over *node summaries* followed by a
parity game on the discovered summary space.

**Summaries.**  Work in the first-child/next-sibling view: every node has
at most two FCNS children (``c1`` = first child, ``c2`` = next sibling),
and the four basic steps move along FCNS tree edges (↓₁/↑₁ along ``c1``
edges, →/← along ``c2`` edges).  For a path automaton base ``π`` with
states ``Q``, any product path from ``(n, q)`` to ``(n, q')`` decomposes
at its visits to ``n`` into test edges at ``n``, excursions into the FCNS
subtree of a child, and excursions into the context above.  Writing
``tc`` for reflexive-transitive closure over state pairs this gives exact
mutual recurrences:

* subtree summary  ``S(n) = tc(tests(n) ∪ wrap(↓₁, S(c1)) ∪ wrap(→, S(c2)))``
* context summary  ``W(c1) = tc(tests(n) ∪ wrap(→, S(c2)) ∪ up(n))`` where
  ``up(n) = wrapup(σ, W(n))`` for the attachment step ``σ`` of ``n``
* full relation     ``Full(n) = tc(S(n) ∪ up(n))`` — ``loop(π_{q,q'})``
  holds at ``n`` iff ``(q, q') ∈ Full(n)``

with ``wrap(τ, R) = {(q_i, q_l) | (q_i, τ, q_j), (q_k, τ˘, q_l) ∈ Δ,
(q_j, q_k) ∈ R}`` and ``wrapup`` its upward twin.  Tests mention only
*strictly nested* automata, so bases form a DAG and are processed in
topological rank order — the truth of a test at ``n`` is read off the
``Full`` relations of lower-rank bases, already computed at ``n``.

**Saturation.**  A node summary is a pair ``(ctx, S̄)`` of an interned
context (``None`` at the root, else the attachment step plus the context
relations ``W̄``) and the per-base subtree relations ``S̄``.  Summaries
are derived leaves-up on demand: contexts computed by any evaluation are
activated, every activated context seeds leaf summaries, and derived
summaries combine under all activated contexts.  Label classes come from
the automaton's :class:`~repro.automata.core.AlphabetPartition`, so the
infinite alphabet costs ``|labels φ mentions| + 1`` classes.  The
recurrences are rank-stratified (rank-0 relations never look at the
context, rank-``r`` relations look only at ranks ``< r`` of it), so the
demanded contexts converge to the exact ones after at most one round per
rank — this is what makes the demand-driven search complete, not just
sound.

**The game.**  The discovered summaries form a parity game: Eve picks a
derivation (label class + child summaries) for each summary, Adam picks
which FCNS child to descend into; every internal position has priority 1
and the "no child left" sink priority 2, so Eve wins iff she can build a
*finite* consistent tree — exactly the co-Büchi discipline the 2ATA's
``Acc`` imposes on ``loop`` states.  The verdict is read off
:func:`repro.games.solve_parity`; on nonemptiness a minimal-rank winning
strategy is decoded back through the FCNS encoding into an
:class:`~repro.trees.XMLTree` witness.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass

from .. import obs
from ..games import ParityGame, solve_parity
from ..trees import XMLTree
from .nf import (
    NFAnd,
    NFExpr,
    NFLabel,
    NFLoop,
    NFNot,
    NFTop,
    PathAutomaton,
    Step,
    nf_subexpressions,
)
from .twoata import TwoATA

__all__ = ["EmptinessLimit", "EmptinessResult", "decide_emptiness"]

#: Summary-space guards: past these the checker raises
#: :class:`EmptinessLimit` and the engine declines to the bounded fallback.
DEFAULT_MAX_EVALS = 400_000
DEFAULT_MAX_ENTRIES = 6_000
DEFAULT_MAX_CONTEXTS = 2_000

#: At most this many alternative derivations are kept per summary; the
#: first one is always the (well-founded) derivation that discovered it.
_COMBOS_PER_ENTRY = 4


class EmptinessLimit(RuntimeError):
    """The summary space outgrew the configured guards."""


@dataclass(frozen=True)
class EmptinessResult:
    """Outcome of an emptiness check.

    ``empty`` — is ``L(A_φ)`` empty?  ``witness`` — a tree accepted by the
    automaton (``None`` iff empty).  The counters describe the run:
    summaries and contexts discovered, positions of the final game, and the
    saturation-phase profile (outer rounds, node evaluations performed).
    """

    empty: bool
    witness: XMLTree | None
    entries: int
    contexts: int
    game_positions: int
    rounds: int = 0
    evals: int = 0


@dataclass(frozen=True)
class _Eval:
    """Result of evaluating one node template ``(ctx, ℓ, S̄(c1), S̄(c2))``:
    its subtree summary, the contexts its FCNS children would live in, and
    whether ``φ'`` holds at it (meaningful for root candidates)."""

    svec: int
    ctx1: int
    ctx2: int
    root_true: bool


@dataclass
class _Entry:
    """One derived summary ``(ctx, S̄)`` with its known derivations."""

    combos: list[tuple[int, tuple | None, tuple | None]]


#: Dense indices for the four steps; all hot-path tables key on these
#: instead of hashing enum members.
_STEPS: tuple[Step, ...] = tuple(Step)
_STEP_INDEX: dict[Step, int] = {step: i for i, step in enumerate(_STEPS)}
_CONVERSE: tuple[int, ...] = tuple(
    _STEP_INDEX[step.converse] for step in _STEPS
)
_FC = _STEP_INDEX[Step.FIRST_CHILD]
_RIGHT = _STEP_INDEX[Step.RIGHT]


class _Checker:
    def __init__(self, ata: TwoATA, max_evals: int, max_entries: int,
                 max_contexts: int):
        self.partition = ata.partition
        self.phi_prime: NFExpr = ata.initial_expr
        self.max_evals = max_evals
        self.max_entries = max_entries
        self.max_contexts = max_contexts

        # ---- base automata in topological (nesting) rank order
        self._base_ids: dict[tuple, int] = {}
        #: per base, per step index: the ``(source, target)`` step edges.
        self._steps: list[tuple[tuple[tuple[int, int], ...], ...]] = []
        #: per base: the test transitions, with tests compiled to predicate
        #: indices into ``_preds`` (see :meth:`_compile`).
        self._tests: list[tuple[tuple[int, int, int], ...]] = []
        self._preds: list[list] = []
        self._states: list[int] = []
        self._compile_memo: dict[int, object] = {}
        for sub in nf_subexpressions(self.phi_prime):
            if isinstance(sub, NFLoop):
                self._add_base(sub.automaton)
        self.num_bases = len(self._states)
        self._root_pred = self._compile(self.phi_prime)

        # ---- interning: relations, summary vectors, contexts
        self._rels: list[frozenset] = []
        self._rel_ids: dict[frozenset, int] = {}
        self._empty = self._rid(frozenset())
        self._vecs: list[tuple[int, ...]] = []
        self._vec_ids: dict[tuple[int, ...], int] = {}
        self._ctxs: list[tuple[int, int] | None] = [None]
        self._ctx_ids: dict[tuple[int, int] | None, int] = {None: 0}

        # ---- memoized relation algebra and node evaluation
        self._rtc_memo: dict[tuple[int, int], int] = {}
        self._rtc3_memo: dict[tuple[int, int, int, int], int] = {}
        self._wrap_memo: dict[tuple[int, int, int], int] = {}
        self._tests_memo: dict[tuple[int, int], int] = {}
        self._eval_memo: dict[tuple[int, int, int, int], _Eval] = {}
        self.evals = 0
        self.eval_hits = 0

        # ---- saturation-phase profile (plain ints on the hot path; the
        # obs layer sees them once, after saturation finishes)
        self.rounds = 0
        self.wakes_woken = 0
        self.combos_subsumed = 0

        # ---- saturation state
        self.entries: dict[tuple[int, int], _Entry] = {}
        self._pool: list[int] = []  # derived summary vectors, in order
        self._pool_set: set[int] = set()
        self._active: list[int] = []  # activated context ids, in order
        self._active_set: set[int] = set()
        #: per active context (parallel to ``_active``): pool length up to
        #: which all (class, child, child) combos have been processed.
        self._cursor: list[int] = []
        self._wakes: deque[tuple[int, int, int, int]] = deque()
        self._waiting: dict[tuple[int, int], list[tuple[int, int, int, int]]] = {}

    # ------------------------------------------------------------ base setup

    def _add_base(self, auto: PathAutomaton) -> int:
        key = (auto.num_states, auto.transitions)
        hit = self._base_ids.get(key)
        if hit is not None:
            return hit
        # Nested bases first: tests mention strictly smaller automata, so
        # this recursion is well-founded and yields a topological order.
        for _, test, _ in auto.test_transitions():
            for sub in nf_subexpressions(test):
                if isinstance(sub, NFLoop):
                    self._add_base(sub.automaton)
        hit = self._base_ids.get(key)
        if hit is not None:  # added while processing its own tests
            return hit
        index = len(self._states)
        self._base_ids[key] = index
        self._states.append(auto.num_states)
        steps: list[list[tuple[int, int]]] = [[] for _ in _STEPS]
        for source, tau, target in auto.step_transitions():
            steps[_STEP_INDEX[tau]].append((source, target))
        self._steps.append(tuple(tuple(pairs) for pairs in steps))
        self._preds.append([])
        self._tests.append(tuple(
            (source, self._compile(test, index), target)
            for source, test, target in auto.test_transitions()
        ))
        return index

    def _base_of(self, auto: PathAutomaton) -> int:
        return self._base_ids[(auto.num_states, auto.transitions)]

    def _compile(self, expr: NFExpr, base: int | None = None):
        """Compile a test expression into a closure ``fn(lcls, full)`` over
        the label class and the per-base ``Full`` relations (which, by rank
        order, are already available for every base the test mentions).

        With ``base`` given, returns the index of the predicate in that
        base's ``_preds`` slot (registering the closure if new) — the
        evaluator keys its tests-relation memo on the bitmask of those
        predicate values.  Compilation is shared by object identity; the
        expressions live in the automaton, which outlives the checker.
        """
        fn = self._compile_memo.get(id(expr))
        if fn is None:
            match expr:
                case NFLabel(name=name):
                    klass = self.partition.class_of(name)

                    def fn(lcls, full, _k=klass):
                        return lcls == _k
                case NFTop():
                    def fn(lcls, full):
                        return True
                case NFNot(child=child):
                    inner = self._compile(child)

                    def fn(lcls, full, _f=inner):
                        return not _f(lcls, full)
                case NFAnd(left=left, right=right):
                    first = self._compile(left)
                    second = self._compile(right)

                    def fn(lcls, full, _a=first, _b=second):
                        return _a(lcls, full) and _b(lcls, full)
                case NFLoop(automaton=auto):
                    pair = (auto.initial, auto.final)
                    sub_base = self._base_of(auto)

                    def fn(lcls, full, _p=pair, _b=sub_base):
                        return _p in full[_b]
                case _:
                    raise TypeError(f"unknown normal form {expr!r}")
            self._compile_memo[id(expr)] = fn
        if base is None:
            return fn
        preds = self._preds[base]
        for index, known in enumerate(preds):
            if known is fn:
                return index
        preds.append(fn)
        return len(preds) - 1

    # ------------------------------------------------------- interning layer

    def _rid(self, rel: frozenset) -> int:
        hit = self._rel_ids.get(rel)
        if hit is None:
            hit = len(self._rels)
            self._rels.append(rel)
            self._rel_ids[rel] = hit
        return hit

    def _vid(self, vec: tuple[int, ...]) -> int:
        hit = self._vec_ids.get(vec)
        if hit is None:
            hit = len(self._vecs)
            self._vecs.append(vec)
            self._vec_ids[vec] = hit
        return hit

    def _cid(self, ctx: tuple[int, int] | None) -> int:
        hit = self._ctx_ids.get(ctx)
        if hit is None:
            hit = len(self._ctxs)
            self._ctxs.append(ctx)
            self._ctx_ids[ctx] = hit
        return hit

    # ------------------------------------------------------ relation algebra
    #
    # All operations take and return dense relation ids, so the memo keys
    # are small integer tuples and every distinct (base, operands) pair is
    # computed once across the whole saturation.

    def _rtc(self, base: int, rel_id: int) -> int:
        """Reflexive-transitive closure over the base's state pairs."""
        key = (base, rel_id)
        hit = self._rtc_memo.get(key)
        if hit is not None:
            return hit
        states = self._states[base]
        adjacency: dict[int, set[int]] = {}
        for source, target in self._rels[rel_id]:
            adjacency.setdefault(source, set()).add(target)
        closed = set()
        for start in range(states):
            seen = {start}
            frontier = [start]
            while frontier:
                state = frontier.pop()
                for nxt in adjacency.get(state, ()):
                    if nxt not in seen:
                        seen.add(nxt)
                        frontier.append(nxt)
            closed.update((start, reach) for reach in seen)
        hit = self._rid(frozenset(closed))
        self._rtc_memo[key] = hit
        # Closure is idempotent.
        self._rtc_memo[(base, hit)] = hit
        return hit

    def _rtc3(self, base: int, first: int, second: int, third: int) -> int:
        """``rtc(first ∪ second ∪ third)`` — the shape every summary,
        context and full relation is built in."""
        key = (base, first, second, third)
        hit = self._rtc3_memo.get(key)
        if hit is not None:
            return hit
        rels = self._rels
        hit = self._rtc(
            base, self._rid(rels[first] | rels[second] | rels[third])
        )
        self._rtc3_memo[key] = hit
        return hit

    def _wrap(self, base: int, tau: int, rel_id: int) -> int:
        """Excursion along step index ``tau``: step out with ``tau``,
        traverse ``rel`` on the far side, step back with ``tau˘``."""
        key = (base, tau, rel_id)
        hit = self._wrap_memo.get(key)
        if hit is not None:
            return hit
        rel = self._rels[rel_id]
        out = self._steps[base][tau]
        back = self._steps[base][_CONVERSE[tau]]
        wrapped = frozenset(
            (q_i, q_l)
            for q_i, q_j in out
            for q_k, q_l in back
            if (q_j, q_k) in rel
        )
        hit = self._rid(wrapped)
        self._wrap_memo[key] = hit
        return hit

    def _tests_rel(self, base: int, mask: int) -> int:
        """The test-edge relation of the base given the bitmask of its
        predicate values."""
        key = (base, mask)
        hit = self._tests_memo.get(key)
        if hit is not None:
            return hit
        hit = self._rid(frozenset(
            (source, target)
            for source, pred, target in self._tests[base]
            if mask >> pred & 1
        ))
        self._tests_memo[key] = hit
        return hit

    # --------------------------------------------------------- one-node eval

    def _evaluate(self, ctx_id: int, lcls: int, s1: int, s2: int) -> _Eval:
        """Evaluate the node template: context ``ctx_id``, label class
        ``lcls``, FCNS children with summary vectors ``s1``/``s2`` (or −1
        for an absent child)."""
        key = (ctx_id, lcls, s1, s2)
        hit = self._eval_memo.get(key)
        if hit is not None:
            self.eval_hits += 1
            return hit
        self.evals += 1
        if self.evals > self.max_evals:
            raise EmptinessLimit(
                f"emptiness summary search exceeded {self.max_evals} "
                "node evaluations"
            )
        ctx = self._ctxs[ctx_id]
        wvec = self._vecs[ctx[1]] if ctx is not None else None
        s1vec = self._vecs[s1] if s1 >= 0 else None
        s2vec = self._vecs[s2] if s2 >= 0 else None
        empty = self._empty

        full: list[frozenset] = []
        svec: list[int] = []
        tvec: list[int] = []
        upvec: list[int] = []
        wraps1: list[int] = []
        wraps2: list[int] = []
        for base in range(self.num_bases):
            # Rank order: tests here mention only lower bases, whose Full
            # relations are already in ``full``.
            mask = 0
            for index, pred in enumerate(self._preds[base]):
                if pred(lcls, full):
                    mask |= 1 << index
            tests = self._tests_rel(base, mask)
            inner1 = self._wrap(base, _FC, s1vec[base]) \
                if s1vec is not None else empty
            inner2 = self._wrap(base, _RIGHT, s2vec[base]) \
                if s2vec is not None else empty
            s_id = self._rtc3(base, tests, inner1, inner2)
            if ctx is None:
                up = empty
                full_id = s_id
            else:
                up = self._wrap(base, _CONVERSE[ctx[0]], wvec[base])
                full_id = self._rtc3(base, s_id, up, empty)
            svec.append(s_id)
            tvec.append(tests)
            upvec.append(up)
            wraps1.append(inner1)
            wraps2.append(inner2)
            full.append(self._rels[full_id])

        w1 = tuple(
            self._rtc3(base, tvec[base], wraps2[base], upvec[base])
            for base in range(self.num_bases)
        )
        w2 = tuple(
            self._rtc3(base, tvec[base], wraps1[base], upvec[base])
            for base in range(self.num_bases)
        )
        ctx1 = self._cid((_FC, self._vid(w1)))
        ctx2 = self._cid((_RIGHT, self._vid(w2)))

        result = _Eval(self._vid(tuple(svec)), ctx1, ctx2,
                       self._root_pred(lcls, full))
        self._eval_memo[key] = result
        return result

    # ------------------------------------------------------------ saturation

    def _activate(self, ctx_id: int) -> None:
        if ctx_id in self._active_set:
            return
        self._active_set.add(ctx_id)
        self._active.append(ctx_id)
        self._cursor.append(-1)  # -1: not swept yet (distinct from "pool
        # was empty when swept", which is 0)
        if len(self._active) > self.max_contexts:
            raise EmptinessLimit(
                f"emptiness summary search exceeded {self.max_contexts} "
                "contexts"
            )

    def _add_to_pool(self, svec: int) -> None:
        if svec not in self._pool_set:
            self._pool_set.add(svec)
            self._pool.append(svec)

    def _add_entry(self, key: tuple[int, int],
                   combo: tuple[int, tuple | None, tuple | None]) -> None:
        entry = self.entries.get(key)
        if entry is not None:
            self.combos_subsumed += 1
            if combo not in entry.combos \
                    and len(entry.combos) < _COMBOS_PER_ENTRY:
                entry.combos.append(combo)
            return
        self.entries[key] = _Entry([combo])
        if len(self.entries) > self.max_entries:
            raise EmptinessLimit(
                f"emptiness summary search exceeded {self.max_entries} "
                "summaries"
            )
        for waiter in self._waiting.pop(key, ()):
            self._wakes.append(waiter)
        self._add_to_pool(key[1])

    def _process(self, ctx_id: int, lcls: int, s1: int, s2: int) -> None:
        result = self._evaluate(ctx_id, lcls, s1, s2)
        # Liberal context demand: activate the children contexts this
        # template computes even if the combination below fails — the
        # rank-stratified convergence argument needs the approximate
        # contexts activated so the next round can refine them.
        self._activate(result.ctx1)
        self._activate(result.ctx2)
        child1 = (result.ctx1, s1) if s1 >= 0 else None
        child2 = (result.ctx2, s2) if s2 >= 0 else None
        missing = [child for child in (child1, child2)
                   if child is not None and child not in self.entries]
        if missing:
            for child in missing:
                self._waiting.setdefault(child, []).append(
                    (ctx_id, lcls, s1, s2)
                )
            return
        self._add_entry((ctx_id, result.svec), (lcls, child1, child2))

    def saturate(self) -> None:
        """Run all (context, class, child, child) combos to the fixpoint.

        Combos are never materialized into a queue (the cross product can
        dwarf the number of evaluations actually performed): each context
        keeps a cursor over the pool, and every sweep processes only the
        combos that involve pool vectors past it — new contexts sweep from
        zero.  Combos that had to wait on a missing child summary are woken
        explicitly when it appears.
        """
        self._activate(0)  # the root context
        classes = range(self.partition.num_classes)
        progress = True
        while progress:
            progress = False
            self.rounds += 1
            round_start = time.perf_counter()
            evals_before = self.evals
            while self._wakes:
                progress = True
                self.wakes_woken += 1
                self._process(*self._wakes.popleft())
            # Note: _process can activate contexts and extend the pool
            # mid-sweep; the index loop picks up new contexts, and the next
            # outer round covers pool growth past this sweep's snapshot.
            for index in range(len(self._active)):
                ctx_id = self._active[index]
                done = self._cursor[index]
                limit = len(self._pool)
                if done == limit:
                    continue
                progress = True
                children = [-1, *self._pool[:limit]]
                for lcls in classes:
                    if done < 0:
                        for s1 in children:
                            for s2 in children:
                                self._process(ctx_id, lcls, s1, s2)
                    else:
                        old = children[:done + 1]
                        fresh = children[done + 1:]
                        for s1 in fresh:
                            for s2 in children:
                                self._process(ctx_id, lcls, s1, s2)
                        for s1 in old:
                            for s2 in fresh:
                                self._process(ctx_id, lcls, s1, s2)
                self._cursor[index] = limit
            obs.observe("twoata.emptiness.round_s",
                        time.perf_counter() - round_start)
            obs.observe("twoata.emptiness.round_evals",
                        self.evals - evals_before)

    # ------------------------------------------------------- root candidates

    def root_combos(self) -> list[tuple[int, tuple | None]]:
        """All ``(label class, first-child summary)`` pairs that a witness
        root can carry: no context, no next sibling, ``φ'`` true."""
        combos: list[tuple[int, tuple | None]] = []
        for lcls in self.partition.classes():
            for s1 in (-1, *self._pool):
                result = self._evaluate(0, lcls, s1, -1)
                if not result.root_true:
                    continue
                if s1 >= 0:
                    child = (result.ctx1, s1)
                    if child not in self.entries:
                        continue
                    combos.append((lcls, child))
                else:
                    combos.append((lcls, None))
        return combos

    # ------------------------------------------------------------- the game

    def build_game(self, roots: list[tuple[int, tuple | None]]) -> ParityGame:
        """The emptiness parity game over the discovered summaries.

        Eve picks derivations, Adam picks the FCNS child to verify; every
        internal position has priority 1, so Eve wins only by forcing every
        branch into the "no child" sink (priority 2) — i.e. by exhibiting a
        finite consistent tree below every summary she relies on.
        """
        eve_sink = ("sink", 0)
        adam_sink = ("sink", 1)
        owner: dict = {eve_sink: 0, adam_sink: 1}
        priority: dict = {eve_sink: 2, adam_sink: 1}
        moves: dict = {eve_sink: (eve_sink,), adam_sink: (adam_sink,)}

        root = ("root",)
        owner[root] = 0
        priority[root] = 1
        moves[root] = tuple(
            ("rc", index) for index in range(len(roots))
        ) or (adam_sink,)

        pending: list[tuple] = []
        for index, (_, child) in enumerate(roots):
            position = ("rc", index)
            owner[position] = 1
            priority[position] = 1
            if child is None:
                moves[position] = (eve_sink,)
            else:
                moves[position] = (("entry", child),)
                pending.append(("entry", child))

        seen = set(pending)
        while pending:
            position = pending.pop()
            _, key = position
            entry = self.entries[key]
            owner[position] = 0
            priority[position] = 1
            moves[position] = tuple(
                ("combo", key, index) for index in range(len(entry.combos))
            )
            for index, (_, child1, child2) in enumerate(entry.combos):
                combo_position = ("combo", key, index)
                owner[combo_position] = 1
                priority[combo_position] = 1
                successors = tuple(
                    ("entry", child)
                    for child in (child1, child2) if child is not None
                ) or (eve_sink,)
                moves[combo_position] = successors
                for successor in successors:
                    if successor != eve_sink and successor not in seen:
                        seen.add(successor)
                        pending.append(successor)
        return ParityGame(owner, priority, moves)

    # ------------------------------------------------------ witness decoding

    def _entry_ranks(self) -> dict[tuple[int, int], float]:
        """Least derivation height per summary (Bellman iteration; the
        first stored combo is always well-founded, so every reachable
        summary gets a finite rank)."""
        ranks: dict[tuple[int, int], float] = {
            key: float("inf") for key in self.entries
        }
        changed = True
        while changed:
            changed = False
            for key, entry in self.entries.items():
                best = ranks[key]
                for _, child1, child2 in entry.combos:
                    height = 1 + max(
                        (ranks[child] for child in (child1, child2)
                         if child is not None),
                        default=0,
                    )
                    if height < best:
                        best = height
                if best < ranks[key]:
                    ranks[key] = best
                    changed = True
        return ranks

    def decode_witness(self, roots: list[tuple[int, tuple | None]]) -> XMLTree:
        """The FCNS-decoded witness tree of a minimal-rank strategy."""
        ranks = self._entry_ranks()

        def combo_height(combo: tuple) -> float:
            _, child1, child2 = combo
            return 1 + max((ranks[child] for child in (child1, child2)
                            if child is not None), default=0)

        def expansion(key: tuple[int, int]) -> tuple:
            return min(self.entries[key].combos, key=combo_height)

        def unranked(lcls: int, first: tuple | None):
            # Follow the FCNS decoding: the c1 child starts the children
            # list, its c2 chain continues it.
            children = []
            current = first
            while current is not None:
                child_class, child_first, sibling = expansion(current)
                children.append(unranked(child_class, child_first))
                current = sibling
            return (self.partition.representative(lcls), children)

        def root_height(candidate: tuple[int, tuple | None]) -> float:
            _, child = candidate
            return 0 if child is None else ranks[child]

        lcls, first = min(roots, key=root_height)
        return XMLTree.build(unranked(lcls, first))


def decide_emptiness(
    ata: TwoATA,
    max_evals: int = DEFAULT_MAX_EVALS,
    max_entries: int = DEFAULT_MAX_ENTRIES,
    max_contexts: int = DEFAULT_MAX_CONTEXTS,
) -> EmptinessResult:
    """Is ``L(A_φ)`` empty?  Conclusive either way; raises
    :class:`EmptinessLimit` when the summary space outgrows the guards."""
    with obs.span("twoata.emptiness.solve"):
        with obs.span("twoata.emptiness.compile"):
            checker = _Checker(ata, max_evals=max_evals,
                               max_entries=max_entries,
                               max_contexts=max_contexts)
        obs.count("twoata.emptiness.states", ata.num_states)
        obs.count("twoata.emptiness.bases", checker.num_bases)
        with obs.span("twoata.emptiness.saturate"):
            checker.saturate()
        obs.count("twoata.emptiness.rounds", checker.rounds)
        obs.count("twoata.emptiness.wakes", checker.wakes_woken)
        obs.count("twoata.emptiness.combos_subsumed", checker.combos_subsumed)
        probes = checker.evals + checker.eval_hits
        if probes:
            obs.gauge("twoata.emptiness.eval_memo_hit_rate",
                      checker.eval_hits / probes)
        with obs.span("twoata.emptiness.roots"):
            roots = checker.root_combos()
        with obs.span("twoata.emptiness.game_build"):
            game = checker.build_game(roots)
        obs.count("twoata.emptiness.game_nodes", len(game.owner))
        obs.gauge("twoata.emptiness.entries", len(checker.entries))
        obs.gauge("twoata.emptiness.contexts", len(checker._active))
        obs.gauge("twoata.emptiness.evals", checker.evals)
        with obs.span("twoata.emptiness.game_solve"):
            win_eve, _ = solve_parity(game)
        obs.count("twoata.emptiness.games_solved")
        if ("root",) not in win_eve:
            return EmptinessResult(True, None, len(checker.entries),
                                   len(checker._active), len(game.owner),
                                   checker.rounds, checker.evals)
        with obs.span("twoata.emptiness.decode"):
            witness = checker.decode_witness(roots)
        obs.count("twoata.emptiness.witnesses_decoded")
        return EmptinessResult(False, witness, len(checker.entries),
                               len(checker._active), len(game.owner),
                               checker.rounds, checker.evals)
