"""Emptiness of the Table III 2ATAs (Theorem 10) over the first-child /
next-sibling encoding.

:func:`decide_emptiness` takes the 2ATA ``A_φ`` of :func:`build_twoata`
and decides whether *some finite XML tree* satisfies ``φ`` somewhere —
i.e. whether ``L(A_φ)`` is nonempty — returning a concrete witness tree
when it is.  Together with Prop. 4 this is the paper's conclusive decision
procedure for CoreXPath(*, ≈) containment; the ``automata`` engine
(:mod:`repro.analysis.automata_engine`) wires it into the registry.

The reduction, in the shape the symbolic solvers of Genevès et al. use
(PAPERS.md): an on-the-fly fixpoint over *node summaries* followed by a
parity game on the discovered summary space.

**Summaries.**  Work in the first-child/next-sibling view: every node has
at most two FCNS children (``c1`` = first child, ``c2`` = next sibling),
and the four basic steps move along FCNS tree edges (↓₁/↑₁ along ``c1``
edges, →/← along ``c2`` edges).  For a path automaton base ``π`` with
states ``Q``, any product path from ``(n, q)`` to ``(n, q')`` decomposes
at its visits to ``n`` into test edges at ``n``, excursions into the FCNS
subtree of a child, and excursions into the context above.  Writing
``tc`` for reflexive-transitive closure over state pairs this gives exact
mutual recurrences:

* subtree summary  ``S(n) = tc(tests(n) ∪ wrap(↓₁, S(c1)) ∪ wrap(→, S(c2)))``
* context summary  ``W(c1) = tc(tests(n) ∪ wrap(→, S(c2)) ∪ up(n))`` where
  ``up(n) = wrapup(σ, W(n))`` for the attachment step ``σ`` of ``n``
* full relation     ``Full(n) = tc(S(n) ∪ up(n))`` — ``loop(π_{q,q'})``
  holds at ``n`` iff ``(q, q') ∈ Full(n)``

with ``wrap(τ, R) = {(q_i, q_l) | (q_i, τ, q_j), (q_k, τ˘, q_l) ∈ Δ,
(q_j, q_k) ∈ R}`` and ``wrapup`` its upward twin.  Tests mention only
*strictly nested* automata, so bases form a DAG and are processed in
topological rank order — the truth of a test at ``n`` is read off the
``Full`` relations of lower-rank bases, already computed at ``n``.

**Saturation.**  A node summary is a pair ``(ctx, S̄)`` of an interned
context (``None`` at the root, else the attachment step plus the context
relations ``W̄``) and the per-base subtree relations ``S̄``.  Summaries
are derived leaves-up on demand: contexts computed by any evaluation are
activated, every activated context seeds leaf summaries, and derived
summaries combine under all activated contexts.  Label classes come from
the automaton's :class:`~repro.automata.core.AlphabetPartition`, so the
infinite alphabet costs ``|labels φ mentions| + 1`` classes.  The
recurrences are rank-stratified (rank-0 relations never look at the
context, rank-``r`` relations look only at ranks ``< r`` of it), so the
demanded contexts converge to the exact ones after at most one round per
rank — this is what makes the demand-driven search complete, not just
sound.

**Kernels.**  The relation algebra above runs on one of two interchangeable
kernels (DESIGN.md §11):

* ``bitset`` (default) — a relation over an ``n``-state base is one Python
  integer with bit ``q·n + q'`` standing for the pair ``(q, q')``:
  closure is a bit-row Warshall sweep, excursions are precomputed
  mask shuffles, and test predicates run as
  :class:`~repro.automata.core.CompiledEval` mask programs instead of
  closure recursion.  Because the integer's meaning is fixed by the base
  alone, the rtc/wrap/tests memos can live in a cross-problem
  :class:`~repro.automata.core.KernelCache` (pass ``shared=``; a
  :class:`~repro.analysis.session.SchemaSession` does this for batches).
  When every ``loop`` test occurs positively, the kernel additionally
  prunes the saturation pool to an *antichain* under pointwise relation
  inclusion — dominated summary vectors are never swept as children
  (kill-switch: ``REPRO_EMPTINESS_ANTICHAIN=off``).
* ``reference`` — the original frozenset-of-pairs algebra, kept verbatim
  as a differential-testing oracle (``REPRO_EMPTINESS_KERNEL=reference``).

Both kernels run the identical saturation/game logic of
:class:`_CheckerBase` and are verdict-identical by construction; the
differential suite (tests/test_bitset_kernel.py) checks that claim on the
full corpus.

**The game.**  The discovered summaries form a parity game: Eve picks a
derivation (label class + child summaries) for each summary, Adam picks
which FCNS child to descend into; every internal position has priority 1
and the "no child left" sink priority 2, so Eve wins iff she can build a
*finite* consistent tree — exactly the co-Büchi discipline the 2ATA's
``Acc`` imposes on ``loop`` states.  The verdict is read off
:func:`repro.games.solve_parity`; on nonemptiness a minimal-rank winning
strategy is decoded back through the FCNS encoding into an
:class:`~repro.trees.XMLTree` witness.
"""

from __future__ import annotations

import os
import time
from collections import deque
from dataclasses import dataclass

from .. import obs
from ..games import ParityGame, solve_parity
from ..trees import XMLTree
from .core import (
    FALSE,
    TRUE,
    CompiledEval,
    FormulaTable,
    KernelCache,
    automaton_base_key,
    nf_key,
)
from .nf import (
    NFAnd,
    NFExpr,
    NFLabel,
    NFLoop,
    NFNot,
    NFTop,
    PathAutomaton,
    Step,
    nf_subexpressions,
)
from .twoata import TwoATA

__all__ = [
    "ANTICHAIN_ENV",
    "KERNEL_ENV",
    "EmptinessLimit",
    "EmptinessResult",
    "decide_emptiness",
]

#: Summary-space guards: past these the checker raises
#: :class:`EmptinessLimit` and the engine declines to the bounded fallback.
DEFAULT_MAX_EVALS = 400_000
DEFAULT_MAX_ENTRIES = 6_000
DEFAULT_MAX_CONTEXTS = 2_000

#: At most this many alternative derivations are kept per summary; the
#: first one is always the (well-founded) derivation that discovered it.
_COMBOS_PER_ENTRY = 4

#: Environment overrides: which relation-algebra kernel to run
#: (``bitset``/``reference``) and whether the bitset kernel's antichain
#: pruning is enabled (any of ``0/off/false/no`` disables it).
KERNEL_ENV = "REPRO_EMPTINESS_KERNEL"
ANTICHAIN_ENV = "REPRO_EMPTINESS_ANTICHAIN"
_KERNELS = ("bitset", "reference")
_OFF_VALUES = frozenset({"0", "off", "false", "no"})


class EmptinessLimit(RuntimeError):
    """The summary space outgrew the configured guards."""


@dataclass(frozen=True)
class EmptinessResult:
    """Outcome of an emptiness check.

    ``empty`` — is ``L(A_φ)`` empty?  ``witness`` — a tree accepted by the
    automaton (``None`` iff empty).  The counters describe the run:
    summaries and contexts discovered, positions of the final game, the
    saturation-phase profile (outer rounds, node evaluations performed),
    the relation-algebra kernel that ran, and how many summary vectors the
    antichain pruned from the sweep frontier (0 when pruning was off).
    """

    empty: bool
    witness: XMLTree | None
    entries: int
    contexts: int
    game_positions: int
    rounds: int = 0
    evals: int = 0
    kernel: str = "bitset"
    pruned: int = 0


@dataclass(frozen=True)
class _Eval:
    """Result of evaluating one node template ``(ctx, ℓ, S̄(c1), S̄(c2))``:
    its subtree summary, the contexts its FCNS children would live in, and
    whether ``φ'`` holds at it (meaningful for root candidates)."""

    svec: int
    ctx1: int
    ctx2: int
    root_true: bool


@dataclass
class _Entry:
    """One derived summary ``(ctx, S̄)`` with its known derivations."""

    combos: list[tuple[int, tuple | None, tuple | None]]


#: Dense indices for the four steps; all hot-path tables key on these
#: instead of hashing enum members.
_STEPS: tuple[Step, ...] = tuple(Step)
_STEP_INDEX: dict[Step, int] = {step: i for i, step in enumerate(_STEPS)}
_CONVERSE: tuple[int, ...] = tuple(
    _STEP_INDEX[step.converse] for step in _STEPS
)
_FC = _STEP_INDEX[Step.FIRST_CHILD]
_RIGHT = _STEP_INDEX[Step.RIGHT]


class _CheckerBase:
    """Saturation, game construction and witness decoding — everything the
    two kernels share.  Subclasses supply the relation algebra: how
    relations are represented (``_empty``, ``_rel_value``), closed
    (``_rtc3``), wrapped through steps (``_wrap``), assembled from test
    predicates (``_tests_rel``/``_tests_mask``) and how the root predicate
    evaluates (``_compile_test``/``_compile_root``/``_root_true``).
    """

    #: Kernel name, reported in :class:`EmptinessResult`.
    kernel = "base"

    def __init__(self, ata: TwoATA, max_evals: int, max_entries: int,
                 max_contexts: int):
        self.partition = ata.partition
        self.phi_prime: NFExpr = ata.initial_expr
        self.max_evals = max_evals
        self.max_entries = max_entries
        self.max_contexts = max_contexts

        # ---- base automata in topological (nesting) rank order
        self._base_ids: dict[tuple, int] = {}
        #: per base, per step index: the ``(source, target)`` step edges.
        self._steps: list[tuple[tuple[tuple[int, int], ...], ...]] = []
        #: per base: the test transitions, with tests compiled to predicate
        #: indices into ``_preds`` (see :meth:`_compile_test`).
        self._tests: list[tuple[tuple[int, int, int], ...]] = []
        self._preds: list[list] = []
        self._states: list[int] = []
        #: per base: the process-global :func:`automaton_base_key` — the
        #: bitset kernel keys its shared memos on it.
        self._global_keys: list[int] = []
        for sub in nf_subexpressions(self.phi_prime):
            if isinstance(sub, NFLoop):
                self._add_base(sub.automaton)
        self.num_bases = len(self._states)
        self._root_pred = self._compile_root(self.phi_prime)

        # ---- interning: summary vectors and contexts
        self._vecs: list[tuple[int, ...]] = []
        self._vec_ids: dict[tuple[int, ...], int] = {}
        self._ctxs: list[tuple[int, int] | None] = [None]
        self._ctx_ids: dict[tuple[int, int] | None, int] = {None: 0}

        # ---- memoized node evaluation
        self._eval_memo: dict[tuple[int, int, int, int], _Eval] = {}
        self.evals = 0
        self.eval_hits = 0

        # ---- saturation-phase profile (plain ints on the hot path; the
        # obs layer sees them once, after saturation finishes)
        self.rounds = 0
        self.wakes_woken = 0
        self.combos_subsumed = 0
        self.pruned = 0

        # ---- saturation state
        self.entries: dict[tuple[int, int], _Entry] = {}
        self._pool: list[int] = []  # derived summary vectors, in order
        self._pool_set: set[int] = set()
        self._active: list[int] = []  # activated context ids, in order
        self._active_set: set[int] = set()
        #: per active context (parallel to ``_active``): pool length up to
        #: which all (class, child, child) combos have been processed.
        self._cursor: list[int] = []
        #: parked combos: ``(ctx_id, result, child1, child2, combo)``
        self._wakes: deque[tuple] = deque()
        self._waiting: dict[tuple[int, int], list[tuple]] = {}
        #: ``(token, window, dead) -> [(lcls, s1, s2, result), ...]``
        #: sweep-row cache; kernels whose tokens collapse contexts set it
        #: to a dict (see :meth:`saturate`), the reference kernel keeps it
        #: ``None`` since its tokens are unique per context.
        self._rows: dict | None = None

    # ------------------------------------------------------------ base setup

    def _add_base(self, auto: PathAutomaton) -> int:
        key = (auto.num_states, auto.transitions)
        hit = self._base_ids.get(key)
        if hit is not None:
            return hit
        # Nested bases first: tests mention strictly smaller automata, so
        # this recursion is well-founded and yields a topological order.
        for _, test, _ in auto.test_transitions():
            for sub in nf_subexpressions(test):
                if isinstance(sub, NFLoop):
                    self._add_base(sub.automaton)
        hit = self._base_ids.get(key)
        if hit is not None:  # added while processing its own tests
            return hit
        index = len(self._states)
        self._base_ids[key] = index
        self._states.append(auto.num_states)
        self._global_keys.append(automaton_base_key(auto))
        steps: list[list[tuple[int, int]]] = [[] for _ in _STEPS]
        for source, tau, target in auto.step_transitions():
            steps[_STEP_INDEX[tau]].append((source, target))
        self._steps.append(tuple(tuple(pairs) for pairs in steps))
        self._preds.append([])
        self._new_base_slot()
        # Canonical test order (structural, not frozenset iteration order):
        # predicate indices must be a pure function of the base *value* so
        # that two checkers seeing structurally equal bases agree on the
        # meaning of a predicate bitmask — the bitset kernel shares its
        # tests memo across checkers on exactly that invariant.
        ordered = sorted(
            auto.test_transitions(),
            key=lambda t: (t[0], t[2], nf_key(t[1])),
        )
        self._tests.append(tuple(
            (source, self._compile_test(test, index), target)
            for source, test, target in ordered
        ))
        return index

    def _base_of(self, auto: PathAutomaton) -> int:
        return self._base_ids[(auto.num_states, auto.transitions)]

    def _new_base_slot(self) -> None:
        """Hook: kernel-private per-base tables grow in step with
        ``_preds``; called once per new base, before its tests compile."""

    # --------------------------------------------------- kernel entry points

    def _compile_test(self, expr: NFExpr, base: int) -> int:
        """Compile a test expression, returning its predicate index in the
        base's ``_preds`` slot."""
        raise NotImplementedError

    def _compile_root(self, expr: NFExpr):
        """Compile the root predicate ``φ'``; the handle is stored as
        ``_root_pred`` and consumed by :meth:`_root_true`."""
        raise NotImplementedError

    def _root_true(self, lcls: int, full: list) -> bool:
        raise NotImplementedError

    def _tests_mask(self, base: int, lcls: int, full: list) -> int:
        """Bitmask of the base's predicate values at a node with label
        class ``lcls`` and lower-rank ``Full`` relations ``full``."""
        raise NotImplementedError

    def _tests_rel(self, base: int, mask: int) -> int:
        raise NotImplementedError

    def _rtc3(self, base: int, first: int, second: int, third: int) -> int:
        raise NotImplementedError

    def _wrap(self, base: int, tau: int, rel_id: int) -> int:
        raise NotImplementedError

    def _rel_value(self, rel_id: int):
        """The kernel-native relation value behind a relation id — what
        test predicates consume as ``full`` entries."""
        raise NotImplementedError

    # ------------------------------------------------------- interning layer

    def _vid(self, vec: tuple[int, ...]) -> int:
        hit = self._vec_ids.get(vec)
        if hit is None:
            hit = len(self._vecs)
            self._vecs.append(vec)
            self._vec_ids[vec] = hit
        return hit

    def _cid(self, ctx: tuple[int, int] | None) -> int:
        hit = self._ctx_ids.get(ctx)
        if hit is None:
            hit = len(self._ctxs)
            self._ctxs.append(ctx)
            self._ctx_ids[ctx] = hit
        return hit

    # --------------------------------------------------------- one-node eval

    def _eval_token(self, ctx_id: int) -> int:
        """The memo token a context contributes to evaluation keys.

        A node evaluation depends on its context only through the wrapped
        excursion relation the context induces, so kernels may collapse
        distinct contexts onto one token when that wrap coincides (the
        bitset kernel does).  The reference kernel keeps contexts apart:
        the token is the context id itself."""
        return ctx_id

    def _evaluate(self, ctx_id: int, lcls: int, s1: int, s2: int) -> _Eval:
        """Evaluate the node template: context ``ctx_id``, label class
        ``lcls``, FCNS children with summary vectors ``s1``/``s2`` (or −1
        for an absent child)."""
        key = (self._eval_token(ctx_id), lcls, s1, s2)
        hit = self._eval_memo.get(key)
        if hit is not None:
            self.eval_hits += 1
            return hit
        return self._evaluate_at(key)

    def _evaluate_at(self, key: tuple[int, int, int, int]) -> _Eval:
        """Memo-miss continuation of :meth:`_evaluate`; callers that have
        already probed the memo with ``key`` jump straight here."""
        self.evals += 1
        if self.evals > self.max_evals:
            raise EmptinessLimit(
                f"emptiness summary search exceeded {self.max_evals} "
                "node evaluations"
            )
        result = self._evaluate_miss(*key)
        self._eval_memo[key] = result
        return result

    def _evaluate_miss(self, ctx_id: int, lcls: int, s1: int,
                       s2: int) -> _Eval:
        ctx = self._ctxs[ctx_id]
        wvec = self._vecs[ctx[1]] if ctx is not None else None
        s1vec = self._vecs[s1] if s1 >= 0 else None
        s2vec = self._vecs[s2] if s2 >= 0 else None
        empty = self._empty

        full: list = []
        svec: list[int] = []
        tvec: list[int] = []
        upvec: list[int] = []
        wraps1: list[int] = []
        wraps2: list[int] = []
        for base in range(self.num_bases):
            # Rank order: tests here mention only lower bases, whose Full
            # relations are already in ``full``.
            mask = self._tests_mask(base, lcls, full)
            tests = self._tests_rel(base, mask)
            inner1 = self._wrap(base, _FC, s1vec[base]) \
                if s1vec is not None else empty
            inner2 = self._wrap(base, _RIGHT, s2vec[base]) \
                if s2vec is not None else empty
            s_id = self._rtc3(base, tests, inner1, inner2)
            if ctx is None:
                up = empty
                full_id = s_id
            else:
                up = self._wrap(base, _CONVERSE[ctx[0]], wvec[base])
                full_id = self._rtc3(base, s_id, up, empty)
            svec.append(s_id)
            tvec.append(tests)
            upvec.append(up)
            wraps1.append(inner1)
            wraps2.append(inner2)
            full.append(self._rel_value(full_id))

        w1 = tuple(
            self._rtc3(base, tvec[base], wraps2[base], upvec[base])
            for base in range(self.num_bases)
        )
        w2 = tuple(
            self._rtc3(base, tvec[base], wraps1[base], upvec[base])
            for base in range(self.num_bases)
        )
        ctx1 = self._cid((_FC, self._vid(w1)))
        ctx2 = self._cid((_RIGHT, self._vid(w2)))

        return _Eval(self._vid(tuple(svec)), ctx1, ctx2,
                     self._root_true(lcls, full))

    # ------------------------------------------------------------ saturation

    def _activate(self, ctx_id: int) -> None:
        if ctx_id in self._active_set:
            return
        self._active_set.add(ctx_id)
        self._active.append(ctx_id)
        self._cursor.append(-1)  # -1: not swept yet (distinct from "pool
        # was empty when swept", which is 0)
        if len(self._active) > self.max_contexts:
            raise EmptinessLimit(
                f"emptiness summary search exceeded {self.max_contexts} "
                "contexts"
            )

    def _add_to_pool(self, svec: int) -> None:
        if svec not in self._pool_set:
            self._pool_set.add(svec)
            self._pool.append(svec)

    def _live(self, vecs: list[int]) -> list[int]:
        """The subset of pool vectors still on the sweep frontier; the
        bitset kernel's antichain filters dominated ones here.  Callers
        pass freshly sliced lists, so returning the input is safe."""
        return vecs

    def frontier_size(self) -> int:
        return len(self._pool)

    def _add_entry(self, key: tuple[int, int],
                   combo: tuple[int, tuple | None, tuple | None]) -> None:
        entry = self.entries.get(key)
        if entry is not None:
            self.combos_subsumed += 1
            if combo not in entry.combos \
                    and len(entry.combos) < _COMBOS_PER_ENTRY:
                entry.combos.append(combo)
            return
        self.entries[key] = _Entry([combo])
        if len(self.entries) > self.max_entries:
            raise EmptinessLimit(
                f"emptiness summary search exceeded {self.max_entries} "
                "summaries"
            )
        for waiter in self._waiting.pop(key, ()):
            self._wakes.append(waiter)
        self._add_to_pool(key[1])

    def saturate(self) -> None:
        """Run all (context, class, child, child) combos to the fixpoint.

        Combos are never materialized into a queue (the cross product can
        dwarf the number of evaluations actually performed): each context
        keeps a cursor over the pool, and every sweep processes only the
        combos that involve pool vectors past it — new contexts sweep from
        zero.  Combos that had to wait on a missing child summary are woken
        explicitly when it appears.  Pool vectors the antichain has marked
        dead are skipped as children (:meth:`_live`).

        Combos park in ``_waiting``/``_wakes`` as fully-resolved 5-tuples
        ``(ctx_id, result, child1, child2, combo)``: a wake re-checks child
        availability and records the entry — the evaluation, its children
        activations and the combo tuple were all done when the combo was
        first swept, nothing is recomputed.  The watched-child discipline
        registers a combo on ONE missing child at a time (re-examining on
        wake), so each combo has at most one live registration and a child
        appearing wakes it exactly once.
        """
        self._activate(0)  # the root context
        classes = range(self.partition.num_classes)
        # Every loop below runs once per (context, class, child, child)
        # combo and is, with the bitset kernel's memoized algebra, the
        # dominant cost of the whole emptiness check; the entry-recording
        # tail is intentionally inlined in all three (wake, replay, sweep).
        # Keep them in sync.
        eval_memo = self._eval_memo
        evaluate_at = self._evaluate_at
        eval_token = self._eval_token
        active_set = self._active_set
        activate = self._activate
        entries = self.entries
        waiting = self._waiting
        add_entry = self._add_entry
        rows = self._rows
        hits = 0
        subsumed = 0
        progress = True
        try:
            while progress:
                progress = False
                self.rounds += 1
                round_start = time.perf_counter()
                evals_before = self.evals
                while self._wakes:
                    progress = True
                    self.wakes_woken += 1
                    waiter = self._wakes.popleft()
                    w_ctx, result, child1, child2, combo = waiter
                    if child1 is not None and child1 not in entries:
                        waiting.setdefault(child1, []).append(waiter)
                        continue
                    if child2 is not None and child2 not in entries:
                        waiting.setdefault(child2, []).append(waiter)
                        continue
                    ekey = (w_ctx, result.svec)
                    entry = entries.get(ekey)
                    if entry is not None:
                        subsumed += 1
                        combos = entry.combos
                        if len(combos) < _COMBOS_PER_ENTRY \
                                and combo not in combos:
                            combos.append(combo)
                        continue
                    add_entry(ekey, combo)
                # Note: processing can activate contexts and extend the
                # pool mid-sweep; the index loop picks up new contexts, and
                # the next outer round covers pool growth past this sweep's
                # snapshot.
                for index in range(len(self._active)):
                    ctx_id = self._active[index]
                    done = self._cursor[index]
                    limit = len(self._pool)
                    if done == limit:
                        continue
                    progress = True
                    token = eval_token(ctx_id)
                    if rows is not None:
                        # Contexts that share an eval token sweep to
                        # identical result rows; the first sweep of a
                        # (token, cursor window) records its row, later
                        # ones replay it — no key builds, memo probes or
                        # activation checks (those contexts are already
                        # active from the recording sweep).  The dead
                        # count keys the antichain's frontier filter
                        # state, which otherwise changes what a window
                        # contains.
                        row_key = (token, done, limit, len(self._dead))
                        row = rows.get(row_key)
                        if row is not None:
                            hits += len(row)
                            for result, child1, child2, combo in row:
                                if child1 is not None \
                                        and child1 not in entries:
                                    waiting.setdefault(child1, []) \
                                        .append((ctx_id, result, child1,
                                                 child2, combo))
                                    continue
                                if child2 is not None \
                                        and child2 not in entries:
                                    waiting.setdefault(child2, []) \
                                        .append((ctx_id, result, child1,
                                                 child2, combo))
                                    continue
                                ekey = (ctx_id, result.svec)
                                entry = entries.get(ekey)
                                if entry is not None:
                                    subsumed += 1
                                    combos = entry.combos
                                    if len(combos) < _COMBOS_PER_ENTRY \
                                            and combo not in combos:
                                        combos.append(combo)
                                    continue
                                add_entry(ekey, combo)
                            self._cursor[index] = limit
                            continue
                        record: list | None = []
                    else:
                        record = None
                    if done < 0:
                        old: list[int] = []
                        fresh = [-1, *self._live(self._pool[:limit])]
                    else:
                        old = [-1, *self._live(self._pool[:done])]
                        fresh = self._live(self._pool[done:limit])
                    pairs = [(s1, s2) for s1 in fresh
                             for s2 in old + fresh]
                    pairs += [(s1, s2) for s1 in old for s2 in fresh]
                    for lcls in classes:
                        for s1, s2 in pairs:
                            key = (token, lcls, s1, s2)
                            result = eval_memo.get(key)
                            if result is None:
                                result = evaluate_at(key)
                            else:
                                hits += 1
                            ctx1 = result.ctx1
                            ctx2 = result.ctx2
                            if ctx1 not in active_set:
                                activate(ctx1)
                            if ctx2 not in active_set:
                                activate(ctx2)
                            child1 = (ctx1, s1) if s1 >= 0 else None
                            child2 = (ctx2, s2) if s2 >= 0 else None
                            combo = (lcls, child1, child2)
                            if record is not None:
                                record.append((result, child1, child2,
                                               combo))
                            if child1 is not None \
                                    and child1 not in entries:
                                waiting.setdefault(child1, []) \
                                    .append((ctx_id, result, child1,
                                             child2, combo))
                                continue
                            if child2 is not None \
                                    and child2 not in entries:
                                waiting.setdefault(child2, []) \
                                    .append((ctx_id, result, child1,
                                             child2, combo))
                                continue
                            ekey = (ctx_id, result.svec)
                            entry = entries.get(ekey)
                            if entry is not None:
                                subsumed += 1
                                combos = entry.combos
                                if len(combos) < _COMBOS_PER_ENTRY \
                                        and combo not in combos:
                                    combos.append(combo)
                                continue
                            add_entry(ekey, combo)
                    if record is not None:
                        rows[row_key] = record
                    self._cursor[index] = limit
                obs.observe("twoata.emptiness.round_s",
                            time.perf_counter() - round_start)
                obs.observe("twoata.emptiness.round_evals",
                            self.evals - evals_before)
        finally:
            # Locally accumulated profile counters survive a mid-sweep
            # EmptinessLimit unwind.
            self.eval_hits += hits
            self.combos_subsumed += subsumed

    # ------------------------------------------------------- root candidates

    def root_combos(self) -> list[tuple[int, tuple | None]]:
        """All ``(label class, first-child summary)`` pairs that a witness
        root can carry: no context, no next sibling, ``φ'`` true."""
        combos: list[tuple[int, tuple | None]] = []
        for lcls in self.partition.classes():
            for s1 in (-1, *self._live(self._pool)):
                result = self._evaluate(0, lcls, s1, -1)
                if not result.root_true:
                    continue
                if s1 >= 0:
                    child = (result.ctx1, s1)
                    if child not in self.entries:
                        continue
                    combos.append((lcls, child))
                else:
                    combos.append((lcls, None))
        return combos

    # ------------------------------------------------------------- the game

    def build_game(self, roots: list[tuple[int, tuple | None]]) -> ParityGame:
        """The emptiness parity game over the discovered summaries.

        Eve picks derivations, Adam picks the FCNS child to verify; every
        internal position has priority 1, so Eve wins only by forcing every
        branch into the "no child" sink (priority 2) — i.e. by exhibiting a
        finite consistent tree below every summary she relies on.
        """
        eve_sink = ("sink", 0)
        adam_sink = ("sink", 1)
        owner: dict = {eve_sink: 0, adam_sink: 1}
        priority: dict = {eve_sink: 2, adam_sink: 1}
        moves: dict = {eve_sink: (eve_sink,), adam_sink: (adam_sink,)}

        root = ("root",)
        owner[root] = 0
        priority[root] = 1
        moves[root] = tuple(
            ("rc", index) for index in range(len(roots))
        ) or (adam_sink,)

        pending: list[tuple] = []
        for index, (_, child) in enumerate(roots):
            position = ("rc", index)
            owner[position] = 1
            priority[position] = 1
            if child is None:
                moves[position] = (eve_sink,)
            else:
                moves[position] = (("entry", child),)
                pending.append(("entry", child))

        seen = set(pending)
        while pending:
            position = pending.pop()
            _, key = position
            entry = self.entries[key]
            owner[position] = 0
            priority[position] = 1
            moves[position] = tuple(
                ("combo", key, index) for index in range(len(entry.combos))
            )
            for index, (_, child1, child2) in enumerate(entry.combos):
                combo_position = ("combo", key, index)
                owner[combo_position] = 1
                priority[combo_position] = 1
                successors = tuple(
                    ("entry", child)
                    for child in (child1, child2) if child is not None
                ) or (eve_sink,)
                moves[combo_position] = successors
                for successor in successors:
                    if successor != eve_sink and successor not in seen:
                        seen.add(successor)
                        pending.append(successor)
        return ParityGame(owner, priority, moves)

    # ------------------------------------------------------ witness decoding

    def _entry_ranks(self) -> dict[tuple[int, int], float]:
        """Least derivation height per summary (Bellman iteration; the
        first stored combo is always well-founded, so every reachable
        summary gets a finite rank)."""
        ranks: dict[tuple[int, int], float] = {
            key: float("inf") for key in self.entries
        }
        changed = True
        while changed:
            changed = False
            for key, entry in self.entries.items():
                best = ranks[key]
                for _, child1, child2 in entry.combos:
                    height = 1 + max(
                        (ranks[child] for child in (child1, child2)
                         if child is not None),
                        default=0,
                    )
                    if height < best:
                        best = height
                if best < ranks[key]:
                    ranks[key] = best
                    changed = True
        return ranks

    def decode_witness(self, roots: list[tuple[int, tuple | None]]) -> XMLTree:
        """The FCNS-decoded witness tree of a minimal-rank strategy."""
        ranks = self._entry_ranks()

        def combo_height(combo: tuple) -> float:
            _, child1, child2 = combo
            return 1 + max((ranks[child] for child in (child1, child2)
                            if child is not None), default=0)

        def expansion(key: tuple[int, int]) -> tuple:
            return min(self.entries[key].combos, key=combo_height)

        def unranked(lcls: int, first: tuple | None):
            # Follow the FCNS decoding: the c1 child starts the children
            # list, its c2 chain continues it.
            children = []
            current = first
            while current is not None:
                child_class, child_first, sibling = expansion(current)
                children.append(unranked(child_class, child_first))
                current = sibling
            return (self.partition.representative(lcls), children)

        def root_height(candidate: tuple[int, tuple | None]) -> float:
            _, child = candidate
            return 0 if child is None else ranks[child]

        lcls, first = min(roots, key=root_height)
        return XMLTree.build(unranked(lcls, first))


class _ReferenceChecker(_CheckerBase):
    """The pre-bitset relation algebra, kept verbatim: relations are
    interned frozensets of state pairs, closures run a per-start DFS, and
    test predicates are compiled to Python closures.  Serves as the
    differential-testing oracle (``REPRO_EMPTINESS_KERNEL=reference``)."""

    kernel = "reference"

    def __init__(self, ata: TwoATA, max_evals: int, max_entries: int,
                 max_contexts: int):
        self._compile_memo: dict[int, object] = {}
        # ---- interning: relations are dense ids over interned frozensets
        self._rels: list[frozenset] = []
        self._rel_ids: dict[frozenset, int] = {}
        self._empty = self._rid(frozenset())
        # ---- memoized relation algebra
        self._rtc_memo: dict[tuple[int, int], int] = {}
        self._rtc3_memo: dict[tuple[int, int, int, int], int] = {}
        self._wrap_memo: dict[tuple[int, int, int], int] = {}
        self._tests_memo: dict[tuple[int, int], int] = {}
        super().__init__(ata, max_evals, max_entries, max_contexts)

    # --------------------------------------------------------- compilation

    def _compile(self, expr: NFExpr, base: int | None = None):
        """Compile a test expression into a closure ``fn(lcls, full)`` over
        the label class and the per-base ``Full`` relations (which, by rank
        order, are already available for every base the test mentions).

        With ``base`` given, returns the index of the predicate in that
        base's ``_preds`` slot (registering the closure if new) — the
        evaluator keys its tests-relation memo on the bitmask of those
        predicate values.  Compilation is shared by object identity; the
        expressions live in the automaton, which outlives the checker.
        """
        fn = self._compile_memo.get(id(expr))
        if fn is None:
            match expr:
                case NFLabel(name=name):
                    klass = self.partition.class_of(name)

                    def fn(lcls, full, _k=klass):
                        return lcls == _k
                case NFTop():
                    def fn(lcls, full):
                        return True
                case NFNot(child=child):
                    inner = self._compile(child)

                    def fn(lcls, full, _f=inner):
                        return not _f(lcls, full)
                case NFAnd(left=left, right=right):
                    first = self._compile(left)
                    second = self._compile(right)

                    def fn(lcls, full, _a=first, _b=second):
                        return _a(lcls, full) and _b(lcls, full)
                case NFLoop(automaton=auto):
                    pair = (auto.initial, auto.final)
                    sub_base = self._base_of(auto)

                    def fn(lcls, full, _p=pair, _b=sub_base):
                        return _p in full[_b]
                case _:
                    raise TypeError(f"unknown normal form {expr!r}")
            self._compile_memo[id(expr)] = fn
        if base is None:
            return fn
        preds = self._preds[base]
        for index, known in enumerate(preds):
            if known is fn:
                return index
        preds.append(fn)
        return len(preds) - 1

    def _compile_test(self, expr: NFExpr, base: int) -> int:
        return self._compile(expr, base)

    def _compile_root(self, expr: NFExpr):
        return self._compile(expr)

    def _root_true(self, lcls: int, full: list) -> bool:
        return self._root_pred(lcls, full)

    def _tests_mask(self, base: int, lcls: int, full: list) -> int:
        mask = 0
        for index, pred in enumerate(self._preds[base]):
            if pred(lcls, full):
                mask |= 1 << index
        return mask

    # ------------------------------------------------------ relation algebra
    #
    # All operations take and return dense relation ids, so the memo keys
    # are small integer tuples and every distinct (base, operands) pair is
    # computed once across the whole saturation.

    def _rid(self, rel: frozenset) -> int:
        hit = self._rel_ids.get(rel)
        if hit is None:
            hit = len(self._rels)
            self._rels.append(rel)
            self._rel_ids[rel] = hit
        return hit

    def _rel_value(self, rel_id: int):
        return self._rels[rel_id]

    def _rtc(self, base: int, rel_id: int) -> int:
        """Reflexive-transitive closure over the base's state pairs."""
        key = (base, rel_id)
        hit = self._rtc_memo.get(key)
        if hit is not None:
            return hit
        states = self._states[base]
        adjacency: dict[int, set[int]] = {}
        for source, target in self._rels[rel_id]:
            adjacency.setdefault(source, set()).add(target)
        closed = set()
        for start in range(states):
            seen = {start}
            frontier = [start]
            while frontier:
                state = frontier.pop()
                for nxt in adjacency.get(state, ()):
                    if nxt not in seen:
                        seen.add(nxt)
                        frontier.append(nxt)
            closed.update((start, reach) for reach in seen)
        hit = self._rid(frozenset(closed))
        self._rtc_memo[key] = hit
        # Closure is idempotent.
        self._rtc_memo[(base, hit)] = hit
        return hit

    def _rtc3(self, base: int, first: int, second: int, third: int) -> int:
        """``rtc(first ∪ second ∪ third)`` — the shape every summary,
        context and full relation is built in."""
        key = (base, first, second, third)
        hit = self._rtc3_memo.get(key)
        if hit is not None:
            return hit
        rels = self._rels
        hit = self._rtc(
            base, self._rid(rels[first] | rels[second] | rels[third])
        )
        self._rtc3_memo[key] = hit
        return hit

    def _wrap(self, base: int, tau: int, rel_id: int) -> int:
        """Excursion along step index ``tau``: step out with ``tau``,
        traverse ``rel`` on the far side, step back with ``tau˘``."""
        key = (base, tau, rel_id)
        hit = self._wrap_memo.get(key)
        if hit is not None:
            return hit
        rel = self._rels[rel_id]
        out = self._steps[base][tau]
        back = self._steps[base][_CONVERSE[tau]]
        wrapped = frozenset(
            (q_i, q_l)
            for q_i, q_j in out
            for q_k, q_l in back
            if (q_j, q_k) in rel
        )
        hit = self._rid(wrapped)
        self._wrap_memo[key] = hit
        return hit

    def _tests_rel(self, base: int, mask: int) -> int:
        """The test-edge relation of the base given the bitmask of its
        predicate values."""
        key = (base, mask)
        hit = self._tests_memo.get(key)
        if hit is not None:
            return hit
        hit = self._rid(frozenset(
            (source, target)
            for source, pred, target in self._tests[base]
            if mask >> pred & 1
        ))
        self._tests_memo[key] = hit
        return hit


class _BitsetChecker(_CheckerBase):
    """The dense integer kernel.

    A relation over an ``n``-state base is one Python integer: bit
    ``q·n + q'`` is set iff the pair ``(q, q')`` is in the relation.  No
    interning layer is needed — the integer *is* the dense value — and the
    algebra becomes machine-integer work: union is ``|``, closure a
    bit-row Warshall sweep, excursions precomputed row shuffles.  Because
    the encoding is fixed by the base alone, the rtc/wrap/tests memos are
    keyed on the process-global :func:`automaton_base_key` and may be
    shared across checkers via a :class:`KernelCache` (``shared=``).

    Test predicates compile through a private :class:`FormulaTable` whose
    pseudo-atoms are ``("lcls"/"nlcls", class)`` label tests and
    ``("loop"/"nloop", base, q·n + q')`` summary probes; each predicate
    then runs as a :class:`CompiledEval` mask program.

    When (a) no *test* predicate mentions a loop at all — every base has
    rank 0, so subtree summaries are pure functions of the label class
    and the child summaries, independent of the node's context — and (b)
    every loop atom in the *root* predicate occurs positively, pointwise
    relation inclusion is a genuine simulation order: a dominating pool
    vector is derivable under every context its dominated one is, and
    substituting it preserves ``root_true``.  Under that gate the pool
    keeps only an antichain of maximal summary vectors — dominated
    vectors stay derivable (their entries and wakes are untouched) but
    are never swept as children again.  Outside the gate (a nested or
    negated loop), pruning silently stays off: summaries then depend on
    the context they were derived under, and cross-context dominance is
    not a simulation (a dominating vector from one context need not be
    derivable where the dominated one is needed).
    """

    kernel = "bitset"

    def __init__(self, ata: TwoATA, max_evals: int, max_entries: int,
                 max_contexts: int, shared: KernelCache | None = None,
                 antichain: bool | None = None):
        self._shared = shared if shared is not None else KernelCache()
        self._table = FormulaTable()
        self._formula_memo: dict[tuple[NFExpr, bool], int] = {}
        self._pred_ids: list[dict[int, int]] = []
        self._wrap_tables: dict[tuple[int, int], tuple] = {}
        #: Per-base int-keyed caches in front of the shared KernelCache
        #: (which keys on wide tuples for cross-problem reuse).
        self._rtc_local: list[dict[int, int]] = []
        self._wrap_local: list[tuple[dict[int, int], ...]] = []
        self._empty = 0
        self._monotone = True
        self._rank0 = True
        super().__init__(ata, max_evals, max_entries, max_contexts)
        self._pred_evals: list[tuple[CompiledEval, ...]] = [
            tuple(self._table.compile_eval(fid) for fid in preds)
            for preds in self._preds
        ]
        self._root_eval: CompiledEval = self._table.compile_eval(
            self._root_pred
        )
        if antichain is None:
            antichain = os.environ.get(
                ANTICHAIN_ENV, "on"
            ).strip().lower() not in _OFF_VALUES
        #: Pruning is sound only when inclusion is a simulation (see the
        #: class docstring): rank-0 bases and a monotone root predicate.
        #: Either violation disables it regardless of the environment
        #: switch.
        self.antichain = bool(antichain) and self._monotone and self._rank0
        self._dead: set[int] = set()
        offsets = []
        total = 0
        for states in self._states:
            offsets.append(total)
            total += states * states
        self._offsets = tuple(offsets)
        self._sqmasks = tuple(
            (1 << states * states) - 1 for states in self._states
        )
        self._vr_vals: list[int] = [0]
        self._vr_ids: dict[int, int] = {0: 0}
        self._empty_vr = 0
        self._wrapv_memo: tuple[dict[int, int], ...] = tuple(
            {} for _ in _STEPS
        )
        self._quad_memo: dict[tuple[int, int, int, int], _Eval] = {}
        self._token_memo: dict[int, int] = {}
        self._rows = {}

    # ------------------------------------------------- wide-vector fast path
    #
    # The whole per-base summary vector lives in ONE wide integer: base
    # ``b``'s n²-bit relation occupies bits ``_offsets[b]`` up.  Summary
    # ids (``_vr``) intern wide integers, so contexts, pool tokens and the
    # antichain all work on single machine integers.  The evaluation
    # recurrences then factor through four inputs only — the label class
    # and the three wrapped excursion vectors (first child, next sibling,
    # context) — because stratified tests are functions of the class and
    # the Full relations of *lower* bases, which are themselves determined
    # by those inputs.  One ``(lcls, inner1, inner2, up) -> _Eval`` record
    # therefore captures the entire node evaluation; distinct
    # ``(ctx, s1, s2)`` templates that wrap onto the same quad share it,
    # and the hot path is a handful of small-key memo probes instead of a
    # per-base closure loop.  This — not the bit encoding itself — is
    # where the kernel's speedup over the reference algebra comes from.

    def _vr(self, raw: int) -> int:
        """Intern a wide relation vector; the id doubles as pool token."""
        hit = self._vr_ids.get(raw)
        if hit is None:
            hit = len(self._vr_vals)
            self._vr_vals.append(raw)
            self._vr_ids[raw] = hit
        return hit

    def _wrapv(self, tau: int, vec_id: int) -> int:
        """Wrap a whole summary vector through step ``tau``, base by base."""
        memo = self._wrapv_memo[tau]
        hit = memo.get(vec_id)
        if hit is None:
            raw = self._vr_vals[vec_id]
            offsets = self._offsets
            sqmasks = self._sqmasks
            wrap_local = self._wrap_local
            wide = 0
            for base in range(self.num_bases):
                rel = raw >> offsets[base] & sqmasks[base]
                if rel:
                    wrapped = wrap_local[base][tau].get(rel)
                    if wrapped is None:
                        wrapped = self._wrap(base, tau, rel)
                    wide |= wrapped << offsets[base]
            hit = self._vr(wide)
            memo[vec_id] = hit
        return hit

    def _eval_token(self, ctx_id: int) -> int:
        """Collapse a context onto the id of its wrapped excursion vector.

        The node recurrences consume the context only through
        ``wrap(converse(step), W)``; two contexts with the same wrap are
        indistinguishable to evaluation, so they share one token — and,
        through it, every eval-memo entry.  On context-heavy instances
        (many contexts, tiny pool) this collapses most of the sweep's
        evaluations into memo hits."""
        memo = self._token_memo
        hit = memo.get(ctx_id)
        if hit is None:
            ctx = self._ctxs[ctx_id]
            if ctx is None:
                hit = self._empty_vr
            else:
                hit = self._wrapv(_CONVERSE[ctx[0]], ctx[1])
            memo[ctx_id] = hit
        return hit

    def _evaluate_at(self, key: tuple[int, int, int, int]) -> _Eval:
        # Overrides the base implementation wholesale (counters included):
        # this is the hottest kernel entry point, one call layer matters.
        # ``key[0]`` is this kernel's eval token — the wrapped context
        # vector id itself — so no context lookup happens here.
        self.evals += 1
        if self.evals > self.max_evals:
            raise EmptinessLimit(
                f"emptiness summary search exceeded {self.max_evals} "
                "node evaluations"
            )
        up, lcls, s1, s2 = key
        empty = self._empty_vr
        wrapv_memo = self._wrapv_memo
        if s1 >= 0:
            inner1 = wrapv_memo[_FC].get(s1)
            if inner1 is None:
                inner1 = self._wrapv(_FC, s1)
        else:
            inner1 = empty
        if s2 >= 0:
            inner2 = wrapv_memo[_RIGHT].get(s2)
            if inner2 is None:
                inner2 = self._wrapv(_RIGHT, s2)
        else:
            inner2 = empty
        quad_key = (lcls, inner1, inner2, up)
        result = self._quad_memo.get(quad_key)
        if result is None:
            result = self._evaluate_quad(lcls, inner1, inner2, up)
            self._quad_memo[quad_key] = result
        self._eval_memo[key] = result
        return result

    def _evaluate_quad(self, lcls: int, inner1: int, inner2: int,
                       up: int) -> _Eval:
        """The per-base recurrences for one quad (the quad-memo miss path).

        Bases run in rank order so each base's tests can probe the ``full``
        relations of the lower bases already computed in this pass.
        """
        vals = self._vr_vals
        raw1 = vals[inner1]
        raw2 = vals[inner2]
        raw_up = vals[up]
        offsets = self._offsets
        sqmasks = self._sqmasks
        rtc = self._rtc
        rtc_local = self._rtc_local
        full: list[int] = []
        svec_wide = 0
        full_wide = 0
        w1_wide = 0
        w2_wide = 0
        for base in range(self.num_bases):
            offset = offsets[base]
            mask = sqmasks[base]
            local = rtc_local[base]
            tests = self._tests_rel(
                base, self._tests_mask(base, lcls, full)
            )
            in1 = raw1 >> offset & mask
            in2 = raw2 >> offset & mask
            up_rel = raw_up >> offset & mask
            # Inline local-cache probes: one big-int hash on a hit instead
            # of a call into :meth:`_rtc`.
            u = tests | in1 | in2
            s_rel = local.get(u)
            if s_rel is None:
                s_rel = rtc(base, u)
            if up_rel:
                u = s_rel | up_rel
                f_rel = local.get(u)
                if f_rel is None:
                    f_rel = rtc(base, u)
            else:
                f_rel = s_rel
            u = tests | in2 | up_rel
            w1_rel = local.get(u)
            if w1_rel is None:
                w1_rel = rtc(base, u)
            u = tests | in1 | up_rel
            w2_rel = local.get(u)
            if w2_rel is None:
                w2_rel = rtc(base, u)
            svec_wide |= s_rel << offset
            full_wide |= f_rel << offset
            w1_wide |= w1_rel << offset
            w2_wide |= w2_rel << offset
            full.append(f_rel)
        return _Eval(
            self._vr(svec_wide),
            self._cid((_FC, self._vr(w1_wide))),
            self._cid((_RIGHT, self._vr(w2_wide))),
            self._root_true(lcls, full),
        )

    # --------------------------------------------------------- compilation

    def _formula(self, expr: NFExpr, negated: bool = False) -> int:
        """Translate a test into the formula table, pushing negation down
        to the pseudo-atoms (the table stores positive formulas only)."""
        key = (expr, negated)
        hit = self._formula_memo.get(key)
        if hit is not None:
            return hit
        table = self._table
        match expr:
            case NFTop():
                result = FALSE if negated else TRUE
            case NFLabel(name=name):
                klass = self.partition.class_of(name)
                result = table.atom(
                    ("nlcls" if negated else "lcls", klass), 0
                )
            case NFNot(child=child):
                result = self._formula(child, not negated)
            case NFAnd(left=left, right=right):
                first = self._formula(left, negated)
                second = self._formula(right, negated)
                result = table.disj((first, second)) if negated \
                    else table.conj((first, second))
            case NFLoop(automaton=auto):
                sub_base = self._base_of(auto)
                bit = auto.initial * self._states[sub_base] + auto.final
                if negated:
                    self._monotone = False
                result = table.atom(
                    ("nloop" if negated else "loop", sub_base, bit), 0
                )
            case _:
                raise TypeError(f"unknown normal form {expr!r}")
        self._formula_memo[key] = result
        return result

    def _new_base_slot(self) -> None:
        self._pred_ids.append({})
        self._rtc_local.append({})
        self._wrap_local.append(tuple({} for _ in _STEPS))

    def _compile_test(self, expr: NFExpr, base: int) -> int:
        if self._rank0 and any(isinstance(sub, NFLoop)
                               for sub in nf_subexpressions(expr)):
            self._rank0 = False
        fid = self._formula(expr)
        ids = self._pred_ids[base]
        hit = ids.get(fid)
        if hit is None:
            hit = len(self._preds[base])
            self._preds[base].append(fid)
            ids[fid] = hit
        return hit

    def _compile_root(self, expr: NFExpr):
        return self._formula(expr)

    # ----------------------------------------------------- predicate eval

    def _eval_compiled(self, compiled: CompiledEval, lcls: int,
                       full: list) -> bool:
        if compiled.const is not None:
            return compiled.const
        bits = 0
        bit = 1
        for atom in compiled.atoms:
            tag, *args = atom[1]
            if tag == "lcls":
                if lcls == args[0]:
                    bits |= bit
            elif tag == "nlcls":
                if lcls != args[0]:
                    bits |= bit
            elif tag == "loop":
                if full[args[0]] >> args[1] & 1:
                    bits |= bit
            elif not full[args[0]] >> args[1] & 1:  # nloop
                bits |= bit
            bit <<= 1
        return compiled.evaluate(bits)

    def _root_true(self, lcls: int, full: list) -> bool:
        return self._eval_compiled(self._root_eval, lcls, full)

    def _tests_mask(self, base: int, lcls: int, full: list) -> int:
        mask = 0
        for index, compiled in enumerate(self._pred_evals[base]):
            if self._eval_compiled(compiled, lcls, full):
                mask |= 1 << index
        return mask

    # ------------------------------------------------------ relation algebra

    def _rel_value(self, rel_id: int):
        return rel_id

    def _rtc(self, base: int, rel: int) -> int:
        """Reflexive-transitive closure: bit-row Warshall.

        A per-instance int-keyed cache fronts the shared one: the shared
        cache keys on ``(automaton_base_key, rel)`` so sessions can pool
        results across problems, but hashing that wide tuple on every hit
        is measurable in the sweep — locally the relation int alone is the
        key."""
        local = self._rtc_local[base]
        hit = local.get(rel)
        if hit is not None:
            return hit
        base_key = self._global_keys[base]
        cache = self._shared.rtc
        key = (base_key, rel)
        hit = cache.get(key)
        if hit is not None:
            local[rel] = hit
            return hit
        states = self._states[base]
        row_mask = (1 << states) - 1
        rows = [
            rel >> (i * states) & row_mask | (1 << i)
            for i in range(states)
        ]
        for k in range(states):
            k_bit = 1 << k
            row_k = rows[k]
            if row_k == k_bit:
                continue  # pivot reaches only itself: no-op column
            for i in range(states):
                row = rows[i]
                if row & k_bit and row | row_k != row:
                    rows[i] = row | row_k
        closed = 0
        for row in reversed(rows):
            closed = closed << states | row
        cache[key] = closed
        # Closure is idempotent.
        cache[(base_key, closed)] = closed
        local[rel] = closed
        local[closed] = closed
        return closed

    def _rtc3(self, base: int, first: int, second: int, third: int) -> int:
        return self._rtc(base, first | second | third)

    def _wrap_table(self, base: int, tau: int) -> tuple:
        key = (base, tau)
        hit = self._wrap_tables.get(key)
        if hit is None:
            states = self._states[base]
            by_far: dict[int, list[int]] = {}
            for q_i, q_j in self._steps[base][tau]:
                by_far.setdefault(q_j, []).append(q_i)
            back_rows = [0] * states
            for q_k, q_l in self._steps[base][_CONVERSE[tau]]:
                back_rows[q_k] |= 1 << q_l
            hit = (
                tuple((q_j, tuple(srcs)) for q_j, srcs in by_far.items()),
                tuple(back_rows),
                states,
                (1 << states) - 1,
            )
            self._wrap_tables[key] = hit
        return hit

    def _wrap(self, base: int, tau: int, rel: int) -> int:
        local = self._wrap_local[base][tau]
        hit = local.get(rel)
        if hit is not None:
            return hit
        key = (self._global_keys[base], tau, rel)
        cache = self._shared.wrap
        hit = cache.get(key)
        if hit is not None:
            local[rel] = hit
            return hit
        out_pairs, back_rows, states, row_mask = self._wrap_table(base, tau)
        wrapped = 0
        for q_j, sources in out_pairs:
            row = rel >> (q_j * states) & row_mask
            landed = 0
            while row:
                low = row & -row
                landed |= back_rows[low.bit_length() - 1]
                row ^= low
            if landed:
                for q_i in sources:
                    wrapped |= landed << (q_i * states)
        cache[key] = wrapped
        local[rel] = wrapped
        return wrapped

    def _tests_rel(self, base: int, mask: int) -> int:
        if not mask:
            return 0
        key = (self._global_keys[base], mask)
        cache = self._shared.tests
        hit = cache.get(key)
        if hit is None:
            states = self._states[base]
            hit = 0
            for source, pred, target in self._tests[base]:
                if mask >> pred & 1:
                    hit |= 1 << (source * states + target)
            cache[key] = hit
        return hit

    # --------------------------------------------------- antichain frontier

    def _add_to_pool(self, svec: int) -> None:
        if svec in self._pool_set:
            return
        self._pool_set.add(svec)
        self._pool.append(svec)
        if not self.antichain:
            return
        # The antichain gate implies rank 0, so pool tokens are wide-vector
        # ids and pointwise inclusion is ONE integer subset test.
        vals = self._vr_vals
        dead = self._dead
        vec = vals[svec]
        for other in self._pool:
            if other == svec or other in dead:
                continue
            ovec = vals[other]
            if vec | ovec == ovec:
                # Dominated by a live vector: never sweep it.
                dead.add(svec)
                self.pruned += 1
                return
        for other in self._pool:
            if other == svec or other in dead:
                continue
            if vals[other] | vec == vec:
                dead.add(other)
                self.pruned += 1

    def _live(self, vecs: list[int]) -> list[int]:
        if not self.antichain:
            return vecs
        dead = self._dead
        return [vec for vec in vecs if vec not in dead]

    def frontier_size(self) -> int:
        return len(self._pool) - len(self._dead)


def _resolve_kernel(kernel: str | None) -> str:
    choice = (kernel or os.environ.get(KERNEL_ENV) or "bitset")
    choice = choice.strip().lower()
    if choice not in _KERNELS:
        raise ValueError(
            f"unknown emptiness kernel {choice!r}; expected one of {_KERNELS}"
        )
    return choice


def decide_emptiness(
    ata: TwoATA,
    max_evals: int = DEFAULT_MAX_EVALS,
    max_entries: int = DEFAULT_MAX_ENTRIES,
    max_contexts: int = DEFAULT_MAX_CONTEXTS,
    *,
    kernel: str | None = None,
    shared: KernelCache | None = None,
) -> EmptinessResult:
    """Is ``L(A_φ)`` empty?  Conclusive either way; raises
    :class:`EmptinessLimit` when the summary space outgrows the guards.

    ``kernel`` selects the relation algebra (``bitset``/``reference``;
    default from ``REPRO_EMPTINESS_KERNEL``, else ``bitset``); ``shared``
    optionally threads a cross-problem :class:`KernelCache` into the
    bitset kernel so repeated checks over the same bases reuse closure and
    excursion results (ignored by the reference kernel).
    """
    choice = _resolve_kernel(kernel)
    with obs.span("twoata.emptiness.solve"):
        with obs.span("twoata.emptiness.compile"):
            if choice == "reference":
                checker: _CheckerBase = _ReferenceChecker(
                    ata, max_evals=max_evals, max_entries=max_entries,
                    max_contexts=max_contexts)
            else:
                checker = _BitsetChecker(
                    ata, max_evals=max_evals, max_entries=max_entries,
                    max_contexts=max_contexts, shared=shared)
        obs.count("twoata.emptiness.states", ata.num_states)
        obs.count("twoata.emptiness.bases", checker.num_bases)
        with obs.span("twoata.emptiness.saturate"):
            checker.saturate()
        obs.count("twoata.emptiness.rounds", checker.rounds)
        obs.count("twoata.emptiness.wakes", checker.wakes_woken)
        obs.count("twoata.emptiness.combos_subsumed", checker.combos_subsumed)
        if choice == "bitset":
            obs.count("twoata.emptiness.antichain.pruned", checker.pruned)
            obs.gauge("twoata.emptiness.antichain.frontier_size",
                      checker.frontier_size())
        probes = checker.evals + checker.eval_hits
        if probes:
            obs.gauge("twoata.emptiness.eval_memo_hit_rate",
                      checker.eval_hits / probes)
        with obs.span("twoata.emptiness.roots"):
            roots = checker.root_combos()
        with obs.span("twoata.emptiness.game_build"):
            game = checker.build_game(roots)
        obs.count("twoata.emptiness.game_nodes", len(game.owner))
        obs.gauge("twoata.emptiness.entries", len(checker.entries))
        obs.gauge("twoata.emptiness.contexts", len(checker._active))
        obs.gauge("twoata.emptiness.evals", checker.evals)
        with obs.span("twoata.emptiness.game_solve"):
            win_eve, _ = solve_parity(game)
        obs.count("twoata.emptiness.games_solved")
        if ("root",) not in win_eve:
            return EmptinessResult(True, None, len(checker.entries),
                                   len(checker._active), len(game.owner),
                                   checker.rounds, checker.evals,
                                   choice, checker.pruned)
        with obs.span("twoata.emptiness.decode"):
            witness = checker.decode_witness(roots)
        obs.count("twoata.emptiness.witnesses_decoded")
        return EmptinessResult(False, witness, len(checker.entries),
                               len(checker._active), len(game.owner),
                               checker.rounds, checker.evals,
                               choice, checker.pruned)
