"""Shared symbolic core of the automata stack.

Before this module existed, :mod:`~repro.automata.twoata`,
:mod:`~repro.automata.epa`, :mod:`~repro.automata.nf` and
:mod:`~repro.automata.letelim` each half-implemented the same three
facilities privately; they are owned here once:

* **Interned transition formulas** (:class:`FormulaTable`) — the positive
  boolean formulas over moves ``δ`` ranges over (Definition 8), hash-consed
  as tuples with dense integer indices, reusing the dense-key discipline of
  :class:`repro.xpath.intern.DenseInterner`.  ``conj``/``disj`` apply the
  unit laws, and :meth:`FormulaTable.dual` is the memoized De Morgan
  dualization that Table III's negative rows are derived from.
* **A symbolic alphabet partition** (:class:`AlphabetPartition`) — the
  labels mentioned by the problem plus a single "other" class.  Since
  normal-form expressions inspect labels only through ``NFLabel`` tests,
  two concrete labels in the same class are indistinguishable, so the
  transition function and the emptiness check work per *class*, not per
  concrete label.
* **Memoized normal-form operations** — smart constructors
  (:func:`nf_and`, :func:`nf_or`, their ``_all`` folds) that apply the
  boolean unit laws at the :class:`~repro.automata.nf.NFExpr` level, plus
  a process-global interner for normal-form expressions and for path
  automaton *bases* (the transition table without endpoints — all the
  shifted variants ``π_{q,q'}`` of §3.1 share one base).

The smart constructors deliberately do **not** intern their results:
:func:`repro.automata.letelim.relativize_steps` distinguishes gadget
occurrences by ``id()``, and collapsing structurally equal subterms onto
one instance would merge occurrences that must stay distinct.  Interning
is opt-in via :func:`nf_intern`/:func:`nf_key` for memo tables that want
dense keys (the emptiness checker's valuation caches).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from ..xpath.intern import DenseInterner
from .nf import (
    NFAnd,
    NFExpr,
    NFLabel,
    NFNot,
    NFTop,
    PathAutomaton,
    nf_labels_used,
    nf_negate,
)

__all__ = [
    "EPS",
    "TRUE",
    "FALSE",
    "AlphabetPartition",
    "CompiledEval",
    "FormulaTable",
    "KernelCache",
    "nf_true",
    "nf_false",
    "nf_not",
    "nf_and",
    "nf_or",
    "nf_and_all",
    "nf_or_all",
    "nf_intern",
    "nf_key",
    "automaton_base_key",
]

#: ε is represented by the move ``"eps"``; the other moves are
#: :class:`~repro.automata.nf.Step` members.
EPS = "eps"

#: Reserved formula indices of every :class:`FormulaTable`.
TRUE = 0
FALSE = 1


# --------------------------------------------------------------- the alphabet


class AlphabetPartition:
    """The symbolic alphabet: one class per mentioned label plus "other".

    Classes are dense integers ``0 .. num_classes - 1``; the last class is
    the "other" class standing for every concrete label the problem never
    mentions.  All members of a class are indistinguishable to the
    formulas the partition was built for, so any per-class computation
    (transition formulas, emptiness summaries) covers the full infinite
    alphabet.
    """

    __slots__ = ("labels", "_index")

    def __init__(self, labels: Iterable[str]):
        self.labels: tuple[str, ...] = tuple(sorted(set(labels)))
        self._index = {label: i for i, label in enumerate(self.labels)}

    @classmethod
    def from_nf(cls, *exprs: NFExpr) -> "AlphabetPartition":
        mentioned: set[str] = set()
        for expr in exprs:
            mentioned |= nf_labels_used(expr)
        return cls(mentioned)

    @property
    def num_classes(self) -> int:
        return len(self.labels) + 1

    @property
    def other(self) -> int:
        """The class of every unmentioned label."""
        return len(self.labels)

    def classes(self) -> range:
        return range(self.num_classes)

    def class_of(self, label: str) -> int:
        return self._index.get(label, len(self.labels))

    def representative(self, klass: int) -> str:
        """A concrete label of the class (used to decode witness trees)."""
        if 0 <= klass < len(self.labels):
            return self.labels[klass]
        if klass == len(self.labels):
            return _fresh_label(self.labels)
        raise ValueError(f"no alphabet class {klass}")


def _fresh_label(taken: Sequence[str], stem: str = "z") -> str:
    candidate = stem
    counter = 0
    while candidate in taken:
        candidate = f"{stem}{counter}"
        counter += 1
    return candidate


# ------------------------------------------------------- transition formulas

#: :class:`CompiledEval` program opcodes: ``ALL`` is an n-ary conjunction
#: ("every bit in the mask is set"), ``ANY`` an n-ary disjunction.
OP_ALL = 0
OP_ANY = 1


@dataclass(frozen=True)
class CompiledEval:
    """A formula compiled to a mask/test program over a bit vector.

    The input to :meth:`evaluate` is an integer whose bit ``i`` carries the
    truth value of ``atoms[i]``.  Three tiers, cheapest first:

    * ``const`` — ⊤/⊥ formulas evaluate without looking at the bits;
    * ``pos_mask`` / ``neg_mask`` — the atoms that are top-level disjuncts
      (any one true forces the formula true) and top-level conjuncts (any
      one false forces it false).  These short-circuit the common flat
      formulas entirely;
    * ``program`` — for nested formulas, a post-order sequence of
      ``(op, mask)`` instructions.  Instruction ``k`` computes bit
      ``len(atoms) + k`` of the working vector: ``OP_ALL`` sets it iff
      every bit of ``mask`` is set, ``OP_ANY`` iff some bit is.  Masks may
      reference atom bits and the outputs of earlier instructions; the
      last instruction's output is the formula's value.

    This replaces per-node recursive formula evaluation: the recursion
    happens once at compile time, and every later evaluation is a handful
    of machine-integer ``&``/``==`` operations.
    """

    atoms: tuple[tuple, ...]
    pos_mask: int
    neg_mask: int
    program: tuple[tuple[int, int], ...]
    const: bool | None = None

    def evaluate(self, bits: int) -> bool:
        if self.const is not None:
            return self.const
        if bits & self.pos_mask:
            return True
        if self.neg_mask & ~bits:
            return False
        if not self.program:
            # A bare atom: pos/neg masks decided it above.  A flat and/or
            # still carries its root instruction, so reaching this point
            # with no program means "all necessary atoms held".
            return True
        position = len(self.atoms)
        for op, mask in self.program:
            if (bits & mask) == mask if op == OP_ALL else (bits & mask):
                bits |= 1 << position
            position += 1
        return bool(bits >> (position - 1) & 1)


class FormulaTable:
    """Hash-consed positive boolean transition formulas (Definition 8).

    Nodes are tuples — ``("true",)``, ``("false",)``,
    ``("atom", move, state)``, ``("and", indices)``, ``("or", indices)`` —
    identified by dense integer indices (:data:`TRUE` is 0, :data:`FALSE`
    is 1).  ``conj``/``disj`` apply the unit laws, deduplicate and sort
    children, so equal formulas always get equal indices.

    ``negate_state`` maps a state index to the state of the negated
    expression (``q_ψ ↦ q_{¬ψ}``, total on ``cl(φ')`` by construction);
    with it, :meth:`dual` computes the De Morgan dual of any stored
    formula, which is exactly how Table III's rows for ``¬ψ`` relate to
    the rows for ``ψ``.
    """

    __slots__ = ("_nodes", "_ids", "_dual_memo", "_negate_state",
                 "_eval_memo")

    def __init__(self, negate_state: Callable[[int], int] | None = None):
        self._nodes: list[tuple] = [("true",), ("false",)]
        self._ids: dict[tuple, int] = {("true",): TRUE, ("false",): FALSE}
        self._dual_memo: dict[int, int] = {TRUE: FALSE, FALSE: TRUE}
        self._negate_state = negate_state
        self._eval_memo: dict[int, CompiledEval] = {}

    def __len__(self) -> int:
        return len(self._nodes)

    def node(self, index: int) -> tuple:
        """The hash-consed formula node with the given index."""
        return self._nodes[index]

    def _intern(self, node: tuple) -> int:
        index = self._ids.get(node)
        if index is None:
            index = len(self._nodes)
            self._nodes.append(node)
            self._ids[node] = index
        return index

    def atom(self, move, state: int) -> int:
        """``(move, state)``: send a copy along ``move`` in ``state``."""
        return self._intern(("atom", move, state))

    def conj(self, children: Iterable[int]) -> int:
        children = list(children)
        if FALSE in children:
            return FALSE
        parts = sorted({child for child in children if child != TRUE})
        if not parts:
            return TRUE  # empty conjunction is true
        if len(parts) == 1:
            return parts[0]
        return self._intern(("and", tuple(parts)))

    def disj(self, children: Iterable[int]) -> int:
        children = list(children)
        if TRUE in children:
            return TRUE
        parts = sorted({child for child in children if child != FALSE})
        if not parts:
            return FALSE  # empty disjunction is false
        if len(parts) == 1:
            return parts[0]
        return self._intern(("or", tuple(parts)))

    def dual(self, index: int) -> int:
        """The De Morgan dual: swap ∧/∨ and ⊤/⊥, negate atom states."""
        memo = self._dual_memo
        result = memo.get(index)
        if result is not None:
            return result
        node = self._nodes[index]
        tag = node[0]
        if tag == "atom":
            if self._negate_state is None:
                raise ValueError("dualization needs a negate_state map")
            result = self.atom(node[1], self._negate_state(node[2]))
        elif tag == "and":
            result = self.disj([self.dual(child) for child in node[1]])
        else:
            assert tag == "or", f"unknown formula node {node!r}"
            result = self.conj([self.dual(child) for child in node[1]])
        memo[index] = result
        # Dualization is an involution on formulas built through it.
        memo.setdefault(result, index)
        return result

    def compile_eval(self, index: int) -> CompiledEval:
        """Compile the stored formula into a :class:`CompiledEval`.

        Shared subformulas (one hash-consed node reachable twice) compile
        to a single program instruction; memoized per formula index, so
        recompiling across evaluations or sibling formulas is free.
        """
        hit = self._eval_memo.get(index)
        if hit is not None:
            return hit
        nodes = self._nodes
        root = nodes[index]
        if root[0] == "true":
            result = CompiledEval((), 0, 0, (), True)
        elif root[0] == "false":
            result = CompiledEval((), 0, 0, (), False)
        elif root[0] == "atom":
            result = CompiledEval((root,), 1, 1, ())
        else:
            # Pass 1: dense atom bits in first-encounter (post-)order.
            atom_bit: dict[int, int] = {}
            order: list[tuple] = []

            def gather(i: int) -> None:
                node = nodes[i]
                if node[0] == "atom":
                    if i not in atom_bit:
                        atom_bit[i] = len(order)
                        order.append(node)
                    return
                for child in node[1]:
                    gather(child)

            gather(index)
            # Pass 2: post-order instruction emission, root last.
            width = len(order)
            program: list[tuple[int, int]] = []
            bit_of: dict[int, int] = dict(atom_bit)

            def emit(i: int) -> int:
                bit = bit_of.get(i)
                if bit is not None:
                    return bit
                node = nodes[i]
                mask = 0
                for child in node[1]:
                    mask |= 1 << emit(child)
                program.append(
                    (OP_ALL if node[0] == "and" else OP_ANY, mask)
                )
                bit = width + len(program) - 1
                bit_of[i] = bit
                return bit

            emit(index)
            atom_children = [1 << atom_bit[child] for child in root[1]
                             if nodes[child][0] == "atom"]
            flat = sum(atom_children)
            if root[0] == "and":
                pos_mask, neg_mask = 0, flat
                if len(atom_children) == len(root[1]):
                    # A flat conjunction: the neg_mask veto is complete, the
                    # root instruction would always confirm — drop it.
                    program = []
            else:
                pos_mask, neg_mask = flat, 0
            result = CompiledEval(tuple(order), pos_mask, neg_mask,
                                  tuple(program))
        self._eval_memo[index] = result
        return result


# ------------------------------------------- normal-form smart constructors

_TOP = NFTop()
_BOTTOM = NFNot(_TOP)


def nf_true() -> NFExpr:
    return _TOP


def nf_false() -> NFExpr:
    return _BOTTOM


def nf_not(expr: NFExpr) -> NFExpr:
    """Negation with double-negation collapse (same as :func:`nf_negate`)."""
    return nf_negate(expr)


def nf_and(left: NFExpr, right: NFExpr) -> NFExpr:
    """Conjunction with the ⊤/⊥ unit laws."""
    if isinstance(left, NFTop):
        return right
    if isinstance(right, NFTop):
        return left
    if left == _BOTTOM or right == _BOTTOM:
        return _BOTTOM
    return NFAnd(left, right)


def nf_or(left: NFExpr, right: NFExpr) -> NFExpr:
    """``φ ∨ ψ = ¬(¬φ ∧ ¬ψ)`` at the normal-form level, with unit laws."""
    if isinstance(left, NFTop) or isinstance(right, NFTop):
        return _TOP
    if left == _BOTTOM:
        return right
    if right == _BOTTOM:
        return left
    return NFNot(nf_and(nf_negate(left), nf_negate(right)))


def nf_and_all(parts: Sequence[NFExpr]) -> NFExpr:
    if not parts:
        return _TOP
    result = parts[0]
    for part in parts[1:]:
        result = nf_and(result, part)
    return result


def nf_or_all(parts: Sequence[NFExpr]) -> NFExpr:
    if not parts:
        return _BOTTOM
    result = parts[0]
    for part in parts[1:]:
        result = nf_or(result, part)
    return result


# ----------------------------------------------------------------- interning

#: Process-global interner for normal-form expressions.  Monotone, like the
#: expression-AST tables in :mod:`repro.xpath.intern`.
_NF_INTERNER = DenseInterner()

#: Process-global interner for path-automaton *bases*: the transition table
#: with the endpoints stripped, shared by all ``π_{q,q'}`` shifts.
_BASE_INTERNER = DenseInterner()


def nf_intern(expr: NFExpr) -> NFExpr:
    """The canonical instance structurally equal to ``expr``."""
    return _NF_INTERNER.canonical(expr)


def nf_key(expr: NFExpr) -> int:
    """A dense integer identifying ``expr`` up to structural equality."""
    return _NF_INTERNER.key(expr)


def automaton_base_key(automaton: PathAutomaton) -> int:
    """A dense integer identifying ``automaton``'s *base* — its state count
    and transition table, ignoring the initial/final endpoints — so that
    all state-shifted variants ``π_{q,q'}`` share one key."""
    return _BASE_INTERNER.key((automaton.num_states, automaton.transitions))


# ------------------------------------------------------- shared kernel memos


@dataclass
class KernelCache:
    """Cross-problem memos for the bitset emptiness kernel.

    The bitset kernel's relation algebra works on integers whose meaning is
    fixed by the path-automaton *base* alone (bit ``q·n + q'`` ⇔ state pair
    ``(q, q')``), so its closure and excursion memos can be keyed on the
    process-global :func:`automaton_base_key` instead of a checker-local
    base index — and then shared by every checker that sees the same base.
    A :class:`~repro.analysis.session.SchemaSession` owns one instance per
    compiled schema and threads it through
    :func:`~repro.automata.emptiness.decide_emptiness`, so a batch of
    problems over one schema (or one process deciding many problems
    sequentially) saturates against warm memos.

    Keys: ``rtc[(base_key, rel)]``, ``wrap[(base_key, step, rel)]`` and
    ``tests[(base_key, mask)]`` with ``rel`` the raw relation integer.
    """

    rtc: dict[tuple[int, int], int] = field(default_factory=dict)
    wrap: dict[tuple[int, int, int], int] = field(default_factory=dict)
    tests: dict[tuple[int, int], int] = field(default_factory=dict)

    def stats(self) -> dict[str, int]:
        return {"rtc": len(self.rtc), "wrap": len(self.wrap),
                "tests": len(self.tests)}
