"""The normal form ``CoreXPath_NFA(*, loop)`` of §3.1 (Definition 7).

Node expressions are ``p | loop(π) | ⊤ | ¬φ | φ ∧ ψ`` and path expressions
are *path automata*: NFAs over the alphabet of basic steps
``{↓₁, ↑₁, →, ←}`` (first-child, its converse, and the sibling axes) plus
test symbols ``.[φ]``.  Skip ("ε") transitions are tests ``.[⊤]``.

Every CoreXPath(*, ≈) expression translates into this normal form in linear
time (:mod:`repro.automata.normalform`); the 2ATA construction of §3.3
operates directly on it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator

__all__ = [
    "Step",
    "NFExpr",
    "NFLabel",
    "NFTop",
    "NFNot",
    "NFAnd",
    "NFLoop",
    "PathAutomaton",
    "Transition",
    "nf_size",
    "nf_negate",
    "nf_labels_used",
    "nf_subexpressions",
]


class Step(enum.Enum):
    """The basic steps of §3.2: first-child ↓₁, its converse ↑₁, → and ←."""

    FIRST_CHILD = "down1"
    PARENT_OF_FIRST = "up1"
    RIGHT = "right"
    LEFT = "left"

    @property
    def converse(self) -> "Step":
        return _STEP_CONVERSE[self]

    @property
    def symbol(self) -> str:
        return _STEP_SYMBOL[self]

    def __repr__(self) -> str:
        return f"Step.{self.name}"


_STEP_CONVERSE = {
    Step.FIRST_CHILD: Step.PARENT_OF_FIRST,
    Step.PARENT_OF_FIRST: Step.FIRST_CHILD,
    Step.RIGHT: Step.LEFT,
    Step.LEFT: Step.RIGHT,
}
_STEP_SYMBOL = {
    Step.FIRST_CHILD: "↓₁",
    Step.PARENT_OF_FIRST: "↑₁",
    Step.RIGHT: "→",
    Step.LEFT: "←",
}


class NFExpr:
    """Base class of normal-form node expressions."""

    __slots__ = ()


@dataclass(frozen=True, slots=True)
class NFLabel(NFExpr):
    name: str


@dataclass(frozen=True, slots=True)
class NFTop(NFExpr):
    pass


@dataclass(frozen=True, slots=True)
class NFNot(NFExpr):
    child: NFExpr


@dataclass(frozen=True, slots=True)
class NFAnd(NFExpr):
    left: NFExpr
    right: NFExpr


@dataclass(frozen=True, slots=True)
class NFLoop(NFExpr):
    """``loop(π)``: the current node is π-reachable from itself.  The paper
    writes ``loop(π_{q,q'})`` for the automaton with shifted initial/final
    states; here that is ``NFLoop(automaton.shift(q, q'))``."""

    automaton: "PathAutomaton"


#: A transition ``(q, a, q')`` where ``a`` is a :class:`Step` or a test
#: node expression ``.[φ]`` (stored as the :class:`NFExpr` itself).
Transition = tuple[int, "Step | NFExpr", int]


@dataclass(frozen=True, slots=True)
class PathAutomaton:
    """A path automaton ``π = (Q, Δ, q_I, q_F)`` with ``Q = range(num_states)``."""

    num_states: int
    transitions: frozenset[Transition]
    initial: int
    final: int

    def __post_init__(self) -> None:
        for source, symbol, target in self.transitions:
            if not (0 <= source < self.num_states and 0 <= target < self.num_states):
                raise ValueError(f"transition {source}->{target} out of range")
            if not isinstance(symbol, (Step, NFExpr)):
                raise TypeError(f"bad transition symbol {symbol!r}")
        if not 0 <= self.initial < self.num_states:
            raise ValueError("initial state out of range")
        if not 0 <= self.final < self.num_states:
            raise ValueError("final state out of range")

    # -------------------------------------------------------------- variants

    def shift(self, initial: int, final: int) -> "PathAutomaton":
        """``π_{q,q'}``: same transition table, different endpoints (§3.1)."""
        if initial == self.initial and final == self.final:
            return self
        return PathAutomaton(self.num_states, self.transitions, initial, final)

    def reversed(self) -> "PathAutomaton":
        """The converse automaton: recognizes ``{(m, n) | (n, m) ∈ [[π]]}``.

        Reverses every transition, replaces steps by their converses (tests
        are self-inverse), and swaps the endpoints.
        """
        reversed_transitions = frozenset(
            (target, symbol.converse if isinstance(symbol, Step) else symbol, source)
            for source, symbol, target in self.transitions
        )
        return PathAutomaton(
            self.num_states, reversed_transitions, self.final, self.initial
        )

    # ------------------------------------------------------------- accessors

    def outgoing(self, state: int) -> Iterator[tuple["Step | NFExpr", int]]:
        for source, symbol, target in self.transitions:
            if source == state:
                yield symbol, target

    def test_transitions(self) -> Iterator[tuple[int, NFExpr, int]]:
        for source, symbol, target in self.transitions:
            if isinstance(symbol, NFExpr):
                yield source, symbol, target

    def step_transitions(self) -> Iterator[tuple[int, Step, int]]:
        for source, symbol, target in self.transitions:
            if isinstance(symbol, Step):
                yield source, symbol, target

    def size(self) -> int:
        """``|π| = |Q| + Σ_{(q,.[φ],q') ∈ Δ} |φ|`` (§3.1)."""
        return self.num_states + sum(
            nf_size(symbol)
            for _, symbol, _ in self.transitions
            if isinstance(symbol, NFExpr)
        )


def nf_size(expr: NFExpr) -> int:
    """Size of a normal-form node expression (§3.1)."""
    match expr:
        case NFLabel() | NFTop():
            return 1
        case NFNot(child=c):
            return nf_size(c) + 1
        case NFAnd(left=a, right=b):
            return nf_size(a) + nf_size(b) + 1
        case NFLoop(automaton=a):
            return a.size() + 1
    raise TypeError(f"unknown normal-form expression {expr!r}")


def nf_negate(expr: NFExpr) -> NFExpr:
    """Single negation: ``¬¬ψ`` collapses to ``ψ`` (used by cl(φ'), §3.3)."""
    if isinstance(expr, NFNot):
        return expr.child
    return NFNot(expr)


def nf_labels_used(expr: NFExpr) -> frozenset[str]:
    """All atomic labels occurring in ``expr`` (descending into automata)."""
    return frozenset(
        sub.name for sub in nf_subexpressions(expr) if isinstance(sub, NFLabel)
    )


def nf_subexpressions(expr: NFExpr) -> Iterator[NFExpr]:
    """All node subexpressions, descending into automata test transitions."""
    yield expr
    match expr:
        case NFLabel() | NFTop():
            return
        case NFNot(child=c):
            yield from nf_subexpressions(c)
        case NFAnd(left=a, right=b):
            yield from nf_subexpressions(a)
            yield from nf_subexpressions(b)
        case NFLoop(automaton=auto):
            for _, test, _ in auto.test_transitions():
                yield from nf_subexpressions(test)
        case _:
            raise TypeError(f"unknown normal-form expression {expr!r}")
