"""Path automata, the CoreXPath_NFA(*, loop) normal form, EPAs, and 2ATAs."""

from .nf import (
    Step,
    NFExpr,
    NFLabel,
    NFTop,
    NFNot,
    NFAnd,
    NFLoop,
    PathAutomaton,
    nf_size,
    nf_negate,
    nf_labels_used,
    nf_subexpressions,
)
from .normalform import (
    to_normal_form,
    path_to_automaton,
    eliminate_skips,
    NormalFormError,
)
from .evaluate import NFEvaluator, possible_steps, loops_fixpoint
from .core import (
    AlphabetPartition,
    CompiledEval,
    FormulaTable,
    KernelCache,
    nf_true,
    nf_false,
    nf_not,
    nf_and,
    nf_or,
    nf_and_all,
    nf_or_all,
    nf_intern,
    nf_key,
    automaton_base_key,
)
from .twoata import TwoATA, build_twoata, accepts, closure
from .emptiness import EmptinessLimit, EmptinessResult, decide_emptiness
from .epa import (
    EPA,
    LetNF,
    Environment,
    FreshLabels,
    path_to_epa,
    node_to_let_nf,
    intersect_epas,
    nf_substitute_label,
)
from .letelim import eliminate_lets
from .toexpr import automaton_to_path, nf_to_expr, letnf_to_expr, epa_to_path

__all__ = [
    "Step", "NFExpr", "NFLabel", "NFTop", "NFNot", "NFAnd", "NFLoop",
    "PathAutomaton", "nf_size", "nf_negate", "nf_labels_used",
    "nf_subexpressions",
    "to_normal_form", "path_to_automaton", "eliminate_skips", "NormalFormError",
    "NFEvaluator", "possible_steps", "loops_fixpoint",
    "AlphabetPartition", "CompiledEval", "FormulaTable", "KernelCache",
    "nf_true", "nf_false", "nf_not",
    "nf_and", "nf_or", "nf_and_all", "nf_or_all", "nf_intern", "nf_key",
    "automaton_base_key",
    "TwoATA", "build_twoata", "accepts", "closure",
    "EmptinessLimit", "EmptinessResult", "decide_emptiness",
    "EPA", "LetNF", "Environment", "FreshLabels", "path_to_epa",
    "node_to_let_nf", "intersect_epas", "nf_substitute_label",
    "eliminate_lets",
    "automaton_to_path", "nf_to_expr", "letnf_to_expr", "epa_to_path",
]
