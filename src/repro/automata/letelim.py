"""Elimination of the ``let`` construct (Lemma 18).

Transforms a let-expression ``let ρ in ψ`` over ``CoreXPath_NFA(*, loop)``
into an *equi-satisfiable* plain normal-form expression of polynomial size.
The idea of the paper's proof: materialize each bound label ``p`` as an
auxiliary leaf child of the nodes where ``p`` is supposed to hold, make the
main formula blind to auxiliary nodes (relativize every basic step to real
nodes), and axiomatize that ``⟨↓[p]⟩`` holds exactly where ``p``'s definition
does.

Two structural axioms keep the encoding sound: auxiliary nodes are leaves,
and no real node sits to the right of an auxiliary node.  One deviation from
the paper's literal text: its ``equiv(ψ, χ)`` quantifies over *all* nodes,
including the auxiliary ones, where definitions like ``¬q`` would hold
spuriously; we restrict the equivalence to real nodes (guarding the
universal quantifier by ``¬⋁P``), which is what the proof's argument needs.
"""

from __future__ import annotations

# The connective builders live in the shared symbolic core; they are
# re-exported here because the let-elimination call sites historically
# imported them from this module.  The core versions apply the ⊤/⊥ unit
# laws, which never drop a gadget (gadgets are loops, not units), so the
# id()-based skip-set discipline below is unaffected.
from .core import nf_and_all, nf_or, nf_or_all  # noqa: F401
from .epa import LetNF, nf_substitute_label
from .nf import (
    NFAnd,
    NFExpr,
    NFLabel,
    NFLoop,
    NFNot,
    NFTop,
    PathAutomaton,
    Step,
    nf_negate,
)

__all__ = [
    "eliminate_lets",
    "nf_or",
    "nf_or_all",
    "nf_and_all",
    "nf_somewhere",
    "nf_exists_down",
    "nf_exists_right",
    "relativize_steps",
]


def _roam_loops(state: int) -> set:
    """Self-loop transitions on all four basic steps (reaches any tree node,
    since the tree is connected under ↓₁/↑₁/→/←)."""
    return {(state, step, state) for step in Step}


def nf_somewhere(expr: NFExpr) -> NFExpr:
    """``∃m. m ⊨ expr`` as a loop: roam anywhere, test, roam back."""
    transitions = _roam_loops(0) | _roam_loops(1) | {(0, expr, 1)}
    return NFLoop(PathAutomaton(2, frozenset(transitions), 0, 1))


def nf_exists_down(expr: NFExpr) -> NFExpr:
    """``⟨↓[expr]⟩``: some child satisfies ``expr``."""
    transitions = {
        (0, Step.FIRST_CHILD, 1),
        (1, Step.RIGHT, 1),
        (1, expr, 2),
    } | _roam_loops(2)
    return NFLoop(PathAutomaton(3, frozenset(transitions), 0, 2))


def nf_exists_right(expr: NFExpr) -> NFExpr:
    """``⟨→[expr]⟩``: the next sibling exists and satisfies ``expr``."""
    transitions = {(0, Step.RIGHT, 1), (1, expr, 2)} | _roam_loops(2)
    return NFLoop(PathAutomaton(3, frozenset(transitions), 0, 2))


def relativize_steps(expr: NFExpr, guard: NFExpr,
                     skip: frozenset[int] = frozenset()) -> NFExpr:
    """Insert a ``[guard]`` test after every basic step in every automaton
    occurring in ``expr`` (making it blind to guard-violating nodes).

    Subexpressions whose ``id()`` is in ``skip`` are left untouched — the
    let-elimination gadgets ``⟨↓[p]⟩`` must keep *seeing* the auxiliary
    nodes the rest of the formula is blinded to.
    """
    if id(expr) in skip:
        return expr
    match expr:
        case NFLabel() | NFTop():
            return expr
        case NFNot(child=c):
            return NFNot(relativize_steps(c, guard, skip))
        case NFAnd(left=a, right=b):
            return NFAnd(relativize_steps(a, guard, skip),
                         relativize_steps(b, guard, skip))
        case NFLoop(automaton=auto):
            return NFLoop(_relativize_automaton(auto, guard, skip))
    raise TypeError(f"unknown normal-form expression {expr!r}")


def _relativize_automaton(auto: PathAutomaton, guard: NFExpr,
                          skip: frozenset[int] = frozenset()) -> PathAutomaton:
    transitions: set = set()
    next_state = auto.num_states
    for source, symbol, target in auto.transitions:
        if isinstance(symbol, Step):
            middle = next_state
            next_state += 1
            transitions.add((source, symbol, middle))
            transitions.add((middle, guard, target))
        else:
            transitions.add((source, relativize_steps(symbol, guard, skip),
                             target))
    return PathAutomaton(next_state, frozenset(transitions),
                         auto.initial, auto.final)


def eliminate_lets(let_expr: LetNF) -> NFExpr:
    """Lemma 18: an equi-satisfiable plain normal-form expression, polynomial
    in the size of ``let_expr``.

    The bound labels of the environment must be distinct (the Lemma 16
    translation guarantees this via fresh names).
    """
    environment = let_expr.environment
    if not environment:
        return let_expr.core
    bound = [name for name, _ in environment]
    if len(set(bound)) != len(bound):
        raise ValueError("environment binds a label twice")

    any_aux = nf_or_all([NFLabel(name) for name in bound])
    real = nf_negate(any_aux)
    # One gadget object per bound label; substitution reuses the object, so
    # its id() identifies every occurrence for the relativization skip-set.
    gadgets = {name: nf_exists_down(NFLabel(name)) for name in bound}
    skip = frozenset(id(gadget) for gadget in gadgets.values())

    def star(expr: NFExpr) -> NFExpr:
        """Replace each bound label p by the ⟨↓[p]⟩ gadget, then relativize
        everything *except* the gadgets to real nodes.  (Substituting after
        relativizing would also rewrite the p's inside the ¬⋁P guards,
        wrongly blinding the formula to real nodes carrying aux children.)"""
        result = expr
        for name in bound:
            result = nf_substitute_label(result, name, gadgets[name])
        return relativize_steps(result, real, skip)

    # The satisfying node itself must be a real node, so that a model of the
    # output decodes (by deleting auxiliary leaves) to a model of the input.
    conjuncts: list[NFExpr] = [NFAnd(real, star(let_expr.core))]
    for name, definition in environment:
        marker = nf_exists_down(NFLabel(name))
        meaning = star(definition)
        # equiv over real nodes: no real node separates marker and meaning.
        conjuncts.append(NFNot(nf_somewhere(
            nf_and_all([real, marker, nf_negate(meaning)])
        )))
        conjuncts.append(NFNot(nf_somewhere(
            nf_and_all([real, meaning, nf_negate(marker)])
        )))
    # Auxiliary nodes are leaves ...
    conjuncts.append(NFNot(nf_somewhere(
        NFAnd(any_aux, nf_exists_down(NFTop()))
    )))
    # ... and have no real nodes to their right.
    conjuncts.append(NFNot(nf_somewhere(
        NFAnd(any_aux, nf_exists_right(real))
    )))
    return nf_and_all(conjuncts)
