"""Semantics of ``CoreXPath_NFA(*, loop)`` on XML trees (Definition 7).

``[[π]]`` is computed by reachability in the product of the tree and the
automaton; ``loop(π)`` at ``n`` holds iff ``(n, q_F)`` is product-reachable
from ``(n, q_I)``.  :func:`loops_fixpoint` implements the *inductive*
characterization of Lemma 11 instead; the two must agree — a property the
test suite checks, since Lemma 11 is the correctness core of the 2ATA
construction.
"""

from __future__ import annotations

from ..trees import XMLTree
from .nf import NFAnd, NFExpr, NFLabel, NFLoop, NFNot, NFTop, PathAutomaton, Step

__all__ = ["NFEvaluator", "possible_steps", "loops_fixpoint"]


def possible_steps(tree: XMLTree, node: int) -> frozenset[Step]:
    """``POSS-STEPS(n)`` minus ε: which basic steps exist at ``node``."""
    steps = set()
    if tree.first_child(node) is not None:
        steps.add(Step.FIRST_CHILD)
    parent = tree.parent(node)
    if parent is not None and tree.prev_sibling(node) is None:
        steps.add(Step.PARENT_OF_FIRST)
    if tree.next_sibling(node) is not None:
        steps.add(Step.RIGHT)
    if tree.prev_sibling(node) is not None:
        steps.add(Step.LEFT)
    return frozenset(steps)


def step_target(tree: XMLTree, node: int, step: Step) -> int | None:
    """``n · a``: the node reached by performing ``step`` at ``node``."""
    if step is Step.FIRST_CHILD:
        return tree.first_child(node)
    if step is Step.PARENT_OF_FIRST:
        if tree.prev_sibling(node) is None:
            return tree.parent(node)
        return None
    if step is Step.RIGHT:
        return tree.next_sibling(node)
    return tree.prev_sibling(node)


class NFEvaluator:
    """Evaluator for normal-form node expressions and path automata on one
    tree."""

    def __init__(self, tree: XMLTree):
        self.tree = tree
        self._node_memo: dict[int, tuple[NFExpr, frozenset[int]]] = {}

    # --------------------------------------------------------------- queries

    def nodes(self, expr: NFExpr) -> frozenset[int]:
        """``[[expr]]_NExpr``."""
        cached = self._node_memo.get(id(expr))
        if cached is not None:
            return cached[1]
        result = self._nodes_raw(expr)
        self._node_memo[id(expr)] = (expr, result)
        return result

    def _nodes_raw(self, expr: NFExpr) -> frozenset[int]:
        tree = self.tree
        match expr:
            case NFLabel(name=name):
                return frozenset(tree.nodes_with_label(name))
            case NFTop():
                return frozenset(tree.nodes)
            case NFNot(child=c):
                return frozenset(tree.nodes) - self.nodes(c)
            case NFAnd(left=a, right=b):
                return self.nodes(a) & self.nodes(b)
            case NFLoop(automaton=auto):
                return self.loop_nodes(auto)
        raise TypeError(f"unknown normal-form expression {expr!r}")

    def relation(self, automaton: PathAutomaton) -> dict[int, frozenset[int]]:
        """``[[π]]_PExpr`` as source → targets, via product reachability."""
        edges = self._product_edges(automaton)
        result: dict[int, frozenset[int]] = {}
        for source in self.tree.nodes:
            reached = self._reach(edges, (source, automaton.initial))
            targets = frozenset(
                node for (node, state) in reached if state == automaton.final
            )
            if targets:
                result[source] = targets
        return result

    def loop_nodes(self, automaton: PathAutomaton) -> frozenset[int]:
        """``[[loop(π)]]``: nodes ``n`` with ``(n, n) ∈ [[π]]``."""
        edges = self._product_edges(automaton)
        satisfied = set()
        for node in self.tree.nodes:
            reached = self._reach(edges, (node, automaton.initial))
            if (node, automaton.final) in reached:
                satisfied.add(node)
        return frozenset(satisfied)

    # ------------------------------------------------------------- machinery

    def _product_edges(self, automaton: PathAutomaton):
        """Adjacency of the product graph: (node, state) → [(node', state')]."""
        tree = self.tree
        edges: dict[tuple[int, int], list[tuple[int, int]]] = {}
        for source_state, symbol, target_state in automaton.transitions:
            if isinstance(symbol, Step):
                for node in tree.nodes:
                    target_node = step_target(tree, node, symbol)
                    if target_node is not None:
                        edges.setdefault((node, source_state), []).append(
                            (target_node, target_state)
                        )
            else:
                for node in self.nodes(symbol):
                    edges.setdefault((node, source_state), []).append(
                        (node, target_state)
                    )
        return edges

    @staticmethod
    def _reach(edges, start):
        seen = {start}
        frontier = [start]
        while frontier:
            position = frontier.pop()
            for successor in edges.get(position, ()):
                if successor not in seen:
                    seen.add(successor)
                    frontier.append(successor)
        return seen


def loops_fixpoint(tree: XMLTree, automaton: PathAutomaton,
                   evaluator: NFEvaluator | None = None) -> set[tuple[int, int, int]]:
    """The set ``LOOPS_π`` of Lemma 11, by its inductive definition.

    ``(n, q, q') ∈ LOOPS_π`` iff ``n ∈ [[loop(π_{q,q'})]]``.  Computed as a
    chaotic fixpoint over the two closure rules (step-wrapped detours and
    same-node transitivity).
    """
    evaluator = evaluator or NFEvaluator(tree)
    states = range(automaton.num_states)

    loops: set[tuple[int, int, int]] = set()
    # LOOPS^(0): reflexive triples and satisfied test transitions.
    for node in tree.nodes:
        for state in states:
            loops.add((node, state, state))
    for source, test, target in automaton.test_transitions():
        for node in evaluator.nodes(test):
            loops.add((node, source, target))

    step_trans = list(automaton.step_transitions())
    # Index: by (step, source-state) and by (converse-step entries for rule 1).
    changed = True
    while changed:
        changed = False
        additions: set[tuple[int, int, int]] = set()
        # Rule (1): n --τ--> m, (m, qj, qk) ∈ LOOPS, (qi, τ, qj) ∈ Δ,
        # (qk, τ˘, qℓ) ∈ Δ  ⇒  (n, qi, qℓ).
        for (qi, tau, qj) in step_trans:
            returns = [
                (qk, ql) for (qk, sym, ql) in step_trans if sym is tau.converse
            ]
            if not returns:
                continue
            for node in tree.nodes:
                target = step_target(tree, node, tau)
                if target is None:
                    continue
                for qk, ql in returns:
                    if (target, qj, qk) in loops and (node, qi, ql) not in loops:
                        additions.add((node, qi, ql))
        # Rule (2): transitivity at the same node.
        by_node: dict[int, list[tuple[int, int]]] = {}
        for (node, a, b) in loops:
            by_node.setdefault(node, []).append((a, b))
        for node, pairs in by_node.items():
            forward: dict[int, set[int]] = {}
            for a, b in pairs:
                forward.setdefault(a, set()).add(b)
            for a, mids in forward.items():
                for mid in list(mids):
                    for b in forward.get(mid, ()):
                        if (node, a, b) not in loops:
                            additions.add((node, a, b))
        if additions:
            loops |= additions
            changed = True
    return loops
