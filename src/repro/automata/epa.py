"""Extended path automata with ``let`` environments (§4, Lemmas 15–17).

``CoreXPath_NFA(*, loop, let)`` extends the normal form with node expressions
``let p := φ in ψ``.  We represent a let-expression as a pair
``(core, environment)`` where ``environment`` is the sequence
``ρ = (p₁, φ₁), …, (p_n, φ_n)``; an *extended path automaton* (EPA) is the
pair ``(π, ρ)``.  Expansion substitutes definitions front-to-back, so a
definition may reference labels bound *later* in the sequence — exactly the
scoping Lemma 15 relies on (the fresh ``p_{π,q,r}`` pairs precede ρ₁ρ₂ whose
labels they mention).

* :func:`intersect_epas` — Lemma 15: an EPA for ``π₁^{ρ₁} ∩ π₂^{ρ₂}`` with
  ``|π^∩|_S = |π₁|_S · |π₂|_S``, using ``loop``-tests to cut detours short.
* :func:`path_to_epa` / :func:`node_to_let_nf` — the Lemma 16 translation
  from CoreXPath(*, ∩) (single-exponential overall; polynomial for bounded
  intersection depth, Lemma 17).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from .. import obs
from ..xpath.ast import (
    And,
    AxisClosure,
    AxisStep,
    Filter,
    Intersect,
    Label,
    NodeExpr,
    Not,
    PathEquality,
    PathExpr,
    Self,
    Seq,
    SomePath,
    Star,
    Top,
    Union,
)
from .nf import (
    NFAnd,
    NFExpr,
    NFLabel,
    NFLoop,
    NFNot,
    NFTop,
    PathAutomaton,
    Step,
    nf_labels_used,
    nf_size,
)
from .normalform import NormalFormError, eliminate_skips, path_to_automaton

__all__ = [
    "Environment",
    "EPA",
    "LetNF",
    "nf_substitute_label",
    "intersect_epas",
    "path_to_epa",
    "node_to_let_nf",
    "FreshLabels",
]

#: ``ρ``: a sequence of (label, definition) pairs.
Environment = tuple[tuple[str, NFExpr], ...]


class FreshLabels:
    """Generates globally fresh let-bound label names (``@let0``, ...)."""

    def __init__(self, prefix: str = "@let"):
        self._prefix = prefix
        self._counter = itertools.count()

    def fresh(self) -> str:
        return f"{self._prefix}{next(self._counter)}"


def environment_size(environment: Environment) -> int:
    """``|ρ| = Σ (|φ_i| + 1)`` (§4.1)."""
    return sum(nf_size(defn) + 1 for _, defn in environment)


def nf_substitute_label(expr: NFExpr, name: str, replacement: NFExpr) -> NFExpr:
    """Replace the label ``name`` by ``replacement`` everywhere in ``expr``,
    descending into automata test transitions.

    Identity-preserving: subexpressions without an occurrence of ``name``
    are returned as the *same object* (let-elimination relies on this to
    recognize its gadgets by ``id`` across substitution rounds).
    """
    match expr:
        case NFLabel(name=n):
            return replacement if n == name else expr
        case NFTop():
            return expr
        case NFNot(child=c):
            new_child = nf_substitute_label(c, name, replacement)
            return expr if new_child is c else NFNot(new_child)
        case NFAnd(left=a, right=b):
            new_left = nf_substitute_label(a, name, replacement)
            new_right = nf_substitute_label(b, name, replacement)
            if new_left is a and new_right is b:
                return expr
            return NFAnd(new_left, new_right)
        case NFLoop(automaton=auto):
            new_auto = automaton_substitute_label(auto, name, replacement)
            return expr if new_auto is auto else NFLoop(new_auto)
    raise TypeError(f"unknown normal-form expression {expr!r}")


def automaton_substitute_label(auto: PathAutomaton, name: str,
                               replacement: NFExpr) -> PathAutomaton:
    changed = False
    transitions = []
    for source, symbol, target in auto.transitions:
        if isinstance(symbol, NFExpr):
            new_symbol = nf_substitute_label(symbol, name, replacement)
            changed = changed or new_symbol is not symbol
            transitions.append((source, new_symbol, target))
        else:
            transitions.append((source, symbol, target))
    if not changed:
        return auto
    return PathAutomaton(auto.num_states, frozenset(transitions),
                         auto.initial, auto.final)


def _expanded_definitions(environment: Environment) -> dict[str, NFExpr]:
    """Fully expand an environment's definitions.

    A definition may reference labels bound *later* in the sequence, so we
    expand back-to-front: by the time a definition is processed, everything
    it can reference is already fully expanded.  (Exponential in general —
    that is the point of the ``let`` construct.)
    """
    expanded: dict[str, NFExpr] = {}
    for name, definition in reversed(environment):
        if name in expanded:
            raise ValueError(f"environment binds {name!r} twice")
        for used in nf_labels_used(definition):
            if used in expanded:
                definition = nf_substitute_label(definition, used, expanded[used])
        expanded[name] = definition
    return expanded


@dataclass(frozen=True)
class LetNF:
    """A let-expression ``let ρ in core`` over the normal form."""

    core: NFExpr
    environment: Environment = ()

    def expand(self) -> NFExpr:
        """Substitute all definitions away (may be exponential)."""
        expanded = _expanded_definitions(self.environment)
        expr = self.core
        for used in nf_labels_used(expr):
            if used in expanded:
                expr = nf_substitute_label(expr, used, expanded[used])
        return expr

    def size(self) -> int:
        """``|let ρ in ψ| = |ρ| + |ψ|``."""
        return nf_size(self.core) + environment_size(self.environment)


@dataclass(frozen=True)
class EPA:
    """An extended path automaton ``(π, ρ)`` — a succinct form of ``π^ρ``."""

    automaton: PathAutomaton
    environment: Environment = ()

    def expand(self) -> PathAutomaton:
        """``π^ρ``: substitute all bound labels by their definitions."""
        expanded = _expanded_definitions(self.environment)
        auto = self.automaton
        used: set[str] = set()
        for _, test, _ in auto.test_transitions():
            used |= nf_labels_used(test)
        for name in used:
            if name in expanded:
                auto = automaton_substitute_label(auto, name, expanded[name])
        return auto

    @property
    def num_states(self) -> int:
        """``|π|_S``."""
        return self.automaton.num_states

    def size(self) -> int:
        """``|(π, ρ)| = |π| + |ρ|``."""
        return self.automaton.size() + environment_size(self.environment)


# ------------------------------------------------------------------ Lemma 15


def intersect_epas(first: EPA, second: EPA, fresh: FreshLabels) -> EPA:
    """Lemma 15: an EPA equivalent to ``π₁^{ρ₁} ∩ π₂^{ρ₂}``.

    The product automaton tracks both traces along the unique cycle-free path
    between the endpoints; detours either trace makes are cut short by
    ``loop``-tests: fresh labels ``p_{π_i,q,r}`` bound to ``loop((π_i)_{q,r})``
    let one component jump from ``q`` to ``r`` at the same tree node.
    """
    auto1, env1 = first.automaton, first.environment
    auto2, env2 = second.automaton, second.environment

    def pack(q: int, q2: int) -> int:
        return q * auto2.num_states + q2

    transitions: set = set()
    new_pairs: list[tuple[str, NFExpr]] = []

    # Synchronized basic steps.
    steps2: dict[Step, list[tuple[int, int]]] = {}
    for source, symbol, target in auto2.step_transitions():
        steps2.setdefault(symbol, []).append((source, target))
    for source, symbol, target in auto1.step_transitions():
        for source2, target2 in steps2.get(symbol, ()):
            transitions.add((pack(source, source2), symbol, pack(target, target2)))

    # Loop-test jumps for the first component: (⟨q,q'⟩, .[p_{π₁,q,r}], ⟨r,q'⟩).
    # Pairs with q = r (a trivially-true loop, hence a no-op jump) and pairs
    # where r is not even graph-reachable from q (a trivially-false loop,
    # hence a dead transition) are pruned — a semantics-preserving shortcut
    # over the paper's "for all q, r" formulation.
    reach1 = _reachable_pairs(auto1)
    for q, r in sorted(reach1):
        if q == r:
            continue
        name = fresh.fresh()
        new_pairs.append((name, NFLoop(auto1.shift(q, r))))
        test = NFLabel(name)
        for q2 in range(auto2.num_states):
            transitions.add((pack(q, q2), test, pack(r, q2)))
    # ... and for the second component.
    reach2 = _reachable_pairs(auto2)
    for q2, r2 in sorted(reach2):
        if q2 == r2:
            continue
        name = fresh.fresh()
        new_pairs.append((name, NFLoop(auto2.shift(q2, r2))))
        test = NFLabel(name)
        for q in range(auto1.num_states):
            transitions.add((pack(q, q2), test, pack(q, r2)))

    product = PathAutomaton(
        auto1.num_states * auto2.num_states,
        frozenset(transitions),
        pack(auto1.initial, auto2.initial),
        pack(auto1.final, auto2.final),
    )
    obs.count("epa.intersections")
    obs.count("epa.states_built", product.num_states)
    obs.count("epa.transitions_built", len(transitions))
    obs.count("epa.let_bindings", len(new_pairs))
    # New pairs first: their definitions mention labels of ρ₁/ρ₂, which are
    # bound later in the sequence (front-to-back expansion resolves them).
    return EPA(product, tuple(new_pairs) + env1 + env2)


def _reachable_pairs(auto: PathAutomaton) -> set[tuple[int, int]]:
    """Pairs (q, r) with r reachable from q in the automaton graph."""
    adjacency: dict[int, set[int]] = {}
    for source, _, target in auto.transitions:
        adjacency.setdefault(source, set()).add(target)
    pairs: set[tuple[int, int]] = set()
    for start in range(auto.num_states):
        seen = {start}
        frontier = [start]
        while frontier:
            state = frontier.pop()
            for successor in adjacency.get(state, ()):
                if successor not in seen:
                    seen.add(successor)
                    frontier.append(successor)
        pairs.update((start, state) for state in seen)
    return pairs


# ------------------------------------------------------------------ Lemma 16


def _renumber(auto: PathAutomaton, offset: int, total: int) -> set:
    return {
        (source + offset, symbol, target + offset)
        for source, symbol, target in auto.transitions
    }


def path_to_epa(path: PathExpr, fresh: FreshLabels | None = None) -> EPA:
    """Lemma 16(2): translate a CoreXPath(*, ∩) path expression to an EPA.

    Single-exponential in general; polynomial when the intersection depth is
    bounded (Lemma 17) — the benchmark ``test_table1_cap`` measures both.
    """
    fresh = fresh or FreshLabels()
    obs.count("epa.translate_calls")

    match path:
        case AxisStep() | AxisClosure() | Self():
            return EPA(eliminate_skips(path_to_automaton(path)), ())
        case Seq(left=a, right=b):
            return _squeeze(_concat_epa(path_to_epa(a, fresh), path_to_epa(b, fresh)))
        case Union(left=a, right=b):
            return _squeeze(_union_epa(path_to_epa(a, fresh), path_to_epa(b, fresh)))
        case Star(path=a):
            return _squeeze(_star_epa(path_to_epa(a, fresh)))
        case Filter(path=a, predicate=p):
            inner = path_to_epa(a, fresh)
            predicate = node_to_let_nf(p, fresh)
            name = fresh.fresh()
            auto = inner.automaton
            final = auto.num_states
            transitions = set(auto.transitions)
            transitions.add((auto.final, NFLabel(name), final))
            new_auto = PathAutomaton(auto.num_states + 1, frozenset(transitions),
                                     auto.initial, final)
            env = ((name, predicate.core),) + predicate.environment + inner.environment
            return EPA(new_auto, env)
        case Intersect(left=a, right=b):
            return intersect_epas(path_to_epa(a, fresh), path_to_epa(b, fresh), fresh)
    raise NormalFormError(
        f"{type(path).__name__} is outside CoreXPath(*, ∩)"
    )


def _squeeze(epa: EPA) -> EPA:
    """Remove ``.[⊤]`` glue transitions introduced by the Thompson-style
    combinators (keeps the Lemma 16/17 size bounds, only tighter)."""
    return EPA(eliminate_skips(epa.automaton), epa.environment)


def _concat_epa(first: EPA, second: EPA) -> EPA:
    auto1, auto2 = first.automaton, second.automaton
    total = auto1.num_states + auto2.num_states
    transitions = _renumber(auto1, 0, total) | _renumber(auto2, auto1.num_states, total)
    transitions.add((auto1.final, NFTop(), auto2.initial + auto1.num_states))
    auto = PathAutomaton(total, frozenset(transitions), auto1.initial,
                         auto2.final + auto1.num_states)
    return EPA(auto, first.environment + second.environment)


def _union_epa(first: EPA, second: EPA) -> EPA:
    auto1, auto2 = first.automaton, second.automaton
    offset2 = auto1.num_states
    total = auto1.num_states + auto2.num_states + 2
    start, end = total - 2, total - 1
    transitions = _renumber(auto1, 0, total) | _renumber(auto2, offset2, total)
    skip = NFTop()
    transitions |= {
        (start, skip, auto1.initial),
        (start, skip, auto2.initial + offset2),
        (auto1.final, skip, end),
        (auto2.final + offset2, skip, end),
    }
    return EPA(PathAutomaton(total, frozenset(transitions), start, end),
               first.environment + second.environment)


def _star_epa(inner: EPA) -> EPA:
    auto = inner.automaton
    total = auto.num_states + 2
    start, end = total - 2, total - 1
    transitions = _renumber(auto, 0, total)
    skip = NFTop()
    transitions |= {
        (start, skip, end),
        (start, skip, auto.initial),
        (auto.final, skip, auto.initial),
        (auto.final, skip, end),
    }
    return EPA(PathAutomaton(total, frozenset(transitions), start, end),
               inner.environment)


def node_to_let_nf(expr: NodeExpr, fresh: FreshLabels | None = None) -> LetNF:
    """Lemma 16(1): translate a CoreXPath(*, ∩) node expression to a
    let-expression over the normal form.

    ``α ≈ β`` is accepted as well, via the §2.2 equivalence ``⟨α ∩ β⟩``.
    """
    fresh = fresh or FreshLabels()
    match expr:
        case Label(name=name):
            return LetNF(NFLabel(name), ())
        case Top():
            return LetNF(NFTop(), ())
        case Not(child=c):
            inner = node_to_let_nf(c, fresh)
            return LetNF(NFNot(inner.core), inner.environment)
        case And(left=a, right=b):
            left = node_to_let_nf(a, fresh)
            right = node_to_let_nf(b, fresh)
            return LetNF(NFAnd(left.core, right.core),
                         left.environment + right.environment)
        case SomePath(path=a):
            epa = path_to_epa(a, fresh)
            auto = epa.automaton
            # π': let the final state roam freely, then loop(π') ⟺ ⟨α⟩.
            transitions = set(auto.transitions)
            for step in Step:
                transitions.add((auto.final, step, auto.final))
            roaming = PathAutomaton(auto.num_states, frozenset(transitions),
                                    auto.initial, auto.final)
            obs.count("epa.loop_tests")
            return LetNF(NFLoop(roaming), epa.environment)
        case PathEquality(left=a, right=b):
            return node_to_let_nf(SomePath(Intersect(a, b)), fresh)
    raise NormalFormError(
        f"{type(expr).__name__} is outside CoreXPath(*, ∩)"
    )
