"""Two-way alternating tree automata (Definitions 8–9) and the reduction of
satisfiability to 2ATA acceptance (§3.3, Table III, Lemma 12).

Given a CoreXPath(*, ≈) node expression ``φ``, :func:`build_twoata`
constructs the 2ATA ``A_φ`` whose states are the expressions in ``cl(φ')``
with ``φ' = loop(↓*[φ]/↑*)``, whose transition function is exactly Table III,
and whose parity condition assigns 1 to ``loop`` states and 2 to all others.
``A_φ`` accepts an XML tree iff the tree satisfies ``φ`` at some node
(Lemma 12) — a fact the test suite verifies against the direct semantics.

Acceptance of a *given finite tree* is decided exactly, by solving the parity
game on the product of tree and automaton (:func:`accepts`).  Emptiness of
``L(A_φ)`` — Theorem 10's EXPTIME result via automata on infinite binary
trees — is substituted by the bounded search engine of
:mod:`repro.analysis.engines`; see DESIGN.md §2 item 1.

Implementation notes: states are interned to integers (indices into
``cl(φ')``) and transition formulas are hash-consed tuples —
``("true",)``, ``("false",)``, ``("atom", move, state_index)``,
``("and", child_indices)``, ``("or", child_indices)`` — so that building and
solving the acceptance game never hashes deep expression trees.
"""

from __future__ import annotations

from .. import obs
from ..games import ParityGame, solve_parity
from ..trees import XMLTree
from ..xpath.ast import Axis, AxisClosure, Filter, NodeExpr, Seq
from .evaluate import possible_steps, step_target
from .nf import (
    NFAnd,
    NFExpr,
    NFLabel,
    NFLoop,
    NFNot,
    NFTop,
    PathAutomaton,
    Step,
    nf_negate,
    nf_subexpressions,
)
from .normalform import eliminate_skips, path_to_automaton

__all__ = ["TwoATA", "closure", "build_twoata", "accepts"]

#: ε is represented by the move ``"eps"``; the other moves are :class:`Step`.
EPS = "eps"


def closure(phi_prime: NFExpr) -> frozenset[NFExpr]:
    """``cl(φ')`` (§3.3): subexpressions, all state-shifted loops, and single
    negations."""
    base: set[NFExpr] = set(nf_subexpressions(phi_prime))
    for expr in list(base):
        if isinstance(expr, NFLoop):
            automaton = expr.automaton
            for q in range(automaton.num_states):
                for q_prime in range(automaton.num_states):
                    base.add(NFLoop(automaton.shift(q, q_prime)))
    closed = set(base)
    for expr in base:
        if not isinstance(expr, NFNot):
            closed.add(NFNot(expr))
    return frozenset(closed)


class TwoATA:
    """The 2ATA ``A_φ`` with states ``{q_ψ | ψ ∈ cl(φ')}``.

    ``state_exprs[i]`` is the normal-form expression of state ``i``;
    ``initial`` is the index of ``q_{φ'}``.
    """

    def __init__(self, phi_prime: NFExpr):
        self.initial_expr = phi_prime
        self.state_exprs: list[NFExpr] = sorted(closure(phi_prime), key=repr)
        self._state_ids: dict[NFExpr, int] = {
            expr: index for index, expr in enumerate(self.state_exprs)
        }
        self.initial = self._state_ids[phi_prime]
        self._priorities = [
            1 if isinstance(expr, NFLoop) else 2 for expr in self.state_exprs
        ]
        # Hash-consed transition formulas; index 0 is true, 1 is false.
        self._formula_table: list[tuple] = [("true",), ("false",)]
        self._formula_ids: dict[tuple, int] = {("true",): 0, ("false",): 1}
        self._delta_memo: dict[tuple, int] = {}
        obs.count("twoata.automata_built")
        obs.count("twoata.states_built", len(self.state_exprs))
        obs.gauge("twoata.states", len(self.state_exprs))

    # ------------------------------------------------------------ structure

    @property
    def num_states(self) -> int:
        return len(self.state_exprs)

    def priority(self, state: int) -> int:
        """``Acc``: 1 for ``loop`` states (they must not persist forever on a
        path of the run), 2 for everything else."""
        return self._priorities[state]

    def state_of(self, expr: NFExpr) -> int:
        return self._state_ids[expr]

    def formula(self, index: int) -> tuple:
        """The hash-consed transition formula node with the given index."""
        return self._formula_table[index]

    # ------------------------------------------------------ formula building

    def _intern(self, node: tuple) -> int:
        index = self._formula_ids.get(node)
        if index is None:
            index = len(self._formula_table)
            self._formula_table.append(node)
            self._formula_ids[node] = index
        return index

    def _atom(self, move, state: int) -> int:
        return self._intern(("atom", move, state))

    def _conj(self, children: list[int]) -> int:
        if 1 in children:
            return 1
        children = sorted({child for child in children if child != 0})
        if not children:
            return 0  # empty conjunction is true
        if len(children) == 1:
            return children[0]
        return self._intern(("and", tuple(children)))

    def _disj(self, children: list[int]) -> int:
        if 0 in children:
            return 0
        children = sorted({child for child in children if child != 1})
        if not children:
            return 1  # empty disjunction is false
        if len(children) == 1:
            return children[0]
        return self._intern(("or", tuple(children)))

    # ------------------------------------------------------------ transition

    def delta(self, state: int, label: str, poss_steps: frozenset[Step]) -> int:
        """Table III; returns the index of the transition formula."""
        key = (state, label, poss_steps)
        index = self._delta_memo.get(key)
        if index is None:
            obs.count("twoata.transitions_built")
            index = self._delta_raw(state, label, poss_steps)
            self._delta_memo[key] = index
        return index

    def _delta_raw(self, state: int, label: str,
                   poss_steps: frozenset[Step]) -> int:
        expr = self.state_exprs[state]
        match expr:
            case NFLabel(name=name):
                return 0 if name == label else 1
            case NFTop():
                return 0
            case NFAnd(left=a, right=b):
                return self._conj([self._atom(EPS, self.state_of(a)),
                                   self._atom(EPS, self.state_of(b))])
            case NFLoop(automaton=auto):
                return self._delta_loop(auto, poss_steps, positive=True)
            case NFNot(child=child):
                return self._delta_negative(child, label, poss_steps)
        raise TypeError(f"unknown state expression {expr!r}")

    def _delta_negative(self, child: NFExpr, label: str,
                        poss_steps: frozenset[Step]) -> int:
        match child:
            case NFLabel(name=name):
                return 1 if name == label else 0
            case NFTop():
                return 1
            case NFNot(child=inner):
                # ¬¬ψ does not occur in cl(φ'), but resolve it for safety.
                return self.delta(self.state_of(inner), label, poss_steps)
            case NFAnd(left=a, right=b):
                return self._disj([
                    self._atom(EPS, self.state_of(nf_negate(a))),
                    self._atom(EPS, self.state_of(nf_negate(b))),
                ])
            case NFLoop(automaton=auto):
                return self._delta_loop(auto, poss_steps, positive=False)
        raise TypeError(f"unknown negated state expression {child!r}")

    def _delta_loop(self, auto: PathAutomaton, poss_steps: frozenset[Step],
                    positive: bool) -> int:
        q_init, q_final = auto.initial, auto.final
        if q_init == q_final:
            return 0 if positive else 1

        def loop_atom(move, q: int, q_prime: int) -> int:
            loop_expr: NFExpr = NFLoop(auto.shift(q, q_prime))
            if not positive:
                loop_expr = NFNot(loop_expr)
            return self._atom(move, self.state_of(loop_expr))

        parts: list[int] = []
        # Direct test transitions from q_I to q_F.
        for source, test, target in auto.test_transitions():
            if source == q_init and target == q_final:
                target_expr = test if positive else nf_negate(test)
                parts.append(self._atom(EPS, self.state_of(target_expr)))
        # Step out and return: (q_I, τ, q_k) and (q_ℓ, τ˘, q_F).
        for source, tau, q_k in auto.step_transitions():
            if source != q_init or tau not in poss_steps:
                continue
            for q_l, sym, target in auto.step_transitions():
                if target == q_final and sym is tau.converse:
                    parts.append(loop_atom(tau, q_k, q_l))
        # Split the loop at an intermediate state.  q_k ∈ {q_I, q_F} is
        # redundant (it yields a trivial ⊤-half plus the state itself), so it
        # is pruned; the halves are built in negated (dual) form when
        # positive=False, so only the outer connective flips below.
        for q_k in range(auto.num_states):
            if q_k in (q_init, q_final):
                continue
            halves = [loop_atom(EPS, q_init, q_k), loop_atom(EPS, q_k, q_final)]
            parts.append(self._conj(halves) if positive else self._disj(halves))
        return self._disj(parts) if positive else self._conj(parts)


def build_twoata(phi: NodeExpr) -> TwoATA:
    """The 2ATA ``A_φ`` for a CoreXPath(*, ≈) node expression ``φ``.

    ``φ' = loop(↓*[φ]/↑*)`` holds at the root iff ``φ`` holds somewhere, so
    the automaton starts at the root in state ``q_{φ'}``.
    """
    with obs.span("twoata.build"):
        wrapped = Seq(Filter(AxisClosure(Axis.DOWN), phi), AxisClosure(Axis.UP))
        phi_prime: NFExpr = NFLoop(eliminate_skips(path_to_automaton(wrapped)))
        return TwoATA(phi_prime)


def accepts(automaton: TwoATA, tree: XMLTree) -> bool:
    """Does ``automaton`` accept ``tree``?  Decided exactly by solving the
    parity game on the (reachable part of the) product of tree and automaton:
    Eve resolves disjunctions (the nondeterminism of the run), Adam
    conjunctions (the alternation); priorities come from ``Acc``.
    """
    # Positions: ("st", node, state) | ("f", node, formula_index) | sinks.
    eve_sink = ("win", 0, 0)
    adam_sink = ("win", 1, 1)
    owner = {eve_sink: 0, adam_sink: 1}
    priority = {eve_sink: 2, adam_sink: 1}
    moves: dict = {eve_sink: (eve_sink,), adam_sink: (adam_sink,)}

    root_position = ("st", tree.root, automaton.initial)
    pending = [root_position]
    seen = {root_position}
    poss = {node: possible_steps(tree, node) for node in tree.nodes}

    def push(position) -> None:
        if position not in seen:
            seen.add(position)
            pending.append(position)

    while pending:
        position = pending.pop()
        kind, node, payload = position
        if kind == "st":
            formula_index = automaton.delta(payload, tree.label(node), poss[node])
            successor = ("f", node, formula_index)
            owner[position] = 0
            priority[position] = automaton.priority(payload)
            moves[position] = (successor,)
            push(successor)
            continue
        formula = automaton.formula(payload)
        priority[position] = 2
        tag = formula[0]
        if tag == "true":
            owner[position] = 0
            moves[position] = (eve_sink,)
        elif tag == "false":
            owner[position] = 0
            moves[position] = (adam_sink,)
        elif tag == "atom":
            _, move, state = formula
            target = node if move == EPS else step_target(tree, node, move)
            owner[position] = 0
            if target is None:
                moves[position] = (adam_sink,)
            else:
                successor = ("st", target, state)
                moves[position] = (successor,)
                push(successor)
        else:
            owner[position] = 0 if tag == "or" else 1
            successors = tuple(("f", node, child) for child in formula[1])
            moves[position] = successors
            for successor in successors:
                push(successor)

    obs.count("twoata.games_solved")
    obs.gauge("twoata.game_positions", len(seen))
    game = ParityGame(owner, priority, moves)
    win_eve, _ = solve_parity(game)
    return root_position in win_eve
