"""Two-way alternating tree automata (Definitions 8–9) and the reduction of
satisfiability to 2ATA acceptance (§3.3, Table III, Lemma 12).

Given a CoreXPath(*, ≈) node expression ``φ``, :func:`build_twoata`
constructs the 2ATA ``A_φ`` whose states are the expressions in ``cl(φ')``
with ``φ' = loop(↓*[φ]/↑*)``, whose transition function is exactly Table III,
and whose parity condition assigns 1 to ``loop`` states and 2 to all others.
``A_φ`` accepts an XML tree iff the tree satisfies ``φ`` at some node
(Lemma 12) — a fact the test suite verifies against the direct semantics.

Acceptance of a *given finite tree* is decided exactly, by solving the parity
game on the product of tree and automaton (:func:`accepts`).  Emptiness of
``L(A_φ)`` — Theorem 10's EXPTIME result — is decided by
:mod:`repro.automata.emptiness` over the first-child/next-sibling encoding;
the ``automata`` engine in :mod:`repro.analysis.automata_engine` exposes it
as the conclusive decision procedure for CoreXPath(*, ≈) containment.

The symbolic machinery lives in :mod:`repro.automata.core`: states are
interned to integers (indices into ``cl(φ')``), transition formulas are
hash-consed tuples in a shared :class:`~repro.automata.core.FormulaTable`
(Table III's negative rows are its memoized De Morgan duals of the positive
rows), and the transition function is computed per *alphabet class* of an
:class:`~repro.automata.core.AlphabetPartition` — the labels ``φ`` mentions
plus one "other" class — rather than per concrete label, so ``δ`` is finite
even though the label alphabet is not.
"""

from __future__ import annotations

from .. import obs
from ..games import ParityGame, solve_parity
from ..trees import XMLTree
from ..xpath.ast import Axis, AxisClosure, Filter, NodeExpr, Seq
from .core import EPS, FALSE, TRUE, AlphabetPartition, FormulaTable
from .evaluate import possible_steps, step_target
from .nf import (
    NFAnd,
    NFExpr,
    NFLabel,
    NFLoop,
    NFNot,
    NFTop,
    PathAutomaton,
    Step,
    nf_negate,
    nf_subexpressions,
)
from .normalform import eliminate_skips, path_to_automaton

__all__ = ["TwoATA", "closure", "build_twoata", "accepts", "EPS"]


def closure(phi_prime: NFExpr) -> frozenset[NFExpr]:
    """``cl(φ')`` (§3.3): subexpressions, all state-shifted loops, and single
    negations."""
    base: set[NFExpr] = set(nf_subexpressions(phi_prime))
    for expr in list(base):
        if isinstance(expr, NFLoop):
            automaton = expr.automaton
            for q in range(automaton.num_states):
                for q_prime in range(automaton.num_states):
                    base.add(NFLoop(automaton.shift(q, q_prime)))
    closed = set(base)
    for expr in base:
        if not isinstance(expr, NFNot):
            closed.add(NFNot(expr))
    return frozenset(closed)


class TwoATA:
    """The 2ATA ``A_φ`` with states ``{q_ψ | ψ ∈ cl(φ')}``.

    ``state_exprs[i]`` is the normal-form expression of state ``i``;
    ``initial`` is the index of ``q_{φ'}``.  ``partition`` is the symbolic
    alphabet and ``table`` the shared transition-formula store.
    """

    def __init__(self, phi_prime: NFExpr,
                 partition: AlphabetPartition | None = None):
        self.initial_expr = phi_prime
        self.state_exprs: list[NFExpr] = sorted(closure(phi_prime), key=repr)
        self._state_ids: dict[NFExpr, int] = {
            expr: index for index, expr in enumerate(self.state_exprs)
        }
        self.initial = self._state_ids[phi_prime]
        self._priorities = [
            1 if isinstance(expr, NFLoop) else 2 for expr in self.state_exprs
        ]
        # A compiled schema may seed its shared partition, but only when it
        # matches the formula's own mentioned labels exactly — then the two
        # partitions are equal objects in all but identity, so adopting the
        # shared one changes nothing while letting emptiness memos keyed on
        # (base key, class mask) collide across a batch's problems.
        own = AlphabetPartition.from_nf(phi_prime)
        if partition is not None and partition.labels == own.labels:
            self.partition = partition
            obs.count("twoata.partition_shared")
        else:
            self.partition = own
        self.table = FormulaTable(negate_state=self._negate_state)
        self._delta_memo: dict[tuple, int] = {}
        obs.count("twoata.automata_built")
        obs.count("twoata.states_built", len(self.state_exprs))
        obs.gauge("twoata.states", len(self.state_exprs))
        obs.gauge("twoata.alphabet_classes", self.partition.num_classes)

    # ------------------------------------------------------------ structure

    @property
    def num_states(self) -> int:
        return len(self.state_exprs)

    def priority(self, state: int) -> int:
        """``Acc``: 1 for ``loop`` states (they must not persist forever on a
        path of the run), 2 for everything else."""
        return self._priorities[state]

    def state_of(self, expr: NFExpr) -> int:
        return self._state_ids[expr]

    def _negate_state(self, state: int) -> int:
        """``q_ψ ↦ q_{¬ψ}`` — total on ``cl(φ')`` by construction."""
        return self._state_ids[nf_negate(self.state_exprs[state])]

    def formula(self, index: int) -> tuple:
        """The hash-consed transition formula node with the given index."""
        return self.table.node(index)

    # ------------------------------------------------------------ transition

    def delta(self, state: int, label: str, poss_steps: frozenset[Step]) -> int:
        """Table III; returns the index of the transition formula."""
        return self.delta_class(
            state, self.partition.class_of(label), poss_steps
        )

    def delta_class(self, state: int, klass: int,
                    poss_steps: frozenset[Step]) -> int:
        """Table III per alphabet class — all concrete labels in one class
        share one transition formula."""
        key = (state, klass, poss_steps)
        index = self._delta_memo.get(key)
        if index is None:
            obs.count("twoata.transitions_built")
            index = self._delta_raw(state, klass, poss_steps)
            self._delta_memo[key] = index
        return index

    def _delta_raw(self, state: int, klass: int,
                   poss_steps: frozenset[Step]) -> int:
        expr = self.state_exprs[state]
        match expr:
            case NFLabel(name=name):
                matches = self.partition.class_of(name) == klass
                return TRUE if matches else FALSE
            case NFTop():
                return TRUE
            case NFAnd(left=a, right=b):
                return self.table.conj([
                    self.table.atom(EPS, self.state_of(a)),
                    self.table.atom(EPS, self.state_of(b)),
                ])
            case NFLoop(automaton=auto):
                return self._delta_loop(auto, poss_steps)
            case NFNot(child=child):
                # Table III's ¬ψ rows are the De Morgan duals of the ψ rows
                # (with every atom's state negated); ¬¬ψ collapses to ψ.
                inner = child.child if isinstance(child, NFNot) else None
                if inner is not None:
                    return self.delta_class(self.state_of(inner), klass,
                                            poss_steps)
                return self.table.dual(
                    self.delta_class(self.state_of(child), klass, poss_steps)
                )
        raise TypeError(f"unknown state expression {expr!r}")

    def _delta_loop(self, auto: PathAutomaton,
                    poss_steps: frozenset[Step]) -> int:
        q_init, q_final = auto.initial, auto.final
        if q_init == q_final:
            return TRUE

        def loop_atom(move, q: int, q_prime: int) -> int:
            return self.table.atom(
                move, self.state_of(NFLoop(auto.shift(q, q_prime)))
            )

        parts: list[int] = []
        # Direct test transitions from q_I to q_F.
        for source, test, target in auto.test_transitions():
            if source == q_init and target == q_final:
                parts.append(self.table.atom(EPS, self.state_of(test)))
        # Step out and return: (q_I, τ, q_k) and (q_ℓ, τ˘, q_F).
        for source, tau, q_k in auto.step_transitions():
            if source != q_init or tau not in poss_steps:
                continue
            for q_l, sym, target in auto.step_transitions():
                if target == q_final and sym is tau.converse:
                    parts.append(loop_atom(tau, q_k, q_l))
        # Split the loop at an intermediate state.  q_k ∈ {q_I, q_F} is
        # redundant (it yields a trivial ⊤-half plus the state itself), so
        # it is pruned.
        for q_k in range(auto.num_states):
            if q_k in (q_init, q_final):
                continue
            parts.append(self.table.conj([
                loop_atom(EPS, q_init, q_k), loop_atom(EPS, q_k, q_final),
            ]))
        return self.table.disj(parts)


def build_twoata(phi: NodeExpr,
                 partition: AlphabetPartition | None = None) -> TwoATA:
    """The 2ATA ``A_φ`` for a CoreXPath(*, ≈) node expression ``φ``.

    ``φ' = loop(↓*[φ]/↑*)`` holds at the root iff ``φ`` holds somewhere, so
    the automaton starts at the root in state ``q_{φ'}``.

    ``partition`` may be a compiled schema's shared alphabet partition; it
    is adopted only when it equals the formula's own mentioned-label
    partition (see :class:`TwoATA`), so results are identical either way.
    """
    with obs.span("twoata.build"):
        wrapped = Seq(Filter(AxisClosure(Axis.DOWN), phi), AxisClosure(Axis.UP))
        phi_prime: NFExpr = NFLoop(eliminate_skips(path_to_automaton(wrapped)))
        return TwoATA(phi_prime, partition=partition)


def accepts(automaton: TwoATA, tree: XMLTree) -> bool:
    """Does ``automaton`` accept ``tree``?  Decided exactly by solving the
    parity game on the (reachable part of the) product of tree and automaton:
    Eve resolves disjunctions (the nondeterminism of the run), Adam
    conjunctions (the alternation); priorities come from ``Acc``.
    """
    # Positions: ("st", node, state) | ("f", node, formula_index) | sinks.
    eve_sink = ("win", 0, 0)
    adam_sink = ("win", 1, 1)
    owner = {eve_sink: 0, adam_sink: 1}
    priority = {eve_sink: 2, adam_sink: 1}
    moves: dict = {eve_sink: (eve_sink,), adam_sink: (adam_sink,)}

    root_position = ("st", tree.root, automaton.initial)
    pending = [root_position]
    seen = {root_position}
    poss = {node: possible_steps(tree, node) for node in tree.nodes}
    # Transition formulas depend on the label only through its class.
    klass = {node: automaton.partition.class_of(tree.label(node))
             for node in tree.nodes}

    def push(position) -> None:
        if position not in seen:
            seen.add(position)
            pending.append(position)

    while pending:
        position = pending.pop()
        kind, node, payload = position
        if kind == "st":
            formula_index = automaton.delta_class(payload, klass[node],
                                                  poss[node])
            successor = ("f", node, formula_index)
            owner[position] = 0
            priority[position] = automaton.priority(payload)
            moves[position] = (successor,)
            push(successor)
            continue
        formula = automaton.formula(payload)
        priority[position] = 2
        tag = formula[0]
        if tag == "true":
            owner[position] = 0
            moves[position] = (eve_sink,)
        elif tag == "false":
            owner[position] = 0
            moves[position] = (adam_sink,)
        elif tag == "atom":
            _, move, state = formula
            target = node if move == EPS else step_target(tree, node, move)
            owner[position] = 0
            if target is None:
                moves[position] = (adam_sink,)
            else:
                successor = ("st", target, state)
                moves[position] = (successor,)
                push(successor)
        else:
            owner[position] = 0 if tag == "or" else 1
            successors = tuple(("f", node, child) for child in formula[1])
            moves[position] = successors
            for successor in successors:
                push(successor)

    obs.count("twoata.games_solved")
    obs.gauge("twoata.game_positions", len(seen))
    game = ParityGame(owner, priority, moves)
    win_eve, _ = solve_parity(game)
    return root_position in win_eve
