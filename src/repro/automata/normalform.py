"""Linear translation CoreXPath(*, ≈) → CoreXPath_NFA(*, loop) (§3.1).

The four normalization steps of the paper:

1. Path equalities become loops: ``α ≈ β`` ⇒ ``loop(α/β˘)``; in particular
   ``loop(α) = α ≈ .``.
2. ``⟨α⟩`` is eliminated: ``⟨α⟩`` ⇒ ``loop(α/↑*/↓*)``.
3. The vertical axes are replaced by the first-child axis and its converse:
   ``↓ = ↓₁/→*`` and ``↑ = ←*/↑₁``.
4. Path expressions become NFAs over basic steps and tests, via a Thompson
   construction (skip transitions are tests ``.[⊤]``).

The composite translation is linear in the size of the input.
"""

from __future__ import annotations

from ..xpath.ast import (
    And,
    Axis,
    AxisClosure,
    AxisStep,
    Filter,
    Label,
    NodeExpr,
    Not,
    PathEquality,
    PathExpr,
    Self,
    Seq,
    SomePath,
    Star,
    Top,
    Union,
)
from ..xpath import passes
from ..xpath.builders import down_star, up_star
from ..xpath.rewrite import converse
from .nf import NFAnd, NFExpr, NFLabel, NFLoop, NFNot, NFTop, PathAutomaton, Step

__all__ = [
    "to_normal_form",
    "path_to_automaton",
    "eliminate_skips",
    "NormalFormError",
]


class NormalFormError(ValueError):
    """The expression is outside CoreXPath(*, ≈) and has no normal form."""


_SKIP: NFExpr = NFTop()


class _Builder:
    """Accumulates the transition table of one automaton under construction."""

    def __init__(self) -> None:
        self.count = 0
        self.transitions: set = set()

    def fresh(self) -> int:
        self.count += 1
        return self.count - 1

    def add(self, source: int, symbol, target: int) -> None:
        self.transitions.add((source, symbol, target))

    def finish(self, initial: int, final: int) -> PathAutomaton:
        return PathAutomaton(self.count, frozenset(self.transitions), initial, final)


def path_to_automaton(path: PathExpr) -> PathAutomaton:
    """Translate a CoreXPath(*, ≈) path expression into a path automaton.

    The input is consumed through the rewrite pipeline at level ``basic``
    (the normalizer — pipeline level 0) rather than re-normalized ad hoc:
    duplicate union members and unit compositions disappear before the
    Thompson construction, so the automaton never materializes states for
    them.  (Inputs arriving through engine dispatch are already canonical
    at the session level; re-running ``basic`` on them is a memo hit.)
    """
    builder = _Builder()
    start, end = _build(passes.canonical(path, level="basic"), builder)
    return builder.finish(start, end)


def _build(path: PathExpr, builder: _Builder) -> tuple[int, int]:
    start, end = builder.fresh(), builder.fresh()
    match path:
        case AxisStep(axis=Axis.DOWN):
            # ↓ = ↓₁/→* : go to the first child, then zero or more → steps.
            builder.add(start, Step.FIRST_CHILD, end)
            builder.add(end, Step.RIGHT, end)
        case AxisStep(axis=Axis.UP):
            # ↑ = ←*/↑₁.
            builder.add(start, Step.LEFT, start)
            builder.add(start, Step.PARENT_OF_FIRST, end)
        case AxisStep(axis=Axis.RIGHT):
            builder.add(start, Step.RIGHT, end)
        case AxisStep(axis=Axis.LEFT):
            builder.add(start, Step.LEFT, end)
        case AxisClosure(axis=axis):
            inner_start, inner_end = _build(AxisStep(axis), builder)
            builder.add(start, _SKIP, end)
            builder.add(start, _SKIP, inner_start)
            builder.add(inner_end, _SKIP, inner_start)
            builder.add(inner_end, _SKIP, end)
        case Self():
            builder.add(start, _SKIP, end)
        case Seq(left=a, right=b):
            a_start, a_end = _build(a, builder)
            b_start, b_end = _build(b, builder)
            builder.add(start, _SKIP, a_start)
            builder.add(a_end, _SKIP, b_start)
            builder.add(b_end, _SKIP, end)
        case Union(left=a, right=b):
            a_start, a_end = _build(a, builder)
            b_start, b_end = _build(b, builder)
            builder.add(start, _SKIP, a_start)
            builder.add(start, _SKIP, b_start)
            builder.add(a_end, _SKIP, end)
            builder.add(b_end, _SKIP, end)
        case Filter(path=a, predicate=p):
            a_start, a_end = _build(a, builder)
            builder.add(start, _SKIP, a_start)
            builder.add(a_end, to_normal_form(p), end)
        case Star(path=a):
            a_start, a_end = _build(a, builder)
            builder.add(start, _SKIP, end)
            builder.add(start, _SKIP, a_start)
            builder.add(a_end, _SKIP, a_start)
            builder.add(a_end, _SKIP, end)
        case _:
            raise NormalFormError(
                f"{type(path).__name__} is outside CoreXPath(*, ≈); "
                "translate ∩ via repro.automata.epa, − and for are non-elementary"
            )
    return start, end


def eliminate_skips(auto: PathAutomaton) -> PathAutomaton:
    """Remove ``.[⊤]`` skip transitions (the Thompson construction's ε-moves)
    and drop states left without incident transitions.

    Language-preserving for the automaton's own relation (and hence for every
    ``loop``/2ATA use of it); shrinks ``cl(φ')`` substantially since that set
    contains a state pair for *every* pair of automaton states.
    """
    skip = NFTop()
    n = auto.num_states
    skip_next: list[set[int]] = [set() for _ in range(n)]
    for source, symbol, target in auto.transitions:
        if isinstance(symbol, NFExpr) and symbol == skip:
            skip_next[source].add(target)

    def skip_closure(state: int) -> set[int]:
        seen = {state}
        frontier = [state]
        while frontier:
            current = frontier.pop()
            for successor in skip_next[current]:
                if successor not in seen:
                    seen.add(successor)
                    frontier.append(successor)
        return seen

    closures = [skip_closure(state) for state in range(n)]
    hard = [
        (source, symbol, target)
        for source, symbol, target in auto.transitions
        if not (isinstance(symbol, NFExpr) and symbol == skip)
    ]
    new_transitions: set = set()
    for source in range(n):
        for mid in closures[source]:
            for (trans_source, symbol, target) in hard:
                if trans_source == mid:
                    new_transitions.add((source, symbol, target))
    # Redirect acceptance: a hard step into a state that skip-reaches the
    # final state may as well land on the final state directly.
    for source, symbol, target in list(new_transitions):
        if auto.final in closures[target]:
            new_transitions.add((source, symbol, auto.final))
    # Preserve the empty trace (identity pairs) if initial skip-reaches final.
    if auto.final in closures[auto.initial] and auto.initial != auto.final:
        new_transitions.add((auto.initial, skip, auto.final))

    # Keep only states on some initial→final path: every trace (and every
    # sub-loop pair the Table III recursion can generate) stays within the
    # forward-reachable ∩ backward-reachable states.
    forward = _graph_reach(new_transitions, auto.initial, reverse=False)
    backward = _graph_reach(new_transitions, auto.final, reverse=True)
    used = (forward & backward) | {auto.initial, auto.final}
    kept = {
        (source, symbol, target)
        for source, symbol, target in new_transitions
        if source in used and target in used
    }
    renumber = {old: new for new, old in enumerate(sorted(used))}
    compacted = frozenset(
        (renumber[source], symbol, renumber[target])
        for source, symbol, target in kept
    )
    return PathAutomaton(len(renumber), compacted,
                         renumber[auto.initial], renumber[auto.final])


def _graph_reach(transitions, start: int, reverse: bool) -> set[int]:
    adjacency: dict[int, list[int]] = {}
    for source, _, target in transitions:
        if reverse:
            source, target = target, source
        adjacency.setdefault(source, []).append(target)
    seen = {start}
    frontier = [start]
    while frontier:
        state = frontier.pop()
        for successor in adjacency.get(state, ()):
            if successor not in seen:
                seen.add(successor)
                frontier.append(successor)
    return seen


#: ``↑*/↓*`` — travels from any node to any node (used to eliminate ⟨α⟩).
_ANYWHERE: PathExpr = Seq(up_star, down_star)


def to_normal_form(expr: NodeExpr) -> NFExpr:
    """Translate a CoreXPath(*, ≈) node expression into the normal form.

    Consumes rewrite-pipeline output at level ``basic`` (see
    :func:`path_to_automaton`); a session-level canonical input passes
    through unchanged."""
    expr = passes.canonical(expr, level="basic")
    match expr:
        case Label(name=name):
            return NFLabel(name)
        case Top():
            return NFTop()
        case Not(child=c):
            return NFNot(to_normal_form(c))
        case And(left=a, right=b):
            return NFAnd(to_normal_form(a), to_normal_form(b))
        case SomePath(path=a):
            # ⟨α⟩ = loop(α/↑*/↓*): follow α, then travel back to the start —
            # possible from anywhere, so the loop exists iff α has a target.
            return NFLoop(eliminate_skips(path_to_automaton(Seq(a, _ANYWHERE))))
        case PathEquality(left=a, right=b):
            # α ≈ β = loop(α/β˘).
            return NFLoop(eliminate_skips(path_to_automaton(Seq(a, converse(b)))))
    raise NormalFormError(
        f"{type(expr).__name__} is outside CoreXPath(*, ≈)"
    )
