"""Constructor helpers and the paper's standard abbreviations (§2.2).

These functions build real AST objects for the derived forms used throughout
the paper, expanding abbreviations exactly as it defines them:

* ``φ ∨ ψ  :=  ¬(¬φ ∧ ¬ψ)``
* ``φ ⇒ ψ  :=  ¬(φ ∧ ¬ψ)``
* ``⊥      :=  ¬⊤``
* ``τ⁺     :=  τ/τ*``
* ``every(α, φ) := ¬⟨α[¬φ]⟩``
* ``following := ↑*/→⁺/↓*`` and ``preceding := ↑*/←⁺/↓*``
"""

from __future__ import annotations

from functools import reduce

from .ast import (
    And,
    Axis,
    AxisClosure,
    AxisStep,
    Filter,
    Label,
    NodeExpr,
    Not,
    PathEquality,
    PathExpr,
    Self,
    Seq,
    SomePath,
    Top,
    Union,
)

__all__ = [
    "down", "up", "left", "right",
    "down_star", "up_star", "left_star", "right_star",
    "down_plus", "up_plus", "left_plus", "right_plus",
    "self_", "axis", "axis_star", "axis_plus",
    "label", "top", "bottom",
    "or_", "implies", "iff", "every", "and_all", "or_all",
    "seq_all", "union_all", "exists",
    "following", "preceding", "loop",
    "repeat",
]

# ----------------------------------------------------------- axis shorthands

down = AxisStep(Axis.DOWN)
up = AxisStep(Axis.UP)
left = AxisStep(Axis.LEFT)
right = AxisStep(Axis.RIGHT)

down_star = AxisClosure(Axis.DOWN)
up_star = AxisClosure(Axis.UP)
left_star = AxisClosure(Axis.LEFT)
right_star = AxisClosure(Axis.RIGHT)


def axis(which: Axis) -> AxisStep:
    """The basic axis step ``τ``."""
    return AxisStep(which)


def axis_star(which: Axis) -> AxisClosure:
    """The reflexive-transitive axis ``τ*``."""
    return AxisClosure(which)


def axis_plus(which: Axis) -> Seq:
    """``τ⁺``, the paper's shorthand for ``τ/τ*``."""
    return Seq(AxisStep(which), AxisClosure(which))


down_plus = axis_plus(Axis.DOWN)
up_plus = axis_plus(Axis.UP)
left_plus = axis_plus(Axis.LEFT)
right_plus = axis_plus(Axis.RIGHT)

self_ = Self()

#: ``following := ↑*/→⁺/↓*`` — all nodes after the current one in document
#: order that are not its descendants (§2.2 examples).
following = Seq(up_star, Seq(right_plus, down_star))

#: ``preceding := ↑*/←⁺/↓*``.
preceding = Seq(up_star, Seq(left_plus, down_star))


# ---------------------------------------------------------- node shorthands


def label(name: str) -> Label:
    return Label(name)


top = Top()

#: ``⊥ := ¬⊤``.
bottom = Not(Top())


def or_(left_expr: NodeExpr, right_expr: NodeExpr) -> NodeExpr:
    """``φ ∨ ψ := ¬(¬φ ∧ ¬ψ)``."""
    return Not(And(Not(left_expr), Not(right_expr)))


def implies(premise: NodeExpr, conclusion: NodeExpr) -> NodeExpr:
    """``φ ⇒ ψ := ¬(φ ∧ ¬ψ)``."""
    return Not(And(premise, Not(conclusion)))


def iff(left_expr: NodeExpr, right_expr: NodeExpr) -> NodeExpr:
    """``φ ⇔ ψ``, expanded via ⇒ in both directions."""
    return And(implies(left_expr, right_expr), implies(right_expr, left_expr))


def every(path: PathExpr, predicate: NodeExpr) -> NodeExpr:
    """``every(α, φ) := ¬⟨α[¬φ]⟩`` — all ``α``-reachable nodes satisfy ``φ``."""
    return Not(SomePath(Filter(path, Not(predicate))))


def exists(path: PathExpr) -> SomePath:
    """``⟨α⟩``."""
    return SomePath(path)


def loop(path: PathExpr) -> PathEquality:
    """``loop(α) := α ≈ .`` — the current node is ``α``-reachable from itself
    (§3.1, item (1))."""
    return PathEquality(path, Self())


def _balanced(items: list, combine) -> NodeExpr:
    """Fold pairwise so the result's depth is logarithmic in the count —
    large generated conjunctions (e.g. the Prop. 6 witness-tree formula)
    would otherwise exceed recursion limits downstream."""
    while len(items) > 1:
        items = [
            combine(items[i], items[i + 1]) if i + 1 < len(items) else items[i]
            for i in range(0, len(items), 2)
        ]
    return items[0]


def and_all(exprs) -> NodeExpr:
    """Conjunction of a sequence; the empty conjunction is ``⊤`` (a tautology,
    as stipulated below the ``α_flip-i`` definition in §6.2)."""
    exprs = list(exprs)
    if not exprs:
        return Top()
    return _balanced(exprs, And)


def or_all(exprs) -> NodeExpr:
    """Disjunction of a sequence; the empty disjunction is ``⊥``."""
    exprs = list(exprs)
    if not exprs:
        return bottom
    return _balanced(exprs, or_)


def seq_all(paths) -> PathExpr:
    """Composition of a nonempty sequence of paths; empty gives ``.``."""
    paths = list(paths)
    if not paths:
        return Self()
    return reduce(Seq, paths)


def union_all(paths) -> PathExpr:
    """Union of a sequence of paths; empty gives the empty relation ``.[⊥]``."""
    paths = list(paths)
    if not paths:
        return Filter(Self(), bottom)
    return reduce(Union, paths)


def repeat(path: PathExpr, times: int) -> PathExpr:
    """The ``times``-fold composition ``α/…/α`` (e.g. ``↓^k`` in §6.2)."""
    if times < 0:
        raise ValueError("times must be >= 0")
    if times == 0:
        return Self()
    return seq_all([path] * times)
