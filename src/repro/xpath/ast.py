"""Abstract syntax of CoreXPath and all its extensions (Definition 3 + §2.2).

Two mutually recursive sorts:

* **Path expressions** (binary relations over tree nodes)::

      α ::= τ | τ* | . | α/β | α ∪ β | α[φ]           (CoreXPath, τ an axis)
          | α ∩ β                                      (path intersection)
          | α − β                                      (path complementation)
          | α*                                         (transitive closure)
          | for $i in α return β                       (iteration, §7)

* **Node expressions** (sets of tree nodes)::

      φ ::= p | ⟨α⟩ | ⊤ | ¬φ | φ ∧ ψ                   (CoreXPath, p a label)
          | α ≈ β                                      (path equality)
          | . is $i                                    (variable test, §7)

All AST classes are immutable, hashable dataclasses.  Derived connectives
(∨, ⇒, ⊥, every, τ⁺, ...) are provided as constructor functions in
:mod:`repro.xpath.builders` so that the *size* of an expression (§2.3) is
always the literal size of its syntax tree.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = [
    "Axis",
    "PathExpr",
    "AxisStep",
    "AxisClosure",
    "Self",
    "Seq",
    "Union",
    "Filter",
    "Intersect",
    "Complement",
    "Star",
    "ForLoop",
    "NodeExpr",
    "Label",
    "SomePath",
    "Top",
    "Not",
    "And",
    "PathEquality",
    "VarIs",
    "Expr",
]


class Axis(enum.Enum):
    """The four basic axes of CoreXPath: ↓ (child), ↑ (parent), → (next
    sibling), ← (previous sibling).  Following Marx [2004] (and the paper),
    the non-transitive sibling axes are primitive."""

    DOWN = "down"
    UP = "up"
    RIGHT = "right"
    LEFT = "left"

    @property
    def converse(self) -> "Axis":
        return _CONVERSE[self]

    @property
    def symbol(self) -> str:
        return _SYMBOL[self]

    def __repr__(self) -> str:  # stable across enum re-imports, nice in tests
        return f"Axis.{self.name}"


_CONVERSE = {Axis.DOWN: Axis.UP, Axis.UP: Axis.DOWN,
             Axis.RIGHT: Axis.LEFT, Axis.LEFT: Axis.RIGHT}
_SYMBOL = {Axis.DOWN: "↓", Axis.UP: "↑",
           Axis.RIGHT: "→", Axis.LEFT: "←"}


class PathExpr:
    """Base class of path expressions.  Supports operator sugar:

    ``a / b`` composition, ``a | b`` union, ``a & b`` intersection,
    ``a - b`` complementation, ``a[phi]`` filter, ``a.star()`` closure.
    """

    # Storage for the memoized structural hash (see _install_cached_hash).
    __slots__ = ("_hash_value",)

    def __truediv__(self, other: "PathExpr") -> "Seq":
        return Seq(self, _as_path(other))

    def __or__(self, other: "PathExpr") -> "Union":
        return Union(self, _as_path(other))

    def __and__(self, other: "PathExpr") -> "Intersect":
        return Intersect(self, _as_path(other))

    def __sub__(self, other: "PathExpr") -> "Complement":
        return Complement(self, _as_path(other))

    def __getitem__(self, predicate: "NodeExpr") -> "Filter":
        return Filter(self, _as_node(predicate))

    def star(self) -> "Star":
        """The reflexive-transitive closure ``α*`` (§2.2, operator ``*``)."""
        return Star(self)

    def exists(self) -> "SomePath":
        """The node expression ``⟨α⟩``."""
        return SomePath(self)


class NodeExpr:
    """Base class of node expressions.  Supports ``~phi`` negation and
    ``phi & psi`` conjunction sugar."""

    # Storage for the memoized structural hash (see _install_cached_hash).
    __slots__ = ("_hash_value",)

    def __invert__(self) -> "Not":
        return Not(self)

    def __and__(self, other: "NodeExpr") -> "And":
        return And(self, _as_node(other))


def _as_path(value) -> "PathExpr":
    if not isinstance(value, PathExpr):
        raise TypeError(f"expected a path expression, got {value!r}")
    return value


def _as_node(value) -> "NodeExpr":
    if isinstance(value, str):
        return Label(value)
    if not isinstance(value, NodeExpr):
        raise TypeError(f"expected a node expression, got {value!r}")
    return value


# --------------------------------------------------------------------- paths


@dataclass(frozen=True, slots=True, repr=False)
class AxisStep(PathExpr):
    """A basic axis step ``τ`` for ``τ ∈ {↓, ↑, →, ←}``."""

    axis: Axis

    def __repr__(self) -> str:
        return f"AxisStep({self.axis!r})"


@dataclass(frozen=True, slots=True, repr=False)
class AxisClosure(PathExpr):
    """The reflexive-transitive closure ``τ*`` of a *basic axis*.

    This is part of plain CoreXPath (unlike :class:`Star`, which closes an
    arbitrary path expression and belongs to the ``*`` extension).
    """

    axis: Axis

    def __repr__(self) -> str:
        return f"AxisClosure({self.axis!r})"


@dataclass(frozen=True, slots=True, repr=False)
class Self(PathExpr):
    """The identity relation ``.``."""

    def __repr__(self) -> str:
        return "Self()"


@dataclass(frozen=True, slots=True, repr=False)
class Seq(PathExpr):
    """Composition ``α/β``."""

    left: PathExpr
    right: PathExpr

    def __repr__(self) -> str:
        return f"Seq({self.left!r}, {self.right!r})"


@dataclass(frozen=True, slots=True, repr=False)
class Union(PathExpr):
    """Union ``α ∪ β``."""

    left: PathExpr
    right: PathExpr

    def __repr__(self) -> str:
        return f"Union({self.left!r}, {self.right!r})"


@dataclass(frozen=True, slots=True, repr=False)
class Filter(PathExpr):
    """Filter ``α[φ]``: pairs of ``α`` whose target satisfies ``φ``."""

    path: PathExpr
    predicate: NodeExpr

    def __repr__(self) -> str:
        return f"Filter({self.path!r}, {self.predicate!r})"


@dataclass(frozen=True, slots=True, repr=False)
class Intersect(PathExpr):
    """Path intersection ``α ∩ β`` (extension ``∩``)."""

    left: PathExpr
    right: PathExpr

    def __repr__(self) -> str:
        return f"Intersect({self.left!r}, {self.right!r})"


@dataclass(frozen=True, slots=True, repr=False)
class Complement(PathExpr):
    """Path complementation ``α − β`` (extension ``−``)."""

    left: PathExpr
    right: PathExpr

    def __repr__(self) -> str:
        return f"Complement({self.left!r}, {self.right!r})"


@dataclass(frozen=True, slots=True, repr=False)
class Star(PathExpr):
    """Reflexive-transitive closure ``α*`` of an arbitrary path (extension ``*``)."""

    path: PathExpr

    def __repr__(self) -> str:
        return f"Star({self.path!r})"


@dataclass(frozen=True, slots=True, repr=False)
class ForLoop(PathExpr):
    """``for $var in source return body`` (extension ``for``, §7)."""

    var: str
    source: PathExpr
    body: PathExpr

    def __post_init__(self) -> None:
        if not self.var or self.var.startswith("$"):
            raise ValueError("variable names are stored without the '$' sigil")

    def __repr__(self) -> str:
        return f"ForLoop({self.var!r}, {self.source!r}, {self.body!r})"


# --------------------------------------------------------------------- nodes


@dataclass(frozen=True, slots=True, repr=False)
class Label(NodeExpr):
    """An atomic label test ``p`` for ``p ∈ Σ``."""

    name: str

    def __repr__(self) -> str:
        return f"Label({self.name!r})"


@dataclass(frozen=True, slots=True, repr=False)
class SomePath(NodeExpr):
    """``⟨α⟩``: the current node has an ``α``-successor."""

    path: PathExpr

    def __repr__(self) -> str:
        return f"SomePath({self.path!r})"


@dataclass(frozen=True, slots=True, repr=False)
class Top(NodeExpr):
    """The universally true node expression ``⊤``."""

    def __repr__(self) -> str:
        return "Top()"


@dataclass(frozen=True, slots=True, repr=False)
class Not(NodeExpr):
    """Negation ``¬φ``."""

    child: NodeExpr

    def __repr__(self) -> str:
        return f"Not({self.child!r})"


@dataclass(frozen=True, slots=True, repr=False)
class And(NodeExpr):
    """Conjunction ``φ ∧ ψ``."""

    left: NodeExpr
    right: NodeExpr

    def __repr__(self) -> str:
        return f"And({self.left!r}, {self.right!r})"


@dataclass(frozen=True, slots=True, repr=False)
class PathEquality(NodeExpr):
    """Path equality ``α ≈ β`` (extension ``≈``): some node is reachable by
    both ``α`` and ``β`` from the current node."""

    left: PathExpr
    right: PathExpr

    def __repr__(self) -> str:
        return f"PathEquality({self.left!r}, {self.right!r})"


@dataclass(frozen=True, slots=True, repr=False)
class VarIs(NodeExpr):
    """``. is $var``: the current node is the one bound to ``$var`` (§7)."""

    var: str

    def __post_init__(self) -> None:
        if not self.var or self.var.startswith("$"):
            raise ValueError("variable names are stored without the '$' sigil")

    def __repr__(self) -> str:
        return f"VarIs({self.var!r})"


#: Union type of the two sorts.
Expr = PathExpr | NodeExpr


def _install_cached_hash(cls: type) -> None:
    """Memoize the dataclass-generated ``__hash__`` in the ``_hash_value``
    slot of the base classes.

    The hash-consing tables in :mod:`repro.xpath.intern` use expressions as
    dict keys, so each node may be hashed many times; without memoization
    every lookup re-hashes the entire subtree, which is quadratic overall
    and — for the left-deep spines the normalizer builds — deep enough to
    overflow the interpreter stack.  With it, hashing a node whose children
    have been hashed before touches only that node.
    """
    field_hash = cls.__hash__

    def __hash__(self) -> int:
        try:
            return object.__getattribute__(self, "_hash_value")
        except AttributeError:
            value = field_hash(self)
            object.__setattr__(self, "_hash_value", value)
            return value

    cls.__hash__ = __hash__  # type: ignore[method-assign]


for _cls in (AxisStep, AxisClosure, Self, Seq, Union, Filter, Intersect,
             Complement, Star, ForLoop, Label, SomePath, Top, Not, And,
             PathEquality, VarIs):
    _install_cached_hash(_cls)
del _cls
