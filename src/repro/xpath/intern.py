"""Hash-consing and normalization of expressions.

Two facilities that give every expression a *stable structural identity*:

* :func:`intern_expr` — hash-consing.  Structurally equal expressions are
  collapsed onto one shared immutable instance, and every canonical instance
  carries a dense integer :func:`intern_key`.  Downstream memo tables
  (the evaluator, the plan cache) key on these integers instead of ``id()``
  of arbitrary short-lived objects, so cache identity no longer depends on
  callers keeping AST objects alive.
* :func:`normalize` — a semantics-preserving canonicalization pass: flatten,
  sort and deduplicate the commutative/associative connectives (``∪``,
  ``∧``, ``∩``), collapse the unit laws ``./α = α/. = α`` and ``α[⊤] = α``,
  and cancel double negation ``¬¬φ = φ``.  Normal forms are interned and
  idempotent: ``normalize(normalize(e)) is normalize(e)``.

Both tables are process-global and monotone: canonical nodes are kept alive
for the lifetime of the process, which is what makes ``id``-free integer
keys sound.  The size of the tables is bounded by the number of *distinct*
subexpressions ever seen, which for the workloads in this repository is
small (thousands, not millions).
"""

from __future__ import annotations

import sys
import threading
from typing import Callable

from .ast import (
    And,
    AxisClosure,
    AxisStep,
    Complement,
    Expr,
    Filter,
    ForLoop,
    Intersect,
    Label,
    Not,
    PathEquality,
    PathExpr,
    Self,
    Seq,
    SomePath,
    Star,
    Top,
    Union,
    VarIs,
)

__all__ = [
    "DenseInterner",
    "intern_expr",
    "intern_key",
    "is_interned",
    "normalize",
    "free_variables_cached",
    "interned_count",
]


class DenseInterner:
    """A generic dense-key hash-consing table.

    The discipline is the one this module applies to expression ASTs:
    structurally equal (hashable) values collapse onto one canonical
    instance which is kept alive for the lifetime of the table, and every
    canonical instance carries a dense integer key assigned in first-seen
    order.  Downstream memo tables key on these integers instead of
    hashing deep structures repeatedly (or relying on ``id()`` of
    short-lived objects).  Other layers — notably the automata core
    (:mod:`repro.automata.core`) — instantiate their own tables for their
    own value universes.
    """

    __slots__ = ("_table", "_keys", "_lock")

    def __init__(self) -> None:
        self._table: dict = {}
        self._keys: dict[int, int] = {}
        self._lock = threading.RLock()

    def canonical(self, value):
        """The canonical shared instance structurally equal to ``value``."""
        with self._lock:
            hit = self._table.get(value)
            if hit is None:
                self._table[value] = value
                self._keys[id(value)] = len(self._keys)
                hit = value
            return hit

    def key(self, value) -> int:
        """A dense process-stable integer identifying ``value`` up to
        structural equality."""
        with self._lock:
            return self._keys[id(self.canonical(value))]

    def __len__(self) -> int:
        return len(self._table)

_lock = threading.RLock()

#: Interning walks the AST recursively; generated formulas (DTD encodings,
#: the Theorem 30 reductions) nest deeply enough to exceed CPython's
#: default 1000-frame limit, so the public entry points guarantee headroom.
_MIN_RECURSION_LIMIT = 20_000


def _ensure_recursion_headroom() -> None:
    if sys.getrecursionlimit() < _MIN_RECURSION_LIMIT:
        sys.setrecursionlimit(_MIN_RECURSION_LIMIT)

#: structural value -> canonical instance (the hash-consing table).
_TABLE: dict[Expr, Expr] = {}
#: id(canonical) -> dense integer key.  Safe: _TABLE keeps canonicals alive.
_KEYS: dict[int, int] = {}
#: id(canonical) -> canonical normal form (already interned).
_NORMAL: dict[int, Expr] = {}
#: id(canonical) -> free node variables of the expression.
_FREE_VARS: dict[int, frozenset[str]] = {}


def interned_count() -> int:
    """Number of distinct canonical expressions interned so far."""
    return len(_TABLE)


def is_interned(expr: Expr) -> bool:
    """True iff ``expr`` is itself the canonical instance of its value."""
    return _TABLE.get(expr) is expr


def _canon(expr: Expr) -> Expr:
    """Intern a node whose children are already canonical."""
    canonical = _TABLE.get(expr)
    if canonical is None:
        _TABLE[expr] = expr
        _KEYS[id(expr)] = len(_KEYS)
        canonical = expr
    return canonical


def intern_expr(expr: Expr) -> Expr:
    """The canonical shared instance structurally equal to ``expr``."""
    with _lock:
        _ensure_recursion_headroom()
        return _intern(expr)


def _intern(expr: Expr) -> Expr:
    hit = _TABLE.get(expr)
    if hit is not None:
        return hit
    match expr:
        case AxisStep() | AxisClosure() | Self() | Label() | Top() | VarIs():
            rebuilt = expr
        case Seq(left=a, right=b):
            rebuilt = Seq(_intern(a), _intern(b))
        case Union(left=a, right=b):
            rebuilt = Union(_intern(a), _intern(b))
        case Intersect(left=a, right=b):
            rebuilt = Intersect(_intern(a), _intern(b))
        case Complement(left=a, right=b):
            rebuilt = Complement(_intern(a), _intern(b))
        case Filter(path=a, predicate=p):
            rebuilt = Filter(_intern(a), _intern(p))
        case Star(path=a):
            rebuilt = Star(_intern(a))
        case ForLoop(var=v, source=a, body=b):
            rebuilt = ForLoop(v, _intern(a), _intern(b))
        case SomePath(path=a):
            rebuilt = SomePath(_intern(a))
        case Not(child=c):
            rebuilt = Not(_intern(c))
        case And(left=a, right=b):
            rebuilt = And(_intern(a), _intern(b))
        case PathEquality(left=a, right=b):
            rebuilt = PathEquality(_intern(a), _intern(b))
        case _:
            raise TypeError(f"unknown expression {expr!r}")
    return _canon(rebuilt)


def intern_key(expr: Expr) -> int:
    """A dense process-stable integer identifying ``expr`` up to structure."""
    with _lock:
        _ensure_recursion_headroom()
        return _KEYS[id(_intern(expr))]


def free_variables_cached(expr: Expr) -> frozenset[str]:
    """Free node variables of ``expr``, cached on the canonical instance."""
    with _lock:
        canonical = _intern(expr)
        cached = _FREE_VARS.get(id(canonical))
        if cached is None:
            from .measures import free_variables

            cached = free_variables(canonical)
            _FREE_VARS[id(canonical)] = cached
        return cached


# ------------------------------------------------------------- normalization


def _flatten(expr: Expr, ctor: type) -> list[Expr]:
    """Leaves of a (left- or right-leaning) ``ctor`` spine."""
    out: list[Expr] = []
    stack = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, ctor):
            stack.append(node.right)  # type: ignore[attr-defined]
            stack.append(node.left)  # type: ignore[attr-defined]
        else:
            out.append(node)
    return out


def _normalized_parts(expr: Expr, ctor: type) -> list[Expr]:
    """Normalized leaves of a ``ctor`` spine, re-flattened (a leaf may itself
    normalize to a ``ctor`` node), deduplicated (idempotence) and sorted by
    intern key (commutativity)."""
    flat: list[Expr] = []
    for part in _flatten(expr, ctor):
        normal = _normalize(part)
        if isinstance(normal, ctor):
            flat.extend(_flatten(normal, ctor))
        else:
            flat.append(normal)
    by_key: dict[int, Expr] = {}
    for part in flat:
        by_key.setdefault(_KEYS[id(part)], part)
    return [by_key[key] for key in sorted(by_key)]


def _rebuild(parts: list[Expr], ctor: Callable[[Expr, Expr], Expr]) -> Expr:
    """Left-deep spine over the already-normalized, sorted parts."""
    result = parts[0]
    for part in parts[1:]:
        result = _canon(ctor(result, part))
    return result


def normalize(expr: Expr) -> Expr:
    """The canonical normal form of ``expr`` (interned, idempotent).

    The pass is purely semantics-preserving — ``[[normalize(e)]] = [[e]]``
    on every tree and assignment — so engines may evaluate the normal form
    in place of the original.  Syntactic measures (``size``, fragments)
    should keep being computed on the original expression.
    """
    with _lock:
        _ensure_recursion_headroom()
        return _normalize(_intern(expr))


def _normalize(expr: Expr) -> Expr:
    cached = _NORMAL.get(id(expr))
    if cached is not None:
        return cached
    match expr:
        case AxisStep() | AxisClosure() | Self() | Label() | Top() | VarIs():
            result = expr
        case Seq(left=a, right=b):
            a, b = _normalize(a), _normalize(b)
            if isinstance(a, Self):
                result = b
            elif isinstance(b, Self):
                result = a
            else:
                result = _canon(Seq(a, b))
        case Union():
            result = _rebuild(_normalized_parts(expr, Union), Union)
        case Intersect():
            result = _rebuild(_normalized_parts(expr, Intersect), Intersect)
        case Complement(left=a, right=b):
            result = _canon(Complement(_normalize(a), _normalize(b)))
        case Filter(path=a, predicate=p):
            a, p = _normalize(a), _normalize(p)
            result = a if isinstance(p, Top) else _canon(Filter(a, p))
        case Star(path=a):
            a = _normalize(a)
            if isinstance(a, (Star, Self)):
                result = a  # (α*)* = α* and .* = . (closures are reflexive).
            else:
                result = _canon(Star(a))
        case ForLoop(var=v, source=a, body=b):
            result = _canon(ForLoop(v, _normalize(a), _normalize(b)))
        case SomePath(path=a):
            result = _canon(SomePath(_normalize(a)))
        case Not(child=c):
            c = _normalize(c)
            result = c.child if isinstance(c, Not) else _canon(Not(c))
        case And():
            result = _rebuild(_normalized_parts(expr, And), And)
        case PathEquality(left=a, right=b):
            result = _canon(PathEquality(_normalize(a), _normalize(b)))
        case _:
            raise TypeError(f"unknown expression {expr!r}")
    _NORMAL[id(expr)] = result
    # A normal form is its own normal form (idempotence).
    _NORMAL.setdefault(id(result), result)
    return result
