"""Syntactic measures on expressions: size, intersection depth, inventories.

*Size* follows §2.3 exactly: the number of nodes in the syntax tree, i.e. the
total number of occurrences of constructors, labels, and atomic path
expressions.  *Intersection depth* follows the ``dd``/``d`` definitions just
before Lemma 17.
"""

from __future__ import annotations

from typing import Iterator

from .ast import (
    And,
    Axis,
    AxisClosure,
    AxisStep,
    Complement,
    Expr,
    Filter,
    ForLoop,
    Intersect,
    Label,
    NodeExpr,
    Not,
    PathEquality,
    PathExpr,
    Self,
    Seq,
    SomePath,
    Star,
    Top,
    Union,
    VarIs,
)

__all__ = [
    "size",
    "dag_size",
    "intersection_depth",
    "direct_intersection_depth",
    "subexpressions",
    "node_subexpressions",
    "path_subexpressions",
    "labels_used",
    "axes_used",
    "operators_used",
    "free_variables",
]

_BINARY_PATHS = (Seq, Union, Intersect, Complement)


def size(expr: Expr) -> int:
    """Number of nodes in the syntax tree of ``expr`` (§2.3)."""
    match expr:
        case AxisStep() | Self() | Label() | Top() | VarIs():
            return 1
        case AxisClosure():
            # τ* counts as an atomic axis plus the closure constructor is a
            # single syntax-tree node in the paper's grammar (τ* is atomic).
            return 1
        case Seq(left=a, right=b) | Union(left=a, right=b) \
                | Intersect(left=a, right=b) | Complement(left=a, right=b):
            return 1 + size(a) + size(b)
        case Filter(path=a, predicate=p):
            return 1 + size(a) + size(p)
        case Star(path=a) | SomePath(path=a) | Not(child=a):
            return 1 + size(a)
        case ForLoop(source=a, body=b):
            return 1 + size(a) + size(b)
        case And(left=a, right=b):
            return 1 + size(a) + size(b)
        case PathEquality(left=a, right=b):
            return 1 + size(a) + size(b)
    raise TypeError(f"unknown expression {expr!r}")


def dag_size(expr: Expr) -> int:
    """Number of *distinct* subexpressions of ``expr``.

    This is what the interner actually materializes (one canonical node per
    distinct subexpression) and what the plan compiler allocates slots for;
    the rewrite pipeline's cost model ranks by :func:`size` first and this
    second, so sharing-increasing rewrites win ties."""
    return len(set(subexpressions(expr)))


def direct_intersection_depth(path: PathExpr) -> int:
    """``dd(α)``: nesting of ``∩`` not crossing into filter node expressions."""
    match path:
        case AxisStep() | AxisClosure() | Self():
            return 0
        case Seq(left=a, right=b) | Union(left=a, right=b) | Complement(left=a, right=b):
            return max(direct_intersection_depth(a), direct_intersection_depth(b))
        case Intersect(left=a, right=b):
            return max(direct_intersection_depth(a), direct_intersection_depth(b)) + 1
        case Filter(path=a):
            return direct_intersection_depth(a)
        case Star(path=a):
            return direct_intersection_depth(a)
        case ForLoop(source=a, body=b):
            return max(direct_intersection_depth(a), direct_intersection_depth(b))
    raise TypeError(f"unknown path expression {path!r}")


def intersection_depth(expr: Expr) -> int:
    """``d(α)``/``d(φ)``: max direct intersection depth of any path occurring
    anywhere in ``expr``, including inside filter node expressions."""
    best = 0
    for sub in subexpressions(expr):
        if isinstance(sub, PathExpr):
            best = max(best, direct_intersection_depth(sub))
    return best


def subexpressions(expr: Expr) -> Iterator[Expr]:
    """All subexpressions of ``expr`` (both sorts), including ``expr`` itself."""
    yield expr
    match expr:
        case AxisStep() | AxisClosure() | Self() | Label() | Top() | VarIs():
            return
        case Seq(left=a, right=b) | Union(left=a, right=b) \
                | Intersect(left=a, right=b) | Complement(left=a, right=b) \
                | And(left=a, right=b) | PathEquality(left=a, right=b):
            yield from subexpressions(a)
            yield from subexpressions(b)
        case Filter(path=a, predicate=p):
            yield from subexpressions(a)
            yield from subexpressions(p)
        case Star(path=a) | SomePath(path=a) | Not(child=a):
            yield from subexpressions(a)
        case ForLoop(source=a, body=b):
            yield from subexpressions(a)
            yield from subexpressions(b)
        case _:
            raise TypeError(f"unknown expression {expr!r}")


def node_subexpressions(expr: Expr) -> set[NodeExpr]:
    """The set ``sub(φ)`` of node subexpressions (§5), as a set."""
    return {sub for sub in subexpressions(expr) if isinstance(sub, NodeExpr)}


def path_subexpressions(expr: Expr) -> set[PathExpr]:
    return {sub for sub in subexpressions(expr) if isinstance(sub, PathExpr)}


def labels_used(expr: Expr) -> frozenset[str]:
    """All labels ``p ∈ Σ`` occurring in ``expr``."""
    return frozenset(
        sub.name for sub in subexpressions(expr) if isinstance(sub, Label)
    )


def axes_used(expr: Expr) -> frozenset[Axis]:
    """All basic axes occurring in ``expr`` (τ and τ* both count as τ)."""
    axes: set[Axis] = set()
    for sub in subexpressions(expr):
        if isinstance(sub, (AxisStep, AxisClosure)):
            axes.add(sub.axis)
    return frozenset(axes)


def operators_used(expr: Expr) -> frozenset[str]:
    """Which of the extensions ``{'eq', 'cap', 'minus', 'for', 'star'}`` occur.

    ``'eq'`` is ``≈``, ``'cap'`` is ``∩``, ``'minus'`` is ``−``, ``'star'``
    is general transitive closure (not τ*, which is CoreXPath)."""
    ops: set[str] = set()
    for sub in subexpressions(expr):
        if isinstance(sub, PathEquality):
            ops.add("eq")
        elif isinstance(sub, Intersect):
            ops.add("cap")
        elif isinstance(sub, Complement):
            ops.add("minus")
        elif isinstance(sub, (ForLoop, VarIs)):
            ops.add("for")
        elif isinstance(sub, Star):
            ops.add("star")
    return frozenset(ops)


def free_variables(expr: Expr) -> frozenset[str]:
    """Node variables occurring free in ``expr`` (§7 semantics)."""
    match expr:
        case VarIs(var=v):
            return frozenset({v})
        case ForLoop(var=v, source=a, body=b):
            return free_variables(a) | (free_variables(b) - {v})
        case AxisStep() | AxisClosure() | Self() | Label() | Top():
            return frozenset()
        case Seq(left=a, right=b) | Union(left=a, right=b) \
                | Intersect(left=a, right=b) | Complement(left=a, right=b) \
                | And(left=a, right=b) | PathEquality(left=a, right=b):
            return free_variables(a) | free_variables(b)
        case Filter(path=a, predicate=p):
            return free_variables(a) | free_variables(p)
        case Star(path=a) | SomePath(path=a) | Not(child=a):
            return free_variables(a)
    raise TypeError(f"unknown expression {expr!r}")
