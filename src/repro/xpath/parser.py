"""Parser for the ASCII expression syntax produced by
:func:`repro.xpath.printer.to_source`.

Grammar (path expressions, loosest-binding first)::

    path      := 'for' '$'IDENT 'in' union 'return' union | union
    union     := except ('union' except)*
    except    := intersect ('except' intersect)*
    intersect := seq ('intersect' seq)*
    seq       := postfix ('/' postfix)*
    postfix   := primary ('[' node ']' | '*' | '+')*
    primary   := 'down' | 'up' | 'left' | 'right' | '.' | '(' path ')'
               | OFFICIAL_AXIS '::' (LABEL | '*')

``OFFICIAL_AXIS`` accepts the official XPath 2.0 step syntax as sugar
(``child``, ``parent``, ``self``, ``descendant``, ``ancestor``,
``descendant-or-self``, ``ancestor-or-self``, ``following-sibling``,
``preceding-sibling``); ``axis::a`` desugars to the CoreXPath encoding
(e.g. ``descendant::a`` to ``down/down*[a]``), the inverse direction of
:func:`repro.xpath.official.to_official`.

and node expressions::

    node  := conj ('or' conj)*          -- 'or' expands to ¬(¬φ ∧ ¬ψ)
    conj  := unary ('and' unary)*
    unary := 'not' unary | atom
    atom  := 'true' | 'false' | '<' path '>' | 'eq' '(' path ',' path ')'
           | '.' 'is' '$'IDENT | LABEL | '(' node ')'

``τ*`` parses to :class:`~repro.xpath.ast.AxisClosure` (plain CoreXPath),
while ``(α)*`` parses to the :class:`~repro.xpath.ast.Star` extension;
``τ+``/``(α)+`` are sugar for ``τ/τ*``.  Labels are bare identifiers or
single-quoted strings.
"""

from __future__ import annotations

import re

from .ast import (
    And,
    Axis,
    AxisClosure,
    AxisStep,
    Complement,
    Filter,
    ForLoop,
    Intersect,
    Label,
    NodeExpr,
    Not,
    PathEquality,
    PathExpr,
    Self,
    Seq,
    SomePath,
    Star,
    Top,
    Union,
    VarIs,
)
from .builders import or_

__all__ = ["parse_path", "parse_node", "XPathSyntaxError"]


class XPathSyntaxError(ValueError):
    """Raised when the input is not a well-formed expression."""


_TOKEN = re.compile(
    r"\s*(?:"
    r"(?P<quoted>'(?:[^'\\]|\\.)*')"
    r"|(?P<ident>[A-Za-z_][A-Za-z0-9_@#-]*)"
    r"|(?P<dcolon>::)"
    r"|(?P<punct>[/\[\]()<>,*+$.])"
    r")"
)

_AXES = {"down": Axis.DOWN, "up": Axis.UP, "left": Axis.LEFT, "right": Axis.RIGHT}

#: Official XPath axis steps (``axis::nametest``), accepted as sugar so CLI
#: users can paste real queries; each maps to the CoreXPath encoding used by
#: :mod:`repro.xpath.official` in the other direction.
_OFFICIAL_AXES = {
    "child": lambda: AxisStep(Axis.DOWN),
    "parent": lambda: AxisStep(Axis.UP),
    "self": Self,
    "descendant": lambda: Seq(AxisStep(Axis.DOWN), AxisClosure(Axis.DOWN)),
    "ancestor": lambda: Seq(AxisStep(Axis.UP), AxisClosure(Axis.UP)),
    "descendant-or-self": lambda: AxisClosure(Axis.DOWN),
    "ancestor-or-self": lambda: AxisClosure(Axis.UP),
    "following-sibling": lambda: Seq(AxisStep(Axis.RIGHT),
                                     AxisClosure(Axis.RIGHT)),
    "preceding-sibling": lambda: Seq(AxisStep(Axis.LEFT),
                                     AxisClosure(Axis.LEFT)),
}
_KEYWORDS = {"union", "intersect", "except", "for", "in", "return",
             "and", "or", "not", "true", "false", "is", "eq"} | set(_AXES)


class _Tokens:
    def __init__(self, text: str):
        self.text = text
        self.items: list[tuple[str, str, int]] = []  # (kind, value, position)
        pos = 0
        while pos < len(text):
            match = _TOKEN.match(text, pos)
            if not match or match.end() == match.start():
                remainder = text[pos:].lstrip()
                if not remainder:
                    break
                raise XPathSyntaxError(f"cannot tokenize at: {remainder[:20]!r}")
            pos = match.end()
            if match.group("quoted"):
                raw = match.group("quoted")[1:-1]
                value = raw.replace("\\'", "'").replace("\\\\", "\\")
                self.items.append(("label", value, match.start()))
            elif match.group("dcolon"):
                self.items.append(("punct", "::", match.start()))
            elif match.group("ident"):
                self.items.append(("ident", match.group("ident"), match.start()))
            else:
                self.items.append(("punct", match.group("punct"), match.start()))
        self.index = 0

    def peek(self, offset: int = 0) -> tuple[str, str] | None:
        if self.index + offset < len(self.items):
            kind, value, _ = self.items[self.index + offset]
            return kind, value
        return None

    def next(self) -> tuple[str, str]:
        if self.index >= len(self.items):
            raise XPathSyntaxError("unexpected end of input")
        kind, value, _ = self.items[self.index]
        self.index += 1
        return kind, value

    def expect(self, kind: str, value: str) -> None:
        got = self.peek()
        if got != (kind, value):
            found = got[1] if got else "end of input"
            raise XPathSyntaxError(f"expected {value!r}, got {found!r}")
        self.index += 1

    def match(self, kind: str, value: str) -> bool:
        if self.peek() == (kind, value):
            self.index += 1
            return True
        return False

    def at_end(self) -> bool:
        return self.index >= len(self.items)


def parse_path(text: str) -> PathExpr:
    """Parse a path expression."""
    tokens = _Tokens(text)
    path = _path(tokens)
    if not tokens.at_end():
        _, value = tokens.next()
        raise XPathSyntaxError(f"trailing input starting at {value!r}")
    return path


def parse_node(text: str) -> NodeExpr:
    """Parse a node expression."""
    tokens = _Tokens(text)
    node = _node(tokens)
    if not tokens.at_end():
        _, value = tokens.next()
        raise XPathSyntaxError(f"trailing input starting at {value!r}")
    return node


# ---------------------------------------------------------------- path rules


def _path(tokens: _Tokens) -> PathExpr:
    if tokens.match("ident", "for"):
        tokens.expect("punct", "$")
        kind, var = tokens.next()
        if kind != "ident":
            raise XPathSyntaxError(f"expected a variable name after '$', got {var!r}")
        tokens.expect("ident", "in")
        source = _union(tokens)
        tokens.expect("ident", "return")
        body = _union(tokens)
        return ForLoop(var, source, body)
    return _union(tokens)


def _union(tokens: _Tokens) -> PathExpr:
    path = _except(tokens)
    while tokens.match("ident", "union"):
        path = Union(path, _except(tokens))
    return path


def _except(tokens: _Tokens) -> PathExpr:
    path = _intersect(tokens)
    while tokens.match("ident", "except"):
        path = Complement(path, _intersect(tokens))
    return path


def _intersect(tokens: _Tokens) -> PathExpr:
    path = _seq(tokens)
    while tokens.match("ident", "intersect"):
        path = Intersect(path, _seq(tokens))
    return path


def _seq(tokens: _Tokens) -> PathExpr:
    path = _postfix(tokens)
    while tokens.match("punct", "/"):
        path = Seq(path, _postfix(tokens))
    return path


def _postfix(tokens: _Tokens) -> PathExpr:
    path, bare_axis = _primary(tokens)
    while True:
        if tokens.match("punct", "["):
            predicate = _node(tokens)
            tokens.expect("punct", "]")
            path = Filter(path, predicate)
            bare_axis = False
        elif tokens.peek() == ("punct", "*"):
            tokens.next()
            # A star directly on an axis token is the CoreXPath axis τ*;
            # on anything else (including "(down)*") it is the Star
            # extension.
            path = AxisClosure(path.axis) if bare_axis else Star(path)
            bare_axis = False
        elif tokens.peek() == ("punct", "+"):
            tokens.next()
            if bare_axis:
                path = Seq(path, AxisClosure(path.axis))
            else:
                path = Seq(path, Star(path))
            bare_axis = False
        else:
            return path


def _official_step(tokens: _Tokens) -> PathExpr:
    """``axis::nametest`` — the official XPath step syntax."""
    _, axis_name = tokens.next()
    tokens.expect("punct", "::")
    path = _OFFICIAL_AXES[axis_name]()
    got = tokens.peek()
    if got == ("punct", "*"):
        tokens.next()
        return path
    if got is not None and got[0] in ("ident", "label"):
        _, name = tokens.next()
        return Filter(path, Label(name))
    raise XPathSyntaxError(
        f"expected a name test after '{axis_name}::', "
        f"got {got[1] if got else 'end of input'!r}"
    )


def _primary(tokens: _Tokens) -> tuple[PathExpr, bool]:
    """Returns (path, is_bare_axis_token)."""
    ahead = tokens.peek()
    if ahead is not None and ahead[0] == "ident" \
            and ahead[1] in _OFFICIAL_AXES \
            and tokens.peek(1) == ("punct", "::"):
        return _official_step(tokens), False
    kind, value = tokens.next()
    if kind == "ident" and value in _AXES:
        return AxisStep(_AXES[value]), True
    if (kind, value) == ("punct", "."):
        return Self(), False
    if (kind, value) == ("punct", "("):
        path = _path(tokens)
        tokens.expect("punct", ")")
        return path, False
    raise XPathSyntaxError(f"expected a path expression, got {value!r}")


# ---------------------------------------------------------------- node rules


def _node(tokens: _Tokens) -> NodeExpr:
    node = _conj(tokens)
    while tokens.match("ident", "or"):
        node = or_(node, _conj(tokens))
    return node


def _conj(tokens: _Tokens) -> NodeExpr:
    node = _unary(tokens)
    while tokens.match("ident", "and"):
        node = And(node, _unary(tokens))
    return node


def _unary(tokens: _Tokens) -> NodeExpr:
    if tokens.match("ident", "not"):
        return Not(_unary(tokens))
    return _atom(tokens)


def _atom(tokens: _Tokens) -> NodeExpr:
    ahead = tokens.peek()
    if ahead is not None and ahead[0] == "ident" \
            and ahead[1] in _OFFICIAL_AXES \
            and tokens.peek(1) == ("punct", "::"):
        # An official axis step used as a node test (e.g. ``self::a``,
        # ``child::b``) holds wherever the step selects something.
        return SomePath(_official_step(tokens))
    kind, value = tokens.next()
    if kind == "label":
        return Label(value)
    if kind == "ident":
        if value == "true":
            return Top()
        if value == "false":
            return Not(Top())
        if value == "eq":
            tokens.expect("punct", "(")
            left = _path(tokens)
            tokens.expect("punct", ",")
            right = _path(tokens)
            tokens.expect("punct", ")")
            return PathEquality(left, right)
        if value in _KEYWORDS:
            raise XPathSyntaxError(
                f"{value!r} is a keyword; quote it to use it as a label"
            )
        return Label(value)
    if (kind, value) == ("punct", "<"):
        path = _path(tokens)
        tokens.expect("punct", ">")
        return SomePath(path)
    if (kind, value) == ("punct", "."):
        tokens.expect("ident", "is")
        tokens.expect("punct", "$")
        var_kind, var = tokens.next()
        if var_kind != "ident":
            raise XPathSyntaxError(f"expected a variable name after '$', got {var!r}")
        return VarIs(var)
    if (kind, value) == ("punct", "("):
        node = _node(tokens)
        tokens.expect("punct", ")")
        return node
    raise XPathSyntaxError(f"expected a node expression, got {value!r}")
