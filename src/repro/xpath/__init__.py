"""CoreXPath and its XPath 2.0-inspired extensions: syntax, measures, fragments."""

from .ast import (
    Axis,
    PathExpr,
    AxisStep,
    AxisClosure,
    Self,
    Seq,
    Union,
    Filter,
    Intersect,
    Complement,
    Star,
    ForLoop,
    NodeExpr,
    Label,
    SomePath,
    Top,
    Not,
    And,
    PathEquality,
    VarIs,
    Expr,
)
from .parser import parse_path, parse_node, XPathSyntaxError
from .printer import to_source, to_paper
from .measures import (
    size,
    dag_size,
    intersection_depth,
    direct_intersection_depth,
    subexpressions,
    node_subexpressions,
    labels_used,
    axes_used,
    operators_used,
    free_variables,
)
from .fragments import (
    Fragment,
    TreePattern,
    compile_pattern,
    fragment_of,
    is_tree_pattern,
)
from .intern import (
    intern_expr,
    intern_key,
    is_interned,
    normalize,
    free_variables_cached,
    interned_count,
)
from .passes import (
    canonical,
    canonical_with_stats,
    default_pipeline,
    set_default_pipeline,
)
from . import builders, fragments, passes, rewrite

__all__ = [
    "Axis", "PathExpr", "AxisStep", "AxisClosure", "Self", "Seq", "Union",
    "Filter", "Intersect", "Complement", "Star", "ForLoop",
    "NodeExpr", "Label", "SomePath", "Top", "Not", "And", "PathEquality",
    "VarIs", "Expr",
    "parse_path", "parse_node", "XPathSyntaxError",
    "to_source", "to_paper",
    "size", "dag_size", "intersection_depth", "direct_intersection_depth",
    "subexpressions", "node_subexpressions", "labels_used", "axes_used",
    "operators_used", "free_variables",
    "Fragment", "fragment_of",
    "TreePattern", "compile_pattern", "is_tree_pattern",
    "intern_expr", "intern_key", "is_interned", "normalize",
    "free_variables_cached", "interned_count",
    "canonical", "canonical_with_stats", "default_pipeline",
    "set_default_pipeline",
    "builders", "fragments", "passes", "rewrite",
]
