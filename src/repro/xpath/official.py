"""Rendering expressions in the official W3C XPath syntax.

The paper's notation maps onto XPath 1.0/2.0 as follows (§2.2): ``↓`` is
``child::*``, ``↑`` is ``parent::*``, ``↓*`` is ``descendant-or-self::*``,
``⟨α⟩`` inside a filter is just ``α``, ``¬`` is ``not(…)``, ``∩``/``−`` are
XPath 2.0's ``intersect``/``except``, and for-loops are XPath 2.0 ``for``
expressions.  Three constructs have no official equivalent and are rendered
with annotations:

* the non-transitive sibling axes ``→``/``←`` (the paper includes them
  following Marx; official XPath only has ``following-sibling::*`` etc.) —
  rendered as ``following-sibling::*[1]``/``preceding-sibling::*[1]``,
  which is equivalent under the official positional semantics;
* general transitive closure ``α*`` — not expressible in XPath 2.0
  (ten Cate 2006); rendered as ``(: closure :)``-annotated pseudo-syntax;
* path equality ``α ≈ β`` — expressible in XPath 2.0 as a node-set
  intersection emptiness test, rendered as ``exists(α intersect β)``
  (for the general case ``α ≈ β ≡ ⟨α ∩ β⟩``).
"""

from __future__ import annotations

from .ast import (
    And,
    Axis,
    AxisClosure,
    AxisStep,
    Complement,
    Expr,
    Filter,
    ForLoop,
    Intersect,
    Label,
    Not,
    PathEquality,
    PathExpr,
    Self,
    Seq,
    SomePath,
    Star,
    Top,
    Union,
    VarIs,
)

__all__ = ["to_official"]

_AXIS_OFFICIAL = {
    Axis.DOWN: "child::*",
    Axis.UP: "parent::*",
    Axis.RIGHT: "following-sibling::*[1]",
    Axis.LEFT: "preceding-sibling::*[1]",
}
_CLOSURE_OFFICIAL = {
    Axis.DOWN: "descendant-or-self::*",
    Axis.UP: "ancestor-or-self::*",
    Axis.RIGHT: "(self::* | following-sibling::*)",
    Axis.LEFT: "(self::* | preceding-sibling::*)",
}

# Path precedence for parenthesization: for < set-ops < '/'.
_P_FOR, _P_SET, _P_SLASH, _P_ATOM = range(4)


def to_official(expr: Expr) -> str:
    """Render ``expr`` in official XPath 2.0 syntax (with documented
    pseudo-syntax for the constructs XPath 2.0 lacks)."""
    if isinstance(expr, PathExpr):
        return _path(expr, 0)
    return _node(expr)


def _paren(text: str, level: int, minimum: int) -> str:
    return text if level >= minimum else f"({text})"


def _path(path: PathExpr, minimum: int) -> str:
    match path:
        case AxisStep(axis=axis):
            return _AXIS_OFFICIAL[axis]
        case AxisClosure(axis=axis):
            return _CLOSURE_OFFICIAL[axis]
        case Self():
            return "."
        case Seq(left=a, right=b):
            text = f"{_path(a, _P_SLASH)}/{_path(b, _P_SLASH)}"
            return _paren(text, _P_SLASH, minimum)
        case Union(left=a, right=b):
            text = f"{_path(a, _P_SET)} | {_path(b, _P_SET + 1)}"
            return _paren(text, _P_SET, minimum)
        case Intersect(left=a, right=b):
            text = f"{_path(a, _P_SET)} intersect {_path(b, _P_SET + 1)}"
            return _paren(text, _P_SET, minimum)
        case Complement(left=a, right=b):
            text = f"{_path(a, _P_SET)} except {_path(b, _P_SET + 1)}"
            return _paren(text, _P_SET, minimum)
        case Filter(path=a, predicate=p):
            return f"{_path(a, _P_ATOM)}[{_node(p)}]"
        case Star(path=a):
            # Not expressible in XPath 2.0 — annotated pseudo-syntax.
            return f"(: closure :)({_path(a, 0)})*"
        case ForLoop(var=v, source=a, body=b):
            text = (f"for ${v} in {_path(a, _P_FOR + 1)} "
                    f"return {_path(b, _P_FOR + 1)}")
            return _paren(text, _P_FOR, minimum)
    raise TypeError(f"unknown path expression {path!r}")


def _node(node) -> str:
    match node:
        case Label(name=name):
            return f"self::{name}" if name.isidentifier() \
                else f"self::*[name() = '{name}']"
        case Top():
            return "true()"
        case Not(child=Top()):
            return "false()"
        case Not(child=c):
            return f"not({_node(c)})"
        case And(left=a, right=b):
            return f"{_node(a)} and {_node(b)}"
        case SomePath(path=a):
            return _path(a, _P_ATOM)
        case PathEquality(left=a, right=b):
            return f"exists(({_path(a, 0)}) intersect ({_path(b, 0)}))"
        case VarIs(var=v):
            return f". is ${v}"
    raise TypeError(f"unknown node expression {node!r}")
