"""Fragment descriptors ``CoreXPath_Y(X)`` (§2.2).

A fragment is determined by a set of admissible basic axes ``Y`` (plus ``.``
and the closures ``τ*`` of the axes in ``Y``) and a set of admissible
extension operators ``X ⊆ {≈, ∩, −, for, *}``.  Operators are named by the
strings used throughout this library: ``'eq'``, ``'cap'``, ``'minus'``,
``'for'``, ``'star'``.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field

from .ast import (
    And,
    Axis,
    AxisClosure,
    AxisStep,
    Expr,
    Filter,
    Label,
    NodeExpr,
    PathExpr,
    Self,
    Seq,
    SomePath,
    Star,
    Top,
)
from .measures import axes_used, operators_used

__all__ = [
    "EDGE_CHILD",
    "EDGE_DESC_SELF",
    "TreePattern",
    "compile_pattern",
    "is_tree_pattern",
    "Fragment",
    "ALL_OPERATORS",
    "CORE",
    "CORE_EQ",
    "CORE_CAP",
    "CORE_STAR",
    "CORE_STAR_EQ",
    "CORE_STAR_CAP",
    "CORE_MINUS",
    "CORE_FOR",
    "DOWNWARD",
    "DOWNWARD_CAP",
    "DOWNWARD_STAR_CAP",
    "VERTICAL_CAP",
    "FORWARD_CAP",
    "fragment_of",
]

ALL_OPERATORS = frozenset({"eq", "cap", "minus", "for", "star"})
_ALL_AXES = frozenset(Axis)

_OP_SYMBOL = {"eq": "≈", "cap": "∩", "minus": "−", "for": "for", "star": "*"}
_OP_ORDER = ["star", "eq", "cap", "minus", "for"]


@dataclass(frozen=True)
class Fragment:
    """The fragment ``CoreXPath_axes(operators)``."""

    axes: frozenset[Axis] = _ALL_AXES
    operators: frozenset[str] = frozenset()

    def __post_init__(self) -> None:
        unknown = self.operators - ALL_OPERATORS
        if unknown:
            raise ValueError(f"unknown operators: {sorted(unknown)}")

    def admits(self, expr: Expr) -> bool:
        """True iff ``expr`` only uses this fragment's axes and operators."""
        return (axes_used(expr) <= self.axes
                and operators_used(expr) <= self.operators)

    def violations(self, expr: Expr) -> list[str]:
        """Human-readable reasons why ``expr`` is outside this fragment."""
        problems = []
        for axis in sorted(axes_used(expr) - self.axes, key=lambda a: a.value):
            problems.append(f"axis {axis.symbol} not admitted")
        for op in sorted(operators_used(expr) - self.operators):
            problems.append(f"operator {_OP_SYMBOL[op]} not admitted")
        return problems

    def __le__(self, other: "Fragment") -> bool:
        """Syntactic inclusion of fragments."""
        return self.axes <= other.axes and self.operators <= other.operators

    @property
    def name(self) -> str:
        """E.g. ``CoreXPath↓→(∩, *)``."""
        axis_part = ""
        if self.axes != _ALL_AXES:
            axis_part = "".join(
                axis.symbol
                for axis in (Axis.DOWN, Axis.UP, Axis.LEFT, Axis.RIGHT)
                if axis in self.axes
            )
        op_part = ", ".join(_OP_SYMBOL[op] for op in _OP_ORDER if op in self.operators)
        return f"CoreXPath{axis_part}({op_part})"

    def __str__(self) -> str:
        return self.name


def fragment_of(expr: Expr) -> Fragment:
    """The smallest fragment containing ``expr``."""
    return Fragment(frozenset(axes_used(expr)), frozenset(operators_used(expr)))


# -------------------------------------------------- the paper's named fragments

#: Plain CoreXPath (all axes, no extensions).
CORE = Fragment()
#: CoreXPath(≈).
CORE_EQ = Fragment(operators=frozenset({"eq"}))
#: CoreXPath(∩).
CORE_CAP = Fragment(operators=frozenset({"cap"}))
#: CoreXPath(*).
CORE_STAR = Fragment(operators=frozenset({"star"}))
#: CoreXPath(*, ≈) — the best-behaved expressive fragment (EXPTIME).
CORE_STAR_EQ = Fragment(operators=frozenset({"star", "eq"}))
#: CoreXPath(*, ∩) — 2-EXPTIME.
CORE_STAR_CAP = Fragment(operators=frozenset({"star", "cap"}))
#: CoreXPath(−) — non-elementary.
CORE_MINUS = Fragment(operators=frozenset({"minus"}))
#: CoreXPath(for) — non-elementary.
CORE_FOR = Fragment(operators=frozenset({"for"}))

#: CoreXPath↓ — the downward fragment.
DOWNWARD = Fragment(axes=frozenset({Axis.DOWN}))
#: CoreXPath↓(∩) — EXPSPACE-complete (Theorems 24/29).
DOWNWARD_CAP = Fragment(axes=frozenset({Axis.DOWN}), operators=frozenset({"cap"}))
#: CoreXPath↓(*, ∩) — 2-EXPTIME-hard already (Theorem 26).
DOWNWARD_STAR_CAP = Fragment(
    axes=frozenset({Axis.DOWN}), operators=frozenset({"star", "cap"})
)
#: CoreXPath↓↑(∩) — the vertical fragment, 2-EXPTIME-hard (Theorem 27).
VERTICAL_CAP = Fragment(
    axes=frozenset({Axis.DOWN, Axis.UP}), operators=frozenset({"cap"})
)
#: CoreXPath↓→(∩) — the forward fragment, 2-EXPTIME-hard (Theorem 28).
FORWARD_CAP = Fragment(
    axes=frozenset({Axis.DOWN, Axis.RIGHT}), operators=frozenset({"cap"})
)


# ------------------------------------------------ positive downward patterns
#
# The positive downward tree-pattern fragment sits strictly below
# CoreXPath↓: child and descendant(-or-self) steps, label tests, filter
# conjunction — no negation, no union, no ≈, no upward or sibling axes, no
# intersection/complement, and ``(π)*`` only on the plain child step (where
# it coincides with ``down*``).  Containment inside the fragment is
# decidable in polynomial time up to a small canonical-model enumeration
# (DESIGN.md §12), which is what the ``patterns`` engine exploits.

#: A rigid parent→child pattern edge (exactly one tree edge).
EDGE_CHILD = "child"
#: A flexible descendant-or-self pattern edge (a downward path of length ≥ 0).
EDGE_DESC_SELF = "desc-or-self"


@dataclass(frozen=True)
class TreePattern:
    """A rooted positive downward tree pattern (the ``patterns`` engine IR).

    Nodes are dense integers; node 0 is the root.  ``labels[v]`` is the set
    of label tests node ``v`` must satisfy (two or more distinct labels make
    the node — and hence the pattern — unsatisfiable, since tree nodes carry
    exactly one label; the empty set is a wildcard).  ``edges[v]`` lists the
    outgoing edges of ``v`` in creation order as ``(kind, target)`` pairs
    with ``kind`` one of :data:`EDGE_CHILD` / :data:`EDGE_DESC_SELF`.
    ``out`` is the node the compiled path selects (the root itself for node
    expressions).
    """

    labels: tuple[frozenset[str], ...]
    edges: tuple[tuple[tuple[str, int], ...], ...]
    out: int

    #: The pattern root; always node 0 (kept as a field for readability at
    #: use sites).
    root: int = field(default=0)

    @property
    def size(self) -> int:
        """Number of pattern nodes."""
        return len(self.labels)

    @property
    def conflicted(self) -> bool:
        """True iff some node demands two distinct labels (pattern is
        unsatisfiable on single-labelled trees)."""
        return any(len(required) > 1 for required in self.labels)

    @property
    def all_labels(self) -> frozenset[str]:
        """Every label mentioned anywhere in the pattern."""
        return frozenset().union(*self.labels) if self.labels else frozenset()

    def desc_edges(self) -> tuple[tuple[int, int], ...]:
        """The flexible edges, as ``(source, edge_index)`` pairs."""
        return tuple((v, i)
                     for v in range(self.size)
                     for i, (kind, _) in enumerate(self.edges[v])
                     if kind == EDGE_DESC_SELF)


class _NotAPattern(Exception):
    """Raised internally by the recognizer on any out-of-fragment construct."""


class _PatternBuilder:
    """Accumulates pattern nodes/edges while walking an expression."""

    def __init__(self) -> None:
        self.labels: list[set[str]] = []
        self.edges: list[list[tuple[str, int]]] = []

    def new_node(self) -> int:
        self.labels.append(set())
        self.edges.append([])
        return len(self.labels) - 1

    def step(self, src: int, kind: str) -> int:
        target = self.new_node()
        self.edges[src].append((kind, target))
        return target

    def compile_path(self, path: PathExpr, src: int) -> int:
        """Extend the pattern with ``path`` starting at ``src``; returns the
        node the path ends on."""
        if isinstance(path, Self):
            return src
        if isinstance(path, AxisStep):
            if path.axis is not Axis.DOWN:
                raise _NotAPattern
            return self.step(src, EDGE_CHILD)
        if isinstance(path, AxisClosure):
            if path.axis is not Axis.DOWN:
                raise _NotAPattern
            return self.step(src, EDGE_DESC_SELF)
        if isinstance(path, Star):
            # ``(down)*`` is ``down*`` in disguise; any other starred path
            # leaves the fragment.
            if isinstance(path.path, AxisStep) and path.path.axis is Axis.DOWN:
                return self.step(src, EDGE_DESC_SELF)
            raise _NotAPattern
        if isinstance(path, Seq):
            return self.compile_path(path.right,
                                     self.compile_path(path.left, src))
        if isinstance(path, Filter):
            target = self.compile_path(path.path, src)
            self.compile_predicate(path.predicate, target)
            return target
        raise _NotAPattern

    def compile_predicate(self, predicate: NodeExpr, at: int) -> None:
        """Record the constraints ``predicate`` imposes on node ``at``."""
        if isinstance(predicate, Top):
            return
        if isinstance(predicate, Label):
            self.labels[at].add(predicate.name)
            return
        if isinstance(predicate, And):
            self.compile_predicate(predicate.left, at)
            self.compile_predicate(predicate.right, at)
            return
        if isinstance(predicate, SomePath):
            # The branch dangles: its end node is existential, not selected.
            self.compile_path(predicate.path, at)
            return
        raise _NotAPattern

    def freeze(self, out: int) -> TreePattern:
        return TreePattern(
            labels=tuple(frozenset(required) for required in self.labels),
            edges=tuple(tuple(outgoing) for outgoing in self.edges),
            out=out,
        )


@functools.lru_cache(maxsize=4096)
def compile_pattern(expr: Expr) -> TreePattern | None:
    """Compile ``expr`` into a :class:`TreePattern`, or ``None`` when it is
    not a positive downward tree pattern.

    Path expressions compile with ``out`` at the path's end node; node
    expressions compile to a pattern rooted (and selecting) at node 0.
    The walk is purely syntactic — callers should canonicalize first so
    rewrite-equivalent variants (e.g. nested filters, ``./π``) land in the
    recognizable shape.
    """
    builder = _PatternBuilder()
    root = builder.new_node()
    try:
        if isinstance(expr, PathExpr):
            out = builder.compile_path(expr, root)
        elif isinstance(expr, NodeExpr):
            builder.compile_predicate(expr, root)
            out = root
        else:
            return None
    except _NotAPattern:
        return None
    return builder.freeze(out)


def is_tree_pattern(expr: Expr) -> bool:
    """True iff ``expr`` compiles into a positive downward tree pattern."""
    return compile_pattern(expr) is not None
