"""Fragment descriptors ``CoreXPath_Y(X)`` (§2.2).

A fragment is determined by a set of admissible basic axes ``Y`` (plus ``.``
and the closures ``τ*`` of the axes in ``Y``) and a set of admissible
extension operators ``X ⊆ {≈, ∩, −, for, *}``.  Operators are named by the
strings used throughout this library: ``'eq'``, ``'cap'``, ``'minus'``,
``'for'``, ``'star'``.
"""

from __future__ import annotations

from dataclasses import dataclass

from .ast import Axis, Expr
from .measures import axes_used, operators_used

__all__ = [
    "Fragment",
    "ALL_OPERATORS",
    "CORE",
    "CORE_EQ",
    "CORE_CAP",
    "CORE_STAR",
    "CORE_STAR_EQ",
    "CORE_STAR_CAP",
    "CORE_MINUS",
    "CORE_FOR",
    "DOWNWARD",
    "DOWNWARD_CAP",
    "DOWNWARD_STAR_CAP",
    "VERTICAL_CAP",
    "FORWARD_CAP",
    "fragment_of",
]

ALL_OPERATORS = frozenset({"eq", "cap", "minus", "for", "star"})
_ALL_AXES = frozenset(Axis)

_OP_SYMBOL = {"eq": "≈", "cap": "∩", "minus": "−", "for": "for", "star": "*"}
_OP_ORDER = ["star", "eq", "cap", "minus", "for"]


@dataclass(frozen=True)
class Fragment:
    """The fragment ``CoreXPath_axes(operators)``."""

    axes: frozenset[Axis] = _ALL_AXES
    operators: frozenset[str] = frozenset()

    def __post_init__(self) -> None:
        unknown = self.operators - ALL_OPERATORS
        if unknown:
            raise ValueError(f"unknown operators: {sorted(unknown)}")

    def admits(self, expr: Expr) -> bool:
        """True iff ``expr`` only uses this fragment's axes and operators."""
        return (axes_used(expr) <= self.axes
                and operators_used(expr) <= self.operators)

    def violations(self, expr: Expr) -> list[str]:
        """Human-readable reasons why ``expr`` is outside this fragment."""
        problems = []
        for axis in sorted(axes_used(expr) - self.axes, key=lambda a: a.value):
            problems.append(f"axis {axis.symbol} not admitted")
        for op in sorted(operators_used(expr) - self.operators):
            problems.append(f"operator {_OP_SYMBOL[op]} not admitted")
        return problems

    def __le__(self, other: "Fragment") -> bool:
        """Syntactic inclusion of fragments."""
        return self.axes <= other.axes and self.operators <= other.operators

    @property
    def name(self) -> str:
        """E.g. ``CoreXPath↓→(∩, *)``."""
        axis_part = ""
        if self.axes != _ALL_AXES:
            axis_part = "".join(
                axis.symbol
                for axis in (Axis.DOWN, Axis.UP, Axis.LEFT, Axis.RIGHT)
                if axis in self.axes
            )
        op_part = ", ".join(_OP_SYMBOL[op] for op in _OP_ORDER if op in self.operators)
        return f"CoreXPath{axis_part}({op_part})"

    def __str__(self) -> str:
        return self.name


def fragment_of(expr: Expr) -> Fragment:
    """The smallest fragment containing ``expr``."""
    return Fragment(frozenset(axes_used(expr)), frozenset(operators_used(expr)))


# -------------------------------------------------- the paper's named fragments

#: Plain CoreXPath (all axes, no extensions).
CORE = Fragment()
#: CoreXPath(≈).
CORE_EQ = Fragment(operators=frozenset({"eq"}))
#: CoreXPath(∩).
CORE_CAP = Fragment(operators=frozenset({"cap"}))
#: CoreXPath(*).
CORE_STAR = Fragment(operators=frozenset({"star"}))
#: CoreXPath(*, ≈) — the best-behaved expressive fragment (EXPTIME).
CORE_STAR_EQ = Fragment(operators=frozenset({"star", "eq"}))
#: CoreXPath(*, ∩) — 2-EXPTIME.
CORE_STAR_CAP = Fragment(operators=frozenset({"star", "cap"}))
#: CoreXPath(−) — non-elementary.
CORE_MINUS = Fragment(operators=frozenset({"minus"}))
#: CoreXPath(for) — non-elementary.
CORE_FOR = Fragment(operators=frozenset({"for"}))

#: CoreXPath↓ — the downward fragment.
DOWNWARD = Fragment(axes=frozenset({Axis.DOWN}))
#: CoreXPath↓(∩) — EXPSPACE-complete (Theorems 24/29).
DOWNWARD_CAP = Fragment(axes=frozenset({Axis.DOWN}), operators=frozenset({"cap"}))
#: CoreXPath↓(*, ∩) — 2-EXPTIME-hard already (Theorem 26).
DOWNWARD_STAR_CAP = Fragment(
    axes=frozenset({Axis.DOWN}), operators=frozenset({"star", "cap"})
)
#: CoreXPath↓↑(∩) — the vertical fragment, 2-EXPTIME-hard (Theorem 27).
VERTICAL_CAP = Fragment(
    axes=frozenset({Axis.DOWN, Axis.UP}), operators=frozenset({"cap"})
)
#: CoreXPath↓→(∩) — the forward fragment, 2-EXPTIME-hard (Theorem 28).
FORWARD_CAP = Fragment(
    axes=frozenset({Axis.DOWN, Axis.RIGHT}), operators=frozenset({"cap"})
)
