"""Pretty-printers for expressions.

Two styles are provided:

* :func:`to_source` — a plain-ASCII syntax that round-trips through
  :func:`repro.xpath.parser.parse_path` / ``parse_node``.
* :func:`to_paper` — the paper's mathematical notation (↓, ∪, ∩, ⟨·⟩, ¬, ∧,
  ≈, ⊤), for display and documentation.
"""

from __future__ import annotations

import re

from .ast import (
    And,
    Axis,
    AxisClosure,
    AxisStep,
    Complement,
    Expr,
    Filter,
    ForLoop,
    Intersect,
    Label,
    Not,
    PathEquality,
    Self,
    Seq,
    SomePath,
    Star,
    Top,
    Union,
    VarIs,
)

__all__ = ["to_source", "to_paper"]

_SAFE_LABEL = re.compile(r"[A-Za-z_][\w@#+-]*$")
_KEYWORDS = {
    "union", "intersect", "except", "for", "in", "return",
    "and", "not", "true", "false", "is", "eq",
    "down", "up", "left", "right",
}

_AXIS_NAME = {Axis.DOWN: "down", Axis.UP: "up",
              Axis.RIGHT: "right", Axis.LEFT: "left"}

# Path precedence levels (higher binds tighter).
_P_FOR, _P_UNION, _P_EXCEPT, _P_INTERSECT, _P_SEQ, _P_POSTFIX = range(6)
# Node precedence levels.
_N_AND, _N_NOT, _N_ATOM = range(3)


def to_source(expr: Expr) -> str:
    """Render ``expr`` in the parseable ASCII syntax."""
    if isinstance(expr, (AxisStep, AxisClosure, Self, Seq, Union, Filter,
                         Intersect, Complement, Star, ForLoop)):
        return _path_src(expr, 0)
    return _node_src(expr, 0)


def _label_src(name: str) -> str:
    if _SAFE_LABEL.match(name) and name not in _KEYWORDS:
        return name
    escaped = name.replace("\\", "\\\\").replace("'", "\\'")
    return f"'{escaped}'"


def _paren(text: str, level: int, minimum: int) -> str:
    return text if level >= minimum else f"({text})"


def _path_src(path, minimum: int) -> str:
    match path:
        case AxisStep(axis=a):
            return _AXIS_NAME[a]
        case AxisClosure(axis=a):
            return _AXIS_NAME[a] + "*"
        case Self():
            return "."
        case Seq(left=a, right=b):
            text = f"{_path_src(a, _P_SEQ)}/{_path_src(b, _P_SEQ + 1)}"
            return _paren(text, _P_SEQ, minimum)
        case Union(left=a, right=b):
            text = f"{_path_src(a, _P_UNION)} union {_path_src(b, _P_UNION + 1)}"
            return _paren(text, _P_UNION, minimum)
        case Intersect(left=a, right=b):
            text = f"{_path_src(a, _P_INTERSECT)} intersect {_path_src(b, _P_INTERSECT + 1)}"
            return _paren(text, _P_INTERSECT, minimum)
        case Complement(left=a, right=b):
            text = f"{_path_src(a, _P_EXCEPT)} except {_path_src(b, _P_EXCEPT + 1)}"
            return _paren(text, _P_EXCEPT, minimum)
        case Filter(path=a, predicate=p):
            return f"{_path_src(a, _P_POSTFIX)}[{_node_src(p, 0)}]"
        case Star(path=a):
            return f"({_path_src(a, 0)})*"
        case ForLoop(var=v, source=a, body=b):
            text = f"for ${v} in {_path_src(a, _P_FOR + 1)} return {_path_src(b, _P_FOR + 1)}"
            return _paren(text, _P_FOR, minimum)
    raise TypeError(f"unknown path expression {path!r}")


def _node_src(node, minimum: int) -> str:
    match node:
        case Label(name=n):
            return _label_src(n)
        case Top():
            return "true"
        case Not(child=Top()):
            return "false"
        case Not(child=c):
            return _paren(f"not {_node_src(c, _N_NOT)}", _N_NOT, minimum)
        case And(left=a, right=b):
            text = f"{_node_src(a, _N_AND)} and {_node_src(b, _N_AND + 1)}"
            return _paren(text, _N_AND, minimum)
        case SomePath(path=a):
            return f"<{_path_src(a, 0)}>"
        case PathEquality(left=a, right=b):
            return f"eq({_path_src(a, 0)}, {_path_src(b, 0)})"
        case VarIs(var=v):
            return f". is ${v}"
    raise TypeError(f"unknown node expression {node!r}")


# ------------------------------------------------------------ paper notation

_PAPER_AXIS = {Axis.DOWN: "↓", Axis.UP: "↑", Axis.RIGHT: "→", Axis.LEFT: "←"}


def to_paper(expr: Expr) -> str:
    """Render ``expr`` in the paper's mathematical notation."""
    if isinstance(expr, (AxisStep, AxisClosure, Self, Seq, Union, Filter,
                         Intersect, Complement, Star, ForLoop)):
        return _path_paper(expr, 0)
    return _node_paper(expr, 0)


def _path_paper(path, minimum: int) -> str:
    match path:
        case AxisStep(axis=a):
            return _PAPER_AXIS[a]
        case AxisClosure(axis=a):
            return _PAPER_AXIS[a] + "*"
        case Self():
            return "."
        case Seq(left=a, right=b):
            text = f"{_path_paper(a, _P_SEQ)}/{_path_paper(b, _P_SEQ + 1)}"
            return _paren(text, _P_SEQ, minimum)
        case Union(left=a, right=b):
            text = f"{_path_paper(a, _P_UNION)} ∪ {_path_paper(b, _P_UNION + 1)}"
            return _paren(text, _P_UNION, minimum)
        case Intersect(left=a, right=b):
            text = f"{_path_paper(a, _P_INTERSECT)} ∩ {_path_paper(b, _P_INTERSECT + 1)}"
            return _paren(text, _P_INTERSECT, minimum)
        case Complement(left=a, right=b):
            text = f"{_path_paper(a, _P_EXCEPT)} − {_path_paper(b, _P_EXCEPT + 1)}"
            return _paren(text, _P_EXCEPT, minimum)
        case Filter(path=a, predicate=p):
            return f"{_path_paper(a, _P_POSTFIX)}[{_node_paper(p, 0)}]"
        case Star(path=a):
            return f"({_path_paper(a, 0)})*"
        case ForLoop(var=v, source=a, body=b):
            text = (f"for ${v} in {_path_paper(a, _P_FOR + 1)} "
                    f"return {_path_paper(b, _P_FOR + 1)}")
            return _paren(text, _P_FOR, minimum)
    raise TypeError(f"unknown path expression {path!r}")


def _node_paper(node, minimum: int) -> str:
    match node:
        case Label(name=n):
            return n
        case Top():
            return "⊤"
        case Not(child=Top()):
            return "⊥"
        case Not(child=c):
            return f"¬{_node_paper(c, _N_NOT)}"
        case And(left=a, right=b):
            text = f"{_node_paper(a, _N_AND)} ∧ {_node_paper(b, _N_AND + 1)}"
            return _paren(text, _N_AND, minimum)
        case SomePath(path=a):
            return f"⟨{_path_paper(a, 0)}⟩"
        case PathEquality(left=a, right=b):
            return f"{_path_paper(a, _P_SEQ)} ≈ {_path_paper(b, _P_SEQ)}"
        case VarIs(var=v):
            return f". is ${v}"
    raise TypeError(f"unknown node expression {node!r}")
