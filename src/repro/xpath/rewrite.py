"""Equivalence- and satisfiability-preserving rewritings on expressions.

Implements the syntactic transformations the paper uses as lemmas:

* :func:`converse` — the converse ``α˘`` of a CoreXPath(*, ≈) path
  expression (§3.1, item (1)).
* :func:`eq_via_intersect` / :func:`intersect_via_complement` /
  :func:`complement_via_for` / :func:`union_via_complement` — the
  constructive inclusions behind the Figure 1 hierarchy.
* :func:`substitute_label` — uniform replacement of an atomic label by a
  node expression (used by `let` elimination and the Prop. 4/5/6 reductions).
* :func:`relativize_axes` — replace every axis ``τ`` by ``τ[γ]`` (and ``τ*``
  by ``τ*[γ]``), making an expression blind to guard-violating *endpoints*.
"""

from __future__ import annotations

from .ast import (
    And,
    AxisClosure,
    AxisStep,
    Complement,
    Expr,
    Filter,
    ForLoop,
    Intersect,
    Label,
    NodeExpr,
    Not,
    PathEquality,
    PathExpr,
    Self,
    Seq,
    SomePath,
    Star,
    Top,
    Union,
    VarIs,
)
from .builders import down_star, up_star

__all__ = [
    "converse",
    "eq_via_intersect",
    "intersect_via_eq",
    "intersect_via_complement",
    "union_via_complement",
    "complement_via_for",
    "universal_path",
    "substitute_label",
    "relativize_axes",
    "map_paths",
]

#: ``U := ↑*/↓*`` — the universal relation on a tree (§2.2).
universal_path = Seq(up_star, down_star)


def converse(path: PathExpr) -> PathExpr:
    """The converse ``α˘`` with ``[[α˘]] = {(m, n) | (n, m) ∈ [[α]]}``.

    Defined for path expressions without ``for`` (the paper defines it for
    CoreXPath(*, ≈); we additionally let it distribute over ``∩`` and ``−``,
    which is sound since converse commutes with intersection and difference).
    """
    match path:
        case AxisStep(axis=a):
            return AxisStep(a.converse)
        case AxisClosure(axis=a):
            return AxisClosure(a.converse)
        case Self():
            return Self()
        case Seq(left=a, right=b):
            return Seq(converse(b), converse(a))
        case Union(left=a, right=b):
            return Union(converse(a), converse(b))
        case Intersect(left=a, right=b):
            return Intersect(converse(a), converse(b))
        case Complement(left=a, right=b):
            return Complement(converse(a), converse(b))
        case Filter(path=a, predicate=p):
            # (α[φ])˘ = .[φ]/α˘
            return Seq(Filter(Self(), p), converse(a))
        case Star(path=a):
            return Star(converse(a))
        case ForLoop():
            raise ValueError("converse is not defined for for-loops")
    raise TypeError(f"unknown path expression {path!r}")


def eq_via_intersect(node: PathEquality) -> SomePath:
    """``α ≈ β  ≡  ⟨α ∩ β⟩`` (§2.2): path equality via path intersection."""
    return SomePath(Intersect(node.left, node.right))


def intersect_via_eq(path: Intersect) -> PathExpr:
    """Express ``⟨α ∩ β⟩``-style *tests* via ≈ is direct; for the *relation*
    the paper's §3.1 route is ``loop``: ``α ∩ β`` has no direct ≈ equivalent
    as a path, but ``loop(α/β˘) = (α/β˘) ≈ .`` captures ``⟨α ∩ β⟩``.

    This helper returns ``.[ (α/β˘) ≈ . ]`` — the *test* form, a path
    expression whose diagonal is exactly the set of nodes where α and β meet.
    """
    meet = PathEquality(Seq(path.left, converse(path.right)), Self())
    return Filter(Self(), meet)


def intersect_via_complement(path: Intersect) -> Complement:
    """``α ∩ β  ≡  α − (α − β)`` (§7, proof of Theorem 30)."""
    return Complement(path.left, Complement(path.left, path.right))


def union_via_complement(path: Union) -> PathExpr:
    """``α ∪ β ≡ U − ((U − α) ∩ (U − β))`` with ``U = ↑*/↓*`` (§2.2),
    where the inner ``∩`` is itself expanded via complementation."""
    not_left = Complement(universal_path, path.left)
    not_right = Complement(universal_path, path.right)
    meet = intersect_via_complement(Intersect(not_left, not_right))
    return Complement(universal_path, meet)


def complement_via_for(path: Complement, var: str = "i",
                       downward_only: bool = False) -> ForLoop:
    """``α − β`` via a one-variable for-loop (proof of Theorem 31)::

        for $i in α return .[¬⟨β[. is $i]⟩]/travel[. is $i]

    where ``travel`` is ``↓*`` when both operands are downward
    (``downward_only=True``, exactly the paper's statement) and the universal
    ``↑*/↓*`` otherwise, which generalizes the same idea to all axes.
    """
    travel: PathExpr = down_star if downward_only else universal_path
    guard = Filter(Self(), Not(SomePath(Filter(path.right, VarIs(var)))))
    return ForLoop(var, path.left, Seq(guard, Filter(travel, VarIs(var))))


def substitute_label(expr: Expr, name: str, replacement: NodeExpr) -> Expr:
    """Uniformly replace the atomic label ``name`` by ``replacement``."""

    def walk(e: Expr) -> Expr:
        match e:
            case Label(name=n):
                return replacement if n == name else e
            case AxisStep() | AxisClosure() | Self() | Top() | VarIs():
                return e
            case Seq(left=a, right=b):
                return Seq(walk(a), walk(b))
            case Union(left=a, right=b):
                return Union(walk(a), walk(b))
            case Intersect(left=a, right=b):
                return Intersect(walk(a), walk(b))
            case Complement(left=a, right=b):
                return Complement(walk(a), walk(b))
            case Filter(path=a, predicate=p):
                return Filter(walk(a), walk(p))
            case Star(path=a):
                return Star(walk(a))
            case ForLoop(var=v, source=a, body=b):
                return ForLoop(v, walk(a), walk(b))
            case SomePath(path=a):
                return SomePath(walk(a))
            case Not(child=c):
                return Not(walk(c))
            case And(left=a, right=b):
                return And(walk(a), walk(b))
            case PathEquality(left=a, right=b):
                return PathEquality(walk(a), walk(b))
        raise TypeError(f"unknown expression {e!r}")

    return walk(expr)


def relativize_axes(expr: Expr, guard: NodeExpr) -> Expr:
    """Replace every axis ``τ`` with ``τ[guard]`` and ``τ*`` with ``τ*[guard]``.

    This filters the *endpoints* of axis steps, which is the transformation
    used in Propositions 4/5 and Lemma 18 — there the guard excludes a set of
    auxiliary nodes that are structurally guaranteed (root-only or
    rightmost-leaf-only) never to occur strictly inside a surviving ``τ*``
    path, so endpoint filtering equals true relativization.
    """

    def walk(e: Expr) -> Expr:
        match e:
            case AxisStep() | AxisClosure():
                return Filter(e, guard)
            case Label() | Self() | Top() | VarIs():
                return e
            case Seq(left=a, right=b):
                return Seq(walk(a), walk(b))
            case Union(left=a, right=b):
                return Union(walk(a), walk(b))
            case Intersect(left=a, right=b):
                return Intersect(walk(a), walk(b))
            case Complement(left=a, right=b):
                return Complement(walk(a), walk(b))
            case Filter(path=a, predicate=p):
                return Filter(walk(a), walk(p))
            case Star(path=a):
                return Star(walk(a))
            case ForLoop(var=v, source=a, body=b):
                return ForLoop(v, walk(a), walk(b))
            case SomePath(path=a):
                return SomePath(walk(a))
            case Not(child=c):
                return Not(walk(c))
            case And(left=a, right=b):
                return And(walk(a), walk(b))
            case PathEquality(left=a, right=b):
                return PathEquality(walk(a), walk(b))
        raise TypeError(f"unknown expression {e!r}")

    return walk(expr)


def map_paths(expr: Expr, transform) -> Expr:
    """Rebuild ``expr`` bottom-up, applying ``transform`` to every *path*
    subexpression after its children have been rebuilt.  ``transform`` must
    accept and return a path expression; identity is expressed by returning
    the argument unchanged."""

    def walk(e: Expr) -> Expr:
        match e:
            case AxisStep() | AxisClosure() | Self():
                return transform(e)
            case Seq(left=a, right=b):
                return transform(Seq(walk(a), walk(b)))
            case Union(left=a, right=b):
                return transform(Union(walk(a), walk(b)))
            case Intersect(left=a, right=b):
                return transform(Intersect(walk(a), walk(b)))
            case Complement(left=a, right=b):
                return transform(Complement(walk(a), walk(b)))
            case Filter(path=a, predicate=p):
                return transform(Filter(walk(a), walk(p)))
            case Star(path=a):
                return transform(Star(walk(a)))
            case ForLoop(var=v, source=a, body=b):
                return transform(ForLoop(v, walk(a), walk(b)))
            case Label() | Top() | VarIs():
                return e
            case SomePath(path=a):
                return SomePath(walk(a))
            case Not(child=c):
                return Not(walk(c))
            case And(left=a, right=b):
                return And(walk(a), walk(b))
            case PathEquality(left=a, right=b):
                return PathEquality(walk(a), walk(b))
        raise TypeError(f"unknown expression {e!r}")

    return walk(expr)
