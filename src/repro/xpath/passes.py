"""The rewrite pass manager: cost-guided canonicalization of interned ASTs.

Simplification used to be scattered over four layers — ``intern.normalize``,
``analysis.optimize``'s union rebuilding, ad-hoc cleanup in the automata
normal form, and per-engine tricks — each reimplementing overlapping rule
subsets and none running systematically before dispatch.  This module
consolidates them into one pipeline:

* A :class:`Pass` is a *named, declared, semantics-preserving* rule set.
  Local passes rewrite one node at a time (bottom-up, children already
  rewritten); whole-expression passes (the :func:`~repro.xpath.intern.normalize`
  wrapper) transform the root in one shot.  Every rule is an equivalence of
  the paper's semantics — ``[[rewrite(e)]] = [[e]]`` on every tree and
  assignment — so engines may decide the canonical form in place of the
  original.
* A :class:`Pipeline` is an ordered pass list run to a **cost-guided
  fixpoint**: after each pass the result is kept only if its cost — the
  tuple ``(size, dag_size)`` from :mod:`repro.xpath.measures` — did not
  increase.  Rounds repeat until no pass fires (bounded by ``max_rounds``).
* Three registered levels (:data:`PIPELINES`): ``none`` (intern only),
  ``basic`` (pipeline level 0 — exactly ``intern.normalize``), and ``full``
  (normalize plus the whole rule catalog).  Engines declare the level they
  want via ``Engine.pipeline``; the session default is set by the CLI's
  ``--passes`` flag (:func:`set_default_pipeline`).

Rule catalog of the ``full`` level (each pass individually verified against
the reference evaluator in ``tests/test_passes.py``):

``normalize``      flatten/sort/dedupe ``∪ ∧ ∩``, unit laws, ``¬¬φ = φ``.
``dead-labels``    ``p → ⊥`` for labels outside the schema alphabet.
``booleans``       ``⊥``/``⊤`` propagation in ``∧``, ``φ ∧ ¬φ → ⊥``,
                   ``α ≈ α → ⟨α⟩``, ``⟨α⟩ → ⊤`` when ``α`` contains the
                   identity, ``⟨∅⟩ → ⊥``.
``path-units``     the empty path ``∅ ≡ .[⊥]`` propagates through every
                   path constructor (``∅/α = ∅``, ``α ∪ ∅ = α``, ...).
``star-algebra``   ``(τ)* → τ*``, ``(τ*)* → τ*``, ``(α ∪ .)* = α*``,
                   ``(.[φ])* = .``.
``filters``        predicate hoisting/fusion: ``α[φ][ψ] = α[φ ∧ ψ]``,
                   ``α/.[φ] = α[φ]``, and ``Seq``-spine fusion
                   ``τ*/τ* = τ*``, ``α*/α* = α*``.
``subsumption``    union factoring (drop members subsumed by a sibling)
                   and its duals for ``∩`` and ``−``.

Observability: every accepted pass application counts
``rewrite.pass.<name>.fired`` and adds the expression sizes to
``rewrite.pass.<name>.nodes_before`` / ``.nodes_after``; rejected (cost-
increasing) applications count ``rewrite.pass.<name>.rejected``.

Canonical forms are memoized process-globally per ``(level, alphabet)`` on
the interned identity of the input, so re-canonicalizing — the engine
registry does it once per dispatch, the plan compiler once per compile —
is a dictionary hit.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable, Iterable

from .. import obs
from .ast import (
    And,
    AxisClosure,
    AxisStep,
    Complement,
    Expr,
    Filter,
    ForLoop,
    Intersect,
    Label,
    Not,
    PathEquality,
    PathExpr,
    Self,
    Seq,
    SomePath,
    Star,
    Top,
    Union,
    VarIs,
)
from .intern import intern_expr, normalize
from .measures import size

__all__ = [
    "FALSE",
    "EMPTY_PATH",
    "Pass",
    "PassStats",
    "Pipeline",
    "PIPELINES",
    "PASS_LEVELS",
    "canonical",
    "canonical_with_stats",
    "cost",
    "default_pipeline",
    "get_pipeline",
    "is_empty_path",
    "register_pipeline",
    "rebuild_union",
    "set_default_pipeline",
    "union_members",
]

#: Canonical false: ``¬⊤`` (prints as ``false``, parses back).
FALSE = intern_expr(Not(Top()))
#: Canonical empty path: ``.[false]`` — the ``∅`` relation.  Every rule
#: that derives emptiness rewrites to this exact interned instance.
EMPTY_PATH = intern_expr(Filter(Self(), FALSE))

_SELF = intern_expr(Self())
_TOP = intern_expr(Top())


def is_empty_path(path: PathExpr) -> bool:
    """Is ``path`` the canonical empty relation?  (Syntactic check against
    :data:`EMPTY_PATH`; the pipeline funnels every derivably-empty path
    onto that one instance.)"""
    return intern_expr(path) is EMPTY_PATH


def _children(expr: Expr) -> tuple[Expr, ...]:
    """Immediate subexpressions of one node (both sorts)."""
    match expr:
        case Seq(left=a, right=b) | Union(left=a, right=b) \
                | Intersect(left=a, right=b) | Complement(left=a, right=b) \
                | And(left=a, right=b) | PathEquality(left=a, right=b) \
                | ForLoop(source=a, body=b):
            return (a, b)
        case Filter(path=a, predicate=p):
            return (a, p)
        case Star(path=a) | SomePath(path=a) | Not(child=a):
            return (a,)
        case _:
            return ()


#: id(interned expr) -> adjusted size.  Safe: canonical nodes are immortal.
_GUARD_SIZE: dict[int, int] = {}


def _adjusted_size(expr: Expr) -> int:
    """Syntax-tree size with the canonical constants ``∅`` (``.[false]``)
    and ``⊥`` (``false``) priced as single atoms — otherwise collapsing a
    3-node expression to the 4-node ``.[false]`` would look like a cost
    increase and the guard would block the emptiness rules on exactly the
    smallest inputs."""
    if expr is EMPTY_PATH or expr is FALSE:
        return 1
    cached = _GUARD_SIZE.get(id(expr))
    if cached is not None:
        return cached
    result = 1 + sum(_adjusted_size(child) for child in _children(expr))
    _GUARD_SIZE[id(expr)] = result
    return result


def _adjusted_dag(expr: Expr) -> int:
    """Distinct-subexpression count with the canonical constants collapsed
    to atoms (their internals are not descended into)."""
    seen: set[int] = set()
    stack: list[Expr] = [expr]
    while stack:
        node = stack.pop()
        if id(node) in seen:
            continue
        seen.add(id(node))
        if node is EMPTY_PATH or node is FALSE:
            continue
        stack.extend(_children(node))
    return len(seen)


def cost(expr: Expr) -> tuple[int, int]:
    """The pipeline's cost of ``expr``: syntax-tree size first (what every
    engine's complexity scales with; the canonical ``∅``/``⊥`` constants
    count as atoms), distinct-subexpression count second (what the interned
    DAG and the plan compiler actually materialize — see
    :func:`repro.xpath.measures.dag_size`)."""
    root = intern_expr(expr)
    return (_adjusted_size(root), _adjusted_dag(root))


# -------------------------------------------------------------- rule helpers


def _flatten(expr: Expr, ctor: type) -> list[Expr]:
    """Leaves of a ``ctor`` spine, left to right."""
    out: list[Expr] = []
    stack = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, ctor):
            stack.append(node.right)  # type: ignore[attr-defined]
            stack.append(node.left)  # type: ignore[attr-defined]
        else:
            out.append(node)
    return out


def _rebuild(parts: list[Expr], ctor: Callable[[Expr, Expr], Expr]) -> Expr:
    """Left-deep spine over ``parts`` (at least one), interned."""
    result = parts[0]
    for part in parts[1:]:
        result = intern_expr(ctor(result, part))
    return result


def union_members(query: PathExpr) -> list[PathExpr]:
    """The flattened members of a ``∪`` spine (a non-union is one member).

    This is *the* union-flattening implementation — ``analysis.optimize``
    used to carry its own copy which neither deduplicated nor ordered
    members, so its rebuilt unions diverged from the normalizer's canonical
    spines (and missed the plan cache).  Both layers now share this one.
    """
    return _flatten(intern_expr(query), Union)  # type: ignore[return-value]


def rebuild_union(members: list[PathExpr]) -> PathExpr:
    """The canonical union of ``members``: interned, left-deep, in the
    normalizer's member order once normalized."""
    if not members:
        return EMPTY_PATH
    return normalize(_rebuild(list(members), Union))  # type: ignore[arg-type]


def _contains_identity(path: PathExpr) -> bool:
    """Conservatively: does ``[[path]]`` include the identity relation on
    every tree?  (Sound, not complete — ``False`` just means "unknown".)"""
    match path:
        case Self() | AxisClosure() | Star():
            return True
        case Union(left=a, right=b):
            return _contains_identity(a) or _contains_identity(b)
        case Seq(left=a, right=b) | Intersect(left=a, right=b):
            return _contains_identity(a) and _contains_identity(b)
        case _:
            return False


def _subsumes(big: PathExpr, small: PathExpr) -> bool:
    """Conservatively: ``[[small]] ⊆ [[big]]`` on every tree?

    Purely syntactic — identity, closures over their steps, filters /
    intersections / complements under their base paths, and composition /
    union distribution into transitively-closed paths.
    """
    if big is small:
        return True
    if isinstance(big, AxisClosure):
        if isinstance(small, Self):
            return True
        if isinstance(small, AxisStep) and small.axis is big.axis:
            return True
        if isinstance(small, (Seq, Union)):
            # τ* is closed under composition (τ*/τ* = τ*) and union.
            return _subsumes(big, small.left) and _subsumes(big, small.right)
    if isinstance(big, Star):
        if isinstance(small, Self) or _subsumes(big.path, small):
            return True
        if isinstance(small, (Seq, Union)):
            return _subsumes(big, small.left) and _subsumes(big, small.right)
    if isinstance(small, Filter):
        return _subsumes(big, small.path)
    if isinstance(small, Intersect):
        return _subsumes(big, small.left) or _subsumes(big, small.right)
    if isinstance(small, Complement):
        return _subsumes(big, small.left)
    if isinstance(small, Union):
        return _subsumes(big, small.left) and _subsumes(big, small.right)
    return False


def _drop_subsumed(members: list[Expr], keeps_smaller: bool) -> list[Expr] | None:
    """Members with redundant entries removed, or ``None`` if nothing drops.

    ``keeps_smaller=False`` is the union direction (drop a member contained
    in a sibling); ``True`` is the intersection direction (drop a member
    containing a sibling).  On mutual subsumption the earlier member wins.
    """
    dropped = [False] * len(members)
    for i, m in enumerate(members):
        for j, s in enumerate(members):
            if i == j or dropped[j]:
                continue
            big, small = (m, s) if keeps_smaller else (s, m)
            if _subsumes(big, small) and (j < i or not _subsumes(small, big)):
                dropped[i] = True
                break
    if not any(dropped):
        return None
    return [m for i, m in enumerate(members) if not dropped[i]]


# ------------------------------------------------------------- the rule sets


def _rule_booleans(expr: Expr, alphabet: frozenset[str] | None) -> Expr | None:
    """⊥/⊤ propagation in ``∧``, contradictions, ``≈``/``⟨·⟩`` collapses."""
    match expr:
        case And():
            members = _flatten(expr, And)
            if any(m is FALSE for m in members):
                return FALSE
            kept = [m for m in members if m is not _TOP]
            ids = {id(m) for m in kept}
            if any(isinstance(m, Not) and id(m.child) in ids for m in kept):
                return FALSE  # φ ∧ ¬φ (both conjuncts present) = ⊥.
            if len(kept) == len(members):
                return None
            if not kept:
                return _TOP
            return _rebuild(kept, And)
        case PathEquality(left=a, right=b):
            if a is EMPTY_PATH or b is EMPTY_PATH:
                return FALSE
            if a is b:
                return intern_expr(SomePath(a))  # α ≈ α = ⟨α⟩.
            return None
        case SomePath(path=a):
            if a is EMPTY_PATH:
                return FALSE
            if _contains_identity(a):
                return _TOP  # (n, n) ∈ [[α]] for every n, so ⟨α⟩ ≡ ⊤.
            return None
    return None


def _rule_path_units(expr: Expr, alphabet: frozenset[str] | None) -> Expr | None:
    """Propagate the empty path ``∅`` through every path constructor."""
    match expr:
        case Seq(left=a, right=b):
            if a is EMPTY_PATH or b is EMPTY_PATH:
                return EMPTY_PATH
        case Union():
            members = _flatten(expr, Union)
            kept = [m for m in members if m is not EMPTY_PATH]
            if len(kept) == len(members):
                return None
            return _rebuild(kept, Union) if kept else EMPTY_PATH
        case Intersect():
            if any(m is EMPTY_PATH for m in _flatten(expr, Intersect)):
                return EMPTY_PATH
        case Complement(left=a, right=b):
            if a is EMPTY_PATH:
                return EMPTY_PATH
            if b is EMPTY_PATH:
                return a
        case Filter(path=a, predicate=p):
            if expr is EMPTY_PATH:
                return None
            if a is EMPTY_PATH or p is FALSE:
                return EMPTY_PATH
        case Star(path=a):
            if a is EMPTY_PATH:
                return _SELF  # ∅* = . (reflexive closure of nothing).
            if isinstance(a, Filter) and isinstance(a.path, Self):
                return _SELF  # (.[φ])* = . (closure of a sub-identity).
        case ForLoop(source=a, body=b):
            if a is EMPTY_PATH or b is EMPTY_PATH:
                return EMPTY_PATH  # no bindings, or every binding empty.
    return None


def _rule_star_algebra(expr: Expr, alphabet: frozenset[str] | None) -> Expr | None:
    """Collapse general closures onto the CoreXPath axis-closure form."""
    match expr:
        case Star(path=AxisStep(axis=axis)) | Star(path=AxisClosure(axis=axis)):
            return intern_expr(AxisClosure(axis))
        case Star(path=Union() as inner):
            members = _flatten(inner, Union)
            kept = [m for m in members if not isinstance(m, Self)]
            if len(kept) == len(members):
                return None
            if not kept:
                return _SELF
            # (α ∪ .)* = α*: closures are already reflexive.
            return intern_expr(Star(_rebuild(kept, Union)))  # type: ignore[arg-type]
    return None


def _rule_filters(expr: Expr, alphabet: frozenset[str] | None) -> Expr | None:
    """Predicate fusion/hoisting and ``Seq``-spine fusion."""
    match expr:
        case Filter(path=Filter(path=a, predicate=p), predicate=q):
            return intern_expr(Filter(a, intern_expr(And(p, q))))
        case Seq():
            members = _flatten(expr, Seq)
            out: list[Expr] = []
            changed = False
            for member in members:
                prev = out[-1] if out else None
                if prev is not None and isinstance(member, Filter) \
                        and isinstance(member.path, Self):
                    # α/.[φ] = α[φ]: the trailing test filters α's target.
                    out[-1] = intern_expr(Filter(prev, member.predicate))
                    changed = True
                elif prev is not None and (
                        (isinstance(prev, AxisClosure)
                         and isinstance(member, AxisClosure)
                         and prev.axis is member.axis)
                        or (isinstance(prev, Star) and isinstance(member, Star)
                            and prev.path is member.path)):
                    changed = True  # τ*/τ* = τ* and α*/α* = α* (transitive).
                else:
                    out.append(member)
            if not changed and len(out) == len(members):
                return None
            return _rebuild(out, Seq)
    return None


def _rule_subsumption(expr: Expr, alphabet: frozenset[str] | None) -> Expr | None:
    """Union factoring and its ``∩``/``−`` duals via :func:`_subsumes`."""
    match expr:
        case Union():
            kept = _drop_subsumed(_flatten(expr, Union), keeps_smaller=False)
            if kept is None:
                return None
            return _rebuild(kept, Union)
        case Intersect():
            kept = _drop_subsumed(_flatten(expr, Intersect), keeps_smaller=True)
            if kept is None:
                return None
            return _rebuild(kept, Intersect)
        case Complement(left=a, right=b):
            if _subsumes(b, a):
                return EMPTY_PATH  # α − β = ∅ when α ⊆ β syntactically.
    return None


def _rule_dead_labels(expr: Expr, alphabet: frozenset[str] | None) -> Expr | None:
    """``p → ⊥`` for labels no conforming document can carry.  Only runs
    when a schema alphabet is in scope (``Problem.canonical`` passes the
    EDTD's concrete labels)."""
    if alphabet is not None and isinstance(expr, Label) \
            and expr.name not in alphabet:
        return FALSE
    return None


# ---------------------------------------------------------- passes/pipelines


@dataclass(frozen=True)
class Pass:
    """One named, semantics-preserving rule set.

    Exactly one of ``rule`` (a local rewrite applied bottom-up; receives a
    node whose children are already rewritten and returns a replacement or
    ``None``) and ``whole`` (a whole-expression transform) is set.
    ``needs_alphabet`` passes are skipped unless a schema alphabet is given.
    """

    name: str
    rule: Callable[[Expr, frozenset[str] | None], Expr | None] | None = None
    whole: Callable[[Expr], Expr] | None = None
    needs_alphabet: bool = False

    def apply(self, expr: Expr, alphabet: frozenset[str] | None,
              fired: list[int]) -> Expr:
        """``expr`` rewritten by this pass (interned); bumps ``fired[0]``
        once per accepted rule application."""
        if self.whole is not None:
            result = intern_expr(self.whole(expr))
            if result is not expr:
                fired[0] += 1
            return result
        assert self.rule is not None
        memo: dict[int, Expr] = {}
        return self._walk(intern_expr(expr), alphabet, memo, fired)

    def _walk(self, expr: Expr, alphabet: frozenset[str] | None,
              memo: dict[int, Expr], fired: list[int]) -> Expr:
        hit = memo.get(id(expr))
        if hit is not None:
            return hit
        walk = self._walk
        match expr:
            case Seq(left=a, right=b):
                rebuilt = Seq(walk(a, alphabet, memo, fired),
                              walk(b, alphabet, memo, fired))
            case Union(left=a, right=b):
                rebuilt = Union(walk(a, alphabet, memo, fired),
                                walk(b, alphabet, memo, fired))
            case Intersect(left=a, right=b):
                rebuilt = Intersect(walk(a, alphabet, memo, fired),
                                    walk(b, alphabet, memo, fired))
            case Complement(left=a, right=b):
                rebuilt = Complement(walk(a, alphabet, memo, fired),
                                     walk(b, alphabet, memo, fired))
            case Filter(path=a, predicate=p):
                rebuilt = Filter(walk(a, alphabet, memo, fired),
                                 walk(p, alphabet, memo, fired))
            case Star(path=a):
                rebuilt = Star(walk(a, alphabet, memo, fired))
            case ForLoop(var=v, source=a, body=b):
                rebuilt = ForLoop(v, walk(a, alphabet, memo, fired),
                                  walk(b, alphabet, memo, fired))
            case SomePath(path=a):
                rebuilt = SomePath(walk(a, alphabet, memo, fired))
            case Not(child=c):
                rebuilt = Not(walk(c, alphabet, memo, fired))
            case And(left=a, right=b):
                rebuilt = And(walk(a, alphabet, memo, fired),
                              walk(b, alphabet, memo, fired))
            case PathEquality(left=a, right=b):
                rebuilt = PathEquality(walk(a, alphabet, memo, fired),
                                       walk(b, alphabet, memo, fired))
            case _:  # leaves: AxisStep/AxisClosure/Self/Label/Top/VarIs
                rebuilt = expr
        node = intern_expr(rebuilt)
        assert self.rule is not None
        # Re-apply the rule at this node until it stops firing: one rewrite
        # can expose another local redex (e.g. filter fusion after fusion).
        for _ in range(64):
            out = self.rule(node, alphabet)
            if out is None:
                break
            out = intern_expr(out)
            if out is node:
                break
            fired[0] += 1
            node = out
        memo[id(expr)] = node
        memo[id(node)] = node
        return node


@dataclass(frozen=True)
class PassStats:
    """Aggregated per-pass statistics of one :meth:`Pipeline.run`."""

    level: str
    nodes_before: int = 0
    nodes_after: int = 0
    per_pass: dict = field(default_factory=dict)

    def record(self, name: str, fired: int, before: int, after: int) -> None:
        entry = self.per_pass.setdefault(
            name, {"fired": 0, "nodes_before": 0, "nodes_after": 0})
        entry["fired"] += fired
        entry["nodes_before"] += before
        entry["nodes_after"] += after


class Pipeline:
    """An ordered pass list run to a cost-guided fixpoint."""

    def __init__(self, name: str, passes: Iterable[Pass],
                 max_rounds: int = 12):
        self.name = name
        self.passes = tuple(passes)
        self.max_rounds = max_rounds

    def describe(self) -> dict:
        return {"name": self.name,
                "passes": [p.name for p in self.passes]}

    def run(self, expr: Expr, alphabet: frozenset[str] | None = None,
            stats: PassStats | None = None) -> Expr:
        """The canonical form of ``expr`` under this pipeline (interned).

        Each pass application is accepted only if the :func:`cost` did not
        increase; rounds repeat until no pass changes the expression."""
        current = intern_expr(expr)
        for _ in range(self.max_rounds):
            changed = False
            for p in self.passes:
                if p.needs_alphabet and alphabet is None:
                    continue
                fired = [0]
                before = current
                result = p.apply(current, alphabet, fired)
                if result is current:
                    continue
                before_cost, after_cost = cost(before), cost(result)
                if after_cost > before_cost:
                    obs.count(f"rewrite.pass.{p.name}.rejected")
                    continue
                obs.count(f"rewrite.pass.{p.name}.fired", fired[0])
                obs.count(f"rewrite.pass.{p.name}.nodes_before", before_cost[0])
                obs.count(f"rewrite.pass.{p.name}.nodes_after", after_cost[0])
                if stats is not None:
                    stats.record(p.name, fired[0], before_cost[0],
                                 after_cost[0])
                current = result
                changed = True
            if not changed:
                break
        return current


#: Pipeline level 0 — exactly the interning normalizer.
_NORMALIZE_PASS = Pass("normalize", whole=normalize)

_FULL_PASSES = (
    _NORMALIZE_PASS,
    Pass("dead-labels", rule=_rule_dead_labels, needs_alphabet=True),
    Pass("booleans", rule=_rule_booleans),
    Pass("path-units", rule=_rule_path_units),
    Pass("star-algebra", rule=_rule_star_algebra),
    Pass("filters", rule=_rule_filters),
    Pass("subsumption", rule=_rule_subsumption),
)

#: The registered pipeline levels.  ``none`` interns without rewriting,
#: ``basic`` is the historical ``normalize`` behaviour, ``full`` runs the
#: whole catalog.  Engines name one of these via ``Engine.pipeline``.
PIPELINES: dict[str, Pipeline] = {}

#: The level names in increasing strength, as the CLI exposes them.
PASS_LEVELS = ("none", "basic", "full")


def register_pipeline(pipeline: Pipeline) -> Pipeline:
    """Add (or replace) a pipeline under its name."""
    PIPELINES[pipeline.name] = pipeline
    return pipeline


register_pipeline(Pipeline("none", ()))
register_pipeline(Pipeline("basic", (_NORMALIZE_PASS,)))
register_pipeline(Pipeline("full", _FULL_PASSES))


def get_pipeline(name: str) -> Pipeline:
    pipeline = PIPELINES.get(name)
    if pipeline is None:
        raise ValueError(f"unknown pipeline {name!r} "
                         f"(registered: {', '.join(sorted(PIPELINES))})")
    return pipeline


_lock = threading.RLock()
_DEFAULT_LEVEL = "full"
#: (level, alphabet, id(interned input)) -> canonical form.  Canonical
#: instances are immortal (the intern table holds them), so id-keys are safe.
_CANON: dict[tuple[str, frozenset[str] | None, int], Expr] = {}


def default_pipeline() -> str:
    """The session-wide pipeline level used when none is requested."""
    return _DEFAULT_LEVEL


def set_default_pipeline(level: str) -> str:
    """Set the session default level; returns the previous one."""
    global _DEFAULT_LEVEL
    get_pipeline(level)  # validate
    with _lock:
        previous = _DEFAULT_LEVEL
        _DEFAULT_LEVEL = level
        return previous


def canonical(expr: Expr, level: str | None = None,
              alphabet: Iterable[str] | None = None) -> Expr:
    """The canonical form of ``expr`` at ``level`` (default: the session
    level), interned and idempotent: ``canonical(canonical(e)) is
    canonical(e)``.  ``alphabet`` enables schema-aware dead-branch
    elimination (pass the EDTD's concrete labels)."""
    sigma = frozenset(alphabet) if alphabet is not None else None
    with _lock:
        name = level if level is not None else _DEFAULT_LEVEL
        root = intern_expr(expr)
        key = (name, sigma, id(root))
        hit = _CANON.get(key)
        if hit is not None:
            return hit
        result = get_pipeline(name).run(root, sigma)
        _CANON[key] = result
        _CANON.setdefault((name, sigma, id(result)), result)
        return result


def canonical_with_stats(
    expr: Expr, level: str | None = None,
    alphabet: Iterable[str] | None = None,
) -> tuple[Expr, PassStats]:
    """Like :func:`canonical` but uncached, returning per-pass statistics
    (the ``repro simplify`` command's payload)."""
    sigma = frozenset(alphabet) if alphabet is not None else None
    name = level if level is not None else _DEFAULT_LEVEL
    root = intern_expr(expr)
    stats = PassStats(level=name, nodes_before=size(root))
    result = get_pipeline(name).run(root, sigma, stats=stats)
    stats = PassStats(level=name, nodes_before=stats.nodes_before,
                      nodes_after=size(result), per_pass=stats.per_pass)
    with _lock:
        _CANON.setdefault((name, sigma, id(root)), result)
        _CANON.setdefault((name, sigma, id(result)), result)
    return result, stats
