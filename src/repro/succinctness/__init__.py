"""Succinctness (§8): expression families, measured translations, automata."""

from .families import phi_k, phi_k_property, tower, LABEL_P, LABEL_Q
from .wordauto import violation_nfa, minimal_dfa_size_for_phi_k, self_check
from .translations import (
    measure_cap_translation,
    measure_path_cap_translation,
    cap_chain,
    cap_tower,
)

__all__ = [
    "phi_k", "phi_k_property", "tower", "LABEL_P", "LABEL_Q",
    "violation_nfa", "minimal_dfa_size_for_phi_k", "self_check",
    "measure_cap_translation", "measure_path_cap_translation",
    "cap_chain", "cap_tower",
]
